//! Robustness of the synthetic-data pipeline: arbitrary (but physically
//! plausible) base matrices must flow through fit → sample → build without
//! panics, producing valid systems; hostile inputs must be rejected with
//! errors, never crashes.

use hetsched::data::{Epc, Etc, TypeMatrix};
use hetsched::synth::ratios::RatioModel;
use hetsched::synth::rowavg::RowAverageModel;
use hetsched::synth::DatasetBuilder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a small ETC-like matrix with entries spanning three orders of
/// magnitude — enough heterogeneity for the models to fit.
fn arb_matrix() -> impl Strategy<Value = TypeMatrix> {
    (3usize..8, 3usize..8).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(0.5f64..500.0, rows * cols).prop_map(move |data| {
            TypeMatrix::from_rows(rows, cols, data).expect("shape matches data")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fitting and sampling never panics and produces positive, finite rows.
    #[test]
    fn pipeline_is_total_on_plausible_matrices(matrix in arb_matrix(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Degenerate samples (identical row averages, zero-variance ratio
        // columns) are legitimate rejections; anything else must sample.
        let Ok(rowavg) = RowAverageModel::fit(&matrix) else { return Ok(()) };
        let Ok(ratios) = RatioModel::fit(&matrix) else { return Ok(()) };
        for _ in 0..5 {
            let avg = rowavg.sample(&mut rng);
            prop_assert!(avg > 0.0 && avg.is_finite());
            let row = ratios.sample_row(avg, &mut rng);
            prop_assert_eq!(row.len(), matrix.machine_types());
            for v in row {
                prop_assert!(v > 0.0 && v.is_finite());
            }
        }
    }

    /// A full DatasetBuilder run over an arbitrary base yields a valid
    /// system with the requested shape (or a clean error, never a panic).
    #[test]
    fn builder_is_total(matrix in arb_matrix(), extra in 1usize..12, seed in 0u64..200) {
        let rows = matrix.task_types();
        let cols = matrix.machine_types();
        // EPC mirrors the ETC structurally (scaled into a watt-ish range).
        let mut epc = TypeMatrix::filled(rows, cols, 0.0);
        for t in 0..rows {
            for m in 0..cols {
                let t = hetsched::data::TaskTypeId(t as u16);
                let m = hetsched::data::MachineTypeId(m as u16);
                epc.set(t, m, 50.0 + matrix.get(t, m) % 200.0);
            }
        }
        let task_names = (0..rows).map(|i| format!("t{i}")).collect();
        let machine_names = (0..cols).map(|i| format!("m{i}")).collect();
        let Ok(builder) =
            DatasetBuilder::from_base(Etc(matrix), Epc(epc), task_names, machine_names)
        else {
            return Ok(());
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let builder = builder.new_task_types(extra);
        match builder.build(&mut rng) {
            Ok(system) => {
                prop_assert_eq!(system.task_type_count(), rows + extra);
                prop_assert_eq!(system.machine_type_count(), cols);
                // Validation inside HcSystem::new guarantees positivity and
                // feasibility; spot-check determinism as well.
                let again = builder
                    .build(&mut StdRng::seed_from_u64(seed))
                    .expect("same inputs, same outcome");
                prop_assert_eq!(system, again);
            }
            Err(_) => {
                // Acceptable: degenerate statistics. The property is "no
                // panic", which reaching this arm already demonstrates.
            }
        }
    }
}

#[test]
fn hostile_matrices_error_cleanly() {
    // All-identical entries: zero variance everywhere.
    let flat = TypeMatrix::filled(4, 4, 7.0);
    assert!(RowAverageModel::fit(&flat).is_err());
    assert!(RatioModel::fit(&flat).is_err());

    // Single row: no row-average distribution to fit.
    let single = TypeMatrix::from_rows(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
    assert!(RowAverageModel::fit(&single).is_err());
}
