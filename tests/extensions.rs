//! Integration tests for the paper's future-work extensions: DVFS P-states
//! and negligible-utility task dropping.

use hetsched::alloc::DvfsAllocationProblem;
use hetsched::data::real_system;
use hetsched::heuristics::min_energy;
use hetsched::moea::{Nsga2, Nsga2Config};
use hetsched::sim::{DvfsAllocation, DvfsTable, Evaluator};
use hetsched::workload::TraceGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dvfs_front_extends_past_plain_front() {
    let sys = real_system();
    let trace = TraceGenerator::new(40, 900.0, sys.task_type_count())
        .generate(&mut StdRng::seed_from_u64(7))
        .unwrap();
    let table = DvfsTable::cubic_default();
    let problem = DvfsAllocationProblem::new(&sys, &trace, table);

    // Seed with the plain min-energy allocation at nominal frequency so the
    // comparison to the plain bound is honest.
    let seed = DvfsAllocation::nominal(min_energy(&sys, &trace));
    let cfg = Nsga2Config {
        population: 32,
        mutation_rate: 0.8,
        generations: 120,
        parallel: false,
        ..Default::default()
    };
    let pop = Nsga2::new(&problem, cfg).run(vec![seed], 3);

    let plain_bound = Evaluator::new(&sys, &trace).min_possible_energy();
    let min_energy_nonzero_utility = pop
        .iter()
        .filter(|i| -i.objectives[0] > 0.0)
        .map(|i| i.objectives[1])
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_energy_nonzero_utility < plain_bound,
        "DVFS should beat the plain-energy bound: {min_energy_nonzero_utility} vs {plain_bound}"
    );
}

#[test]
fn task_dropping_discovers_zero_utility_savings() {
    // Build a trace where decay is brutal (hard deadlines that expire fast),
    // so dropping hopeless tasks is strictly better than running them.
    let sys = real_system();
    let trace = TraceGenerator::new(30, 300.0, sys.task_type_count())
        .generate(&mut StdRng::seed_from_u64(21))
        .unwrap();
    let table = DvfsTable::cubic_default();
    let problem = DvfsAllocationProblem::new(&sys, &trace, table);
    let cfg = Nsga2Config {
        population: 24,
        mutation_rate: 0.9,
        generations: 150,
        parallel: false,
        ..Default::default()
    };
    let pop = Nsga2::new(&problem, cfg).run(vec![], 11);

    // The front must contain at least one solution that drops something
    // (the all-dropped corner (0 utility, 0 energy) is always feasible and
    // nondominated on energy).
    let some_dropping = pop.iter().any(|i| i.genome.dropped.iter().any(|&d| d));
    assert!(some_dropping, "GA never explored task dropping");
    // The minimum-energy member of the front should exploit dropping: every
    // dropped task saves its full EEC, so the energy-greedy end of the
    // front accumulates drop flags.
    let cheapest = pop
        .iter()
        .min_by(|a, b| a.objectives[1].total_cmp(&b.objectives[1]))
        .unwrap();
    assert!(
        cheapest.genome.dropped.iter().any(|&d| d),
        "minimum-energy solution should drop at least one task"
    );
}

#[test]
fn pstates_trade_utility_for_energy_along_front() {
    let sys = real_system();
    let trace = TraceGenerator::new(25, 900.0, sys.task_type_count())
        .generate(&mut StdRng::seed_from_u64(33))
        .unwrap();
    let table = DvfsTable::cubic_default();

    // Manually sweep uniform P-states over the min-energy allocation: the
    // resulting points must be mutually nondominated (deeper states always
    // cost utility but save energy) — the DVFS trade-off curve.
    let base = min_energy(&sys, &trace);
    let mut previous_energy = f64::INFINITY;
    let mut previous_utility = f64::INFINITY;
    for ps in 0..table.len() as u8 {
        let mut ext = DvfsAllocation::nominal(base.clone());
        ext.pstate = vec![ps; trace.len()];
        let out = ext.evaluate(&sys, &trace, &table).unwrap();
        assert!(
            out.energy < previous_energy,
            "energy must fall with deeper P-state"
        );
        assert!(
            out.utility <= previous_utility + 1e-9,
            "utility cannot rise when slowing down"
        );
        previous_energy = out.energy;
        previous_utility = out.utility;
    }
}
