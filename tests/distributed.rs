//! Distributed campaign execution: several [`Worker`]s race one shared
//! manifest and the merged result must be byte-identical to a
//! single-process [`Campaign::run`].
//!
//! The coordination substrate is nothing but the manifest — no sockets,
//! no coordinator process. Each worker loops lease → execute → append →
//! release under the store lock; fencing epochs make a stale worker's
//! late append invisible at merge time. These tests pin the user-facing
//! contract (README § Distributed campaigns): *how many* processes ran
//! the grid, and *which* of them stalled or was presumed dead, never
//! changes a byte of the final reports.

use hetsched::core::{load_manifest_records, replay_records, summarise_manifest};
use hetsched::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// 3 algorithms × 2 seed kinds × 2 replicates = 12 cells.
fn tiny_spec(rng_seed: u64) -> CampaignSpec {
    let base = ExperimentConfig::builder(DatasetId::One)
        .tasks(20)
        .population(8)
        .snapshots(vec![2, 4])
        .seeds(vec![SeedKind::MinEnergy, SeedKind::Random])
        .rng_seed(rng_seed)
        .parallel(false)
        .build()
        .expect("tiny config is consistent");
    CampaignSpec::builder(base)
        .algorithms(vec![Algorithm::Nsga2, Algorithm::Spea2, Algorithm::Moead])
        .replicates(2)
        .build()
        .expect("tiny grid is consistent")
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hetsched-distributed-{}-{tag}.jsonl",
        std::process::id()
    ))
}

fn report_json(outcome: &CampaignOutcome) -> String {
    serde_json::to_string(&outcome.reports).expect("reports serialise")
}

fn now_s() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

#[test]
fn racing_workers_merge_byte_identically_to_a_solo_run() {
    let spec = tiny_spec(0xD157);
    let solo = Campaign::new(spec.clone()).run(None).unwrap();
    assert!(solo.is_complete());
    let solo_json = report_json(&solo);

    let manifest = Arc::new(scratch("race"));
    let _ = std::fs::remove_file(&*manifest);

    // Three workers race the same 12-cell grid through one manifest.
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let spec = spec.clone();
            let manifest = Arc::clone(&manifest);
            std::thread::spawn(move || {
                Worker::new(Campaign::new(spec), format!("w{i}"))
                    .lease_ttl(Duration::from_secs(30))
                    .poll_interval(Duration::from_millis(5))
                    .run(&manifest)
                    .unwrap()
            })
        })
        .collect();
    let outcomes: Vec<WorkerOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Work is partitioned: every cell ran exactly once, nothing was
    // stolen or fenced (all workers stayed healthy), and every worker
    // drained to the same complete, byte-identical merged outcome.
    assert_eq!(outcomes.iter().map(|o| o.executed).sum::<usize>(), 12);
    for o in &outcomes {
        assert_eq!(o.stolen, 0);
        assert_eq!(o.fenced, 0);
        assert!(o.outcome.is_complete());
        assert_eq!(report_json(&o.outcome), solo_json);
    }

    // A fourth, late worker replays everything and executes nothing.
    let late = Worker::new(Campaign::new(spec), "late")
        .run(&manifest)
        .unwrap();
    assert_eq!(late.executed, 0);
    assert_eq!(report_json(&late.outcome), solo_json);

    // The per-worker summary accounts for every cell exactly once.
    let (fingerprint, records) = load_manifest_records(&manifest).unwrap().unwrap();
    let view = replay_records(&records);
    let summary = summarise_manifest(fingerprint, &view);
    let _ = std::fs::remove_file(&*manifest);
    assert_eq!(summary.workers.iter().map(|w| w.cells).sum::<usize>(), 12);
    for w in &summary.workers {
        assert!(
            ["w0", "w1", "w2"].contains(&w.worker.as_str()),
            "{}",
            w.worker
        );
        assert_eq!(w.stolen, 0);
        assert_eq!(w.fenced, 0);
    }
}

#[test]
fn a_worker_takes_over_expired_leases_and_reports_do_not_drift() {
    let spec = tiny_spec(0xDEAD);
    let solo = Campaign::new(spec.clone()).run(None).unwrap();
    let solo_json = report_json(&solo);

    let manifest = scratch("steal");
    let _ = std::fs::remove_file(&manifest);

    // A worker acquired two cells and then died without releasing: its
    // leases sit in the manifest with deadlines already in the past.
    let cells = spec.cells();
    {
        let store = LocalManifestStore::open(&manifest, &spec.fingerprint(), 1).unwrap();
        let _lock = store.lock().unwrap();
        for &cell in &cells[..2] {
            store
                .append_lease(&LeaseRecord::new(
                    cell,
                    "zombie",
                    1,
                    LeaseAction::Acquire,
                    now_s() - 10.0,
                ))
                .unwrap();
        }
        store.sync().unwrap();
    }

    let survivor = Worker::new(Campaign::new(spec), "survivor")
        .lease_ttl(Duration::from_secs(30))
        .poll_interval(Duration::from_millis(5))
        .run(&manifest)
        .unwrap();

    assert_eq!(survivor.executed, 12, "the survivor ran the whole grid");
    assert_eq!(survivor.stolen, 2, "both zombie leases were taken over");
    assert!(survivor.outcome.is_complete());
    assert_eq!(report_json(&survivor.outcome), solo_json);

    // The takeover is visible in the per-worker summary.
    let (fingerprint, records) = load_manifest_records(&manifest).unwrap().unwrap();
    let view = replay_records(&records);
    let summary = summarise_manifest(fingerprint, &view);
    let _ = std::fs::remove_file(&manifest);
    let survivor_row = summary
        .workers
        .iter()
        .find(|w| w.worker == "survivor")
        .expect("survivor is summarised");
    assert_eq!(survivor_row.cells, 12);
    assert_eq!(survivor_row.stolen, 2);
}

#[test]
fn a_fenced_result_is_dropped_at_merge_and_the_cell_reruns() {
    let spec = tiny_spec(0xFE2CE);
    let solo = Campaign::new(spec.clone()).run(None).unwrap();
    let solo_json = report_json(&solo);

    let manifest = scratch("fence");
    let _ = std::fs::remove_file(&manifest);
    let cells = spec.cells();
    let contested = cells[0];

    // A zombie held epoch 1, was presumed dead, and the cell was
    // re-leased at epoch 2 (that lease has lapsed too by now). The
    // zombie then wakes up and appends a poisoned result under its
    // superseded epoch — it must never merge.
    {
        let store = LocalManifestStore::open(&manifest, &spec.fingerprint(), 1).unwrap();
        let _lock = store.lock().unwrap();
        store
            .append_lease(&LeaseRecord::new(
                contested,
                "zombie",
                1,
                LeaseAction::Acquire,
                now_s() - 20.0,
            ))
            .unwrap();
        store
            .append_lease(&LeaseRecord::new(
                contested,
                "survivor",
                2,
                LeaseAction::Acquire,
                now_s() - 10.0,
            ))
            .unwrap();
        store
            .append_cell(&CellRecord {
                cell: contested,
                run: None,
                error: Some("zombie artifact".to_string()),
                outcome: CellOutcome::Poisoned,
                attempts: 1,
                duration_s: 0.0,
                worker: Some("zombie".to_string()),
                epoch: Some(1),
            })
            .unwrap();
        store.sync().unwrap();
    }

    // Replay alone already fences the stale append.
    let (_, records) = load_manifest_records(&manifest).unwrap().unwrap();
    let view = replay_records(&records);
    assert!(view.cells.is_empty(), "the stale append must not merge");
    assert_eq!(view.fenced.get("zombie"), Some(&1));

    // A healthy worker finishes the campaign: the contested cell is
    // re-leased at epoch 3 (a steal — epoch 2 was never released) and
    // re-run, and the final reports never see the zombie artifact.
    let survivor = Worker::new(Campaign::new(spec), "survivor")
        .lease_ttl(Duration::from_secs(30))
        .poll_interval(Duration::from_millis(5))
        .run(&manifest)
        .unwrap();
    let _ = std::fs::remove_file(&manifest);
    assert!(survivor.outcome.is_complete());
    assert_eq!(survivor.executed, 12);
    assert_eq!(survivor.stolen, 1);
    assert_eq!(report_json(&survivor.outcome), solo_json);
}
