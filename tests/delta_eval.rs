//! Differential tests for the incremental (delta) evaluation path.
//!
//! Strategy: a problem small enough to brute-force — 5 tasks on a
//! 3-machine subset of the real dataset, 3^5 assignments x 5! global
//! orders — gives the *true* Pareto front by enumeration. Each engine
//! (NSGA-II, MOEA/D, SPEA2) is then run twice from the same seed: once on
//! the tracked [`AllocationProblem`] (move-tracked operators, skip +
//! delta-evaluation fast paths) and once on a `FullEval` wrapper that
//! delegates the same genetic operators but keeps the default untracked
//! `Problem` methods, forcing every child through the reference
//! evaluator. The two runs must produce bit-identical populations and
//! identical per-generation observer traces (hypervolume, ideal corner,
//! evaluation counts), and every front point must be on the enumerated
//! true front.
//!
//! The whole suite runs with and without the `delta-eval` cargo feature
//! (CI covers both); the wrapper-vs-tracked comparison is meaningful in
//! both configurations because the skip path is engine-level.

use hetsched::alloc::AllocationProblem;
use hetsched::core::{JournalObserver, RunJournal};
use hetsched::data::{real_system, HcSystem, MachineId, MachineInventory};
use hetsched::heuristics::SeedKind;
use hetsched::moea::{
    moead_observed, pareto_front, spea2_observed, GenerationStats, Individual, MoeadConfig, Nsga2,
    Nsga2Config, Objectives, Problem, Spea2Config, StatsLog, Variation,
};
use hetsched::sim::{Allocation, Evaluator, TaskMove};
use hetsched::workload::{Trace, TraceGenerator};
use rand::RngCore;

const TASKS: usize = 5;

fn tiny_system() -> HcSystem {
    // One machine each of the first three types; every task type is
    // feasible everywhere (the real ETC matrix is fully finite).
    real_system()
        .with_inventory(MachineInventory::from_counts(vec![1, 1, 1, 0, 0, 0, 0, 0, 0]).unwrap())
        .unwrap()
}

fn tiny_trace(system: &HcSystem) -> Trace {
    use rand::SeedableRng;
    TraceGenerator::new(TASKS, 400.0, system.task_type_count())
        .generate(&mut rand::rngs::StdRng::seed_from_u64(42))
        .unwrap()
}

/// Forces the reference path: delegates the allocation problem's genetic
/// operators verbatim but keeps the trait's default *untracked* variation
/// methods, so engines see `Variation::Unknown` and fully evaluate every
/// child. The RNG draws are identical to the tracked problem's by the
/// tracked-operator contract.
struct FullEval<'a>(AllocationProblem<'a>);

impl<'a> Problem for FullEval<'a> {
    type Genome = Allocation;
    type Evaluator = Evaluator<'a>;
    type Move = TaskMove;

    fn evaluator(&self) -> Self::Evaluator {
        self.0.evaluator()
    }

    fn evaluate(&self, ev: &mut Self::Evaluator, genome: &Allocation) -> Objectives {
        self.0.evaluate(ev, genome)
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Allocation {
        self.0.random_genome(rng)
    }

    fn crossover(
        &self,
        rng: &mut dyn RngCore,
        a: &Allocation,
        b: &Allocation,
    ) -> (Allocation, Allocation) {
        self.0.crossover(rng, a, b)
    }

    fn mutate(&self, rng: &mut dyn RngCore, genome: &mut Allocation) {
        self.0.mutate(rng, genome)
    }
}

/// The tracked operators must draw from the RNG exactly as the untracked
/// ones — otherwise the two runs diverge for trajectory reasons, not
/// evaluation reasons, and the differential tests test nothing.
#[test]
fn tracked_operators_preserve_rng_stream() {
    use rand::SeedableRng;
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(5);
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(5);
    let (p, q) = (
        tracked.random_genome(&mut rng_a),
        full.random_genome(&mut rng_b),
    );
    assert_eq!(p, q);
    let (r, s) = (
        tracked.random_genome(&mut rng_a),
        full.random_genome(&mut rng_b),
    );
    for _ in 0..50 {
        let ((c1, v1), (d1, w1)) = tracked.crossover_tracked(&mut rng_a, &p, &r);
        let ((c2, _), (d2, _)) = full.crossover_tracked(&mut rng_b, &q, &s);
        assert_eq!(c1, c2);
        assert_eq!(d1, d2);
        // The tracked moves must reconstruct the children exactly.
        for (child, base, var) in [(&c1, &p, v1), (&d1, &r, w1)] {
            let Variation::Moves(moves) = var else {
                panic!("allocation crossover must track its moves");
            };
            let mut rebuilt = base.clone();
            for mv in &moves {
                rebuilt.machine[mv.task as usize] = mv.machine;
                rebuilt.order[mv.task as usize] = mv.order;
            }
            assert_eq!(&rebuilt, child);
        }
        let (mut m1, mut m2) = (c1.clone(), c1.clone());
        let pre_mutation = c1;
        let mut var = Variation::Moves(Vec::new());
        tracked.mutate_tracked(&mut rng_a, &mut m1, &mut var);
        full.mutate(&mut rng_b, &mut m2);
        assert_eq!(m1, m2);
        let Variation::Moves(moves) = var else {
            panic!("allocation mutation must keep tracking");
        };
        let mut rebuilt = pre_mutation;
        for mv in &moves {
            rebuilt.machine[mv.task as usize] = mv.machine;
            rebuilt.order[mv.task as usize] = mv.order;
        }
        assert_eq!(rebuilt, m1);
    }
}

/// Enumerates every (assignment, global order) pair and returns all
/// distinct objective vectors plus the true Pareto front among them.
fn brute_force(sys: &HcSystem, trace: &Trace) -> (Vec<Objectives>, Vec<Objectives>) {
    let machines = sys.machine_count();
    let mut ev = Evaluator::new(sys, trace);
    let mut all: Vec<Objectives> = Vec::new();
    let mut perm: Vec<u32> = (0..TASKS as u32).collect();
    let mut perms: Vec<Vec<u32>> = Vec::new();
    heap_permutations(&mut perm, TASKS, &mut perms);
    for code in 0..machines.pow(TASKS as u32) {
        let mut c = code;
        let machine: Vec<MachineId> = (0..TASKS)
            .map(|_| {
                let m = MachineId((c % machines) as u32);
                c /= machines;
                m
            })
            .collect();
        for perm in &perms {
            // order[task] = rank of the task in this execution sequence.
            let mut order = vec![0u32; TASKS];
            for (rank, &task) in perm.iter().enumerate() {
                order[task as usize] = rank as u32;
            }
            let outcome = ev.evaluate(&Allocation {
                machine: machine.clone(),
                order,
            });
            all.push([-outcome.utility, outcome.energy]);
        }
    }
    let front = true_front(&all);
    (all, front)
}

fn heap_permutations(items: &mut Vec<u32>, k: usize, out: &mut Vec<Vec<u32>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permutations(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Nondominated subset (minimisation, both objectives), deduplicated
/// bitwise and sorted for comparison.
fn true_front(points: &[Objectives]) -> Vec<Objectives> {
    let dominated = |p: &Objectives, q: &Objectives| {
        // q dominates p
        q[0] <= p[0] && q[1] <= p[1] && (q[0] < p[0] || q[1] < p[1])
    };
    let mut front: Vec<Objectives> = points
        .iter()
        .filter(|p| !points.iter().any(|q| dominated(p, q)))
        .copied()
        .collect();
    front.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
    front.dedup_by(|a, b| bits(*a) == bits(*b));
    front
}

fn bits(p: Objectives) -> [u64; 2] {
    [p[0].to_bits(), p[1].to_bits()]
}

fn sorted_front_bits(population: &[Individual<Allocation>]) -> Vec<[u64; 2]> {
    let mut front: Vec<[u64; 2]> = pareto_front(population)
        .iter()
        .map(|ind| bits(ind.objectives))
        .collect();
    front.sort_unstable();
    front.dedup();
    front
}

fn assert_identical_populations(
    tracked: &[Individual<Allocation>],
    full: &[Individual<Allocation>],
    engine: &str,
) {
    assert_eq!(tracked.len(), full.len(), "{engine}: population size");
    for (i, (t, f)) in tracked.iter().zip(full).enumerate() {
        assert_eq!(t.genome, f.genome, "{engine}: genome {i} diverged");
        assert_eq!(
            bits(t.objectives),
            bits(f.objectives),
            "{engine}: objectives of genome {i} diverged: {:?} vs {:?}",
            t.objectives,
            f.objectives
        );
    }
}

/// Compares everything in the per-generation traces except wall-clock
/// timings (which legitimately differ between runs).
fn assert_identical_traces(tracked: &[GenerationStats], full: &[GenerationStats], engine: &str) {
    assert_eq!(tracked.len(), full.len(), "{engine}: trace length");
    for (t, f) in tracked.iter().zip(full) {
        assert_eq!(t.generation, f.generation, "{engine}: generation index");
        assert_eq!(
            t.front_sizes, f.front_sizes,
            "{engine}: front sizes at generation {}",
            t.generation
        );
        assert_eq!(
            [t.ideal[0].to_bits(), t.ideal[1].to_bits()],
            [f.ideal[0].to_bits(), f.ideal[1].to_bits()],
            "{engine}: ideal corner at generation {}",
            t.generation
        );
        assert_eq!(
            t.hypervolume.map(f64::to_bits),
            f.hypervolume.map(f64::to_bits),
            "{engine}: hypervolume at generation {}",
            t.generation
        );
        assert_eq!(
            t.evaluations, f.evaluations,
            "{engine}: evaluation count at generation {}",
            t.generation
        );
    }
}

/// Hypervolume reference dominated by every enumerated point: utility is
/// negated (so objective 0 is negative), energy bounded by the worst
/// enumerated assignment.
fn hv_reference(all: &[Objectives]) -> [f64; 2] {
    let max_energy = all.iter().map(|p| p[1]).fold(0.0f64, f64::max);
    [1.0, max_energy + 1.0]
}

#[test]
fn nsga2_delta_and_full_runs_are_bit_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, front) = brute_force(&sys, &trace);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = Nsga2Config {
        population: 24,
        generations: 60,
        mutation_rate: 0.5,
        parallel: false,
        hv_reference: Some(hv_reference(&all)),
        ..Default::default()
    };
    let mut log_t = StatsLog::default();
    let mut log_f = StatsLog::default();
    let pop_t =
        Nsga2::new(&tracked, config).run_observed(Vec::new(), 11, &[], |_, _| {}, &mut log_t);
    let pop_f = Nsga2::new(&full, config).run_observed(Vec::new(), 11, &[], |_, _| {}, &mut log_f);
    assert_identical_populations(&pop_t, &pop_f, "nsga2");
    assert_identical_traces(&log_t.records, &log_f.records, "nsga2");

    // Every front point the engine reports exists in the enumerated space
    // and is on the true Pareto front; on a problem this small NSGA-II
    // recovers the complete front.
    let engine_front = sorted_front_bits(&pop_t);
    let mut true_bits: Vec<[u64; 2]> = front.iter().map(|&p| bits(p)).collect();
    true_bits.sort_unstable();
    assert_eq!(
        engine_front, true_bits,
        "engine front must equal the brute-forced true front"
    );
}

#[test]
fn nsga2_parallel_delta_and_full_runs_are_bit_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = Nsga2Config {
        population: 16,
        generations: 25,
        mutation_rate: 0.5,
        parallel: true,
        hv_reference: None,
        ..Default::default()
    };
    let pop_t = Nsga2::new(&tracked, config).run(Vec::new(), 23);
    let pop_f = Nsga2::new(&full, config).run(Vec::new(), 23);
    assert_identical_populations(&pop_t, &pop_f, "nsga2-parallel");
}

#[test]
fn moead_delta_and_full_runs_are_bit_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, front) = brute_force(&sys, &trace);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = MoeadConfig {
        subproblems: 24,
        neighbours: 6,
        mutation_rate: 0.5,
        generations: 60,
        hv_reference: Some(hv_reference(&all)),
    };
    let mut log_t = StatsLog::default();
    let mut log_f = StatsLog::default();
    let pop_t = moead_observed(&tracked, config, Vec::new(), 11, &[], |_, _| {}, &mut log_t);
    let pop_f = moead_observed(&full, config, Vec::new(), 11, &[], |_, _| {}, &mut log_f);
    assert_identical_populations(&pop_t, &pop_f, "moead");
    assert_identical_traces(&log_t.records, &log_f.records, "moead");

    // MOEA/D's weighted decomposition need not recover the full front on
    // every instance, but whatever it reports must be truly optimal.
    let true_bits: Vec<[u64; 2]> = front.iter().map(|&p| bits(p)).collect();
    for point in sorted_front_bits(&pop_t) {
        assert!(
            true_bits.contains(&point),
            "moead front point {point:?} is not on the true Pareto front"
        );
    }
}

#[test]
fn spea2_delta_and_full_runs_are_bit_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, front) = brute_force(&sys, &trace);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = Spea2Config {
        population: 24,
        archive: 24,
        mutation_rate: 0.5,
        generations: 60,
        hv_reference: Some(hv_reference(&all)),
    };
    let mut log_t = StatsLog::default();
    let mut log_f = StatsLog::default();
    let pop_t = spea2_observed(&tracked, config, Vec::new(), 11, &[], |_, _| {}, &mut log_t);
    let pop_f = spea2_observed(&full, config, Vec::new(), 11, &[], |_, _| {}, &mut log_f);
    assert_identical_populations(&pop_t, &pop_f, "spea2");
    assert_identical_traces(&log_t.records, &log_f.records, "spea2");

    let true_bits: Vec<[u64; 2]> = front.iter().map(|&p| bits(p)).collect();
    for point in sorted_front_bits(&pop_t) {
        assert!(
            true_bits.contains(&point),
            "spea2 front point {point:?} is not on the true Pareto front"
        );
    }
}

/// The persisted journal (what `hetsched report` reads) carries the same
/// hypervolume trace whichever evaluation path produced it.
#[test]
fn run_journal_hypervolume_traces_are_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, _) = brute_force(&sys, &trace);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = Nsga2Config {
        population: 16,
        generations: 30,
        mutation_rate: 0.5,
        parallel: false,
        hv_reference: Some(hv_reference(&all)),
        ..Default::default()
    };
    let dir = std::env::temp_dir();
    let path_t = dir.join("hetsched-delta-eval-journal-tracked.jsonl");
    let path_f = dir.join("hetsched-delta-eval-journal-full.jsonl");
    {
        let journal = RunJournal::create(&path_t).unwrap();
        let mut obs = JournalObserver::new(&journal, SeedKind::Random, 0);
        Nsga2::new(&tracked, config).run_observed(Vec::new(), 31, &[], |_, _| {}, &mut obs);
    }
    {
        let journal = RunJournal::create(&path_f).unwrap();
        let mut obs = JournalObserver::new(&journal, SeedKind::Random, 0);
        Nsga2::new(&full, config).run_observed(Vec::new(), 31, &[], |_, _| {}, &mut obs);
    }
    let rec_t = RunJournal::read(&path_t).unwrap();
    let rec_f = RunJournal::read(&path_f).unwrap();
    let _ = std::fs::remove_file(&path_t);
    let _ = std::fs::remove_file(&path_f);
    assert_eq!(rec_t.len(), rec_f.len());
    assert!(!rec_t.is_empty());
    for (t, f) in rec_t.iter().zip(&rec_f) {
        assert_eq!(t.population, f.population);
        assert_eq!(t.stream, f.stream);
        assert_eq!(
            t.stats.hypervolume.map(f64::to_bits),
            f.stats.hypervolume.map(f64::to_bits),
            "journalled hypervolume diverged at generation {}",
            t.stats.generation
        );
    }
}
