//! Differential tests for the incremental (delta) evaluation path.
//!
//! Strategy: a problem small enough to brute-force — 5 tasks on a
//! 3-machine subset of the real dataset, 3^5 assignments x 5! global
//! orders — gives the *true* Pareto front by enumeration. Each engine
//! (NSGA-II, MOEA/D, SPEA2) is then run twice from the same seed: once on
//! the tracked [`AllocationProblem`] (move-tracked operators, skip +
//! delta-evaluation fast paths) and once on a `FullEval` wrapper that
//! delegates the same genetic operators but keeps the default untracked
//! `Problem` methods, forcing every child through the reference
//! evaluator. The two runs must produce bit-identical populations and
//! identical per-generation observer traces (hypervolume, ideal corner,
//! evaluation counts), and every front point must be on the enumerated
//! true front.
//!
//! The whole suite runs with and without the `delta-eval` cargo feature
//! (CI covers both); the wrapper-vs-tracked comparison is meaningful in
//! both configurations because the skip path is engine-level.

use hetsched::alloc::AllocationProblem;
use hetsched::core::{JournalObserver, RunJournal};
use hetsched::data::{real_system, HcSystem, MachineId, MachineInventory};
use hetsched::heuristics::SeedKind;
use hetsched::moea::{
    moead_observed, pareto_front, spea2_observed, GenerationStats, Individual, MoeadConfig, Nsga2,
    Nsga2Config, Objectives, Problem, Spea2Config, StatsLog, Variation,
};
use hetsched::sim::{Allocation, BatchEvaluator, BatchJob, Evaluator, TaskMove};
use hetsched::workload::{Trace, TraceGenerator};
use rand::RngCore;

const TASKS: usize = 5;

fn tiny_system() -> HcSystem {
    // One machine each of the first three types; every task type is
    // feasible everywhere (the real ETC matrix is fully finite).
    real_system()
        .with_inventory(MachineInventory::from_counts(vec![1, 1, 1, 0, 0, 0, 0, 0, 0]).unwrap())
        .unwrap()
}

fn tiny_trace(system: &HcSystem) -> Trace {
    use rand::SeedableRng;
    TraceGenerator::new(TASKS, 400.0, system.task_type_count())
        .generate(&mut rand::rngs::StdRng::seed_from_u64(42))
        .unwrap()
}

/// Forces the reference path: delegates the allocation problem's genetic
/// operators verbatim but keeps the trait's default *untracked* variation
/// methods, so engines see `Variation::Unknown` and fully evaluate every
/// child. It also keeps the default (per-item) `evaluate_batch`, so a run
/// against it is both unbatched *and* fully evaluated. The RNG draws are
/// identical to the tracked problem's by the tracked-operator contract.
struct FullEval<'a>(AllocationProblem<'a>);

impl<'a> Problem for FullEval<'a> {
    type Genome = Allocation;
    type Evaluator = BatchEvaluator<'a>;
    type Move = TaskMove;

    fn evaluator(&self) -> Self::Evaluator {
        self.0.evaluator()
    }

    fn evaluate(&self, ev: &mut Self::Evaluator, genome: &Allocation) -> Objectives {
        self.0.evaluate(ev, genome)
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Allocation {
        self.0.random_genome(rng)
    }

    fn crossover(
        &self,
        rng: &mut dyn RngCore,
        a: &Allocation,
        b: &Allocation,
    ) -> (Allocation, Allocation) {
        self.0.crossover(rng, a, b)
    }

    fn mutate(&self, rng: &mut dyn RngCore, genome: &mut Allocation) {
        self.0.mutate(rng, genome)
    }
}

/// Tracked operators and incremental evaluation exactly as the real
/// problem, but the trait's default *per-item* `evaluate_batch` — the
/// control that isolates population-level batching. A run against this
/// wrapper takes the same skip/delta/full decisions as one against
/// [`AllocationProblem`]; only the batching differs, so any divergence is
/// the batch path's fault.
struct UnbatchedAlloc<'a>(AllocationProblem<'a>);

impl<'a> Problem for UnbatchedAlloc<'a> {
    type Genome = Allocation;
    type Evaluator = BatchEvaluator<'a>;
    type Move = TaskMove;

    fn evaluator(&self) -> Self::Evaluator {
        self.0.evaluator()
    }

    fn evaluate(&self, ev: &mut Self::Evaluator, genome: &Allocation) -> Objectives {
        self.0.evaluate(ev, genome)
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Allocation {
        self.0.random_genome(rng)
    }

    fn crossover(
        &self,
        rng: &mut dyn RngCore,
        a: &Allocation,
        b: &Allocation,
    ) -> (Allocation, Allocation) {
        self.0.crossover(rng, a, b)
    }

    fn mutate(&self, rng: &mut dyn RngCore, genome: &mut Allocation) {
        self.0.mutate(rng, genome)
    }

    #[allow(clippy::type_complexity)]
    fn crossover_tracked(
        &self,
        rng: &mut dyn RngCore,
        a: &Allocation,
        b: &Allocation,
    ) -> (
        (Allocation, Variation<TaskMove>),
        (Allocation, Variation<TaskMove>),
    ) {
        self.0.crossover_tracked(rng, a, b)
    }

    fn mutate_tracked(
        &self,
        rng: &mut dyn RngCore,
        genome: &mut Allocation,
        variation: &mut Variation<TaskMove>,
    ) {
        self.0.mutate_tracked(rng, genome, variation)
    }

    fn evaluate_moves(
        &self,
        ev: &mut Self::Evaluator,
        base: &Allocation,
        child: &Allocation,
        moves: &[TaskMove],
    ) -> Objectives {
        self.0.evaluate_moves(ev, base, child, moves)
    }
}

/// The tracked operators must draw from the RNG exactly as the untracked
/// ones — otherwise the two runs diverge for trajectory reasons, not
/// evaluation reasons, and the differential tests test nothing.
#[test]
fn tracked_operators_preserve_rng_stream() {
    use rand::SeedableRng;
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(5);
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(5);
    let (p, q) = (
        tracked.random_genome(&mut rng_a),
        full.random_genome(&mut rng_b),
    );
    assert_eq!(p, q);
    let (r, s) = (
        tracked.random_genome(&mut rng_a),
        full.random_genome(&mut rng_b),
    );
    for _ in 0..50 {
        let ((c1, v1), (d1, w1)) = tracked.crossover_tracked(&mut rng_a, &p, &r);
        let ((c2, _), (d2, _)) = full.crossover_tracked(&mut rng_b, &q, &s);
        assert_eq!(c1, c2);
        assert_eq!(d1, d2);
        // The tracked moves must reconstruct the children exactly.
        for (child, base, var) in [(&c1, &p, v1), (&d1, &r, w1)] {
            let Variation::Moves(moves) = var else {
                panic!("allocation crossover must track its moves");
            };
            let mut rebuilt = base.clone();
            for mv in &moves {
                rebuilt.machine[mv.task as usize] = mv.machine;
                rebuilt.order[mv.task as usize] = mv.order;
            }
            assert_eq!(&rebuilt, child);
        }
        let (mut m1, mut m2) = (c1.clone(), c1.clone());
        let pre_mutation = c1;
        let mut var = Variation::Moves(Vec::new());
        tracked.mutate_tracked(&mut rng_a, &mut m1, &mut var);
        full.mutate(&mut rng_b, &mut m2);
        assert_eq!(m1, m2);
        let Variation::Moves(moves) = var else {
            panic!("allocation mutation must keep tracking");
        };
        let mut rebuilt = pre_mutation;
        for mv in &moves {
            rebuilt.machine[mv.task as usize] = mv.machine;
            rebuilt.order[mv.task as usize] = mv.order;
        }
        assert_eq!(rebuilt, m1);
    }
}

/// Enumerates every (assignment, global order) pair and returns all
/// distinct objective vectors plus the true Pareto front among them.
fn brute_force(sys: &HcSystem, trace: &Trace) -> (Vec<Objectives>, Vec<Objectives>) {
    let machines = sys.machine_count();
    let mut ev = Evaluator::new(sys, trace);
    let mut all: Vec<Objectives> = Vec::new();
    let mut perm: Vec<u32> = (0..TASKS as u32).collect();
    let mut perms: Vec<Vec<u32>> = Vec::new();
    heap_permutations(&mut perm, TASKS, &mut perms);
    for code in 0..machines.pow(TASKS as u32) {
        let mut c = code;
        let machine: Vec<MachineId> = (0..TASKS)
            .map(|_| {
                let m = MachineId((c % machines) as u32);
                c /= machines;
                m
            })
            .collect();
        for perm in &perms {
            // order[task] = rank of the task in this execution sequence.
            let mut order = vec![0u32; TASKS];
            for (rank, &task) in perm.iter().enumerate() {
                order[task as usize] = rank as u32;
            }
            let outcome = ev.evaluate(&Allocation {
                machine: machine.clone(),
                order,
            });
            all.push([-outcome.utility, outcome.energy]);
        }
    }
    let front = true_front(&all);
    (all, front)
}

fn heap_permutations(items: &mut Vec<u32>, k: usize, out: &mut Vec<Vec<u32>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permutations(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Nondominated subset (minimisation, both objectives), deduplicated
/// bitwise and sorted for comparison.
fn true_front(points: &[Objectives]) -> Vec<Objectives> {
    let dominated = |p: &Objectives, q: &Objectives| {
        // q dominates p
        q[0] <= p[0] && q[1] <= p[1] && (q[0] < p[0] || q[1] < p[1])
    };
    let mut front: Vec<Objectives> = points
        .iter()
        .filter(|p| !points.iter().any(|q| dominated(p, q)))
        .copied()
        .collect();
    front.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
    front.dedup_by(|a, b| bits(*a) == bits(*b));
    front
}

fn bits(p: Objectives) -> [u64; 2] {
    [p[0].to_bits(), p[1].to_bits()]
}

fn sorted_front_bits(population: &[Individual<Allocation>]) -> Vec<[u64; 2]> {
    let mut front: Vec<[u64; 2]> = pareto_front(population)
        .iter()
        .map(|ind| bits(ind.objectives))
        .collect();
    front.sort_unstable();
    front.dedup();
    front
}

fn assert_identical_populations(
    tracked: &[Individual<Allocation>],
    full: &[Individual<Allocation>],
    engine: &str,
) {
    assert_eq!(tracked.len(), full.len(), "{engine}: population size");
    for (i, (t, f)) in tracked.iter().zip(full).enumerate() {
        assert_eq!(t.genome, f.genome, "{engine}: genome {i} diverged");
        assert_eq!(
            bits(t.objectives),
            bits(f.objectives),
            "{engine}: objectives of genome {i} diverged: {:?} vs {:?}",
            t.objectives,
            f.objectives
        );
    }
}

/// Compares everything in the per-generation traces except wall-clock
/// timings (which legitimately differ between runs).
fn assert_identical_traces(tracked: &[GenerationStats], full: &[GenerationStats], engine: &str) {
    assert_eq!(tracked.len(), full.len(), "{engine}: trace length");
    for (t, f) in tracked.iter().zip(full) {
        assert_eq!(t.generation, f.generation, "{engine}: generation index");
        assert_eq!(
            t.front_sizes, f.front_sizes,
            "{engine}: front sizes at generation {}",
            t.generation
        );
        assert_eq!(
            [t.ideal[0].to_bits(), t.ideal[1].to_bits()],
            [f.ideal[0].to_bits(), f.ideal[1].to_bits()],
            "{engine}: ideal corner at generation {}",
            t.generation
        );
        assert_eq!(
            t.hypervolume.map(f64::to_bits),
            f.hypervolume.map(f64::to_bits),
            "{engine}: hypervolume at generation {}",
            t.generation
        );
        assert_eq!(
            t.evaluations, f.evaluations,
            "{engine}: evaluation count at generation {}",
            t.generation
        );
    }
}

/// Hypervolume reference dominated by every enumerated point: utility is
/// negated (so objective 0 is negative), energy bounded by the worst
/// enumerated assignment.
fn hv_reference(all: &[Objectives]) -> [f64; 2] {
    let max_energy = all.iter().map(|p| p[1]).fold(0.0f64, f64::max);
    [1.0, max_energy + 1.0]
}

#[test]
fn nsga2_delta_and_full_runs_are_bit_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, front) = brute_force(&sys, &trace);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = Nsga2Config {
        population: 24,
        generations: 60,
        mutation_rate: 0.5,
        parallel: false,
        hv_reference: Some(hv_reference(&all)),
        ..Default::default()
    };
    let mut log_t = StatsLog::default();
    let mut log_f = StatsLog::default();
    let pop_t =
        Nsga2::new(&tracked, config).run_observed(Vec::new(), 11, &[], |_, _| {}, &mut log_t);
    let pop_f = Nsga2::new(&full, config).run_observed(Vec::new(), 11, &[], |_, _| {}, &mut log_f);
    assert_identical_populations(&pop_t, &pop_f, "nsga2");
    assert_identical_traces(&log_t.records, &log_f.records, "nsga2");

    // Every front point the engine reports exists in the enumerated space
    // and is on the true Pareto front; on a problem this small NSGA-II
    // recovers the complete front.
    let engine_front = sorted_front_bits(&pop_t);
    let mut true_bits: Vec<[u64; 2]> = front.iter().map(|&p| bits(p)).collect();
    true_bits.sort_unstable();
    assert_eq!(
        engine_front, true_bits,
        "engine front must equal the brute-forced true front"
    );
}

#[test]
fn nsga2_parallel_delta_and_full_runs_are_bit_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = Nsga2Config {
        population: 16,
        generations: 25,
        mutation_rate: 0.5,
        parallel: true,
        hv_reference: None,
        ..Default::default()
    };
    let pop_t = Nsga2::new(&tracked, config).run(Vec::new(), 23);
    let pop_f = Nsga2::new(&full, config).run(Vec::new(), 23);
    assert_identical_populations(&pop_t, &pop_f, "nsga2-parallel");
}

#[test]
fn traced_delta_run_is_bit_identical_to_untraced() {
    // Arming the span sink at full verbosity must not move the delta
    // path's trajectory: spans read clocks, never the RNG streams the
    // skip/delta decisions and genetic operators draw from.
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let tracked = AllocationProblem::new(&sys, &trace);
    let config = Nsga2Config {
        population: 16,
        generations: 25,
        mutation_rate: 0.5,
        parallel: true,
        hv_reference: None,
        ..Default::default()
    };
    let untraced = Nsga2::new(&tracked, config).run(Vec::new(), 29);

    let path =
        std::env::temp_dir().join(format!("hetsched-delta-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let writer = std::sync::Arc::new(hetsched::core::TraceWriter::create(&path).unwrap());
    hetsched::core::install_tracing(tracing::Level::TRACE, Some(writer)).unwrap();
    let traced = Nsga2::new(&tracked, config).run(Vec::new(), 29);
    tracing::flush_span_sink();
    let spans = hetsched::core::read_trace(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_identical_populations(&untraced, &traced, "nsga2-traced");
    assert!(
        spans.iter().any(|s| s.name == "generation"),
        "the sink was armed but recorded no generation spans"
    );
}

#[test]
fn moead_delta_and_full_runs_are_bit_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, front) = brute_force(&sys, &trace);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = MoeadConfig {
        subproblems: 24,
        neighbours: 6,
        mutation_rate: 0.5,
        generations: 60,
        hv_reference: Some(hv_reference(&all)),
    };
    let mut log_t = StatsLog::default();
    let mut log_f = StatsLog::default();
    let pop_t = moead_observed(&tracked, config, Vec::new(), 11, &[], |_, _| {}, &mut log_t);
    let pop_f = moead_observed(&full, config, Vec::new(), 11, &[], |_, _| {}, &mut log_f);
    assert_identical_populations(&pop_t, &pop_f, "moead");
    assert_identical_traces(&log_t.records, &log_f.records, "moead");

    // MOEA/D's weighted decomposition need not recover the full front on
    // every instance, but whatever it reports must be truly optimal.
    let true_bits: Vec<[u64; 2]> = front.iter().map(|&p| bits(p)).collect();
    for point in sorted_front_bits(&pop_t) {
        assert!(
            true_bits.contains(&point),
            "moead front point {point:?} is not on the true Pareto front"
        );
    }
}

#[test]
fn spea2_delta_and_full_runs_are_bit_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, front) = brute_force(&sys, &trace);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = Spea2Config {
        population: 24,
        archive: 24,
        mutation_rate: 0.5,
        generations: 60,
        hv_reference: Some(hv_reference(&all)),
    };
    let mut log_t = StatsLog::default();
    let mut log_f = StatsLog::default();
    let pop_t = spea2_observed(&tracked, config, Vec::new(), 11, &[], |_, _| {}, &mut log_t);
    let pop_f = spea2_observed(&full, config, Vec::new(), 11, &[], |_, _| {}, &mut log_f);
    assert_identical_populations(&pop_t, &pop_f, "spea2");
    assert_identical_traces(&log_t.records, &log_f.records, "spea2");

    let true_bits: Vec<[u64; 2]> = front.iter().map(|&p| bits(p)).collect();
    for point in sorted_front_bits(&pop_t) {
        assert!(
            true_bits.contains(&point),
            "spea2 front point {point:?} is not on the true Pareto front"
        );
    }
}

/// Property test for [`BatchEvaluator`]: a random offspring population of
/// full, delta and skip jobs, evaluated batched (serial and parallel),
/// must be `total_cmp`-exact against one-at-a-time calls on a plain
/// [`Evaluator`] — on the real 9×5 system and the synthetic-50 scale-up.
#[test]
fn batch_evaluator_matches_single_shot_on_real_and_synthetic_systems() {
    use rand::Rng;
    use rand::SeedableRng;
    let real = real_system();
    let synthetic = real_system()
        .with_inventory(MachineInventory::from_counts(vec![6, 6, 6, 6, 6, 5, 5, 5, 5]).unwrap())
        .unwrap();
    for (label, sys, tasks) in [
        ("real-9x5", &real, 60usize),
        ("synthetic-50", &synthetic, 120),
    ] {
        let trace = TraceGenerator::new(tasks, 600.0, sys.task_type_count())
            .generate(&mut rand::rngs::StdRng::seed_from_u64(17))
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let random_alloc = |rng: &mut rand::rngs::StdRng| Allocation {
            machine: (0..tasks)
                .map(|_| hetsched::data::MachineId(rng.gen_range(0..sys.machine_count() as u32)))
                .collect(),
            order: (0..tasks).map(|_| rng.gen_range(0..10_000u32)).collect(),
        };
        let base = random_alloc(&mut rng);
        // An offspring population: full evaluations, single- and
        // multi-move deltas off one base, and explicit skips.
        let mut fulls: Vec<Allocation> = Vec::new();
        let mut deltas: Vec<(Allocation, Vec<TaskMove>)> = Vec::new();
        for i in 0..40 {
            if i % 3 == 0 {
                fulls.push(random_alloc(&mut rng));
            } else {
                let mut child = base.clone();
                let mut moves = Vec::new();
                for _ in 0..rng.gen_range(1..=3) {
                    let t = rng.gen_range(0..tasks);
                    let mv = TaskMove {
                        task: t as u32,
                        machine: hetsched::data::MachineId(
                            rng.gen_range(0..sys.machine_count() as u32),
                        ),
                        order: rng.gen_range(0..10_000),
                    };
                    child.machine[t] = mv.machine;
                    child.order[t] = mv.order;
                    moves.push(mv);
                }
                deltas.push((child, moves));
            }
        }
        // Reference: one-at-a-time on a single warm evaluator.
        let mut reference = Evaluator::new(sys, &trace);
        let mut expected: Vec<Option<(u64, u64, u64)>> = Vec::new();
        let mut jobs_spec: Vec<usize> = Vec::new(); // 0 = full, 1 = delta, 2 = skip
        let (mut fi, mut di) = (0usize, 0usize);
        for i in 0..40 {
            if i % 3 == 0 {
                let o = reference.evaluate(&fulls[fi]);
                expected.push(Some((
                    o.utility.to_bits(),
                    o.energy.to_bits(),
                    o.makespan.to_bits(),
                )));
                jobs_spec.push(0);
                fi += 1;
            } else {
                let (child, moves) = &deltas[di];
                #[cfg(feature = "delta-eval")]
                let o = reference.evaluate_delta(&base, child, moves);
                #[cfg(not(feature = "delta-eval"))]
                let o = {
                    let _ = moves;
                    reference.evaluate(child)
                };
                expected.push(Some((
                    o.utility.to_bits(),
                    o.energy.to_bits(),
                    o.makespan.to_bits(),
                )));
                jobs_spec.push(1);
                di += 1;
            }
            if i % 7 == 0 {
                expected.push(None);
                jobs_spec.push(2);
            }
        }
        // Batched, serial and parallel.
        for parallel in [false, true] {
            let mut batch = BatchEvaluator::new(sys, &trace);
            let (mut fi, mut di) = (0usize, 0usize);
            let jobs: Vec<BatchJob<'_>> = jobs_spec
                .iter()
                .map(|&kind| match kind {
                    0 => {
                        let job = BatchJob::Full(&fulls[fi]);
                        fi += 1;
                        job
                    }
                    1 => {
                        let (child, moves) = &deltas[di];
                        di += 1;
                        #[cfg(feature = "delta-eval")]
                        {
                            BatchJob::Delta {
                                base: &base,
                                child,
                                moves,
                            }
                        }
                        #[cfg(not(feature = "delta-eval"))]
                        {
                            let _ = moves;
                            BatchJob::Full(child)
                        }
                    }
                    _ => BatchJob::Skip,
                })
                .collect();
            let got = batch.evaluate_jobs(&jobs, parallel);
            assert_eq!(got.len(), expected.len());
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                match (g, e) {
                    (None, None) => {}
                    (Some(o), Some(bits)) => {
                        assert_eq!(
                            (
                                o.utility.to_bits(),
                                o.energy.to_bits(),
                                o.makespan.to_bits()
                            ),
                            *bits,
                            "{label} parallel={parallel}: job {i} diverged"
                        );
                    }
                    _ => panic!("{label} parallel={parallel}: job {i} skip mismatch"),
                }
            }
        }
    }
}

/// Each engine must walk a bit-identical trajectory whether offspring go
/// through [`AllocationProblem`]'s population-level batch path or the
/// trait's default per-item path (`UnbatchedAlloc`) — populations and
/// per-generation observer traces alike.
#[test]
fn engines_batched_and_unbatched_runs_are_bit_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, _) = brute_force(&sys, &trace);
    let batched = AllocationProblem::new(&sys, &trace);
    let unbatched = UnbatchedAlloc(AllocationProblem::new(&sys, &trace));

    // NSGA-II, serial and parallel batches.
    for parallel in [false, true] {
        let config = Nsga2Config {
            population: 24,
            generations: 40,
            mutation_rate: 0.5,
            parallel,
            hv_reference: Some(hv_reference(&all)),
            ..Default::default()
        };
        let mut log_b = StatsLog::default();
        let mut log_u = StatsLog::default();
        let pop_b =
            Nsga2::new(&batched, config).run_observed(Vec::new(), 19, &[], |_, _| {}, &mut log_b);
        let pop_u =
            Nsga2::new(&unbatched, config).run_observed(Vec::new(), 19, &[], |_, _| {}, &mut log_u);
        assert_identical_populations(&pop_b, &pop_u, "nsga2-batched");
        assert_identical_traces(&log_b.records, &log_u.records, "nsga2-batched");
    }

    // MOEA/D (steady-state: batches of one).
    let config = MoeadConfig {
        subproblems: 24,
        neighbours: 6,
        mutation_rate: 0.5,
        generations: 40,
        hv_reference: Some(hv_reference(&all)),
    };
    let mut log_b = StatsLog::default();
    let mut log_u = StatsLog::default();
    let pop_b = moead_observed(&batched, config, Vec::new(), 19, &[], |_, _| {}, &mut log_b);
    let pop_u = moead_observed(
        &unbatched,
        config,
        Vec::new(),
        19,
        &[],
        |_, _| {},
        &mut log_u,
    );
    assert_identical_populations(&pop_b, &pop_u, "moead-batched");
    assert_identical_traces(&log_b.records, &log_u.records, "moead-batched");

    // SPEA2 (whole-generation batches).
    let config = Spea2Config {
        population: 24,
        archive: 24,
        mutation_rate: 0.5,
        generations: 40,
        hv_reference: Some(hv_reference(&all)),
    };
    let mut log_b = StatsLog::default();
    let mut log_u = StatsLog::default();
    let pop_b = spea2_observed(&batched, config, Vec::new(), 19, &[], |_, _| {}, &mut log_b);
    let pop_u = spea2_observed(
        &unbatched,
        config,
        Vec::new(),
        19,
        &[],
        |_, _| {},
        &mut log_u,
    );
    assert_identical_populations(&pop_b, &pop_u, "spea2-batched");
    assert_identical_traces(&log_b.records, &log_u.records, "spea2-batched");
}

/// The persisted journal must also carry the same hypervolume trace
/// batched vs. unbatched (the batching analogue of the tracked-vs-full
/// journal test below).
#[test]
fn run_journal_traces_are_identical_batched_vs_unbatched() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, _) = brute_force(&sys, &trace);
    let batched = AllocationProblem::new(&sys, &trace);
    let unbatched = UnbatchedAlloc(AllocationProblem::new(&sys, &trace));
    let config = Nsga2Config {
        population: 16,
        generations: 25,
        mutation_rate: 0.5,
        parallel: true,
        hv_reference: Some(hv_reference(&all)),
        ..Default::default()
    };
    let dir = std::env::temp_dir();
    let path_b = dir.join("hetsched-delta-eval-journal-batched.jsonl");
    let path_u = dir.join("hetsched-delta-eval-journal-unbatched.jsonl");
    {
        let journal = RunJournal::create(&path_b).unwrap();
        let mut obs = JournalObserver::new(&journal, SeedKind::Random, 0);
        Nsga2::new(&batched, config).run_observed(Vec::new(), 37, &[], |_, _| {}, &mut obs);
    }
    {
        let journal = RunJournal::create(&path_u).unwrap();
        let mut obs = JournalObserver::new(&journal, SeedKind::Random, 0);
        Nsga2::new(&unbatched, config).run_observed(Vec::new(), 37, &[], |_, _| {}, &mut obs);
    }
    let rec_b = RunJournal::read(&path_b).unwrap();
    let rec_u = RunJournal::read(&path_u).unwrap();
    let _ = std::fs::remove_file(&path_b);
    let _ = std::fs::remove_file(&path_u);
    assert_eq!(rec_b.len(), rec_u.len());
    assert!(!rec_b.is_empty());
    for (b, u) in rec_b.iter().zip(&rec_u) {
        assert_eq!(b.population, u.population);
        assert_eq!(b.stream, u.stream);
        assert_eq!(
            b.stats.hypervolume.map(f64::to_bits),
            u.stats.hypervolume.map(f64::to_bits),
            "journalled hypervolume diverged at generation {}",
            b.stats.generation
        );
    }
}

/// The persisted journal (what `hetsched report` reads) carries the same
/// hypervolume trace whichever evaluation path produced it.
#[test]
fn run_journal_hypervolume_traces_are_identical() {
    let sys = tiny_system();
    let trace = tiny_trace(&sys);
    let (all, _) = brute_force(&sys, &trace);
    let tracked = AllocationProblem::new(&sys, &trace);
    let full = FullEval(AllocationProblem::new(&sys, &trace));
    let config = Nsga2Config {
        population: 16,
        generations: 30,
        mutation_rate: 0.5,
        parallel: false,
        hv_reference: Some(hv_reference(&all)),
        ..Default::default()
    };
    let dir = std::env::temp_dir();
    let path_t = dir.join("hetsched-delta-eval-journal-tracked.jsonl");
    let path_f = dir.join("hetsched-delta-eval-journal-full.jsonl");
    {
        let journal = RunJournal::create(&path_t).unwrap();
        let mut obs = JournalObserver::new(&journal, SeedKind::Random, 0);
        Nsga2::new(&tracked, config).run_observed(Vec::new(), 31, &[], |_, _| {}, &mut obs);
    }
    {
        let journal = RunJournal::create(&path_f).unwrap();
        let mut obs = JournalObserver::new(&journal, SeedKind::Random, 0);
        Nsga2::new(&full, config).run_observed(Vec::new(), 31, &[], |_, _| {}, &mut obs);
    }
    let rec_t = RunJournal::read(&path_t).unwrap();
    let rec_f = RunJournal::read(&path_f).unwrap();
    let _ = std::fs::remove_file(&path_t);
    let _ = std::fs::remove_file(&path_f);
    assert_eq!(rec_t.len(), rec_f.len());
    assert!(!rec_t.is_empty());
    for (t, f) in rec_t.iter().zip(&rec_f) {
        assert_eq!(t.population, f.population);
        assert_eq!(t.stream, f.stream);
        assert_eq!(
            t.stats.hypervolume.map(f64::to_bits),
            f.stats.hypervolume.map(f64::to_bits),
            "journalled hypervolume diverged at generation {}",
            t.stats.generation
        );
    }
}
