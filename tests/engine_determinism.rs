//! Engine determinism on the *real* scheduling problem — the analytic
//! benchmarks (SCH, ZDT1) in the engine's unit tests have trivial
//! evaluators, so they cannot catch a parallel-evaluation bug that only
//! shows up when per-thread evaluators carry scratch state. These tests
//! bind NSGA-II to an [`AllocationProblem`] over the paper's real system
//! and a generated trace.

use hetsched::alloc::AllocationProblem;
use hetsched::data::real_system;
use hetsched::moea::observe::StatsLog;
use hetsched::moea::{Nsga2, Nsga2Config, Objectives};
use hetsched::prelude::SeedKind;
use hetsched::sim::Allocation;
use hetsched::workload::TraceGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> (hetsched::data::HcSystem, hetsched::workload::Trace) {
    let system = real_system();
    let trace = TraceGenerator::new(60, 900.0, system.task_type_count())
        .generate(&mut StdRng::seed_from_u64(7))
        .unwrap();
    (system, trace)
}

fn config(parallel: bool) -> Nsga2Config {
    Nsga2Config {
        population: 24,
        mutation_rate: 0.5,
        generations: 8,
        parallel,
        ..Default::default()
    }
}

fn objectives(pop: &[hetsched::moea::Individual<Allocation>]) -> Vec<Objectives> {
    pop.iter().map(|i| i.objectives).collect()
}

#[test]
fn parallel_and_serial_agree_on_the_scheduling_problem() {
    // Genetic operators draw from the single-threaded RNG stream; only
    // evaluation is parallelised, and each rayon worker gets its own
    // Evaluator. Results must be bit-identical either way.
    let (system, trace) = fixture();
    let problem = AllocationProblem::new(&system, &trace);
    let seeds: Vec<Allocation> = SeedKind::MinEnergy.seeds(&system, &trace);
    let serial = Nsga2::new(&problem, config(false)).run(seeds.clone(), 5);
    let parallel = Nsga2::new(&problem, config(true)).run(seeds, 5);
    assert_eq!(objectives(&serial), objectives(&parallel));
}

#[test]
fn parallel_scheduling_runs_are_deterministic_per_seed() {
    let (system, trace) = fixture();
    let problem = AllocationProblem::new(&system, &trace);
    let engine = Nsga2::new(&problem, config(true));
    let a = engine.run(vec![], 11);
    let b = engine.run(vec![], 11);
    assert_eq!(objectives(&a), objectives(&b));
}

#[test]
fn tracing_spans_leave_the_trajectory_bit_identical() {
    // The span instrumentation reads only clocks, never the engine RNG
    // streams, so installing a full-verbosity span sink mid-process must
    // not perturb a single objective bit. The untraced baseline runs
    // first; the sink is process-global and cannot be uninstalled.
    let (system, trace) = fixture();
    let problem = AllocationProblem::new(&system, &trace);
    let engine = Nsga2::new(&problem, config(true));
    let untraced = engine.run(vec![], 13);

    let path =
        std::env::temp_dir().join(format!("hetsched-det-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let writer = std::sync::Arc::new(hetsched::core::TraceWriter::create(&path).unwrap());
    hetsched::core::install_tracing(tracing::Level::TRACE, Some(writer)).unwrap();
    let traced = engine.run(vec![], 13);
    assert_eq!(objectives(&untraced), objectives(&traced));

    // The sink really was live: generation spans (DEBUG) and engine phase
    // spans (TRACE) landed in the file.
    tracing::flush_span_sink();
    let spans = hetsched::core::read_trace(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(
        spans.iter().any(|s| s.name == "generation"),
        "no generation spans recorded"
    );
    assert!(
        spans.iter().any(|s| s.name == "evaluation"),
        "no phase spans recorded"
    );
}

#[test]
fn observation_is_inert_on_the_scheduling_problem() {
    // Attaching a metrics observer must not change the trajectory, and the
    // journalled per-generation stats must themselves be deterministic
    // (modulo wall-clock timings).
    let (system, trace) = fixture();
    let problem = AllocationProblem::new(&system, &trace);
    let mut cfg = config(true);
    cfg.hv_reference = Some([1e-9, 1e9]);
    let engine = Nsga2::new(&problem, cfg);
    let plain = engine.run(vec![], 3);
    let mut log_a = StatsLog::default();
    let mut log_b = StatsLog::default();
    let observed = engine.run_observed(vec![], 3, &[], |_, _| {}, &mut log_a);
    engine.run_observed(vec![], 3, &[], |_, _| {}, &mut log_b);
    assert_eq!(objectives(&plain), objectives(&observed));
    assert_eq!(log_a.records.len(), 8);
    for (a, b) in log_a.records.iter().zip(&log_b.records) {
        assert_eq!(a.generation, b.generation);
        assert_eq!(a.front_sizes, b.front_sizes);
        assert_eq!(a.ideal, b.ideal);
        assert_eq!(a.hypervolume, b.hypervolume);
        assert_eq!(a.evaluations, b.evaluations);
    }
}
