//! End-to-end integration: the full pipeline from raw benchmark data to
//! Pareto-front analysis, spanning every crate in the workspace.

use hetsched::analysis::UpeAnalysis;
use hetsched::core::{DatasetId, ExperimentConfig, Framework};
use hetsched::heuristics::SeedKind;
use hetsched::sim::Evaluator;

fn mini_config(dataset: DatasetId, tasks: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::scaled(dataset, 1.0);
    cfg.tasks = tasks;
    cfg.population = 24;
    cfg.snapshots = vec![5, 25, 80];
    cfg.rng_seed = 2024;
    cfg
}

#[test]
fn dataset1_pipeline_produces_meaningful_tradeoff() {
    let cfg = mini_config(DatasetId::One, 60);
    let fw = Framework::new(&cfg).unwrap();
    let report = fw.run();

    // Five populations, three snapshots each.
    assert_eq!(report.runs.len(), 5);
    for run in &report.runs {
        assert_eq!(run.fronts.len(), 3);
    }

    // The combined front spans a real trade-off: its energy range is wide
    // (the min-energy end comes from the Min Energy seed) and utility rises
    // with energy along it.
    let front = report.combined_front();
    assert!(front.len() >= 5, "front too small: {}", front.len());
    let lo = front.min_energy().unwrap();
    let hi = front.max_utility().unwrap();
    assert!(hi.energy > lo.energy * 1.05, "no energy spread");
    assert!(hi.utility > lo.utility, "no utility spread");

    // Energy lower bound is respected and achieved.
    let bound = Evaluator::new(fw.system(), fw.trace()).min_possible_energy();
    assert!(lo.energy >= bound - 1e-6);
    assert!(
        (lo.energy - bound) / bound < 0.01,
        "min-energy seed should pin the left end"
    );

    // UPE analysis finds a peak on the front.
    let upe = UpeAnalysis::of(&front).unwrap();
    assert!(upe.peak_upe > 0.0);
    assert!(!upe.peak_region(0.05).is_empty());
}

#[test]
fn seeded_populations_beat_random_early_on() {
    // The paper's central seeding observation (Figs. 3/4/6, early
    // subplots): at a small iteration budget, seeded fronts contain points
    // the random front does not dominate, and the min-energy population
    // owns the low-energy region.
    let cfg = mini_config(DatasetId::One, 80);
    let fw = Framework::new(&cfg).unwrap();
    let report = fw.run();

    let early = |kind: SeedKind| report.run(kind).unwrap().fronts[0].1.clone();
    let random = early(SeedKind::Random);
    let min_energy = early(SeedKind::MinEnergy);
    let min_min = early(SeedKind::MinMinCompletionTime);

    // Min-energy population reaches far lower energy than random early.
    let me_lo = min_energy.min_energy().unwrap().energy;
    let rnd_lo = random.min_energy().unwrap().energy;
    assert!(
        me_lo < rnd_lo,
        "min-energy seed should own the low-energy end: {me_lo} vs {rnd_lo}"
    );

    // Min-min population earns more utility than random early.
    let mm_hi = min_min.max_utility().unwrap().utility;
    let rnd_hi = random.max_utility().unwrap().utility;
    assert!(
        mm_hi > rnd_hi,
        "min-min seed should own the high-utility end: {mm_hi} vs {rnd_hi}"
    );
}

#[test]
fn fronts_improve_with_iterations() {
    let cfg = mini_config(DatasetId::One, 50);
    let fw = Framework::new(&cfg).unwrap();
    let report = fw.run();
    let table = report.hypervolume_table();
    for (seed, hvs) in table {
        // Hypervolume never decreases under elitist survival.
        for w in hvs.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "{seed:?}: hypervolume regressed {} -> {}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn dataset2_pipeline_runs_on_synthetic_system() {
    let cfg = mini_config(DatasetId::Two, 60);
    let fw = Framework::new(&cfg).unwrap();
    assert_eq!(fw.system().machine_count(), 30);
    assert_eq!(fw.system().task_type_count(), 30);
    let report = fw.run();
    let front = report.combined_front();
    assert!(!front.is_empty());
    // Special-purpose machines make some tasks ~10x faster; the front's
    // high-utility end should earn a sizeable share of the maximum.
    let max_possible = fw.trace().max_possible_utility();
    let earned = front.max_utility().unwrap().utility;
    assert!(
        earned > 0.3 * max_possible,
        "earned {earned} of possible {max_possible}"
    );
}

#[test]
fn figure_functions_produce_all_series() {
    let (report, series) = hetsched::core::figures::fig3(0.0002).unwrap();
    // 5 populations × ≥1 snapshot.
    assert!(series.len() >= 5);
    assert!(series.iter().any(|s| s.label == "random"));
    assert!(series.iter().any(|s| s.label == "min-energy"));
    let fig5 = hetsched::core::figures::fig5(&report).unwrap();
    assert_eq!(fig5.front.len(), fig5.upe_vs_utility.len());
    assert_eq!(fig5.front.len(), fig5.upe_vs_energy.len());

    let csv = hetsched::analysis::export::series_to_csv(&series);
    let parsed = hetsched::analysis::export::series_from_csv(&csv).unwrap();
    assert_eq!(parsed.len(), series.len());
}
