//! The price of no lookahead: compares the online energy-budgeted greedy
//! scheduler against the offline NSGA-II front on the same trace — the
//! workflow the paper's conclusion describes (derive an energy constraint
//! from the offline analysis, hand it to an online heuristic).

use hetsched::analysis::{ParetoFront, UpeAnalysis};
use hetsched::core::{DatasetId, ExperimentConfig, Framework};
use hetsched::sim::{schedule_online, OnlineConfig};

fn offline_front(fw: &Framework) -> ParetoFront {
    fw.run().combined_front()
}

fn mini_framework() -> Framework {
    let mut cfg = ExperimentConfig::scaled(DatasetId::One, 1.0);
    cfg.tasks = 80;
    cfg.population = 30;
    cfg.snapshots = vec![60];
    cfg.rng_seed = 77;
    Framework::new(&cfg).unwrap()
}

#[test]
fn online_respects_budget_derived_from_offline_peak() {
    let fw = mini_framework();
    let front = offline_front(&fw);
    let upe = UpeAnalysis::of(&front).expect("front non-empty");
    // The admin workflow: cap energy 10% above the efficient peak.
    let budget = upe.peak.energy * 1.10;
    let online = schedule_online(
        fw.system(),
        fw.trace(),
        &OnlineConfig {
            energy_budget: budget,
            drop_threshold: 0.0,
        },
    );
    assert!(online.energy <= budget + 1e-9, "budget violated");
    assert!(online.utility > 0.0);
}

#[test]
fn offline_front_weakly_dominates_online_at_matched_energy() {
    // At the online run's actual energy, the offline front must offer at
    // least a comparable utility (it optimises with full knowledge). The
    // online greedy can occasionally edge out a *scaled-down* offline run
    // on utility, but never beat the front at both objectives at once.
    let fw = mini_framework();
    let front = offline_front(&fw);
    let online = schedule_online(fw.system(), fw.trace(), &OnlineConfig::default());
    let dominated = front
        .points()
        .iter()
        .any(|p| p.utility >= online.utility && p.energy <= online.energy);
    let incomparable_everywhere = front.points().iter().all(|p| {
        !(online.utility >= p.utility
            && online.energy <= p.energy
            && (online.utility > p.utility || online.energy < p.energy))
    });
    assert!(
        dominated || incomparable_everywhere,
        "online result strictly dominates the offline front: U={} E={}",
        online.utility,
        online.energy
    );
}

#[test]
fn tightening_budget_traces_a_utility_curve_below_the_front() {
    let fw = mini_framework();
    let unconstrained = schedule_online(fw.system(), fw.trace(), &OnlineConfig::default());
    let mut prev = f64::INFINITY;
    for frac in [1.0, 0.8, 0.6, 0.4, 0.2] {
        let out = schedule_online(
            fw.system(),
            fw.trace(),
            &OnlineConfig {
                energy_budget: unconstrained.energy * frac,
                drop_threshold: 0.0,
            },
        );
        assert!(
            out.utility <= prev + 1e-9,
            "utility must fall as budget tightens"
        );
        assert!(out.energy <= unconstrained.energy * frac + 1e-9);
        prev = out.utility;
    }
}
