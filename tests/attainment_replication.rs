//! Replicated-run integration: the attainment machinery must order seed
//! configurations the same way single runs do, and its curves must be
//! internally consistent.

use hetsched::core::{DatasetId, ExperimentConfig, Framework};
use hetsched::heuristics::SeedKind;

fn mini() -> Framework {
    let mut cfg = ExperimentConfig::scaled(DatasetId::One, 1.0);
    cfg.tasks = 50;
    cfg.population = 20;
    cfg.snapshots = vec![25];
    cfg.seeds = vec![
        SeedKind::MinEnergy,
        SeedKind::MinMinCompletionTime,
        SeedKind::Random,
    ];
    cfg.rng_seed = 31;
    Framework::new(&cfg).unwrap()
}

#[test]
fn replicated_attainment_is_consistent() {
    let fw = mini();
    let summaries = fw.run_replicated(4).unwrap();
    assert_eq!(summaries.len(), 3);

    for (seed, summary) in &summaries {
        assert_eq!(summary.replicates(), 4, "{seed:?}");
        // Any-run curve dominates the all-runs curve pointwise.
        let any = summary.attainment_curve(1, 10);
        let all = summary.attainment_curve(4, 10);
        for ((ea, ua), (eb, ub)) in any.iter().zip(&all) {
            assert_eq!(ea, eb);
            if let (Some(ua), Some(ub)) = (ua, ub) {
                assert!(ua >= ub, "{seed:?}: any-run {ua} below all-run {ub}");
            }
        }
        // Curves are monotone in energy: more budget, no less utility.
        for w in summary.median_curve(10).windows(2) {
            if let (Some(a), Some(b)) = (w[0].1, w[1].1) {
                assert!(b >= a - 1e-9);
            }
        }
    }
}

#[test]
fn min_energy_attains_the_bound_in_every_replicate() {
    let fw = mini();
    let summaries = fw.run_replicated(3).unwrap();
    let bound = hetsched::sim::Evaluator::new(fw.system(), fw.trace()).min_possible_energy();
    let (_, me) = summaries
        .iter()
        .find(|(s, _)| *s == SeedKind::MinEnergy)
        .expect("min-energy configured");
    // At the bound's energy (with a hair of slack), utility ≥ 0 is attained
    // by all replicates — i.e. every replicate reaches that energy at all.
    assert!(me.attained_by(0.0, bound * (1.0 + 1e-9), 3));
}

#[test]
fn min_min_median_beats_random_median_at_high_energy() {
    let fw = mini();
    let summaries = fw.run_replicated(3).unwrap();
    let curve_of = |kind: SeedKind| {
        summaries
            .iter()
            .find(|(s, _)| *s == kind)
            .map(|(_, summary)| summary.median_curve(6))
            .expect("configured")
    };
    let mm = curve_of(SeedKind::MinMinCompletionTime);
    let rnd = curve_of(SeedKind::Random);
    // Compare the top-end utilities (last defined point of each curve).
    let top = |curve: &[(f64, Option<f64>)]| {
        curve
            .iter()
            .rev()
            .find_map(|(_, u)| *u)
            .expect("some defined point")
    };
    assert!(
        top(&mm) > top(&rnd),
        "min-min median top {} should beat random {}",
        top(&mm),
        top(&rnd)
    );
}
