//! End-to-end test of `hetsched serve` run in-process: a real TCP server
//! on an ephemeral port, driven through the same HTTP client the CI
//! probe uses. Pins the three serve guarantees the README advertises:
//!
//! * a report fetched over HTTP is byte-identical to the offline
//!   `Campaign` run of the same spec (same seeds, same engine);
//! * a repeated identical `POST /v1/jobs` is served from the
//!   fingerprint cache without starting any new cells;
//! * one worker pool runs several campaigns concurrently, and
//!   `GET /metrics` aggregates across them.

use hetsched::prelude::*;
use hetsched::serve::client;
use hetsched::serve::wire::{JobCreated, JobReportBody, JobStatusBody, JobTraceBody};
use hetsched::serve::{SchedulerService, ServeConfig, Server};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

/// A running in-process daemon: ephemeral port, own state dir, torn down
/// (including the temp state) on drop.
struct Daemon {
    addr: String,
    service: SchedulerService,
    shutdown: CancelToken,
    accept_thread: Option<thread::JoinHandle<()>>,
    state_dir: PathBuf,
}

impl Daemon {
    fn start(tag: &str) -> Daemon {
        let state_dir =
            std::env::temp_dir().join(format!("hetsched-serve-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        let service = SchedulerService::start(ServeConfig::new(&state_dir)).unwrap();
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let shutdown = CancelToken::new();
        let accept_thread = {
            let service = service.clone();
            let shutdown = shutdown.clone();
            thread::spawn(move || server.run(&service, &shutdown).unwrap())
        };
        Daemon {
            addr,
            service,
            shutdown,
            accept_thread: Some(accept_thread),
            state_dir,
        }
    }

    /// Polls `GET /v1/jobs/{id}` until the job leaves queued/running.
    fn wait_settled(&self, id: &str) -> JobStatusBody {
        for _ in 0..600 {
            let resp = client::get(&self.addr, &format!("/v1/jobs/{id}")).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body);
            let status: JobStatusBody = serde_json::from_str(&resp.body).unwrap();
            if status.state != "queued" && status.state != "running" {
                return status;
            }
            thread::sleep(Duration::from_millis(20));
        }
        panic!("job {id} never settled");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown.cancel();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.service.shutdown();
        let _ = std::fs::remove_dir_all(&self.state_dir);
    }
}

/// A laptop-instant campaign spec; `rng_seed` decorrelates specs so each
/// test gets its own fingerprint (the daemon caches by fingerprint).
fn tiny_spec(rng_seed: u64) -> CampaignSpec {
    let base = ExperimentConfig::builder(DatasetId::One)
        .tasks(20)
        .population(8)
        .snapshots(vec![2])
        .seeds(vec![SeedKind::MinEnergy, SeedKind::Random])
        .rng_seed(rng_seed)
        .parallel(false)
        .build()
        .expect("tiny serve config is consistent");
    CampaignSpec::single(&base)
}

fn job_body(spec: &CampaignSpec) -> String {
    serde_json::to_string(&hetsched::serve::wire::JobRequest::new(spec.clone())).unwrap()
}

#[test]
fn http_report_is_byte_identical_to_the_offline_run() {
    let daemon = Daemon::start("bitident");
    let spec = tiny_spec(0xE2E);

    let resp = client::post(&daemon.addr, "/v1/jobs", &job_body(&spec)).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body);
    let created: JobCreated = serde_json::from_str(&resp.body).unwrap();
    assert!(!created.cached);

    let status = daemon.wait_settled(&created.job_id);
    assert_eq!(status.state, "done", "error: {:?}", status.error);

    let resp = client::get(&daemon.addr, &format!("/v1/jobs/{}/report", created.job_id)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let body: JobReportBody = serde_json::from_str(&resp.body).unwrap();

    // The same spec run offline, through the public Campaign API the
    // `run` subcommand uses. Report serde is byte-stable (pinned by
    // tests/golden_report.rs), so string equality is the right check.
    let offline = Campaign::new(spec).run(None).unwrap();
    assert_eq!(
        serde_json::to_string(&body.reports).unwrap(),
        serde_json::to_string(&offline.reports).unwrap(),
        "HTTP-fetched report must be byte-identical to the offline run"
    );
    assert_eq!(body.executed, offline.executed as u64);
}

#[test]
fn repeated_post_hits_the_fingerprint_cache_with_zero_new_cells() {
    let daemon = Daemon::start("cache");
    let spec = tiny_spec(0xCAC4E);
    let body = job_body(&spec);

    let resp = client::post(&daemon.addr, "/v1/jobs", &body).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body);
    let created: JobCreated = serde_json::from_str(&resp.body).unwrap();
    let done = daemon.wait_settled(&created.job_id);
    assert_eq!(done.state, "done", "error: {:?}", done.error);
    let started_before = done.metrics.cells_started;

    // Identical spec again: 200 (not 201), cached, same job id, and the
    // telemetry counters show no new cell executions.
    let resp = client::post(&daemon.addr, "/v1/jobs", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let again: JobCreated = serde_json::from_str(&resp.body).unwrap();
    assert!(again.cached);
    assert_eq!(again.job_id, created.job_id);
    assert_eq!(again.state, "done");

    let resp = client::get(&daemon.addr, &format!("/v1/jobs/{}", created.job_id)).unwrap();
    let status: JobStatusBody = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(
        status.metrics.cells_started, started_before,
        "cache hit must not start any cells"
    );
}

#[test]
fn concurrent_jobs_share_the_worker_pool_and_metrics_aggregate() {
    let daemon = Daemon::start("concurrent");
    // Two distinct specs (different fingerprints) admitted back-to-back:
    // the default two-worker pool runs them side by side.
    let ids: Vec<String> = [tiny_spec(11), tiny_spec(22)]
        .iter()
        .map(|spec| {
            let resp = client::post(&daemon.addr, "/v1/jobs", &job_body(spec)).unwrap();
            assert_eq!(resp.status, 201, "{}", resp.body);
            let created: JobCreated = serde_json::from_str(&resp.body).unwrap();
            created.job_id
        })
        .collect();
    assert_ne!(ids[0], ids[1]);
    let mut total_cells = 0;
    for id in &ids {
        let status = daemon.wait_settled(id);
        assert_eq!(status.state, "done", "job {id} error: {:?}", status.error);
        total_cells += status.metrics.cells_finished;
    }

    // /metrics folds both jobs into one exposition.
    let resp = client::get(&daemon.addr, "/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.body.contains(&format!(
            "hetsched_campaign_cells_finished_total {total_cells}"
        )),
        "aggregated counter missing: {}",
        resp.body
    );
    assert!(resp.body.contains("hetsched_serve_jobs{state=\"done\"} 2"));
}

#[test]
fn finished_job_serves_its_span_timeline() {
    let daemon = Daemon::start("trace");
    let spec = tiny_spec(0x7ACE);

    let resp = client::post(&daemon.addr, "/v1/jobs", &job_body(&spec)).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body);
    let created: JobCreated = serde_json::from_str(&resp.body).unwrap();
    let status = daemon.wait_settled(&created.job_id);
    assert_eq!(status.state, "done", "error: {:?}", status.error);

    let resp = client::get(&daemon.addr, &format!("/v1/jobs/{}/trace", created.job_id)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let body: JobTraceBody = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(body.schema, "hetsched.job-trace.v1");
    assert_eq!(body.job_id, created.job_id);

    // The timeline covers every layer: the job root span, the campaign
    // beneath it, and one cell per grid point — all on one trace id, all
    // parented into a single tree.
    let job = body
        .spans
        .iter()
        .find(|s| s.name == "job")
        .expect("job root span recorded");
    assert_eq!(job.parent_id, None);
    assert_eq!(
        job.field("job_id").as_deref(),
        Some(created.job_id.as_str())
    );
    let campaign = body
        .spans
        .iter()
        .find(|s| s.name == "campaign")
        .expect("campaign span recorded");
    assert_eq!(campaign.parent_id, Some(job.span_id));
    let cells: Vec<_> = body.spans.iter().filter(|s| s.name == "cell").collect();
    assert_eq!(cells.len(), 2, "one cell span per grid point");
    for cell in &cells {
        assert_eq!(cell.trace_id, job.trace_id);
        assert_eq!(cell.field("dataset").as_deref(), Some("One"));
        assert!(cell.duration_ns <= job.duration_ns);
    }

    // The analysis layer accepts the endpoint's payload directly.
    let analysis = hetsched::core::TraceAnalysis::from_records(&body.spans, 3);
    let rendered = analysis.render();
    assert!(rendered.contains("slowest cells"), "{rendered}");

    // A trace for an unknown job stays a 404.
    let resp = client::get(&daemon.addr, "/v1/jobs/j999/trace").unwrap();
    assert_eq!(resp.status, 404);
}

#[test]
fn error_paths_map_to_http_statuses() {
    let daemon = Daemon::start("errors");

    // Unknown job id → 404 with a schema'd error body.
    let resp = client::get(&daemon.addr, "/v1/jobs/j999").unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.body.contains("hetsched.error.v1"), "{}", resp.body);
    assert!(resp.body.contains("not-found"), "{}", resp.body);

    // Invalid spec → 400.
    let mut bad = tiny_spec(33);
    bad.replicates = 0;
    let resp = client::post(&daemon.addr, "/v1/jobs", &job_body(&bad)).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("invalid-input"), "{}", resp.body);

    // Malformed JSON → 400, not a dropped connection.
    let resp = client::post(&daemon.addr, "/v1/jobs", "{not json").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    // Unroutable path → 404.
    let resp = client::get(&daemon.addr, "/v2/nope").unwrap();
    assert_eq!(resp.status, 404);
}

#[test]
fn cancelled_job_reports_its_status_not_a_report() {
    let daemon = Daemon::start("cancel");
    let spec = tiny_spec(0xDEAD);
    let resp = client::post(&daemon.addr, "/v1/jobs", &job_body(&spec)).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body);
    let created: JobCreated = serde_json::from_str(&resp.body).unwrap();

    // Cancel immediately; depending on worker timing the job lands in
    // `cancelled` or was already `done` — both are legitimate ends.
    let resp = client::delete(&daemon.addr, &format!("/v1/jobs/{}", created.job_id)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let settled = daemon.wait_settled(&created.job_id);
    if settled.state == "done" {
        return; // finished before the cancel landed
    }
    assert_eq!(settled.state, "cancelled");

    // An unfinished job has no report: 404 carrying the live status body
    // so pollers keep a single endpoint.
    let resp = client::get(&daemon.addr, &format!("/v1/jobs/{}/report", created.job_id)).unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    let status: JobStatusBody = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(status.state, "cancelled");
}
