//! Property-based tests on the workspace's core invariants (proptest).

use hetsched::analysis::ParetoFront;
use hetsched::data::{real_system, MachineId};
use hetsched::moea::{crowding_distance, dominates, fast_nondominated_sort};
use hetsched::sim::{Allocation, Evaluator};
use hetsched::stats::{MomentAccumulator, TabulatedSampler};
use hetsched::workload::TraceGenerator;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Moments from a merged accumulator equal moments from one stream.
    #[test]
    fn moment_merge_is_stream_equivalent(
        values in prop::collection::vec(-1e3f64..1e3, 4..200),
        split in 1usize..3,
    ) {
        let mut whole = MomentAccumulator::new();
        let mut parts = vec![MomentAccumulator::new(), MomentAccumulator::new(), MomentAccumulator::new()];
        for (i, &v) in values.iter().enumerate() {
            whole.push(v);
            parts[i % (split + 1)].push(v);
        }
        let mut merged = MomentAccumulator::new();
        for p in &parts {
            merged.merge(p);
        }
        if let (Ok(a), Ok(b)) = (whole.finish(), merged.finish()) {
            prop_assert!((a.mean - b.mean).abs() < 1e-6);
            prop_assert!((a.variance - b.variance).abs() / a.variance.max(1e-9) < 1e-6);
        }
    }

    /// The quantile function of any positive tabulated density is monotone
    /// and stays within the support.
    #[test]
    fn tabulated_quantile_is_monotone(
        a in 0.1f64..5.0,
        b in 0.0f64..3.0,
        us in prop::collection::vec(0.0f64..1.0, 2..40),
    ) {
        // Density 0.05 + |sin(a x + b)| on [0, 10]: positive, irregular.
        let sampler = TabulatedSampler::from_density(
            |x| 0.05 + (a * x + b).sin().abs(),
            0.0,
            10.0,
            512,
        ).unwrap();
        let mut sorted = us.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for u in sorted {
            let q = sampler.quantile(u);
            prop_assert!(q >= prev);
            prop_assert!((0.0..=10.0).contains(&q));
            prev = q;
        }
    }

    /// Nondominated sorting partitions the input, front members are
    /// mutually nondominated, and every front-k+1 point is dominated by
    /// someone in front k or earlier.
    #[test]
    fn nondominated_sort_properties(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..60),
    ) {
        let objectives: Vec<[f64; 2]> = pts.iter().map(|&(a, b)| [a, b]).collect();
        let fronts = fast_nondominated_sort(&objectives);
        let mut seen = vec![false; objectives.len()];
        for (k, front) in fronts.iter().enumerate() {
            for &p in front {
                prop_assert!(!seen[p]);
                seen[p] = true;
                for &q in front {
                    prop_assert!(!dominates(&objectives[p], &objectives[q]));
                }
                if k > 0 {
                    let dominated_by_earlier = fronts[..k]
                        .iter()
                        .flatten()
                        .any(|&e| dominates(&objectives[e], &objectives[p]));
                    prop_assert!(dominated_by_earlier, "front {k} point not pushed down");
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Crowding distances are non-negative and boundary points of a sorted
    /// front get infinity.
    #[test]
    fn crowding_distance_properties(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..40),
    ) {
        let objectives: Vec<[f64; 2]> = pts.iter().map(|&(a, b)| [a, b]).collect();
        let fronts = fast_nondominated_sort(&objectives);
        for front in fronts {
            let d = crowding_distance(&front, &objectives);
            prop_assert_eq!(d.len(), front.len());
            for v in &d {
                prop_assert!(*v >= 0.0);
            }
            if front.len() > 2 {
                prop_assert!(d.iter().any(|v| v.is_infinite()));
            }
        }
    }

    /// A ParetoFront built from arbitrary points is mutually nondominated
    /// and sorted in both coordinates.
    #[test]
    fn pareto_front_invariants(
        pts in prop::collection::vec((0.0f64..100.0, 1.0f64..100.0), 0..60),
    ) {
        let front = ParetoFront::from_points(pts.iter().copied());
        for a in front.points() {
            for b in front.points() {
                prop_assert!(!(a != b && a.dominates(b)));
            }
        }
        for w in front.points().windows(2) {
            prop_assert!(w[0].energy <= w[1].energy);
            prop_assert!(w[0].utility <= w[1].utility);
        }
        // Every input point is dominated-or-equal by something on the front.
        for &(u, e) in &pts {
            let q = hetsched::analysis::FrontPoint { utility: u, energy: e };
            prop_assert!(front.points().iter().any(|p| p.dominates(&q) || *p == q));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any feasible random allocation evaluates within the theoretical
    /// bounds, deterministically.
    #[test]
    fn evaluation_respects_bounds(seed in 0u64..1000) {
        let sys = real_system();
        let trace = TraceGenerator::new(40, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap();
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        use rand::Rng;
        let machine: Vec<MachineId> = trace
            .tasks()
            .iter()
            .map(|t| {
                let feasible = sys.feasible_machines(t.task_type);
                feasible[rng.gen_range(0..feasible.len())]
            })
            .collect();
        let alloc = Allocation::with_arrival_order(machine);
        let a = ev.evaluate(&alloc);
        let b = ev.evaluate(&alloc);
        prop_assert_eq!(a, b);
        prop_assert!(a.utility >= 0.0);
        prop_assert!(a.utility <= ev.max_possible_utility() + 1e-9);
        prop_assert!(a.energy >= ev.min_possible_energy() - 1e-9);
        prop_assert!(a.makespan >= 0.0);
    }
}
