//! Property test for campaign crash recovery: a campaign whose manifest is
//! truncated at an arbitrary cell boundary (simulating a kill mid-run) and
//! then resumed produces a report byte-identical to an uninterrupted run,
//! re-executing exactly the missing cells. The grid sweeps all three
//! engines so every `Engine` implementation is exercised through the
//! resume path.

use hetsched::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

/// A laptop-instant grid: 1 dataset × 3 algorithms × 2 replicates ×
/// 2 seed kinds = 12 cells.
fn tiny_spec(rng_seed: u64) -> CampaignSpec {
    let base = ExperimentConfig::builder(DatasetId::One)
        .tasks(20)
        .population(8)
        .snapshots(vec![2, 4])
        .seeds(vec![SeedKind::MinEnergy, SeedKind::Random])
        .rng_seed(rng_seed)
        .parallel(false)
        .build()
        .expect("tiny resume config is consistent");
    CampaignSpec::builder(base)
        .algorithms(vec![Algorithm::Nsga2, Algorithm::Moead, Algorithm::Spea2])
        .replicates(2)
        .build()
        .expect("tiny resume grid is consistent")
}

/// A unique scratch path per proptest case (cases run sequentially within
/// the test, but other test binaries share the temp dir).
fn scratch_manifest(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hetsched-campaign-resume-{}-{tag}.jsonl",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill-and-resume is invisible in the output: for any truncation
    /// point and master seed, the resumed campaign's reports serialise to
    /// the same bytes as an uninterrupted run's, and only the missing
    /// cells are re-executed.
    #[test]
    fn resume_after_kill_is_bit_identical(keep in 0usize..13, rng_seed in 0u64..1_000) {
        let spec = tiny_spec(rng_seed);
        let cells = spec.cells().len();
        prop_assert_eq!(cells, 12);
        let keep = keep.min(cells);

        // Ground truth: the same campaign run start-to-finish, no manifest.
        let uninterrupted = Campaign::new(spec.clone()).run(None).unwrap();
        prop_assert!(uninterrupted.is_complete());
        prop_assert_eq!(uninterrupted.reports.len(), 6); // 3 engines × 2 replicates

        // Full run with a manifest, then truncate it to the header plus
        // `keep` record lines — exactly what a kill after `keep` completed
        // cells leaves behind (records land in completion order, which is
        // why any prefix is a valid crash state).
        let manifest = scratch_manifest(&format!("{keep}-{rng_seed}"));
        let _ = std::fs::remove_file(&manifest);
        Campaign::new(spec.clone()).run(Some(&manifest)).unwrap();
        let text = std::fs::read_to_string(&manifest).unwrap();
        let truncated: String = text
            .lines()
            .take(1 + keep)
            .flat_map(|l| [l, "\n"])
            .collect();
        std::fs::write(&manifest, truncated).unwrap();

        let resumed = Campaign::new(spec).run(Some(&manifest)).unwrap();
        let _ = std::fs::remove_file(&manifest);

        prop_assert_eq!(resumed.replayed, keep);
        prop_assert_eq!(resumed.executed, cells - keep);
        prop_assert!(resumed.is_complete());
        prop_assert_eq!(&resumed.reports, &uninterrupted.reports);
        // Byte-identical, not merely equal: serialise both report lists.
        for (a, b) in resumed.reports.iter().zip(&uninterrupted.reports) {
            prop_assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap()
            );
        }
    }
}
