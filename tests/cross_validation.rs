//! Cross-validation: the sweep evaluator, the independent event-driven
//! simulator, and the detailed evaluator must agree on every allocation —
//! including on synthetic systems with special-purpose machines and on
//! GA-produced (non-permutation order key) chromosomes.

use hetsched::alloc::AllocationProblem;
use hetsched::data::HcSystem;
use hetsched::moea::{Nsga2, Nsga2Config, Problem};
use hetsched::sim::{evaluate_event_driven, DetailedOutcome, Evaluator};
use hetsched::synth::builder::dataset2_system;
use hetsched::workload::{Trace, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn synthetic_setup(tasks: usize, seed: u64) -> (HcSystem, Trace) {
    let mut rng = StdRng::seed_from_u64(seed);
    let system = dataset2_system(&mut rng).unwrap();
    let trace = TraceGenerator::new(tasks, 900.0, system.task_type_count())
        .generate(&mut rng)
        .unwrap();
    (system, trace)
}

#[test]
fn three_evaluators_agree_on_synthetic_system() {
    let (system, trace) = synthetic_setup(120, 1);
    let problem = AllocationProblem::new(&system, &trace);
    let mut rng = StdRng::seed_from_u64(2);
    let mut ev = Evaluator::new(&system, &trace);
    for _ in 0..30 {
        let alloc = problem.random_genome(&mut rng);
        let sweep = ev.evaluate(&alloc);
        let events = evaluate_event_driven(&system, &trace, &alloc).unwrap();
        let detail = DetailedOutcome::evaluate(&system, &trace, &alloc).unwrap();
        assert!(close(sweep.utility, events.utility));
        assert!(close(sweep.utility, detail.utility));
        assert!(close(sweep.energy, events.energy));
        assert!(close(sweep.energy, detail.energy));
        assert!(close(sweep.makespan, events.makespan));
        assert!(close(sweep.makespan, detail.makespan));
    }
}

#[test]
fn evaluators_agree_on_evolved_chromosomes() {
    // Crossover mixes order keys from two parents, producing duplicate and
    // gapped keys — exactly the case where tie-breaking rules could
    // diverge between implementations.
    let (system, trace) = synthetic_setup(60, 3);
    let problem = AllocationProblem::new(&system, &trace);
    let cfg = Nsga2Config {
        population: 20,
        mutation_rate: 0.8,
        generations: 15,
        parallel: false,
        ..Default::default()
    };
    let pop = Nsga2::new(&problem, cfg).run(vec![], 4);
    let mut ev = Evaluator::new(&system, &trace);
    for ind in &pop {
        let sweep = ev.evaluate(&ind.genome);
        let events = evaluate_event_driven(&system, &trace, &ind.genome).unwrap();
        assert!(close(sweep.utility, events.utility), "utility diverged");
        assert!(close(sweep.energy, events.energy), "energy diverged");
        assert!(close(sweep.makespan, events.makespan), "makespan diverged");
        // And the engine's recorded objectives match a re-evaluation.
        assert!(close(-ind.objectives[0], sweep.utility));
        assert!(close(ind.objectives[1], sweep.energy));
    }
}

#[test]
fn special_purpose_machines_accelerate_their_tasks() {
    // On the synthetic system, schedule one accelerated task on its special
    // machine vs the best general machine: the special machine must be
    // ~10x the *average* general machine, hence faster than most.
    let (system, _) = synthetic_setup(10, 5);
    use hetsched::data::{MachineTypeId, TaskTypeId};
    let mut found = false;
    for t in 0..system.task_type_count() {
        let t = TaskTypeId(t as u16);
        for sm in 0..4u16 {
            let special = system.etc().time(t, MachineTypeId(sm));
            if special.is_finite() {
                found = true;
                let general_avg: f64 = (4..13u16)
                    .map(|m| system.etc().time(t, MachineTypeId(m)))
                    .sum::<f64>()
                    / 9.0;
                assert!(
                    special < general_avg / 9.0,
                    "special {special} not ~10x faster than avg {general_avg}"
                );
            }
        }
    }
    assert!(
        found,
        "no accelerated (task, machine) pair in the synthetic system"
    );
}
