//! Property-based tests on the workload substrate: arbitrary-but-valid
//! time-utility functions must be monotone, bounded, and consistent with
//! their construction parameters.

use hetsched::workload::{Tuf, TufBuilder, UtilityClass};
use proptest::prelude::*;

/// Strategy producing a valid ladder of utility classes: fractions descend
/// across class boundaries as the builder requires.
fn arb_tuf() -> impl Strategy<Value = Tuf> {
    (
        0.1f64..100.0, // priority
        0.0f64..0.1,   // urgency
        prop::collection::vec((1.0f64..500.0, 0.0f64..1.0, 0.0f64..4.0), 0..5),
        0.0f64..0.2, // raw final fraction (scaled below)
    )
        .prop_map(|(priority, urgency, raw_classes, raw_final)| {
            let mut builder = TufBuilder::new(priority).urgency(urgency);
            // Build a descending ladder: each class spans a sub-interval of
            // the previous floor.
            let mut ceiling = 1.0f64;
            for (duration, frac, modifier) in raw_classes {
                let begin = ceiling;
                let end = ceiling * frac;
                builder = builder.class(UtilityClass {
                    duration,
                    begin_fraction: begin,
                    end_fraction: end,
                    urgency_modifier: modifier,
                });
                // Next class may begin no higher than this class's floor
                // (for flat classes the floor is the begin level; using the
                // end level is always safe).
                ceiling = end;
            }
            builder
                .final_fraction(ceiling * raw_final)
                .build()
                .expect("ladder construction is always valid")
        })
}

proptest! {
    #[test]
    fn tuf_is_monotone_and_bounded(tuf in arb_tuf(), times in prop::collection::vec(0.0f64..5000.0, 1..50)) {
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = f64::INFINITY;
        for t in sorted {
            let u = tuf.utility(t);
            prop_assert!(u >= 0.0);
            prop_assert!(u <= tuf.priority() + 1e-12);
            prop_assert!(u <= prev + 1e-9, "utility rose at t = {t}");
            prev = u;
        }
    }

    #[test]
    fn tuf_at_zero_is_full_or_first_class_level(tuf in arb_tuf()) {
        let u0 = tuf.utility(0.0);
        // At completion == arrival the task earns the first class's begin
        // level (the ladder starts at 1.0) or, with no classes, the final
        // fraction.
        if tuf.classes().is_empty() {
            prop_assert!((u0 - tuf.priority() * tuf.final_fraction()).abs() < 1e-9);
        } else {
            prop_assert!((u0 - tuf.priority()).abs() < 1e-9);
        }
    }

    #[test]
    fn tuf_beyond_horizon_is_final_fraction(tuf in arb_tuf()) {
        let far = tuf.horizon() + 1e6;
        let expect = tuf.priority() * tuf.final_fraction();
        prop_assert!((tuf.utility(far) - expect).abs() < 1e-9);
    }

    #[test]
    fn time_to_fraction_is_consistent(tuf in arb_tuf(), frac in 0.01f64..0.99) {
        let t = tuf.time_to_fraction(frac);
        if t.is_finite() {
            // Just after t the utility is at or below the fraction.
            let after = tuf.utility(t + 1e-6);
            prop_assert!(
                after <= frac * tuf.priority() + 1e-6 * tuf.priority(),
                "utility {after} above cutoff {} just after t = {t}",
                frac * tuf.priority()
            );
        } else {
            // Never drops: even far beyond the horizon it stays above.
            prop_assert!(tuf.utility(tuf.horizon() + 1e9) > frac * tuf.priority());
        }
    }
}
