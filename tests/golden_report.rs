//! Golden-file regression tests for `hetsched report` and the evaluator's
//! numerics.
//!
//! The fixtures under `tests/golden/` are frozen artifacts produced by a
//! real (small) campaign run: a campaign manifest and a run journal, plus
//! the exact text `hetsched report` rendered for each at freeze time. The
//! tests assert the render is byte-identical — any change to journal
//! parsing, summary statistics, or table formatting shows up as a diff
//! here, and so does any drift in the objective values the engines write
//! into manifests (the manifest fixture embeds full Pareto fronts).
//!
//! `hypervolume_trace_is_frozen` additionally pins the evaluator's
//! floating-point results end to end: a fixed-seed engine run on the real
//! dataset must reproduce a checked-in hypervolume trace *bit for bit*
//! (the golden stores the f64 bit patterns). Regenerate with
//! `GOLDEN_REGEN=1 cargo test --test golden_report` after an intentional
//! numerics change.

use hetsched::alloc::AllocationProblem;
use hetsched::core::inspect_path;
use hetsched::data::real_system;
use hetsched::moea::{Nsga2, Nsga2Config, StatsLog};
use hetsched::workload::TraceGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn assert_renders_identically(fixture: &str, expected: &str) {
    let dir = golden_dir();
    let rendered = inspect_path(&dir.join(fixture))
        .expect("fixture must parse")
        .render();
    let expected_path = dir.join(expected);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&expected_path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).expect("expected render missing");
    assert!(
        rendered == expected,
        "`hetsched report {fixture}` output drifted from the golden render.\n\
         --- got ---\n{rendered}\n--- want ---\n{expected}"
    );
}

#[test]
fn campaign_manifest_renders_byte_identically() {
    assert_renders_identically("campaign_manifest.jsonl", "campaign_manifest.report.txt");
}

#[test]
fn run_journal_renders_byte_identically() {
    assert_renders_identically("run_journal.jsonl", "run_journal.report.txt");
}

/// A fixed-seed NSGA-II run on the real dataset, hypervolume trace frozen
/// as bit patterns. This is the canary for the evaluation pipeline: the
/// delta fast path, the reference evaluator, and the hypervolume
/// computation must all produce the exact same floats as at freeze time,
/// with the `delta-eval` feature on or off.
#[test]
fn hypervolume_trace_is_frozen() {
    let sys = real_system();
    let trace = TraceGenerator::new(32, 600.0, sys.task_type_count())
        .generate(&mut StdRng::seed_from_u64(5))
        .unwrap();
    let problem = AllocationProblem::new(&sys, &trace);
    let config = Nsga2Config {
        population: 16,
        generations: 20,
        mutation_rate: 0.5,
        parallel: false,
        hv_reference: Some([1.0, 1.0e6]),
        ..Default::default()
    };
    let mut log = StatsLog::default();
    Nsga2::new(&problem, config).run_observed(Vec::new(), 17, &[], |_, _| {}, &mut log);
    let trace_lines: String = log
        .records
        .iter()
        .map(|r| {
            let hv = r.hypervolume.expect("hv reference is set");
            format!("{} {:016x} {hv:.6}\n", r.generation, hv.to_bits())
        })
        .collect();
    let path = golden_dir().join("hypervolume_trace.txt");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &trace_lines).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).expect("golden trace missing");
    assert!(
        trace_lines == expected,
        "fixed-seed hypervolume trace drifted (evaluator numerics changed).\n\
         --- got ---\n{trace_lines}\n--- want ---\n{expected}"
    );
}
