//! Chaos suite: deterministic fault injection against the hardened
//! campaign executor (compiled only with `--features chaos`).
//!
//! Each test arms a [`FaultPlan`] on the process-global registry, runs a
//! small campaign through the injected faults, and asserts the recovery
//! contract from README § Fault tolerance:
//!
//! * injected panics and manifest I/O errors are invisible in the final
//!   reports — byte-identical to an uninjected run, including across a
//!   kill-and-resume;
//! * a hung cell is recorded as timed out while every other cell's
//!   result still matches the clean run;
//! * telemetry counters account for every fault the plan injected.
//!
//! The registry is global, so the tests serialise on a lock; everything
//! else in this binary stays chaos-armed-free.

#![cfg(feature = "chaos")]

use hetsched::core::chaos::{armed, injected_total, FaultPlan};
use hetsched::core::RunJournal;
use hetsched::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serialises the tests: the chaos registry is process-global state.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// 1 dataset × 2 algorithms × 2 replicates × 2 seed kinds = 8 cells.
fn tiny_spec() -> CampaignSpec {
    let base = ExperimentConfig::builder(DatasetId::One)
        .tasks(20)
        .population(8)
        .snapshots(vec![2, 4])
        .seeds(vec![SeedKind::MinEnergy, SeedKind::Random])
        .rng_seed(0xC4405)
        .parallel(false)
        .build()
        .expect("tiny chaos config is consistent");
    CampaignSpec::builder(base)
        .algorithms(vec![Algorithm::Nsga2, Algorithm::Spea2])
        .replicates(2)
        .build()
        .expect("tiny chaos grid is consistent")
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hetsched-chaos-{}-{tag}", std::process::id()))
}

/// The campaign reports, serialised for byte-identity comparison.
fn report_bytes(outcome: &CampaignOutcome) -> Vec<String> {
    outcome
        .reports
        .iter()
        .map(|r| {
            format!(
                "{:?}/{}/{}",
                r.algorithm,
                r.replicate,
                serde_json::to_string(&r.report).unwrap()
            )
        })
        .collect()
}

#[test]
fn injected_faults_and_a_kill_are_invisible_after_resume() {
    let _serial = serial();
    let spec = tiny_spec();
    let clean = Campaign::new(spec.clone()).run(None).unwrap();
    assert!(clean.is_complete());

    let manifest = scratch("differential.jsonl");
    let _ = std::fs::remove_file(&manifest);

    // Two cell panics (each recovered by a retry) plus one manifest
    // append error (the checkpoint line is lost; the in-memory record is
    // still used).
    let plan = FaultPlan::parse(
        "seed=7;campaign.cell.run@1=panic;campaign.cell.run@4=panic;manifest.append@2=io",
    )
    .unwrap();
    let before = injected_total();
    let faulted = {
        let _armed = armed(plan);
        Campaign::new(spec.clone())
            .attempts(3)
            .run(Some(&manifest))
            .unwrap()
    };
    assert_eq!(injected_total() - before, 3, "every planned fault fired");
    assert!(faulted.is_complete(), "retries absorb the injected panics");
    assert_eq!(report_bytes(&clean), report_bytes(&faulted));

    // The io fault cost exactly one checkpoint line: header + 7 records.
    let text = std::fs::read_to_string(&manifest).unwrap();
    assert_eq!(text.lines().count(), 1 + 7, "{text}");

    // Kill: truncate the manifest to header + 3 records, then resume with
    // no faults armed. Only the missing cells re-execute, and the final
    // reports are byte-identical to the uninterrupted, uninjected run.
    let kept: Vec<&str> = text.lines().take(1 + 3).collect();
    std::fs::write(&manifest, format!("{}\n", kept.join("\n"))).unwrap();
    let resumed = Campaign::new(spec).run(Some(&manifest)).unwrap();
    let _ = std::fs::remove_file(&manifest);
    assert!(resumed.is_complete());
    assert_eq!(resumed.replayed, 3);
    assert_eq!(resumed.executed, 5);
    assert_eq!(report_bytes(&clean), report_bytes(&resumed));
}

#[test]
fn hung_cell_times_out_while_every_other_cell_matches() {
    let _serial = serial();
    let spec = tiny_spec();
    let clean = Campaign::new(spec.clone()).run(None).unwrap();

    // One cell sleeps far past the watchdog budget; the injected delay is
    // scoped so exactly that cell hangs.
    let plan =
        FaultPlan::parse("seed=3;campaign.cell.run[One/nsga2/min-energy/r0]@1=delay:1500").unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    let observer = Arc::new(TelemetryObserver::new(Arc::clone(&registry)));
    let outcome = {
        let _armed = armed(plan);
        Campaign::new(spec)
            .cell_timeout(Duration::from_millis(300))
            .with_observer(observer)
            .run(None)
            .unwrap()
    };

    assert_eq!(outcome.failed.len(), 1, "exactly one cell times out");
    let record = &outcome.failed[0];
    assert_eq!(record.outcome, CellOutcome::TimedOut);
    assert_eq!(record.cell.to_string(), "One/nsga2/min-energy/r0");
    assert_eq!(record.attempts, 1, "timeouts are terminal");
    assert!(record.error.as_deref().unwrap().contains("cell timeout"));

    // The timed-out cell removes its (algorithm, replicate) group's
    // report; every surviving report matches the clean run byte for byte.
    let clean_reports = report_bytes(&clean);
    let survivors = report_bytes(&outcome);
    assert_eq!(survivors.len(), clean_reports.len() - 1);
    for line in &survivors {
        assert!(clean_reports.contains(line), "report drifted: {line}");
    }

    // The timeout is visible in the telemetry counters.
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.cells_timed_out, 1);
    assert_eq!(snapshot.cells_poisoned, 0);
    assert_eq!(snapshot.cells_failed, 1);

    // Let the abandoned watchdog orphan drain before the next test arms
    // its own plan (the orphan would otherwise consume its fault hits).
    std::thread::sleep(Duration::from_millis(1700));
}

#[test]
fn evaluator_faults_retry_to_identical_results() {
    let _serial = serial();
    let spec = tiny_spec();
    let clean = Campaign::new(spec.clone()).run(None).unwrap();

    // The panic fires deep inside the simulator on some cell's first
    // evaluation; the attempt dies, the retry replays the cell from its
    // own RNG stream and must land on identical results.
    let plan = FaultPlan::parse("evaluator.evaluate@1=panic").unwrap();
    let before = injected_total();
    let outcome = {
        let _armed = armed(plan);
        Campaign::new(spec).attempts(2).run(None).unwrap()
    };
    assert_eq!(injected_total() - before, 1);
    assert!(outcome.is_complete());
    assert_eq!(report_bytes(&clean), report_bytes(&outcome));
}

#[test]
fn journal_write_faults_surface_as_append_errors() {
    let _serial = serial();
    let path = scratch("journal.jsonl");
    let plan = FaultPlan::parse("journal.write@1=io").unwrap();
    let _armed = armed(plan);

    let journal = RunJournal::create(&path).unwrap();
    let record = hetsched::core::JournalRecord {
        population: "Random".to_string(),
        stream: 1,
        stats: hetsched::moea::observe::GenerationStats {
            generation: 1,
            front_sizes: vec![2],
            ideal: [-1.0, 1.0],
            hypervolume: None,
            crowding_spread: 0.0,
            evaluations: 4,
            timings: Default::default(),
        },
    };
    let err = journal.append(&record).unwrap_err();
    assert!(err.to_string().contains("journal.write"), "{err}");
    // The sink survives the fault: the next append goes through.
    journal.append(&record).unwrap();
    drop(journal);
    let read = RunJournal::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(read.len(), 1);
}

#[test]
fn heartbeat_faults_are_swallowed_and_the_campaign_completes() {
    let _serial = serial();
    let heartbeat = scratch("heartbeat.jsonl");
    let _ = std::fs::remove_file(&heartbeat);

    let plan = FaultPlan::parse("heartbeat.tick@1=io").unwrap();
    let hb = hetsched::core::Heartbeat::create_durable(&heartbeat, Duration::ZERO).unwrap();
    let observer =
        Arc::new(TelemetryObserver::new(Arc::new(MetricsRegistry::new())).with_heartbeat(hb));
    let outcome = {
        let _armed = armed(plan);
        Campaign::new(tiny_spec())
            .with_observer(observer)
            .run(None)
            .unwrap()
    };
    assert!(
        outcome.is_complete(),
        "a broken heartbeat never fails a run"
    );

    // One line was sacrificed to the fault; the rest are valid JSON.
    let text = std::fs::read_to_string(&heartbeat).unwrap();
    let _ = std::fs::remove_file(&heartbeat);
    let mut lines = 0;
    for line in text.lines() {
        serde_json::from_str::<hetsched::core::HeartbeatLine>(line)
            .unwrap_or_else(|e| panic!("bad heartbeat line {line:?}: {e}"));
        lines += 1;
    }
    assert!(lines >= 1, "surviving heartbeat lines expected: {text}");
}

#[test]
fn manifest_append_panic_poisons_the_sink_and_only_that_cell_reruns() {
    let _serial = serial();
    let manifest = scratch("poison.jsonl");
    let _ = std::fs::remove_file(&manifest);

    // The panic fires *inside* the sink's critical section, genuinely
    // poisoning the mutex; later appends must recover the lock and keep
    // checkpointing.
    let plan = FaultPlan::parse("manifest.append[One/spea2/random/r1]@1=panic").unwrap();
    let spec = tiny_spec();
    let first = {
        let _armed = armed(plan);
        Campaign::new(spec.clone()).run(Some(&manifest)).unwrap()
    };
    assert!(first.is_complete(), "an append panic never fails the run");

    // Exactly the faulted cell's checkpoint line is missing.
    let lines = std::fs::read_to_string(&manifest).unwrap().lines().count();
    assert_eq!(lines, 1 + 7);

    // Resume re-executes just that cell.
    let resumed = Campaign::new(spec).run(Some(&manifest)).unwrap();
    let _ = std::fs::remove_file(&manifest);
    assert!(resumed.is_complete());
    assert_eq!(resumed.replayed, 7);
    assert_eq!(resumed.executed, 1);
}

mod distributed {
    use super::{armed, injected_total, report_bytes, scratch, serial, tiny_spec, FaultPlan};
    use hetsched::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    /// A worker killed at the lease-acquire fault point leaves no trace:
    /// the panic fires before the acquire line is appended, so a
    /// survivor starts from an empty grid and the merged reports are
    /// byte-identical to an uninjected single-process run.
    #[test]
    fn worker_killed_mid_acquire_leaves_no_trace() {
        let _serial = serial();
        let spec = tiny_spec();
        let clean = Campaign::new(spec.clone()).run(None).unwrap();
        let manifest = scratch("dist-acquire.jsonl");
        let _ = std::fs::remove_file(&manifest);

        let plan = FaultPlan::parse("seed=11;lease.acquire@1=panic").unwrap();
        let before = injected_total();
        {
            let _armed = armed(plan);
            let victim = Worker::new(Campaign::new(spec.clone()), "victim")
                .lease_ttl(Duration::from_millis(150))
                .skew_slack(0.0);
            let killed = catch_unwind(AssertUnwindSafe(|| victim.run(&manifest)));
            assert!(killed.is_err(), "the armed fault must kill the worker");
        }
        assert_eq!(injected_total() - before, 1);

        let survivor = Worker::new(Campaign::new(spec), "survivor")
            .skew_slack(0.0)
            .poll_interval(Duration::from_millis(5))
            .run(&manifest)
            .unwrap();
        let _ = std::fs::remove_file(&manifest);
        assert_eq!(survivor.executed, 8);
        assert_eq!(survivor.stolen, 0, "no lease was ever appended");
        assert!(survivor.outcome.is_complete());
        assert_eq!(report_bytes(&clean), report_bytes(&survivor.outcome));
    }

    /// A worker killed between finishing a cell and appending its result
    /// dies holding the lease. Once the lease lapses a survivor steals
    /// it, re-runs the cell on the same decorrelated RNG stream, and the
    /// merged reports never drift.
    #[test]
    fn worker_killed_mid_append_is_stolen_from_and_reports_match() {
        let _serial = serial();
        let spec = tiny_spec();
        let clean = Campaign::new(spec.clone()).run(None).unwrap();
        let manifest = scratch("dist-append.jsonl");
        let _ = std::fs::remove_file(&manifest);

        let plan = FaultPlan::parse("seed=12;worker.cell.append@1=panic").unwrap();
        let before = injected_total();
        {
            let _armed = armed(plan);
            let victim = Worker::new(Campaign::new(spec.clone()), "victim")
                .lease_ttl(Duration::from_millis(150))
                .skew_slack(0.0)
                .poll_interval(Duration::from_millis(5));
            let killed = catch_unwind(AssertUnwindSafe(|| victim.run(&manifest)));
            assert!(killed.is_err(), "the armed fault must kill the worker");
        }
        assert_eq!(injected_total() - before, 1);

        // Let the orphaned lease lapse, then take over.
        std::thread::sleep(Duration::from_millis(500));
        let survivor = Worker::new(Campaign::new(spec), "survivor")
            .skew_slack(0.0)
            .poll_interval(Duration::from_millis(5))
            .run(&manifest)
            .unwrap();
        let _ = std::fs::remove_file(&manifest);
        assert_eq!(survivor.executed, 8, "the lost cell re-ran");
        assert_eq!(survivor.stolen, 1, "exactly the victim's lease was stolen");
        assert!(survivor.outcome.is_complete());
        assert_eq!(report_bytes(&clean), report_bytes(&survivor.outcome));
    }

    /// The zombie scenario: a worker stalls inside a cell past its TTL
    /// (its renewal heartbeat killed by the armed fault), a survivor
    /// steals the cell at a higher epoch, and the zombie's late commit is
    /// rejected by epoch fencing — the merge never sees it, and the
    /// final reports stay byte-identical to the clean run.
    #[test]
    fn zombie_commit_is_fenced_and_the_merge_stays_clean() {
        let _serial = serial();
        let spec = tiny_spec();
        let clean = Campaign::new(spec.clone()).run(None).unwrap();
        let manifest = scratch("dist-zombie.jsonl");
        let _ = std::fs::remove_file(&manifest);

        // First renewal attempt panics (killing the heartbeat), and the
        // first cell in grid order stalls well past the 150ms TTL.
        let plan = FaultPlan::parse(
            "seed=13;lease.renew@1=panic;campaign.cell.run[One/nsga2/min-energy/r0]@1=delay:700",
        )
        .unwrap();
        let before = injected_total();
        let _armed = armed(plan);

        let zombie_spec = spec.clone();
        let zombie_manifest = manifest.clone();
        let zombie = std::thread::spawn(move || {
            Worker::new(Campaign::new(zombie_spec), "zombie")
                .lease_ttl(Duration::from_millis(150))
                .skew_slack(0.0)
                .poll_interval(Duration::from_millis(5))
                .run(&zombie_manifest)
                .unwrap()
        });

        // Wait past the zombie's deadline, then take over the grid while
        // it is still stalled inside the delayed cell.
        std::thread::sleep(Duration::from_millis(300));
        let survivor = Worker::new(Campaign::new(spec), "survivor")
            .skew_slack(0.0)
            .poll_interval(Duration::from_millis(5))
            .run(&manifest)
            .unwrap();
        let zombie = zombie.join().unwrap();
        let _ = std::fs::remove_file(&manifest);

        assert_eq!(injected_total() - before, 2, "renew panic + cell delay");
        assert_eq!(survivor.stolen, 1, "the stalled cell was taken over");
        assert_eq!(zombie.fenced, 1, "the zombie's late commit was discarded");
        assert_eq!(
            zombie.executed + survivor.executed,
            8,
            "every cell merged exactly once"
        );
        assert!(zombie.outcome.is_complete());
        assert!(survivor.outcome.is_complete());
        assert_eq!(report_bytes(&clean), report_bytes(&survivor.outcome));
        assert_eq!(report_bytes(&clean), report_bytes(&zombie.outcome));
    }
}

mod streaming {
    use super::{armed, injected_total, scratch, serial, FaultPlan};
    use hetsched::core::{
        EngineStreamSpec, HorizonConfig, OptimizerSpec, StreamConfig, StreamRunner,
    };
    use hetsched::prelude::*;
    use hetsched::workload::{ArrivalSpec, ArrivalStream, TufPolicy};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn stream_config() -> StreamConfig {
        StreamConfig {
            horizon: HorizonConfig {
                horizon: 20.0,
                energy_budget: f64::INFINITY,
            },
            optimizer: OptimizerSpec::Engine(EngineStreamSpec {
                engine: EngineConfig::builder()
                    .algorithm(Algorithm::Nsga2)
                    .population(10)
                    .mutation_rate(0.08)
                    .generations(4)
                    .parallel(false)
                    .build()
                    .unwrap(),
                seed_kind: SeedKind::MinMinCompletionTime,
                rng_seed: 0xC4405,
                stream: 0,
                warm_start: true,
            }),
        }
    }

    fn arrivals() -> ArrivalStream {
        ArrivalStream::new(
            ArrivalSpec::poisson(1.5).unwrap(),
            13,
            hetsched::data::real_system().task_type_count(),
            TufPolicy::essc_default(),
        )
    }

    /// Drives a manifested stream until an injected fault kills it, then
    /// resumes from the manifest and verifies the finished stream is
    /// byte-identical to an uninjected in-memory run.
    fn kill_and_resume(tag: &str, plan: &str, expected_resumed_ticks: usize) {
        let _serial = serial();
        let config = stream_config();

        // Uninjected reference (no manifest, same arrivals).
        let mut clean = StreamRunner::new(hetsched::data::real_system(), config).unwrap();
        clean.drive(&mut arrivals(), 80.0).unwrap();

        // Durable run killed mid-stream by the armed fault.
        let manifest = scratch(tag);
        let _ = std::fs::remove_file(&manifest);
        let plan = FaultPlan::parse(plan).unwrap();
        let before = injected_total();
        {
            let _armed = armed(plan);
            let mut doomed =
                StreamRunner::resume(hetsched::data::real_system(), config, &manifest).unwrap();
            let killed = catch_unwind(AssertUnwindSafe(|| doomed.drive(&mut arrivals(), 80.0)));
            assert!(killed.is_err(), "the armed fault must kill the stream");
        }
        assert_eq!(injected_total() - before, 1, "exactly one fault fired");

        // Resume with no faults armed: the manifest replays the committed
        // prefix, and the continued stream matches the clean run exactly.
        let mut resumed =
            StreamRunner::resume(hetsched::data::real_system(), config, &manifest).unwrap();
        assert_eq!(resumed.scheduler().ticks(), expected_resumed_ticks);
        resumed.drive(&mut arrivals(), 80.0).unwrap();
        let _ = std::fs::remove_file(&manifest);

        assert_eq!(
            serde_json::to_string(clean.scheduler().timeline()).unwrap(),
            serde_json::to_string(resumed.scheduler().timeline()).unwrap(),
            "manifest replay must re-commit a byte-identical schedule"
        );
        assert_eq!(clean.scheduler().records(), resumed.scheduler().records());
    }

    #[test]
    fn stream_killed_mid_commit_resumes_byte_identically() {
        // The panic fires inside tick 2's commit, before its manifest line
        // is appended: the manifest holds two committed ticks plus tick
        // 2's feed, which resume replays before re-running the tick.
        kill_and_resume("stream-commit.jsonl", "scheduler.horizon.commit@3=panic", 2);
    }

    #[test]
    fn stream_killed_mid_feed_resumes_byte_identically() {
        // The panic fires entering the second feed, before any of its
        // tasks are recorded: the manifest holds exactly one fed-and-
        // committed horizon.
        kill_and_resume("stream-feed.jsonl", "arrivals.feed@2=panic", 1);
    }
}

#[test]
fn telemetry_accounts_for_poisoned_cells_and_injected_faults() {
    let _serial = serial();
    // Both attempts of one cell panic: the cell exhausts its budget and
    // is quarantined.
    let plan = FaultPlan::parse("campaign.cell.run[One/spea2/min-energy/r0]@1x2=panic").unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    let observer = Arc::new(TelemetryObserver::new(Arc::clone(&registry)));
    let before = injected_total();
    let outcome = {
        let _armed = armed(plan);
        Campaign::new(tiny_spec())
            .attempts(2)
            .retry_backoff(Duration::ZERO, Duration::ZERO)
            .with_observer(observer)
            .run(None)
            .unwrap()
    };
    assert_eq!(outcome.failed.len(), 1);
    assert_eq!(outcome.failed[0].outcome, CellOutcome::Poisoned);
    assert_eq!(outcome.failed[0].attempts, 2);

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.cells_poisoned, 1);
    assert_eq!(snapshot.cells_timed_out, 0);
    assert_eq!(snapshot.cells_failed, 1);
    // Global counter: exactly the two planned panics fired during the
    // run, and the snapshot carries the cumulative total.
    assert_eq!(injected_total() - before, 2);
    assert_eq!(snapshot.faults_injected, injected_total());
}
