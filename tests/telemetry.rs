//! End-to-end telemetry: a campaign that is killed mid-run and resumed
//! keeps appending to the *same* heartbeat file with monotone progress,
//! and `report` on the finished manifest reconstructs per-cell status and
//! per-population convergence without re-running anything.

use hetsched::core::inspect::Inspection;
use hetsched::core::{inspect_path, Heartbeat, HeartbeatLine};
use hetsched::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// 1 dataset × 2 algorithms × 2 replicates × 2 seed kinds = 8 cells.
fn tiny_spec() -> CampaignSpec {
    let base = ExperimentConfig::builder(DatasetId::One)
        .tasks(20)
        .population(8)
        .snapshots(vec![2, 4])
        .seeds(vec![SeedKind::MinEnergy, SeedKind::Random])
        .rng_seed(0xBEA7)
        .parallel(false)
        .build()
        .expect("tiny telemetry config is consistent");
    CampaignSpec::builder(base)
        .algorithms(vec![Algorithm::Nsga2, Algorithm::Spea2])
        .replicates(2)
        .build()
        .expect("tiny telemetry grid is consistent")
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hetsched-telemetry-{}-{tag}", std::process::id()))
}

/// A fresh observer for one campaign invocation, appending to `heartbeat`
/// — exactly what the CLI builds for `--heartbeat-out`. Interval zero so
/// every cell event emits a line.
fn observer(heartbeat: &PathBuf) -> Arc<TelemetryObserver> {
    let hb = Heartbeat::create(heartbeat, Duration::ZERO).unwrap();
    Arc::new(TelemetryObserver::new(Arc::new(MetricsRegistry::new())).with_heartbeat(hb))
}

#[test]
fn killed_and_resumed_campaign_keeps_the_heartbeat_monotone() {
    let manifest = scratch("manifest.jsonl");
    let heartbeat = scratch("heartbeat.jsonl");
    let _ = std::fs::remove_file(&manifest);
    let _ = std::fs::remove_file(&heartbeat);
    let spec = tiny_spec();
    let cells = spec.cells().len() as u64;

    // First invocation: full run with manifest + heartbeat.
    let first = observer(&heartbeat);
    Campaign::new(spec.clone())
        .with_observer(Arc::clone(&first) as Arc<dyn CampaignObserver>)
        .run(Some(&manifest))
        .unwrap();
    let lines_before_kill = std::fs::read_to_string(&heartbeat).unwrap().lines().count();
    assert!(lines_before_kill >= 2, "start + per-cell + end lines");

    // Simulate a kill after 3 completed cells: truncate the manifest to
    // header + 3 records. The heartbeat file is NOT touched — a real kill
    // leaves it as-is and the resume appends to it.
    let text = std::fs::read_to_string(&manifest).unwrap();
    let truncated: String = text.lines().take(1 + 3).flat_map(|l| [l, "\n"]).collect();
    std::fs::write(&manifest, truncated).unwrap();

    // Resume: fresh registry (replayed cells are accounted through
    // `cells_replayed`), same heartbeat path.
    let second = observer(&heartbeat);
    let resumed = Campaign::new(spec)
        .with_observer(Arc::clone(&second) as Arc<dyn CampaignObserver>)
        .run(Some(&manifest))
        .unwrap();
    assert_eq!(resumed.replayed, 3);
    assert!(resumed.is_complete());

    // The heartbeat file now holds both invocations' lines. Within each
    // invocation progress is monotone, and the resume starts at the
    // replayed count — so the resumed segment never reports fewer done
    // cells than it replayed, and both segments end at the full grid.
    let text = std::fs::read_to_string(&heartbeat).unwrap();
    let all: Vec<HeartbeatLine> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert!(all.len() > lines_before_kill, "resume appended no lines");
    let (first_run, resumed_run) = all.split_at(lines_before_kill);
    for segment in [first_run, resumed_run] {
        for pair in segment.windows(2) {
            assert!(
                pair[1].cells_done >= pair[0].cells_done,
                "progress went backwards: {} -> {}",
                pair[0].cells_done,
                pair[1].cells_done
            );
            assert!(pair[1].elapsed_s >= pair[0].elapsed_s);
        }
        assert_eq!(segment.last().unwrap().cells_done, cells);
        assert_eq!(segment.last().unwrap().cells_total, cells);
    }
    // Resume's first line already counts the replayed cells.
    assert!(resumed_run.first().unwrap().cells_done >= 3);

    let _ = std::fs::remove_file(&manifest);
    let _ = std::fs::remove_file(&heartbeat);
}

#[test]
fn report_on_a_finished_manifest_summarises_without_rerunning() {
    let manifest = scratch("report-manifest.jsonl");
    let _ = std::fs::remove_file(&manifest);
    Campaign::new(tiny_spec()).run(Some(&manifest)).unwrap();

    let inspection = inspect_path(&manifest).unwrap();
    let rendered = inspection.render();
    let Inspection::Manifest(summary) = inspection else {
        panic!("a campaign manifest should inspect as a manifest");
    };
    assert_eq!(summary.cells.len(), 8);
    assert!(summary.cells.iter().all(|c| c.duration_s > 0.0));
    // One convergence row per (dataset, algorithm, seed, replicate) cell.
    assert_eq!(summary.populations.len(), 8);
    assert!(summary
        .populations
        .iter()
        .all(|p| p.peak_hv.unwrap_or(0.0) > 0.0));
    // The rendering carries the cell table and the convergence table.
    assert!(
        rendered.contains("8 cell(s) recorded (8 done"),
        "{rendered}"
    );
    assert!(rendered.contains("nsga2"), "{rendered}");
    assert!(rendered.contains("spea2"), "{rendered}");
    assert!(rendered.contains("peak HV"), "{rendered}");

    let _ = std::fs::remove_file(&manifest);
}
