//! Persistence integration: systems, traces, and allocations survive a JSON
//! round-trip and evaluate to identical objectives afterwards — the
//! contract behind storing "a trace from any given system" on disk and
//! analysing it later.

use hetsched::data::HcSystem;
use hetsched::heuristics::{max_utility, min_min_completion_time};
use hetsched::sim::{Allocation, Evaluator};
use hetsched::synth::builder::dataset2_system;
use hetsched::workload::{Trace, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn synthetic_system_roundtrips_with_infinities() {
    let mut rng = StdRng::seed_from_u64(5);
    let sys = dataset2_system(&mut rng).unwrap();
    let json = serde_json::to_string(&sys).unwrap();
    let back: HcSystem = serde_json::from_str(&json).unwrap();
    assert_eq!(sys, back);
    // Special-purpose incompatibilities (ETC = +inf) survived the trip.
    let mut saw_infinite = false;
    for t in 0..sys.task_type_count() {
        for m in 0..sys.machine_type_count() {
            let t = hetsched::data::TaskTypeId(t as u16);
            let m = hetsched::data::MachineTypeId(m as u16);
            assert_eq!(
                sys.etc().time(t, m).is_finite(),
                back.etc().time(t, m).is_finite()
            );
            saw_infinite |= !sys.etc().time(t, m).is_finite();
        }
    }
    assert!(saw_infinite, "dataset 2 must contain incompatible pairs");
}

#[test]
fn full_experiment_state_roundtrips() {
    let mut rng = StdRng::seed_from_u64(6);
    let sys = dataset2_system(&mut rng).unwrap();
    let trace = TraceGenerator::new(50, 900.0, sys.task_type_count())
        .generate(&mut rng)
        .unwrap();
    let alloc = min_min_completion_time(&sys, &trace);

    let sys_json = serde_json::to_string(&sys).unwrap();
    let trace_json = serde_json::to_string(&trace).unwrap();
    let alloc_json = serde_json::to_string(&alloc).unwrap();

    let sys2: HcSystem = serde_json::from_str(&sys_json).unwrap();
    let trace2: Trace = serde_json::from_str::<Trace>(&trace_json)
        .unwrap()
        .after_deserialize();
    let alloc2: Allocation = serde_json::from_str(&alloc_json).unwrap();

    let before = Evaluator::new(&sys, &trace).evaluate(&alloc);
    let after = Evaluator::new(&sys2, &trace2).evaluate(&alloc2);
    assert!((before.utility - after.utility).abs() < 1e-9);
    assert!((before.energy - after.energy).abs() < 1e-9);
    assert!((before.makespan - after.makespan).abs() < 1e-9);
}

#[test]
fn heuristics_agree_across_roundtripped_state() {
    // Regenerate a heuristic allocation from deserialised state: it must
    // equal the one computed from the originals (nothing hidden was lost).
    let sys = hetsched::data::real_system();
    let trace = TraceGenerator::new(35, 900.0, sys.task_type_count())
        .generate(&mut StdRng::seed_from_u64(8))
        .unwrap();
    let trace2: Trace = serde_json::from_str::<Trace>(&serde_json::to_string(&trace).unwrap())
        .unwrap()
        .after_deserialize();
    assert_eq!(max_utility(&sys, &trace), max_utility(&sys, &trace2));
}
