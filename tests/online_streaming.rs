//! The streaming/offline differential: a rolling-horizon stream whose
//! first horizon covers the whole trace must *be* the offline run — same
//! seed chromosomes, same hypervolume reference, same engine RNG stream —
//! so its tick-0 population and journal reproduce the offline engine run
//! bit for bit. The comparison is exact (`to_bits`/`total_cmp`), and the
//! test compiles under both the default `delta-eval` feature and
//! `--no-default-features`, pinning the equivalence in both evaluator
//! modes.

use hetsched::alloc::AllocationProblem;
use hetsched::core::{
    DatasetId, EngineStreamSpec, ExperimentConfig, Framework, HorizonConfig, OptimizerSpec,
    RunJournal, SeedKind, StreamConfig, StreamRunner,
};
use hetsched::moea::{Algorithm, Engine, EngineConfig, NullObserver};
use hetsched::workload::{ArrivalSpec, ArrivalStream, TufPolicy};

/// The framework's population-stream decorrelation constant — the test
/// spells it out so a silent change to either side breaks the diff.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn mini_config(algorithm: Algorithm) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::scaled(DatasetId::One, 1.0);
    cfg.algorithm = algorithm;
    cfg.tasks = 24;
    cfg.duration = 120.0;
    cfg.population = 12;
    cfg.snapshots = vec![6];
    cfg.seeds = vec![SeedKind::MinMinCompletionTime];
    cfg.rng_seed = 42;
    cfg
}

fn engine_of(cfg: &ExperimentConfig) -> EngineConfig {
    EngineConfig::builder()
        .algorithm(cfg.algorithm)
        .population(cfg.population)
        .mutation_rate(cfg.mutation_rate)
        .generations(cfg.generations())
        .parallel(cfg.parallel)
        .build()
        .unwrap()
}

/// A stream whose single horizon spans the offline trace's whole window.
fn whole_trace_stream(cfg: &ExperimentConfig, fw: &Framework, warm_start: bool) -> StreamRunner {
    let config = StreamConfig {
        horizon: HorizonConfig {
            horizon: fw.trace().duration(),
            energy_budget: f64::INFINITY,
        },
        optimizer: OptimizerSpec::Engine(EngineStreamSpec {
            engine: engine_of(cfg),
            seed_kind: SeedKind::MinMinCompletionTime,
            rng_seed: cfg.rng_seed,
            stream: 0,
            warm_start,
        }),
    };
    StreamRunner::new(fw.system().clone(), config).unwrap()
}

#[test]
fn whole_trace_horizon_replays_the_offline_population_bit_identically() {
    for algorithm in Algorithm::ALL {
        let cfg = mini_config(algorithm);
        let fw = Framework::new(&cfg).unwrap();

        // The offline engine run, exactly as Framework::run_population
        // executes population stream 0 (snapshots reduce to the final
        // generation, so the mid-run snapshot slice is empty).
        let problem = AllocationProblem::new(fw.system(), fw.trace());
        let seeds = SeedKind::MinMinCompletionTime.seeds(fw.system(), fw.trace());
        let engine_seed = cfg.rng_seed ^ GOLDEN.wrapping_mul(1);
        let offline = fw.engine_config().evolve(
            &problem,
            seeds,
            engine_seed,
            &[],
            &mut |_, _| {},
            &mut NullObserver,
        );

        // The same work as one streaming tick: every task arrives inside
        // horizon 0, nothing arrives later.
        let mut runner = whole_trace_stream(&cfg, &fw, true);
        runner
            .feed(fw.trace().duration(), fw.trace().tasks().to_vec())
            .unwrap();
        let record = runner.tick().unwrap();
        assert_eq!(record.tasks, cfg.tasks, "{algorithm}");

        let online = runner.last_population();
        assert_eq!(online.len(), offline.len(), "{algorithm}");
        for (i, (a, b)) in online.iter().zip(&offline).enumerate() {
            assert_eq!(a.genome, b.genome, "{algorithm}: genome {i} diverged");
            for k in 0..2 {
                assert_eq!(
                    a.objectives[k].to_bits(),
                    b.objectives[k].to_bits(),
                    "{algorithm}: objective {k} of individual {i} diverged \
                     ({} vs {})",
                    a.objectives[k],
                    b.objectives[k],
                );
            }
        }
    }
}

#[test]
fn whole_trace_horizon_journals_the_offline_hypervolumes() {
    let cfg = mini_config(Algorithm::Nsga2);
    let fw = Framework::new(&cfg).unwrap();
    let dir = std::env::temp_dir();
    let offline_path = dir.join(format!(
        "hetsched-diff-offline-{}.jsonl",
        std::process::id()
    ));
    let online_path = dir.join(format!("hetsched-diff-online-{}.jsonl", std::process::id()));

    let journal = RunJournal::create(&offline_path).unwrap();
    fw.run_with_journal(Some(&journal));
    drop(journal);

    {
        let mut runner = whole_trace_stream(&cfg, &fw, true)
            .with_journal(RunJournal::create(&online_path).unwrap());
        runner
            .feed(fw.trace().duration(), fw.trace().tasks().to_vec())
            .unwrap();
        runner.tick().unwrap();
    }

    let offline = RunJournal::read(&offline_path).unwrap();
    let online = RunJournal::read(&online_path).unwrap();
    let _ = std::fs::remove_file(&offline_path);
    let _ = std::fs::remove_file(&online_path);

    assert_eq!(offline.len(), cfg.generations());
    assert_eq!(online.len(), offline.len());
    for (a, b) in online.iter().zip(&offline) {
        assert_eq!(a.population, b.population);
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.stats.generation, b.stats.generation);
        let (ha, hb) = (
            a.stats.hypervolume.expect("engine journals hypervolume"),
            b.stats.hypervolume.expect("engine journals hypervolume"),
        );
        assert_eq!(
            ha.total_cmp(&hb),
            std::cmp::Ordering::Equal,
            "generation {}: streaming hypervolume {ha} != offline {hb}",
            a.stats.generation,
        );
        assert_eq!(a.stats.evaluations, b.stats.evaluations);
        for k in 0..2 {
            assert_eq!(a.stats.ideal[k].to_bits(), b.stats.ideal[k].to_bits());
        }
    }
}

#[test]
fn warm_started_commits_are_never_dominated_by_cold_starts() {
    let cfg = mini_config(Algorithm::Nsga2);
    let fw = Framework::new(&cfg).unwrap();
    let arrivals = || {
        ArrivalStream::new(
            ArrivalSpec::poisson(1.5).unwrap(),
            7,
            fw.system().task_type_count(),
            TufPolicy::essc_default(),
        )
    };
    let run = |warm: bool| {
        let config = StreamConfig {
            horizon: HorizonConfig {
                horizon: 20.0,
                energy_budget: f64::INFINITY,
            },
            optimizer: OptimizerSpec::Engine(EngineStreamSpec {
                engine: engine_of(&cfg),
                seed_kind: SeedKind::MinMinCompletionTime,
                rng_seed: cfg.rng_seed,
                stream: 0,
                warm_start: warm,
            }),
        };
        let mut runner = StreamRunner::new(fw.system().clone(), config).unwrap();
        runner.drive(&mut arrivals(), 80.0).unwrap()
    };

    let warm = run(true);
    let cold = run(false);
    assert_eq!(warm.len(), 4);
    assert_eq!(warm.len(), cold.len());
    // Tick 0 has no front to carry, so warm and cold are the same run.
    assert_eq!(warm[0], cold[0]);
    for (w, c) in warm.iter().zip(&cold) {
        assert_eq!(w.tasks, c.tasks, "tick {}: working sets diverged", w.tick);
        let strictly_dominated = c.utility >= w.utility
            && c.energy <= w.energy
            && (c.utility > w.utility || c.energy < w.energy);
        assert!(
            !strictly_dominated,
            "tick {}: cold start (U={}, E={}) dominates warm start (U={}, E={})",
            w.tick, c.utility, c.energy, w.utility, w.energy,
        );
    }
}
