//! Golden-file regression tests for the span-trace pipeline.
//!
//! A synthetic but realistic span tree — serve job → campaign → two
//! cells → attempts → generations → engine phases → an evaluator batch —
//! is constructed with fixed ids and timings, frozen as a JSONL trace
//! fixture, and pinned in three directions:
//!
//! 1. `span_trace.jsonl` — the wire form `TraceWriter` appends; parsing
//!    it back must reproduce the constructed records exactly.
//! 2. `span_trace.report.txt` — the byte-exact `hetsched trace` render
//!    (phase self-times, slowest cells, critical path, speedup).
//! 3. `span_trace.chrome.json` — the Chrome trace-event export, which
//!    must also survive the schema round trip back to span records.
//!
//! Regenerate after an intentional format change with
//! `GOLDEN_REGEN=1 cargo test --test trace_golden`.

use hetsched::core::trace::spans_from_chrome;
use hetsched::core::{chrome_trace, read_trace, SpanRecord, TraceAnalysis};
use serde::{Number, Value};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn u(v: u64) -> Value {
    Value::Num(Number::U(v))
}

#[allow(clippy::too_many_arguments)]
fn span(
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    name: &str,
    target: &str,
    level: &str,
    start_ns: u64,
    duration_ns: u64,
    thread: u64,
    fields: Vec<(&str, Value)>,
) -> SpanRecord {
    SpanRecord {
        trace_id,
        span_id,
        parent_id,
        name: name.to_string(),
        target: target.to_string(),
        level: level.to_string(),
        start_ns,
        duration_ns,
        thread,
        fields: fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    }
}

/// The frozen span tree, in close order (children close before parents).
/// Timings are hand-picked so the phase table, slowest-cell ranking, and
/// critical path all exercise non-trivial branches.
fn fixture_records() -> Vec<SpanRecord> {
    const CAMPAIGN: &str = "hetsched_core::campaign";
    const ENGINE: &str = "hetsched_moea::nsga2";
    let cell_a = vec![
        ("dataset", s("One")),
        ("algorithm", s("nsga2")),
        ("seed", s("random")),
        ("replicate", u(0)),
    ];
    let cell_b = vec![
        ("dataset", s("One")),
        ("algorithm", s("nsga2")),
        ("seed", s("min-energy")),
        ("replicate", u(1)),
    ];
    vec![
        span(
            7001,
            6,
            Some(5),
            "mating",
            ENGINE,
            "TRACE",
            1_250_000,
            1_000_000,
            2,
            vec![],
        ),
        span(
            7001,
            8,
            Some(7),
            "batch",
            "hetsched_sim::batch",
            "TRACE",
            2_350_000,
            5_200_000,
            2,
            vec![("jobs", u(16)), ("threads", u(4))],
        ),
        span(
            7001,
            7,
            Some(5),
            "evaluation",
            ENGINE,
            "TRACE",
            2_300_000,
            5_500_000,
            2,
            vec![],
        ),
        span(
            7001,
            9,
            Some(5),
            "sorting",
            ENGINE,
            "TRACE",
            7_900_000,
            1_200_000,
            2,
            vec![],
        ),
        span(
            7001,
            5,
            Some(4),
            "generation",
            ENGINE,
            "DEBUG",
            1_200_000,
            8_000_000,
            2,
            vec![("generation", u(1))],
        ),
        span(
            7001,
            12,
            Some(11),
            "attempt",
            CAMPAIGN,
            "DEBUG",
            1_050_000,
            11_800_000,
            3,
            vec![("attempt", u(1))],
        ),
        span(
            7001,
            11,
            Some(2),
            "cell",
            CAMPAIGN,
            "INFO",
            1_000_000,
            12_000_000,
            3,
            cell_b,
        ),
        span(
            7001,
            10,
            Some(4),
            "generation",
            ENGINE,
            "DEBUG",
            9_300_000,
            8_600_000,
            2,
            vec![("generation", u(2))],
        ),
        span(
            7001,
            4,
            Some(3),
            "attempt",
            CAMPAIGN,
            "DEBUG",
            1_100_000,
            17_000_000,
            2,
            vec![("attempt", u(1))],
        ),
        span(
            7001,
            3,
            Some(2),
            "cell",
            CAMPAIGN,
            "INFO",
            1_000_000,
            17_500_000,
            2,
            cell_a,
        ),
        span(
            7001,
            2,
            Some(1),
            "campaign",
            CAMPAIGN,
            "INFO",
            500_000,
            19_000_000,
            1,
            vec![
                ("fingerprint", s("cafe1234")),
                ("cells", u(2)),
                ("replayed", u(0)),
            ],
        ),
        span(
            7001,
            1,
            None,
            "job",
            "hetsched_serve::service",
            "INFO",
            0,
            20_000_000,
            1,
            vec![("job_id", s("j42")), ("fingerprint", s("cafe1234"))],
        ),
    ]
}

fn assert_matches_golden(rendered: &str, golden: &str) {
    let path = golden_dir().join(golden);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).expect("golden file missing — regen first");
    assert!(
        rendered == expected,
        "{golden} drifted from the golden copy.\n--- got ---\n{rendered}\n--- want ---\n{expected}"
    );
}

#[test]
fn span_trace_jsonl_fixture_roundtrips() {
    let records = fixture_records();
    let mut jsonl = String::new();
    for record in &records {
        jsonl.push_str(&serde_json::to_string(record).unwrap());
        jsonl.push('\n');
    }
    assert_matches_golden(&jsonl, "span_trace.jsonl");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        return;
    }
    // The frozen wire form parses back into exactly the constructed
    // records — field order, optional parent_id, and typed field values
    // all survive.
    let parsed = read_trace(golden_dir().join("span_trace.jsonl")).unwrap();
    assert_eq!(parsed, records);
}

#[test]
fn span_trace_analysis_renders_byte_identically() {
    let analysis = TraceAnalysis::from_records(&fixture_records(), 5);
    assert_matches_golden(&analysis.render(), "span_trace.report.txt");
}

#[test]
fn chrome_export_is_frozen_and_survives_the_schema_round_trip() {
    let records = fixture_records();
    let chrome = chrome_trace(&records);
    let json = serde_json::to_string(&chrome).unwrap();
    assert_matches_golden(&json, "span_trace.chrome.json");

    // Schema round trip: parse the exported JSON as a foreign consumer
    // would and recover the span records bit-exactly.
    let parsed: Value = serde_json::from_str(&json).unwrap();
    let back = spans_from_chrome(&parsed).unwrap();
    assert_eq!(back, records);

    // Structural contract Perfetto relies on: every event is a complete
    // event with microsecond float timestamps on a pid/tid lane.
    let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
    assert_eq!(events.len(), records.len());
    for event in events {
        assert_eq!(event.get("ph").and_then(Value::as_str), Some("X"));
        assert!(event.get("ts").and_then(Value::as_f64).is_some());
        assert!(event.get("dur").and_then(Value::as_f64).is_some());
        assert!(event.get("pid").and_then(Value::as_u64).is_some());
        assert!(event.get("tid").and_then(Value::as_u64).is_some());
    }
}
