#![warn(missing_docs)]

//! Umbrella crate re-exporting the `hetsched` workspace.
//!
//! Most users want [`prelude`]: it curates the types a typical experiment
//! touches (configs, the campaign API, reports, telemetry) behind one
//! import. The individual subsystem crates are re-exported as modules so
//! examples and integration tests can still reach every layer through a
//! single dependency when the prelude is not enough.

pub use hetsched_alloc as alloc;
pub use hetsched_analysis as analysis;
pub use hetsched_core as core;
pub use hetsched_data as data;
pub use hetsched_heuristics as heuristics;
pub use hetsched_moea as moea;
pub use hetsched_serve as serve;
pub use hetsched_sim as sim;
pub use hetsched_stats as stats;
pub use hetsched_synth as synth;
pub use hetsched_workload as workload;

/// The types a typical experiment needs, behind one import:
///
/// ```
/// use hetsched::prelude::*;
///
/// let config = ExperimentConfig::builder(DatasetId::One)
///     .tasks(20)
///     .population(8)
///     .snapshots(vec![2])
///     .build()?;
/// let spec = CampaignSpec::single(&config);
/// # Ok::<(), Error>(())
/// ```
///
/// The prelude deliberately stays small — experiment configuration, the
/// campaign API, analysis outputs, and telemetry. Reach into the
/// subsystem modules ([`crate::sim`], [`crate::moea`], …) for engine
/// internals.
pub mod prelude {
    pub use hetsched_core::{
        Algorithm, AnalysisReport, Campaign, CampaignObserver, CampaignOutcome, CampaignReport,
        CampaignSpec, CampaignSpecBuilder, CancelToken, CellId, CellOutcome, CellRecord, CoreError,
        DatasetId, Error, ErrorClass, ExperimentConfig, ExperimentConfigBuilder, Framework,
        LeaseAction, LeaseRecord, LeaseTable, LocalManifestStore, ManifestStore, MetricsRegistry,
        MetricsSnapshot, ParetoFront, PopulationRun, SeedKind, SpanRecord, TelemetryObserver,
        TraceAnalysis, TraceWriter, Worker, WorkerOutcome,
    };
    pub use hetsched_moea::{Engine, EngineConfig, EngineConfigBuilder};
    pub use hetsched_sim::Evaluator;
}
