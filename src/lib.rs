#![warn(missing_docs)]

//! Umbrella crate re-exporting the `hetsched` workspace.
//!
//! Most users should depend on [`hetsched_core`] (re-exported as
//! [`mod@core`]) and use [`core::Framework`]. The individual
//! subsystem crates are re-exported here so examples and integration tests
//! can reach every layer through a single dependency.

pub use hetsched_alloc as alloc;
pub use hetsched_analysis as analysis;
pub use hetsched_core as core;
pub use hetsched_data as data;
pub use hetsched_heuristics as heuristics;
pub use hetsched_moea as moea;
pub use hetsched_sim as sim;
pub use hetsched_stats as stats;
pub use hetsched_synth as synth;
pub use hetsched_workload as workload;
