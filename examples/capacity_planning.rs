//! Capacity planning with the framework: compare the energy/utility
//! trade-off curve of the data-set-2 system against two what-if variants —
//! decommissioning the special-purpose machines, and doubling the
//! overclocked i7s. This is the administrator workflow the paper's
//! conclusion targets ("take traces from any given system ... plot and
//! analyze the trade-offs").
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use hetsched::analysis::hypervolume;
use hetsched::data::MachineInventory;
use hetsched::prelude::*;
use hetsched::synth::builder::dataset2_system;
use hetsched::workload::TraceGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    let base_system = dataset2_system(&mut rng).expect("synthesis from shipped data");
    let trace = TraceGenerator::new(200, 900.0, base_system.task_type_count())
        .generate(&mut rng)
        .expect("valid generator");

    // Variant A: decommission the four special-purpose machines.
    let no_specials = base_system.with_inventory(
        MachineInventory::from_counts(vec![0, 0, 0, 0, 2, 3, 3, 3, 2, 4, 2, 5, 2])
            .expect("valid counts"),
    );

    // Variant B: double the overclocked i7 types (indices 10 and 12).
    let more_overclock = base_system
        .with_inventory(
            MachineInventory::from_counts(vec![1, 1, 1, 1, 2, 3, 3, 3, 2, 4, 4, 5, 4])
                .expect("valid counts"),
        )
        .expect("no task type depends on the added machines");

    let mut config = ExperimentConfig::scaled(DatasetId::Two, 0.0005);
    config.population = 50;

    let mut results: Vec<(&str, ParetoFront)> = Vec::new();
    let mut run = |label: &'static str, system: hetsched::data::HcSystem| {
        let fw = Framework::custom(system, trace.clone(), &config).expect("valid config");
        let front = fw.run().combined_front();
        println!(
            "{label:<22} {} machines | front {:>3} pts | energy [{:.2}, {:.2}] MJ | utility [{:.0}, {:.0}]",
            fw.system().machine_count(),
            front.len(),
            front.min_energy().unwrap().energy / 1e6,
            front.max_utility().unwrap().energy / 1e6,
            front.min_energy().unwrap().utility,
            front.max_utility().unwrap().utility,
        );
        results.push((label, front));
    };

    println!("running three what-if analyses on the same 200-task trace...\n");
    run("baseline (Table III)", base_system.clone());
    match no_specials {
        Ok(system) => run("no special machines", system),
        Err(e) => {
            println!("no special machines   infeasible: {e} (some task type runs only there)")
        }
    }
    run("more overclocked i7s", more_overclock);

    // Shared-reference hypervolume comparison.
    let ref_e = results
        .iter()
        .flat_map(|(_, f)| f.points())
        .map(|p| p.energy)
        .fold(0.0f64, f64::max)
        * 1.01;
    println!("\nhypervolume against a shared reference corner (bigger = better):");
    for (label, front) in &results {
        println!("  {label:<22} {:.4e}", hypervolume(front, 0.0, ref_e));
    }
    println!(
        "\nreading: special-purpose machines mostly shape the high-utility end\n\
         (their accelerated tasks finish 10x sooner); extra overclocked i7s\n\
         expand the high-energy/high-utility reach but move the energy floor\n\
         very little (the floor is set by the most efficient machines)."
    );
}
