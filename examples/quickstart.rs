//! Quickstart: run the paper's analysis on the real benchmark data set and
//! read the energy/utility trade-off off the resulting Pareto front.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hetsched::prelude::*;

fn main() {
    // Data set 1: the real 5×9 ETC/EPC matrices, one machine per type,
    // 250 tasks over 15 minutes — shrunk here to keep the example snappy.
    // Bump `scale` (and drop the task override) for paper-size runs.
    let mut config = ExperimentConfig::scaled(DatasetId::One, 0.01);
    config.tasks = 100;
    config.population = 50;

    let framework = Framework::new(&config).expect("data set 1 always builds");
    println!(
        "system: {} machines / {} machine types / {} task types; trace: {} tasks over {} s",
        framework.system().machine_count(),
        framework.system().machine_type_count(),
        framework.system().task_type_count(),
        framework.trace().len(),
        framework.trace().duration(),
    );
    println!(
        "running {} NSGA-II generations for 5 seeded populations...",
        config.generations()
    );

    let report = framework.run();

    // Per-population summary — the marker series of Fig. 3.
    for run in &report.runs {
        let front = run.final_front();
        let lo = front.min_energy().expect("non-empty front");
        let hi = front.max_utility().expect("non-empty front");
        println!(
            "  {:<24} {:>3} nondominated points | energy {:>7.3}..{:<7.3} MJ | utility {:>6.1}..{:<6.1}",
            run.seed.label(),
            front.len(),
            lo.energy / 1e6,
            hi.energy / 1e6,
            lo.utility,
            hi.utility,
        );
    }

    // The combined trade-off curve and its most-efficient region (Fig. 5).
    let combined = report.combined_front();
    println!("\ncombined Pareto front: {} allocations", combined.len());
    if let Some(upe) = report.upe() {
        println!(
            "max utility-per-energy: {:.2} utility/MJ — earn {:.1} utility for {:.3} MJ",
            upe.peak_upe * 1e6,
            upe.peak.utility,
            upe.peak.energy / 1e6,
        );
        println!(
            "efficient operating region: {} of {} front points within 5% of peak efficiency",
            upe.peak_region(0.05).len(),
            combined.len(),
        );
    }
}
