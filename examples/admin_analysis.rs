//! The system-administrator scenario the paper motivates: given a trace
//! from *your* system, find the trade-off curve, locate the efficient
//! operating region, and derive an energy budget for online scheduling.
//!
//! This example builds the data-set-2 style synthetic system (30 machines,
//! special-purpose accelerators), replays a morning-burst trace, and prints
//! the resulting recommendation.
//!
//! ```text
//! cargo run --release --example admin_analysis
//! ```

use hetsched::prelude::*;
use hetsched::synth::builder::dataset2_system;
use hetsched::workload::{ArrivalProcess, TraceGenerator, TufPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. The machine suite: 30 machines over 13 types (Table III), with
    //    synthetic task types derived from the real benchmark data.
    let system = dataset2_system(&mut rng).expect("synthetic system builds from shipped data");

    // 2. The workload: a bursty morning — three submission spikes over
    //    30 minutes, utility policy from the ESSC default tiers.
    let mut generator = TraceGenerator::new(150, 1800.0, system.task_type_count());
    generator.arrivals = ArrivalProcess::Bursty {
        bursts: 3,
        spread: 120.0,
    };
    generator.policy = TufPolicy::essc_default();
    let trace = generator
        .generate(&mut rng)
        .expect("valid generator parameters");

    // 3. Analyse: five seeded NSGA-II populations.
    let mut config = ExperimentConfig::scaled(DatasetId::Two, 0.002);
    config.population = 60;
    let framework = Framework::custom(system, trace, &config).expect("config validated");
    println!(
        "analysing {} tasks over {:.0} minutes on {} machines ({} generations/population)...",
        framework.trace().len(),
        framework.trace().duration() / 60.0,
        framework.system().machine_count(),
        config.generations(),
    );
    let report = framework.run();

    // 4. Read the trade-offs off the front.
    let front = report.combined_front();
    let lo = front.min_energy().expect("front non-empty");
    let hi = front.max_utility().expect("front non-empty");
    println!("\ntrade-off curve ({} allocations):", front.len());
    println!(
        "  frugal end : {:>8.3} MJ for {:>7.1} utility",
        lo.energy / 1e6,
        lo.utility
    );
    println!(
        "  greedy end : {:>8.3} MJ for {:>7.1} utility",
        hi.energy / 1e6,
        hi.utility
    );

    let upe = report.upe().expect("front non-empty");
    println!("\nefficient operating region (Fig. 5 analysis):");
    println!(
        "  peak efficiency {:.2} utility/MJ at ({:.3} MJ, {:.1} utility)",
        upe.peak_upe * 1e6,
        upe.peak.energy / 1e6,
        upe.peak.utility
    );

    // 5. Derive the recommendation: cap energy slightly above the peak —
    //    "energy constraints could then be used in conjunction with a
    //    separate online dynamic utility maximization heuristic".
    let budget = upe.peak.energy * 1.10;
    let reachable: Vec<_> = front
        .points()
        .iter()
        .filter(|p| p.energy <= budget)
        .collect();
    let best_under_budget = reachable
        .iter()
        .map(|p| p.utility)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("\nrecommendation:");
    println!(
        "  set the online scheduler's energy budget to {:.3} MJ (+10% over peak)",
        budget / 1e6
    );
    println!(
        "  {} front allocations stay under budget; best utility under budget: {:.1} ({:.0}% of the greedy end)",
        reachable.len(),
        best_under_budget,
        100.0 * best_under_budget / hi.utility
    );

    // 6. Sanity panel: what the greedy heuristics alone would have done.
    println!("\nfor reference, single-shot heuristics on this trace:");
    let mut ev = hetsched::sim::Evaluator::new(framework.system(), framework.trace());
    for kind in SeedKind::ALL {
        if let Some(alloc) = kind.seeds(framework.system(), framework.trace()).first() {
            let o = ev.evaluate(alloc);
            println!(
                "  {:<24} {:>8.3} MJ, {:>7.1} utility",
                kind.label(),
                o.energy / 1e6,
                o.utility
            );
        }
    }
}
