//! The predecessor formulation (the paper's reference [3]): a bag-of-tasks
//! bi-objective problem minimising makespan and energy. Running it next to
//! the utility formulation on the same machine suite shows what the move to
//! time-utility functions changes: the utility front *orders* tasks and
//! reacts to arrival times; the bag-of-tasks front only balances load.
//!
//! ```text
//! cargo run --release --example makespan_baseline
//! ```

use hetsched::alloc::{MakespanProblem, TaskBag};
use hetsched::analysis::knee_point;
use hetsched::data::real_system;
use hetsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let system = real_system();
    let mut rng = StdRng::seed_from_u64(99);
    let bag = TaskBag::random(&system, 120, &mut rng);
    println!(
        "bag of {} tasks over {} machines — minimising (makespan, energy)",
        bag.len(),
        system.machine_count()
    );

    let problem = MakespanProblem::new(&system, &bag);
    let engine = EngineConfig::builder()
        .population(60)
        .mutation_rate(0.7)
        .generations(300)
        .parallel(true)
        .build()
        .expect("valid engine config");
    let pop = engine.run(&problem, vec![], 5);

    // In this minimisation problem, map objectives to the front type by
    // treating -makespan as "utility" so the x-axis stays energy.
    let front = ParetoFront::from_points(pop.iter().map(|i| (-i.objectives[0], i.objectives[1])));
    println!("\nPareto front ({} points):", front.len());
    println!("{:>12} {:>12}", "makespan(s)", "energy(MJ)");
    for p in front.points().iter().rev().take(12) {
        println!("{:>12.1} {:>12.3}", -p.utility, p.energy / 1e6);
    }
    if front.len() > 12 {
        println!("  ... ({} more)", front.len() - 12);
    }

    let fastest = front.max_utility().expect("non-empty");
    let cheapest = front.min_energy().expect("non-empty");
    println!(
        "\nextremes: fastest {:.1} s at {:.3} MJ | cheapest {:.3} MJ at {:.1} s",
        -fastest.utility,
        fastest.energy / 1e6,
        cheapest.energy / 1e6,
        -cheapest.utility,
    );
    println!(
        "spending {:.0}% more energy buys a {:.0}% shorter makespan —",
        100.0 * (fastest.energy / cheapest.energy - 1.0),
        100.0 * (1.0 - (-fastest.utility) / (-cheapest.utility)),
    );
    println!("the same shape the INFOCOMP'12 predecessor paper reports.");

    if let Some((_, knee)) = knee_point(&front) {
        println!(
            "knee of the front: {:.1} s makespan at {:.3} MJ",
            -knee.utility,
            knee.energy / 1e6
        );
    }
}
