//! The paper's future-work items, implemented and demonstrated: DVFS
//! P-state selection and negligible-utility task dropping. Compares the
//! plain bi-objective front against the extended one on the same trace.
//!
//! ```text
//! cargo run --release --example dvfs_extension
//! ```

use hetsched::alloc::{AllocationProblem, DvfsAllocationProblem};
use hetsched::data::real_system;
use hetsched::heuristics::{min_energy, min_min_completion_time};
use hetsched::prelude::*;
use hetsched::sim::{DvfsAllocation, DvfsTable};
use hetsched::workload::TraceGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let system = real_system();
    let trace = TraceGenerator::new(80, 900.0, system.task_type_count())
        .generate(&mut StdRng::seed_from_u64(42))
        .expect("valid generator");
    let engine = EngineConfig::builder()
        .population(50)
        .mutation_rate(0.7)
        .generations(400)
        .parallel(true)
        .build()
        .expect("valid engine config");

    // Plain problem (the paper's §IV encoding).
    let plain = AllocationProblem::new(&system, &trace);
    let plain_pop = engine.run(
        &plain,
        vec![
            min_energy(&system, &trace),
            min_min_completion_time(&system, &trace),
        ],
        1,
    );
    let plain_front = ParetoFront::from_objectives(plain_pop.iter().map(|i| &i.objectives));

    // Extended problem: P-states (cubic power model) + task dropping.
    let table = DvfsTable::cubic_default();
    let ext = DvfsAllocationProblem::new(&system, &trace, table);
    let ext_seeds = vec![
        DvfsAllocation::nominal(min_energy(&system, &trace)),
        DvfsAllocation::nominal(min_min_completion_time(&system, &trace)),
    ];
    let ext_pop = engine.run(&ext, ext_seeds, 1);
    let ext_front = ParetoFront::from_objectives(ext_pop.iter().map(|i| &i.objectives));

    let bound = Evaluator::new(&system, &trace).min_possible_energy();
    println!("plain problem (assignment + order only):");
    summarize(&plain_front, bound);
    println!("\nextended problem (+ 4 P-states with P ∝ f³, + task dropping):");
    summarize(&ext_front, bound);

    let plain_lo = plain_front.min_energy().expect("non-empty").energy;
    let ext_under = ext_front
        .points()
        .iter()
        .filter(|p| p.utility > 0.0 && p.energy < plain_lo)
        .count();
    println!(
        "\n{} extended-front allocations earn positive utility below the plain\n\
         front's minimum energy — DVFS extends the trade-off curve leftward,\n\
         exactly the gain the paper's future-work section anticipates.",
        ext_under
    );
}

fn summarize(front: &ParetoFront, plain_energy_bound: f64) {
    let lo = front.min_energy().expect("non-empty front");
    let hi = front.max_utility().expect("non-empty front");
    println!(
        "  {:>3} points | energy {:>7.3}..{:<7.3} MJ | utility {:>6.1}..{:<6.1} | plain bound {:.3} MJ",
        front.len(),
        lo.energy / 1e6,
        hi.energy / 1e6,
        lo.utility,
        hi.utility,
        plain_energy_bound / 1e6,
    );
}
