//! The §III-D2 data-creation pipeline in isolation: grow the real 5×9
//! matrices to progressively larger synthetic systems and verify that the
//! heterogeneity measures (mean, CV, skewness, kurtosis) are preserved at
//! every size.
//!
//! ```text
//! cargo run --release --example synthetic_scaling
//! ```

use hetsched::data::{real_etc, MachineTypeId, TaskTypeId, TypeMatrix};
use hetsched::stats::Moments;
use hetsched::synth::{DatasetBuilder, HeterogeneityReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let real = real_etc().0;
    let real_avgs: Vec<f64> = (0..real.task_types())
        .map(|t| {
            real.row_average(TaskTypeId(t as u16))
                .expect("real rows are finite")
        })
        .collect();
    let target = Moments::from_sample(&real_avgs).expect("five distinct row averages");
    println!("real data row-average heterogeneity (5 task types):");
    println!(
        "  mean {:.1} s | CV {:.3} | skewness {:+.3} | kurtosis {:+.3}",
        target.mean,
        target.coefficient_of_variation(),
        target.skewness,
        target.kurtosis
    );

    println!(
        "\n{:>6} {:>10} {:>8} {:>10} {:>10} {:>12}",
        "types", "mean(s)", "CV", "skewness", "kurtosis", "worst-ratio-d"
    );
    for &n in &[25usize, 100, 400, 1600] {
        let mut rng = StdRng::seed_from_u64(99);
        let sys = DatasetBuilder::from_real()
            .new_task_types(n)
            .build(&mut rng)
            .expect("generation succeeds from shipped data");

        // Collect the synthetic rows only (skip the 5 embedded real ones).
        let mut synth = TypeMatrix::filled(n, 9, 0.0);
        for t in 0..n {
            for m in 0..9 {
                synth.set(
                    TaskTypeId(t as u16),
                    MachineTypeId(m as u16),
                    sys.etc()
                        .time(TaskTypeId((t + 5) as u16), MachineTypeId(m as u16)),
                );
            }
        }
        let avgs: Vec<f64> = (0..n)
            .map(|t| synth.row_average(TaskTypeId(t as u16)).expect("finite"))
            .collect();
        let m = Moments::from_sample(&avgs).expect("distinct values");
        let report = HeterogeneityReport::compare(&real, &synth).expect("comparable matrices");
        println!(
            "{:>6} {:>10.1} {:>8.3} {:>+10.3} {:>+10.3} {:>12.3}",
            n,
            m.mean,
            m.coefficient_of_variation(),
            m.skewness,
            m.kurtosis,
            report.worst_ratio_discrepancy()
        );
    }

    println!("\nthe sampled sets track the real measures; residual drift in the");
    println!("shape statistics comes from clamping the Gram-Charlier density at");
    println!("zero (documented in DESIGN.md) and shrinks as more types are drawn.");
}
