//! The paper's second experiment group: how do the different seeding
//! heuristics affect the evolution of the Pareto fronts? Prints a
//! hypervolume-by-iteration table and the coverage of the random population
//! by each seeded one (the Figs. 3/4/6 story in numbers).
//!
//! ```text
//! cargo run --release --example seeding_comparison
//! ```

use hetsched::prelude::*;

fn main() {
    let mut config = ExperimentConfig::scaled(DatasetId::One, 0.02);
    config.tasks = 150;
    config.population = 60;

    let framework = Framework::new(&config).expect("data set 1 builds");
    println!(
        "data set 1, {} tasks, population {}, snapshots {:?}",
        config.tasks, config.population, config.snapshots
    );
    let report = framework.run();

    // Hypervolume per population per snapshot (bigger = better front).
    println!("\nhypervolume (×10⁹, shared reference point):");
    print!("{:<26}", "population");
    for s in &report.snapshots {
        print!("{s:>12}");
    }
    println!();
    for (seed, hvs) in report.hypervolume_table() {
        print!("{:<26}", seed.label());
        for hv in hvs {
            print!("{:>12.3}", hv / 1e9);
        }
        println!();
    }

    // Coverage of the random population's final front by each seeded one.
    let random_front = report
        .run(SeedKind::Random)
        .expect("random population configured")
        .final_front()
        .clone();
    println!("\ncoverage of the random population's final front:");
    for run in &report.runs {
        if run.seed == SeedKind::Random {
            continue;
        }
        let c = run.final_front().coverage_of(&random_front);
        println!("  C({:<24}, random) = {:.2}", run.seed.label(), c);
    }

    println!(
        "\nearly-snapshot story (first snapshot, {} iterations):",
        report.snapshots[0]
    );
    for run in &report.runs {
        let front = &run.fronts[0].1;
        let lo = front.min_energy().expect("non-empty");
        let hi = front.max_utility().expect("non-empty");
        println!(
            "  {:<24} energy {:>7.3} MJ .. utility {:>6.1}",
            run.seed.label(),
            lo.energy / 1e6,
            hi.utility
        );
    }
    println!("\nreading: the min-energy population starts pinned to the energy");
    println!("optimum, min-min to the utility end; with more iterations all");
    println!("populations converge toward one front (the paper's Figs. 3/4/6).");
}
