//! Property-based tests for the rolling-horizon substrate: arrival-stream
//! determinism and window composition, the budget invariant at every
//! horizon, and frozen-task immutability — over randomized rates, bursts,
//! seeds, horizons, and policies rather than the unit tests' pinned
//! values.

use hetsched_data::real_system;
use hetsched_sim::{HorizonConfig, HorizonScheduler, OnlinePolicy, PolicyReoptimizer, Reoptimize};
use hetsched_workload::{ArrivalSpec, ArrivalStream, Burst, Task, TufPolicy};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = ArrivalSpec> {
    // The vendored proptest has no `prop::option::of`; an explicit coin
    // flip selects between plain-Poisson and bursty specs.
    (0.5f64..3.0, 0u8..2, 1.0f64..5.0, 2.0f64..30.0).prop_map(|(rate, bursty, factor, period)| {
        ArrivalSpec {
            rate,
            burst: (bursty == 1).then_some(Burst { factor, period }),
        }
    })
}

fn arb_seed() -> impl Strategy<Value = u64> {
    0u64..u64::MAX
}

fn arb_policy() -> impl Strategy<Value = OnlinePolicy> {
    (0u8..2).prop_map(|i| {
        if i == 0 {
            OnlinePolicy::MaxUtility
        } else {
            OnlinePolicy::GuptaGreedy
        }
    })
}

/// Runs a policy stream for `ticks` horizons, returning the scheduler and
/// the per-tick frozen-set snapshots.
fn run_stream(
    spec: ArrivalSpec,
    seed: u64,
    horizon: f64,
    budget: f64,
    ticks: usize,
    policy: OnlinePolicy,
) -> (HorizonScheduler, Vec<Vec<hetsched_sim::FrozenTask>>) {
    let system = real_system();
    let mut arrivals = ArrivalStream::new(
        spec,
        seed,
        system.task_type_count(),
        TufPolicy::essc_default(),
    );
    let mut sched = HorizonScheduler::new(HorizonConfig {
        horizon,
        energy_budget: budget,
    })
    .unwrap();
    let mut reopt = PolicyReoptimizer::new(policy);
    let mut frozen_history = Vec::new();
    for k in 0..ticks {
        let tasks = arrivals.until((k + 1) as f64 * horizon).unwrap();
        sched.feed(tasks).unwrap();
        sched.tick(&system, &mut reopt).unwrap();
        frozen_history.push(sched.frozen().to_vec());
    }
    (sched, frozen_history)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same `(spec, seed)` always yields the identical stream, and
    /// two disjoint adjacent windows concatenate to exactly the combined
    /// window — the composition the manifest-resume path relies on.
    #[test]
    fn arrival_streams_are_deterministic_and_compose(
        spec in arb_spec(),
        seed in arb_seed(),
        end in 10.0f64..60.0,
        split_frac in 0.05f64..0.95,
    ) {
        let policy = TufPolicy::essc_default();
        let whole = spec.generate(seed, 0.0..end, 5, &policy).unwrap();
        let again = spec.generate(seed, 0.0..end, 5, &policy).unwrap();
        prop_assert_eq!(&whole, &again, "same seed must replay bit-identically");

        let split = end * split_frac;
        let mut merged: Vec<Task> = spec.generate(seed, 0.0..split, 5, &policy).unwrap();
        merged.extend(spec.generate(seed, split..end, 5, &policy).unwrap());
        prop_assert_eq!(&merged, &whole, "windows must compose exactly");

        // The stateful cursor is the same sampler behind a frontier.
        let mut stream = ArrivalStream::new(spec, seed, 5, policy.clone());
        let mut fed: Vec<Task> = stream.until(split).unwrap();
        fed.extend(stream.until(end).unwrap());
        prop_assert_eq!(&fed, &whole);

        // A cursor resumed mid-stream continues it bit-identically.
        let mut resumed = ArrivalStream::new(spec, seed, 5, policy);
        resumed.seek(split);
        let tail = resumed.until(end).unwrap();
        prop_assert_eq!(&whole[whole.len() - tail.len()..], &tail[..]);
    }

    /// The committed schedule's energy stays within the budget at *every*
    /// tick, and every fed task is accounted for as scheduled or rejected.
    #[test]
    fn budget_invariant_holds_at_every_horizon(
        spec in arb_spec(),
        seed in arb_seed(),
        horizon in 6.0f64..15.0,
        ticks in 2usize..4,
        frac in 0.2f64..0.9,
        policy in arb_policy(),
    ) {
        let (free, _) = run_stream(spec, seed, horizon, f64::INFINITY, ticks, policy);
        let total = free.records().last().unwrap().energy;
        if total <= 0.0 {
            return Ok(());
        }

        let budget = total * frac;
        let (capped, _) = run_stream(spec, seed, horizon, budget, ticks, policy);
        for r in capped.records() {
            prop_assert!(
                r.energy <= budget,
                "tick {} committed {} over budget {budget}",
                r.tick,
                r.energy
            );
        }
        let last = capped.records().last().unwrap();
        prop_assert_eq!(last.tasks + capped.rejected().len(), capped.task_count());
        // Rejected ids never appear in the committed timeline.
        for r in capped.timeline() {
            prop_assert!(!capped.rejected().contains(&r.task.0));
        }
    }

    /// Once frozen, a task's machine and start time are pinned bit-for-bit
    /// in every later horizon, and its committed timeline entry replays
    /// that start exactly. Frozen tasks never thaw and are never rejected.
    #[test]
    fn frozen_tasks_are_immutable_across_horizons(
        spec in arb_spec(),
        seed in arb_seed(),
        horizon in 6.0f64..15.0,
        ticks in 3usize..5,
        policy in arb_policy(),
    ) {
        let (sched, history) = run_stream(spec, seed, horizon, f64::INFINITY, ticks, policy);
        for window in history.windows(2) {
            let (earlier, later) = (&window[0], &window[1]);
            for f in earlier {
                let survivor = later
                    .iter()
                    .find(|g| g.task == f.task);
                prop_assert!(survivor.is_some(), "frozen task {} thawed", f.task);
                let survivor = survivor.unwrap();
                prop_assert_eq!(survivor.machine, f.machine);
                prop_assert_eq!(
                    survivor.start.to_bits(),
                    f.start.to_bits(),
                    "frozen task {} start drifted from {} to {}",
                    f.task,
                    f.start,
                    survivor.start
                );
            }
        }
        // The final committed timeline replays every frozen start.
        for f in sched.frozen() {
            prop_assert!(!sched.rejected().contains(&f.task.0), "frozen task {} rejected", f.task);
            let entry = sched
                .timeline()
                .iter()
                .find(|r| r.task == f.task)
                .expect("frozen tasks stay scheduled");
            prop_assert_eq!(entry.machine, f.machine);
            prop_assert_eq!(entry.start.to_bits(), f.start.to_bits());
        }
    }
}

/// Non-proptest sanity anchor: a stream that freezes nothing would make
/// the immutability property vacuous — pin that the mechanics do freeze.
#[test]
fn streams_actually_freeze_tasks() {
    let spec = ArrivalSpec::poisson(2.0).unwrap();
    let (sched, history) = run_stream(spec, 11, 10.0, f64::INFINITY, 3, OnlinePolicy::MaxUtility);
    assert!(!sched.frozen().is_empty());
    assert!(history.iter().any(|h| !h.is_empty()));
    // Silence the unused-trait-import lint pathway by exercising the
    // reoptimizer trait object form the scheduler consumes.
    let mut reopt = PolicyReoptimizer::new(OnlinePolicy::GuptaGreedy);
    let _: &mut dyn Reoptimize = &mut reopt;
}
