//! Property suite: the incremental delta evaluator is **bit-identical** to
//! the reference evaluator.
//!
//! Every comparison here uses `f64::total_cmp`, not a tolerance — the delta
//! path's contract (see `hetsched_sim::delta`) is that it performs exactly
//! the same float operations as `Evaluator::evaluate`, so the results must
//! match to the last bit on arbitrary genomes, arbitrary move sequences,
//! and degenerate inputs (idle machines, everything on one machine, no-op
//! moves). The suite runs against the real 9-machine dataset and against
//! inventory-derived variants (a 3-machine subset and a 50-machine
//! synthetic expansion), with and without the `delta-eval` cargo feature.

use hetsched_data::{real_system, HcSystem, MachineId, MachineInventory};
use hetsched_sim::{genome_fingerprint, Allocation, DeltaEval, Evaluator, Outcome, TaskMove};
use hetsched_workload::{Trace, TraceGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three systems the suite exercises: the paper's real 9×5 dataset, a
/// 3-machine subset (one of each of the first three types), and a
/// 50-machine synthetic expansion.
fn system(kind: u8) -> HcSystem {
    let base = real_system();
    match kind % 3 {
        0 => base,
        1 => base
            .with_inventory(MachineInventory::from_counts(vec![1, 1, 1, 0, 0, 0, 0, 0, 0]).unwrap())
            .unwrap(),
        _ => base
            .with_inventory(MachineInventory::from_counts(vec![6, 6, 6, 6, 6, 5, 5, 5, 5]).unwrap())
            .unwrap(),
    }
}

fn trace_for(system: &HcSystem, tasks: usize, seed: u64) -> Trace {
    TraceGenerator::new(tasks, 600.0, system.task_type_count())
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

/// Uniform random genome. All machines in the systems above are feasible
/// for every task type (the real ETC matrix is fully finite), so a uniform
/// machine draw is always valid.
fn random_genome(rng: &mut StdRng, system: &HcSystem, tasks: usize) -> Allocation {
    Allocation {
        machine: (0..tasks)
            .map(|_| MachineId(rng.gen_range(0..system.machine_count() as u32)))
            .collect(),
        order: (0..tasks).map(|_| rng.gen_range(0..1_000u32)).collect(),
    }
}

fn random_move(rng: &mut StdRng, system: &HcSystem, tasks: usize) -> TaskMove {
    TaskMove {
        task: rng.gen_range(0..tasks as u32),
        machine: MachineId(rng.gen_range(0..system.machine_count() as u32)),
        order: rng.gen_range(0..1_000u32),
    }
}

fn apply_to_genome(genome: &mut Allocation, moves: &[TaskMove]) {
    for mv in moves {
        genome.machine[mv.task as usize] = mv.machine;
        genome.order[mv.task as usize] = mv.order;
    }
}

#[track_caller]
fn assert_bit_identical(delta: Outcome, reference: Outcome) {
    assert!(
        delta.utility.total_cmp(&reference.utility).is_eq()
            && delta.energy.total_cmp(&reference.energy).is_eq()
            && delta.makespan.total_cmp(&reference.makespan).is_eq(),
        "delta {delta:?} != reference {reference:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One move at a time, chained: after every single move the cache's
    /// outcome equals a from-scratch reference evaluation of the mutated
    /// genome, bit for bit.
    #[test]
    fn chained_single_moves_match_reference(
        kind in 0u8..3,
        tasks in 1usize..40,
        steps in 1usize..50,
        seed in 0u64..1_000_000,
    ) {
        let sys = system(kind);
        let trace = trace_for(&sys, tasks, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let mut genome = random_genome(&mut rng, &sys, tasks);
        let mut delta = DeltaEval::new(&sys, &trace, &genome);
        let mut reference = Evaluator::new(&sys, &trace);
        assert_bit_identical(delta.outcome(), reference.evaluate(&genome));
        for _ in 0..steps {
            let mv = random_move(&mut rng, &sys, tasks);
            let got = delta.apply_moves(&[mv]);
            apply_to_genome(&mut genome, &[mv]);
            prop_assert!(delta.genome() == &genome);
            assert_bit_identical(got, reference.evaluate(&genome));
        }
    }

    /// Whole batches of moves (including repeated edits to the same task,
    /// where the last move wins) applied in one `apply` call.
    #[test]
    fn batched_moves_match_reference(
        kind in 0u8..3,
        tasks in 1usize..40,
        batches in prop::collection::vec(1usize..12, 1..8),
        seed in 0u64..1_000_000,
    ) {
        let sys = system(kind);
        let trace = trace_for(&sys, tasks, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
        let mut genome = random_genome(&mut rng, &sys, tasks);
        let mut delta = DeltaEval::new(&sys, &trace, &genome);
        let mut reference = Evaluator::new(&sys, &trace);
        for batch in batches {
            let moves: Vec<TaskMove> =
                (0..batch).map(|_| random_move(&mut rng, &sys, tasks)).collect();
            let base = genome.clone();
            apply_to_genome(&mut genome, &moves);
            // `apply` checks the declared base against the cache state.
            let got = delta.apply(&base, &moves);
            prop_assert!(delta.genome() == &genome);
            assert_bit_identical(got, reference.evaluate(&genome));
        }
    }

    /// Moves that restate a task's current placement change nothing: the
    /// outcome stays bitwise equal to the reference on the same genome.
    #[test]
    fn noop_moves_are_identity(
        kind in 0u8..3,
        tasks in 1usize..30,
        picks in prop::collection::vec(0usize..30, 1..10),
        seed in 0u64..1_000_000,
    ) {
        let sys = system(kind);
        let trace = trace_for(&sys, tasks, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0A11);
        let genome = random_genome(&mut rng, &sys, tasks);
        let mut delta = DeltaEval::new(&sys, &trace, &genome);
        let before = delta.outcome();
        let moves: Vec<TaskMove> = picks
            .iter()
            .map(|&p| {
                let t = p % tasks;
                TaskMove {
                    task: t as u32,
                    machine: genome.machine[t],
                    order: genome.order[t],
                }
            })
            .collect();
        let after = delta.apply(&genome, &moves);
        prop_assert!(delta.genome() == &genome);
        assert_bit_identical(after, before);
        assert_bit_identical(after, Evaluator::new(&sys, &trace).evaluate(&genome));
    }

    /// Degenerate pile-up: every task on one machine (all other queues
    /// empty), then moves that only reshuffle the order keys.
    #[test]
    fn single_machine_pileup_matches_reference(
        kind in 0u8..3,
        tasks in 1usize..25,
        target in 0u32..50,
        steps in 1usize..20,
        seed in 0u64..1_000_000,
    ) {
        let sys = system(kind);
        let machine = MachineId(target % sys.machine_count() as u32);
        let trace = trace_for(&sys, tasks, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EAF);
        let mut genome = Allocation {
            machine: vec![machine; tasks],
            order: (0..tasks).map(|_| rng.gen_range(0..100u32)).collect(),
        };
        let mut delta = DeltaEval::new(&sys, &trace, &genome);
        let mut reference = Evaluator::new(&sys, &trace);
        assert_bit_identical(delta.outcome(), reference.evaluate(&genome));
        for _ in 0..steps {
            let mv = TaskMove {
                task: rng.gen_range(0..tasks as u32),
                machine,
                order: rng.gen_range(0..100u32),
            };
            let got = delta.apply_moves(&[mv]);
            apply_to_genome(&mut genome, &[mv]);
            assert_bit_identical(got, reference.evaluate(&genome));
        }
    }

    /// The incremental fingerprint always agrees with a from-scratch
    /// fingerprint of the tracked genome.
    #[test]
    fn fingerprint_is_path_independent(
        kind in 0u8..3,
        tasks in 1usize..30,
        steps in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let sys = system(kind);
        let trace = trace_for(&sys, tasks, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1F0);
        let mut genome = random_genome(&mut rng, &sys, tasks);
        let mut delta = DeltaEval::new(&sys, &trace, &genome);
        for _ in 0..steps {
            let mv = random_move(&mut rng, &sys, tasks);
            delta.apply_moves(&[mv]);
            apply_to_genome(&mut genome, &[mv]);
            prop_assert_eq!(delta.fingerprint(), genome_fingerprint(&genome));
        }
    }
}

/// `Evaluator::evaluate_delta` — the pooled fast path the engines call —
/// agrees bit-for-bit with full re-evaluation, across cache hits, misses,
/// and interleaved base genomes.
#[cfg(feature = "delta-eval")]
mod fast_path {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn evaluate_delta_matches_evaluate(
            kind in 0u8..3,
            tasks in 1usize..40,
            children in 1usize..30,
            seed in 0u64..1_000_000,
        ) {
            let sys = system(kind);
            let trace = trace_for(&sys, tasks, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFA57);
            let mut ev = Evaluator::new(&sys, &trace);
            let mut reference = Evaluator::new(&sys, &trace);
            // A small pool of live "parents", as a population would hold.
            let mut bases: Vec<Allocation> =
                (0..4).map(|_| random_genome(&mut rng, &sys, tasks)).collect();
            for i in 0..children {
                let slot = i % bases.len();
                let base = bases[slot].clone();
                let moves: Vec<TaskMove> = (0..rng.gen_range(1..4))
                    .map(|_| random_move(&mut rng, &sys, tasks))
                    .collect();
                let mut child = base.clone();
                apply_to_genome(&mut child, &moves);
                let got = ev.evaluate_delta(&base, &child, &moves);
                assert_bit_identical(got, reference.evaluate(&child));
                bases[slot] = child;
            }
        }
    }
}

/// Fixed-shape degenerate cases that random generation could miss.
mod degenerate {
    use super::*;

    /// A one-task trace: moving the only task around machines and order
    /// keys stays bit-identical to the reference.
    #[test]
    fn single_task_trace() {
        for kind in 0u8..3 {
            let sys = system(kind);
            let trace = trace_for(&sys, 1, 7);
            let mut genome = Allocation {
                machine: vec![MachineId(0)],
                order: vec![0],
            };
            let mut delta = DeltaEval::new(&sys, &trace, &genome);
            let mut reference = Evaluator::new(&sys, &trace);
            for m in 0..sys.machine_count() as u32 {
                let mv = TaskMove {
                    task: 0,
                    machine: MachineId(m),
                    order: m,
                };
                let got = delta.apply_moves(&[mv]);
                apply_to_genome(&mut genome, &[mv]);
                assert_bit_identical(got, reference.evaluate(&genome));
            }
        }
    }

    /// Emptying a machine's queue entirely (and refilling it) round-trips.
    #[test]
    fn drain_and_refill_queue() {
        let sys = system(0);
        let tasks = 6;
        let trace = trace_for(&sys, tasks, 11);
        let mut genome = Allocation {
            machine: vec![MachineId(2); tasks],
            order: (0..tasks as u32).collect(),
        };
        let mut delta = DeltaEval::new(&sys, &trace, &genome);
        let mut reference = Evaluator::new(&sys, &trace);
        // Drain machine 2 one task at a time onto machine 5.
        for t in 0..tasks as u32 {
            let mv = TaskMove {
                task: t,
                machine: MachineId(5),
                order: t,
            };
            let got = delta.apply_moves(&[mv]);
            apply_to_genome(&mut genome, &[mv]);
            assert_bit_identical(got, reference.evaluate(&genome));
        }
        // Refill in reverse order.
        for t in (0..tasks as u32).rev() {
            let mv = TaskMove {
                task: t,
                machine: MachineId(2),
                order: tasks as u32 - t,
            };
            let got = delta.apply_moves(&[mv]);
            apply_to_genome(&mut genome, &[mv]);
            assert_bit_identical(got, reference.evaluate(&genome));
        }
    }

    /// Order-key ties break by task id identically on both paths.
    #[test]
    fn tied_order_keys() {
        let sys = system(1);
        let tasks = 8;
        let trace = trace_for(&sys, tasks, 13);
        let genome = Allocation {
            machine: (0..tasks)
                .map(|i| MachineId((i % sys.machine_count()) as u32))
                .collect(),
            order: vec![42; tasks],
        };
        let mut delta = DeltaEval::new(&sys, &trace, &genome);
        let mut reference = Evaluator::new(&sys, &trace);
        assert_bit_identical(delta.outcome(), reference.evaluate(&genome));
        // Move everything onto one machine, still all tied.
        let moves: Vec<TaskMove> = (0..tasks as u32)
            .map(|t| TaskMove {
                task: t,
                machine: MachineId(0),
                order: 42,
            })
            .collect();
        let got = delta.apply(&genome, &moves);
        let piled = Allocation {
            machine: vec![MachineId(0); tasks],
            order: vec![42; tasks],
        };
        assert_bit_identical(got, reference.evaluate(&piled));
    }
}
