//! An online, energy-budgeted utility-maximisation scheduler — the
//! downstream consumer the paper's conclusion sketches: *"These energy
//! constraints could then be used in conjunction with a separate online
//! dynamic utility maximization heuristic."*
//!
//! The scheduler replays the trace in arrival order *without* lookahead:
//! at each arrival it greedily maps the task to the feasible machine that
//! maximises the utility it would earn given current queue states, subject
//! to the remaining energy budget. Tasks that cannot fit in the budget (or
//! whose best achievable utility is below `drop_threshold`) are rejected.
//!
//! Comparing the online result to the offline Pareto front at the same
//! energy quantifies the price of not knowing the future — the analysis
//! the `admin_analysis` example performs.

use crate::allocation::Allocation;
use crate::detail::DetailedOutcome;
use crate::Result;
use hetsched_data::{HcSystem, MachineId};
use hetsched_workload::Trace;
use serde::{Deserialize, Serialize};

/// Online scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Total energy budget in joules (`f64::INFINITY` = unconstrained).
    pub energy_budget: f64,
    /// Reject a task when even its best placement earns less utility than
    /// this (0.0 keeps everything the budget allows).
    pub drop_threshold: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            energy_budget: f64::INFINITY,
            drop_threshold: 0.0,
        }
    }
}

/// The outcome of an online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// Total utility earned by accepted tasks.
    pub utility: f64,
    /// Total energy consumed (≤ the budget).
    pub energy: f64,
    /// Completion time of the last accepted task.
    pub makespan: f64,
    /// Number of tasks accepted.
    pub accepted: usize,
    /// Indices of rejected tasks (budget exhausted or below threshold).
    pub rejected: Vec<u32>,
}

/// Runs the online greedy scheduler over a trace.
pub fn schedule_online(system: &HcSystem, trace: &Trace, config: &OnlineConfig) -> OnlineOutcome {
    let mut machine_free = vec![0.0f64; system.machine_count()];
    let mut remaining = config.energy_budget;
    let (mut utility, mut energy, mut makespan) = (0.0, 0.0, 0.0f64);
    let mut accepted = 0usize;
    let mut rejected = Vec::new();

    // Tasks are visited strictly in arrival order: no future knowledge.
    for task in trace.tasks() {
        let mut best: Option<(f64, MachineId, f64, f64)> = None; // (u, m, e, finish)
        for &m in system.feasible_machines(task.task_type) {
            let e = system.energy(task.task_type, m);
            if e > remaining {
                continue;
            }
            let start = machine_free[m.index()].max(task.arrival);
            let finish = start + system.exec_time(task.task_type, m);
            let u = task.tuf.utility(finish - task.arrival);
            let better = match best {
                None => true,
                // Maximise utility; break ties toward cheaper energy.
                Some((bu, _, be, _)) => u > bu || (u == bu && e < be),
            };
            if better {
                best = Some((u, m, e, finish));
            }
        }
        match best {
            Some((u, m, e, finish)) if u >= config.drop_threshold => {
                machine_free[m.index()] = finish;
                remaining -= e;
                utility += u;
                energy += e;
                makespan = makespan.max(finish);
                accepted += 1;
            }
            _ => rejected.push(task.id.0),
        }
    }
    OnlineOutcome {
        utility,
        energy,
        makespan,
        accepted,
        rejected,
    }
}

/// Replays the online decisions as a static [`Allocation`] over the
/// *accepted* subset, for Gantt inspection. Rejected tasks are mapped to
/// their minimum-energy machine but marked in the returned list so callers
/// can exclude them; the allocation itself stays feasible.
///
/// # Errors
///
/// Never fails for a valid system/trace; the signature matches the other
/// evaluation entry points.
pub fn online_as_detailed(
    system: &HcSystem,
    trace: &Trace,
    config: &OnlineConfig,
) -> Result<(DetailedOutcome, OnlineOutcome)> {
    let outcome = schedule_online(system, trace, config);
    // Rebuild the greedy assignment deterministically.
    let mut machine_free = vec![0.0f64; system.machine_count()];
    let mut remaining = config.energy_budget;
    let mut machines = Vec::with_capacity(trace.len());
    for task in trace.tasks() {
        let mut best: Option<(f64, MachineId, f64, f64)> = None;
        for &m in system.feasible_machines(task.task_type) {
            let e = system.energy(task.task_type, m);
            if e > remaining {
                continue;
            }
            let start = machine_free[m.index()].max(task.arrival);
            let finish = start + system.exec_time(task.task_type, m);
            let u = task.tuf.utility(finish - task.arrival);
            let better = match best {
                None => true,
                Some((bu, _, be, _)) => u > bu || (u == bu && e < be),
            };
            if better {
                best = Some((u, m, e, finish));
            }
        }
        match best {
            Some((u, m, e, finish)) if u >= config.drop_threshold => {
                machine_free[m.index()] = finish;
                remaining -= e;
                machines.push(m);
            }
            _ => {
                // Placeholder placement for the detailed view.
                let fallback = *system
                    .feasible_machines(task.task_type)
                    .iter()
                    .min_by(|&&a, &&b| {
                        system
                            .energy(task.task_type, a)
                            .total_cmp(&system.energy(task.task_type, b))
                    })
                    .expect("validated system");
                machines.push(fallback);
            }
        }
    }
    let detailed =
        DetailedOutcome::evaluate(system, trace, &Allocation::with_arrival_order(machines))?;
    Ok((detailed, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(61))
            .unwrap();
        (sys, trace)
    }

    #[test]
    fn unconstrained_run_accepts_everything() {
        let (sys, trace) = setup(50);
        let out = schedule_online(&sys, &trace, &OnlineConfig::default());
        assert_eq!(out.accepted, 50);
        assert!(out.rejected.is_empty());
        assert!(out.utility > 0.0);
    }

    #[test]
    fn budget_is_respected_exactly() {
        let (sys, trace) = setup(80);
        let unconstrained = schedule_online(&sys, &trace, &OnlineConfig::default());
        let budget = unconstrained.energy * 0.5;
        let out = schedule_online(
            &sys,
            &trace,
            &OnlineConfig {
                energy_budget: budget,
                drop_threshold: 0.0,
            },
        );
        assert!(out.energy <= budget + 1e-9);
        assert!(out.accepted < 80, "half the budget cannot fit everything");
        assert_eq!(out.accepted + out.rejected.len(), 80);
    }

    #[test]
    fn tighter_budgets_earn_monotonically_less() {
        let (sys, trace) = setup(60);
        let full = schedule_online(&sys, &trace, &OnlineConfig::default());
        let mut prev_utility = full.utility + 1.0;
        for frac in [1.0, 0.6, 0.3, 0.1] {
            let out = schedule_online(
                &sys,
                &trace,
                &OnlineConfig {
                    energy_budget: full.energy * frac,
                    drop_threshold: 0.0,
                },
            );
            assert!(out.utility <= prev_utility + 1e-9, "frac {frac}");
            prev_utility = out.utility;
        }
    }

    #[test]
    fn zero_budget_rejects_everything() {
        let (sys, trace) = setup(10);
        let out = schedule_online(
            &sys,
            &trace,
            &OnlineConfig {
                energy_budget: 0.0,
                drop_threshold: 0.0,
            },
        );
        assert_eq!(out.accepted, 0);
        assert_eq!(out.rejected.len(), 10);
        assert_eq!(out.energy, 0.0);
        assert_eq!(out.utility, 0.0);
    }

    #[test]
    fn drop_threshold_rejects_low_value_placements() {
        let (sys, trace) = setup(40);
        let all = schedule_online(&sys, &trace, &OnlineConfig::default());
        let picky = schedule_online(
            &sys,
            &trace,
            &OnlineConfig {
                energy_budget: f64::INFINITY,
                drop_threshold: 2.0,
            },
        );
        assert!(picky.accepted <= all.accepted);
        // Every accepted task contributed at least the threshold.
        assert!(picky.utility >= picky.accepted as f64 * 2.0 - 1e-9);
    }

    #[test]
    fn detailed_replay_matches_totals_when_nothing_rejected() {
        let (sys, trace) = setup(30);
        let cfg = OnlineConfig::default();
        let (detailed, outcome) = online_as_detailed(&sys, &trace, &cfg).unwrap();
        assert_eq!(outcome.accepted, 30);
        assert!((detailed.utility - outcome.utility).abs() < 1e-9);
        assert!((detailed.energy - outcome.energy).abs() < 1e-9);
    }

    #[test]
    fn online_never_beats_offline_upper_bound() {
        let (sys, trace) = setup(50);
        let out = schedule_online(&sys, &trace, &OnlineConfig::default());
        assert!(out.utility <= trace.max_possible_utility() + 1e-9);
    }
}
