//! An online, energy-budgeted utility-maximisation scheduler — the
//! downstream consumer the paper's conclusion sketches: *"These energy
//! constraints could then be used in conjunction with a separate online
//! dynamic utility maximization heuristic."*
//!
//! The scheduler replays the trace in arrival order *without* lookahead:
//! at each arrival it greedily maps the task to the feasible machine that
//! maximises the utility it would earn given current queue states, subject
//! to the remaining energy budget. Tasks that cannot fit in the budget (or
//! whose best achievable utility is below `drop_threshold`) are rejected.
//!
//! Comparing the online result to the offline Pareto front at the same
//! energy quantifies the price of not knowing the future — the analysis
//! the `admin_analysis` example performs.

use crate::allocation::Allocation;
use crate::detail::DetailedOutcome;
use crate::Result;
use hetsched_data::{HcSystem, MachineId};
use hetsched_workload::Trace;
use serde::{Deserialize, Serialize};

/// Online scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Total energy budget in joules (`f64::INFINITY` = unconstrained).
    pub energy_budget: f64,
    /// Reject a task when even its best placement earns less utility than
    /// this (0.0 keeps everything the budget allows).
    pub drop_threshold: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            energy_budget: f64::INFINITY,
            drop_threshold: 0.0,
        }
    }
}

/// The per-arrival placement rule an online run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OnlinePolicy {
    /// Greedy utility maximisation: place each task on the feasible
    /// machine that earns the most utility given current queue states,
    /// ties broken toward cheaper energy (the paper's sketched heuristic).
    #[default]
    MaxUtility,
    /// The Gupta–Krishnaswamy–Pruhs natural online rule, adapted to the
    /// discrete machine model: place each task where it least increases
    /// *energy + priority-weighted flow time* — their scalably-competitive
    /// objective for power-heterogeneous processors. Ties break toward
    /// cheaper energy, then lower machine index.
    GuptaGreedy,
}

impl OnlinePolicy {
    /// Stable lowercase label for CLI flags and reports.
    pub fn label(self) -> &'static str {
        match self {
            OnlinePolicy::MaxUtility => "max-utility",
            OnlinePolicy::GuptaGreedy => "gupta",
        }
    }
}

impl std::str::FromStr for OnlinePolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "max-utility" | "maxutility" | "greedy" => Ok(OnlinePolicy::MaxUtility),
            "gupta" | "gupta-greedy" => Ok(OnlinePolicy::GuptaGreedy),
            _ => Err(format!(
                "unknown online policy {s:?} (expected max-utility or gupta)"
            )),
        }
    }
}

/// The outcome of an online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// Total utility earned by accepted tasks.
    pub utility: f64,
    /// Total energy consumed (≤ the budget).
    pub energy: f64,
    /// Completion time of the last accepted task.
    pub makespan: f64,
    /// Number of tasks accepted.
    pub accepted: usize,
    /// Indices of rejected tasks (budget exhausted or below threshold).
    pub rejected: Vec<u32>,
}

/// One policy decision: the best placement for `task` given current queue
/// states and the remaining budget, or `None` when no feasible machine
/// fits the budget.
///
/// Budget-boundary semantics (pinned by the regression tests): an
/// exhausted budget (`remaining <= 0.0`) admits *nothing*, including
/// zero-energy placements — a spent budget means the admission gate is
/// closed, not that free work sneaks through with `-0.0` accounting.
pub(crate) fn place(
    policy: OnlinePolicy,
    system: &HcSystem,
    task: &hetsched_workload::Task,
    machine_free: &[f64],
    remaining: f64,
) -> Option<(f64, MachineId, f64, f64)> {
    if remaining <= 0.0 {
        return None;
    }
    let mut best: Option<(f64, MachineId, f64, f64, f64)> = None; // (u, m, e, finish, cost)
    for &m in system.feasible_machines(task.task_type) {
        let e = system.energy(task.task_type, m);
        if e > remaining {
            continue;
        }
        let start = machine_free[m.index()].max(task.arrival);
        let finish = start + system.exec_time(task.task_type, m);
        let u = task.tuf.utility(finish - task.arrival);
        // GuptaGreedy minimises marginal energy + priority-weighted flow;
        // MaxUtility maximises utility. Both are expressed as a
        // minimisation so one comparator serves.
        let cost = match policy {
            OnlinePolicy::MaxUtility => -u,
            OnlinePolicy::GuptaGreedy => e + task.tuf.priority() * (finish - task.arrival),
        };
        let better = match best {
            None => true,
            Some((_, _, be, _, bc)) => cost < bc || (cost == bc && e < be),
        };
        if better {
            best = Some((u, m, e, finish, cost));
        }
    }
    best.map(|(u, m, e, finish, _)| (u, m, e, finish))
}

/// Runs the online scheduler over a trace with an explicit placement
/// [`OnlinePolicy`].
pub fn schedule_online_policy(
    system: &HcSystem,
    trace: &Trace,
    config: &OnlineConfig,
    policy: OnlinePolicy,
) -> OnlineOutcome {
    let mut machine_free = vec![0.0f64; system.machine_count()];
    let mut remaining = config.energy_budget;
    let (mut utility, mut energy, mut makespan) = (0.0, 0.0, 0.0f64);
    let mut accepted = 0usize;
    let mut rejected = Vec::new();

    // Tasks are visited strictly in arrival order: no future knowledge.
    for task in trace.tasks() {
        match place(policy, system, task, &machine_free, remaining) {
            Some((u, m, e, finish)) if u >= config.drop_threshold => {
                machine_free[m.index()] = finish;
                remaining = (remaining - e).max(0.0);
                utility += u;
                energy += e;
                makespan = makespan.max(finish);
                accepted += 1;
            }
            _ => rejected.push(task.id.0),
        }
    }
    OnlineOutcome {
        utility,
        energy,
        makespan,
        accepted,
        rejected,
    }
}

/// Runs the online greedy scheduler over a trace
/// ([`OnlinePolicy::MaxUtility`]).
pub fn schedule_online(system: &HcSystem, trace: &Trace, config: &OnlineConfig) -> OnlineOutcome {
    schedule_online_policy(system, trace, config, OnlinePolicy::MaxUtility)
}

/// Replays the online decisions as a static [`Allocation`] over the
/// *accepted* subset, for Gantt inspection. Rejected tasks are mapped to
/// their minimum-energy machine but marked in the returned list so callers
/// can exclude them; the allocation itself stays feasible.
///
/// # Errors
///
/// Never fails for a valid system/trace; the signature matches the other
/// evaluation entry points.
pub fn online_as_detailed(
    system: &HcSystem,
    trace: &Trace,
    config: &OnlineConfig,
) -> Result<(DetailedOutcome, OnlineOutcome)> {
    let outcome = schedule_online(system, trace, config);
    // Rebuild the greedy assignment deterministically.
    let policy = OnlinePolicy::MaxUtility;
    let mut machine_free = vec![0.0f64; system.machine_count()];
    let mut remaining = config.energy_budget;
    let mut machines = Vec::with_capacity(trace.len());
    for task in trace.tasks() {
        match place(policy, system, task, &machine_free, remaining) {
            Some((u, m, e, finish)) if u >= config.drop_threshold => {
                machine_free[m.index()] = finish;
                remaining = (remaining - e).max(0.0);
                machines.push(m);
            }
            _ => {
                // Placeholder placement for the detailed view.
                let fallback = *system
                    .feasible_machines(task.task_type)
                    .iter()
                    .min_by(|&&a, &&b| {
                        system
                            .energy(task.task_type, a)
                            .total_cmp(&system.energy(task.task_type, b))
                    })
                    .expect("validated system");
                machines.push(fallback);
            }
        }
    }
    let detailed =
        DetailedOutcome::evaluate(system, trace, &Allocation::with_arrival_order(machines))?;
    Ok((detailed, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(61))
            .unwrap();
        (sys, trace)
    }

    #[test]
    fn unconstrained_run_accepts_everything() {
        let (sys, trace) = setup(50);
        let out = schedule_online(&sys, &trace, &OnlineConfig::default());
        assert_eq!(out.accepted, 50);
        assert!(out.rejected.is_empty());
        assert!(out.utility > 0.0);
    }

    #[test]
    fn budget_is_respected_exactly() {
        let (sys, trace) = setup(80);
        let unconstrained = schedule_online(&sys, &trace, &OnlineConfig::default());
        let budget = unconstrained.energy * 0.5;
        let out = schedule_online(
            &sys,
            &trace,
            &OnlineConfig {
                energy_budget: budget,
                drop_threshold: 0.0,
            },
        );
        assert!(out.energy <= budget + 1e-9);
        assert!(out.accepted < 80, "half the budget cannot fit everything");
        assert_eq!(out.accepted + out.rejected.len(), 80);
    }

    #[test]
    fn tighter_budgets_earn_monotonically_less() {
        let (sys, trace) = setup(60);
        let full = schedule_online(&sys, &trace, &OnlineConfig::default());
        let mut prev_utility = full.utility + 1.0;
        for frac in [1.0, 0.6, 0.3, 0.1] {
            let out = schedule_online(
                &sys,
                &trace,
                &OnlineConfig {
                    energy_budget: full.energy * frac,
                    drop_threshold: 0.0,
                },
            );
            assert!(out.utility <= prev_utility + 1e-9, "frac {frac}");
            prev_utility = out.utility;
        }
    }

    #[test]
    fn zero_budget_rejects_everything() {
        let (sys, trace) = setup(10);
        let out = schedule_online(
            &sys,
            &trace,
            &OnlineConfig {
                energy_budget: 0.0,
                drop_threshold: 0.0,
            },
        );
        assert_eq!(out.accepted, 0);
        assert_eq!(out.rejected.len(), 10);
        assert_eq!(out.energy, 0.0);
        assert_eq!(out.utility, 0.0);
    }

    #[test]
    fn drop_threshold_rejects_low_value_placements() {
        let (sys, trace) = setup(40);
        let all = schedule_online(&sys, &trace, &OnlineConfig::default());
        let picky = schedule_online(
            &sys,
            &trace,
            &OnlineConfig {
                energy_budget: f64::INFINITY,
                drop_threshold: 2.0,
            },
        );
        assert!(picky.accepted <= all.accepted);
        // Every accepted task contributed at least the threshold.
        assert!(picky.utility >= picky.accepted as f64 * 2.0 - 1e-9);
    }

    #[test]
    fn detailed_replay_matches_totals_when_nothing_rejected() {
        let (sys, trace) = setup(30);
        let cfg = OnlineConfig::default();
        let (detailed, outcome) = online_as_detailed(&sys, &trace, &cfg).unwrap();
        assert_eq!(outcome.accepted, 30);
        assert!((detailed.utility - outcome.utility).abs() < 1e-9);
        assert!((detailed.energy - outcome.energy).abs() < 1e-9);
    }

    #[test]
    fn online_never_beats_offline_upper_bound() {
        let (sys, trace) = setup(50);
        let out = schedule_online(&sys, &trace, &OnlineConfig::default());
        assert!(out.utility <= trace.max_possible_utility() + 1e-9);
    }

    /// Regression: an exactly-exhausted budget must reject every further
    /// task — before the fix, a zero-energy placement at
    /// `remaining == 0.0` slipped through the `e > remaining` check and
    /// drove the accounting negative.
    #[test]
    fn exhausted_budget_closes_the_admission_gate() {
        let (sys, trace) = setup(20);
        // The admission gate itself: a spent budget admits nothing, even
        // hypothetical zero-energy work.
        for task in trace.tasks() {
            let free = vec![0.0f64; sys.machine_count()];
            assert_eq!(
                place(OnlinePolicy::MaxUtility, &sys, task, &free, 0.0),
                None
            );
            assert_eq!(
                place(OnlinePolicy::GuptaGreedy, &sys, task, &free, -0.0),
                None
            );
        }

        // End-to-end: set the budget to exactly the energy the first
        // greedy placement consumes; the run must accept exactly that
        // task, land on bit-exact +0.0 remaining (never -0.0), and reject
        // the rest.
        let first = schedule_online(
            &sys,
            &trace,
            &OnlineConfig {
                energy_budget: f64::INFINITY,
                drop_threshold: 0.0,
            },
        );
        assert!(first.accepted > 0);
        let free = vec![0.0f64; sys.machine_count()];
        let (_, _, first_energy, _) = place(
            OnlinePolicy::MaxUtility,
            &sys,
            &trace.tasks()[0],
            &free,
            f64::INFINITY,
        )
        .unwrap();
        let out = schedule_online(
            &sys,
            &trace,
            &OnlineConfig {
                energy_budget: first_energy,
                drop_threshold: 0.0,
            },
        );
        assert_eq!(out.accepted, 1, "budget fits exactly one task");
        assert_eq!(out.rejected.len(), 19);
        assert_eq!(out.energy.to_bits(), first_energy.to_bits());
        assert_eq!(
            (first_energy - out.energy).max(0.0).to_bits(),
            0.0f64.to_bits(),
            "remaining budget must be +0.0, not -0.0"
        );
    }

    #[test]
    fn policy_labels_roundtrip() {
        for p in [OnlinePolicy::MaxUtility, OnlinePolicy::GuptaGreedy] {
            assert_eq!(p.label().parse::<OnlinePolicy>().unwrap(), p);
        }
        assert!("random".parse::<OnlinePolicy>().is_err());
    }

    #[test]
    fn gupta_greedy_trades_utility_for_energy_and_flow() {
        let (sys, trace) = setup(60);
        let cfg = OnlineConfig::default();
        let mu = schedule_online_policy(&sys, &trace, &cfg, OnlinePolicy::MaxUtility);
        let gupta = schedule_online_policy(&sys, &trace, &cfg, OnlinePolicy::GuptaGreedy);
        // Unconstrained, both accept everything; they differ in placement.
        assert_eq!(mu.accepted, 60);
        assert_eq!(gupta.accepted, 60);
        // MaxUtility is by construction the per-arrival utility optimum.
        assert!(mu.utility >= gupta.utility - 1e-9);
        // Gupta's cost folds energy in, so it never spends more energy
        // *and* more priority-weighted flow than the utility chaser; on
        // this workload it lands strictly cheaper in energy.
        assert!(gupta.energy <= mu.energy + 1e-9);
        assert!(gupta.utility > 0.0);
    }

    #[test]
    fn gupta_greedy_respects_budget() {
        let (sys, trace) = setup(80);
        let unconstrained = schedule_online_policy(
            &sys,
            &trace,
            &OnlineConfig::default(),
            OnlinePolicy::GuptaGreedy,
        );
        let budget = unconstrained.energy * 0.4;
        let out = schedule_online_policy(
            &sys,
            &trace,
            &OnlineConfig {
                energy_budget: budget,
                drop_threshold: 0.0,
            },
            OnlinePolicy::GuptaGreedy,
        );
        assert!(out.energy <= budget + 1e-9);
        assert_eq!(out.accepted + out.rejected.len(), 80);
        assert!(out.accepted < 80);
    }
}
