//! ASCII Gantt rendering of a [`DetailedOutcome`], for the examples and the
//! CLI — a quick way to *see* what an allocation on the front actually
//! does to the machines.

use crate::detail::DetailedOutcome;
use hetsched_data::HcSystem;
use std::fmt::Write as _;

/// Renders a fixed-width Gantt chart: one row per machine, `width` columns
/// spanning `[0, makespan]`. Busy cells show `#`, idle cells `.`; the
/// right margin carries per-machine busy totals.
pub fn render_gantt(system: &HcSystem, outcome: &DetailedOutcome, width: usize) -> String {
    let width = width.max(10);
    let horizon = outcome.makespan.max(1e-9);
    let mut rows = vec![vec![b'.'; width]; system.machine_count()];
    for r in &outcome.tasks {
        let lo = ((r.start / horizon) * width as f64).floor() as usize;
        let hi = ((r.finish / horizon) * width as f64).ceil() as usize;
        let row = &mut rows[r.machine.index()];
        for cell in row.iter_mut().take(hi.min(width)).skip(lo.min(width)) {
            *cell = b'#';
        }
    }
    let busy = outcome.machine_busy_time(system.machine_count());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gantt [0 .. {:.0} s], {} tasks",
        horizon,
        outcome.tasks.len()
    );
    for (m, row) in rows.iter().enumerate() {
        let bar = String::from_utf8(row.clone()).expect("ASCII only");
        let util = 100.0 * busy[m] / horizon;
        let _ = writeln!(out, "m{m:<3} |{bar}| {:>6.1}s busy ({util:>4.1}%)", busy[m]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use hetsched_data::{real_system, MachineId};
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_outcome() -> (HcSystem, DetailedOutcome) {
        let sys = real_system();
        let trace = TraceGenerator::new(20, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(9))
            .unwrap();
        let alloc =
            Allocation::with_arrival_order((0..20).map(|i| MachineId((i % 3) as u32)).collect());
        let outcome = DetailedOutcome::evaluate(&sys, &trace, &alloc).unwrap();
        (sys, outcome)
    }

    #[test]
    fn renders_one_row_per_machine() {
        let (sys, outcome) = sample_outcome();
        let chart = render_gantt(&sys, &outcome, 60);
        // Header + 9 machine rows.
        assert_eq!(chart.lines().count(), 1 + sys.machine_count());
        for m in 0..sys.machine_count() {
            assert!(chart.contains(&format!("m{m}")), "missing machine row {m}");
        }
    }

    #[test]
    fn only_used_machines_show_busy_cells() {
        let (sys, outcome) = sample_outcome();
        let chart = render_gantt(&sys, &outcome, 60);
        let lines: Vec<&str> = chart.lines().skip(1).collect();
        // Machines 0..3 were used and must contain '#'; machine 5 was not.
        for (m, line) in lines.iter().enumerate().take(3) {
            assert!(line.contains('#'), "machine {m} should be busy");
        }
        assert!(!lines[5].contains('#'), "machine 5 should be idle");
    }

    #[test]
    fn width_is_clamped() {
        let (sys, outcome) = sample_outcome();
        let chart = render_gantt(&sys, &outcome, 0); // clamps to 10
        let second_line = chart.lines().nth(1).expect("has rows");
        let bar_len = second_line.split('|').nth(1).expect("bar present").len();
        assert_eq!(bar_len, 10);
    }
}
