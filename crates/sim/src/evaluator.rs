//! The fitness hot path: evaluates an [`Allocation`] into the paper's two
//! objectives. This function runs once per chromosome per generation — for
//! the paper's largest experiment (population 100, 4000 tasks, 10⁶
//! iterations) that is 10⁸ evaluations — so it reuses workspace buffers and
//! performs no per-call allocation after warm-up.

use crate::allocation::Allocation;
#[cfg(feature = "delta-eval")]
use crate::delta::{genome_fingerprint, ScheduleCache, TaskMove};
use crate::Result;
use hetsched_data::HcSystem;
use hetsched_workload::Trace;

/// Process-wide evaluation accounting, compiled only under the
/// `eval-counters` feature. Unlike the per-instance counter below (which
/// an observer cannot reach once the evaluator is buried inside an
/// engine), this total is readable from anywhere — the telemetry
/// registry routes it into its snapshots.
#[cfg(feature = "eval-counters")]
pub mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    static TOTAL: AtomicU64 = AtomicU64::new(0);
    static DELTA_HITS: AtomicU64 = AtomicU64::new(0);

    /// Adds `n` evaluations to the process-wide total.
    pub fn add(n: u64) {
        TOTAL.fetch_add(n, Ordering::Relaxed);
    }

    /// The process-wide total of objective evaluations requested through
    /// an `Evaluator` — full recomputations and incremental (delta)
    /// updates alike. Evaluations *skipped* outright (an engine reusing a
    /// parent's objectives for a bit-identical child) never reach the
    /// evaluator and are therefore not counted; the drop is observable
    /// here.
    pub fn total() -> u64 {
        TOTAL.load(Ordering::Relaxed)
    }

    /// Adds `n` delta-path cache hits to the process-wide total.
    pub fn add_delta_hits(n: u64) {
        DELTA_HITS.fetch_add(n, Ordering::Relaxed);
    }

    /// The process-wide subset of [`total`] served by the incremental
    /// path (`Evaluator::evaluate_delta` schedule-cache hits).
    pub fn delta_hits() -> u64 {
        DELTA_HITS.load(Ordering::Relaxed)
    }

    /// Resets the totals (tests only — the counters are process-global,
    /// so concurrent tests should assert on deltas instead).
    pub fn reset() {
        TOTAL.store(0, Ordering::Relaxed);
        DELTA_HITS.store(0, Ordering::Relaxed);
    }
}

/// Number of parent schedules the delta pool retains (LRU). Sized for a
/// couple of generations of a population-100 run: large enough that every
/// surviving parent's schedule is still cached when its offspring arrive,
/// small enough that the linear fingerprint scan stays negligible next to
/// one evaluation.
#[cfg(feature = "delta-eval")]
const DELTA_POOL_CAP: usize = 256;

/// The objective values of one allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Total utility earned, `U` (Eq. 1). Higher is better.
    pub utility: f64,
    /// Total energy consumed in joules, `E` (Eq. 3). Lower is better.
    pub energy: f64,
    /// Completion time of the last task (seconds from window start).
    pub makespan: f64,
}

/// Reusable evaluator bound to one system + trace.
///
/// Cloning is cheap (buffers are rebuilt lazily), so parallel evaluation can
/// give each worker thread its own `Evaluator`.
///
/// ```
/// use hetsched_data::{real_system, MachineId};
/// use hetsched_sim::{Allocation, Evaluator};
/// use hetsched_workload::TraceGenerator;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let system = real_system();
/// let trace = TraceGenerator::new(10, 900.0, system.task_type_count())
///     .generate(&mut StdRng::seed_from_u64(1))
///     .unwrap();
/// let mut evaluator = Evaluator::new(&system, &trace);
/// // Everything on machine 0, in arrival order.
/// let alloc = Allocation::with_arrival_order(vec![MachineId(0); 10]);
/// let outcome = evaluator.evaluate(&alloc);
/// assert!(outcome.energy >= evaluator.min_possible_energy());
/// assert!(outcome.utility <= evaluator.max_possible_utility());
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    system: &'a HcSystem,
    trace: &'a Trace,
    /// Scratch: task indices sorted by (order key, task id).
    sequence: Vec<u32>,
    /// Scratch: next-free time per machine.
    machine_free: Vec<f64>,
    /// Scratch: per-machine utility subtotals (see `evaluate` for why the
    /// accumulation is decomposed per machine).
    machine_util: Vec<f64>,
    /// Scratch: per-machine energy subtotals.
    machine_energy: Vec<f64>,
    /// Cached objective bounds — both are O(tasks) sums over the trace,
    /// and callers consult them once per evaluation in hot loops.
    min_energy: f64,
    max_utility: f64,
    /// LRU pool of parent schedules for [`Evaluator::evaluate_delta`]:
    /// most-recently-used last. Clones start with an empty pool — the pool
    /// is a cache, and caches warm per instance.
    #[cfg(feature = "delta-eval")]
    pool: Vec<ScheduleCache>,
    /// Calls to [`Evaluator::evaluate`] on this instance (clones inherit
    /// the count at the moment of cloning).
    #[cfg(feature = "eval-counters")]
    evaluations: u64,
    /// Subset of `evaluations` served by the incremental path.
    #[cfg(feature = "eval-counters")]
    delta_hits: u64,
}

// Hand-written: deriving `Clone` would deep-copy the warm delta pool — up
// to [`DELTA_POOL_CAP`] `ScheduleCache`s, each O(tasks + machines) — which
// broke the "cloning is cheap" contract per-thread evaluators rely on. A
// clone is a fresh worker bound to the same system/trace: empty scratch,
// empty pool, but it inherits the instance counters (they describe work
// already attributed to this lineage).
impl Clone for Evaluator<'_> {
    fn clone(&self) -> Self {
        Evaluator {
            system: self.system,
            trace: self.trace,
            sequence: Vec::with_capacity(self.trace.len()),
            machine_free: vec![0.0; self.system.machine_count()],
            machine_util: vec![0.0; self.system.machine_count()],
            machine_energy: vec![0.0; self.system.machine_count()],
            min_energy: self.min_energy,
            max_utility: self.max_utility,
            #[cfg(feature = "delta-eval")]
            pool: Vec::new(),
            #[cfg(feature = "eval-counters")]
            evaluations: self.evaluations,
            #[cfg(feature = "eval-counters")]
            delta_hits: self.delta_hits,
        }
    }
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for the given system and trace.
    pub fn new(system: &'a HcSystem, trace: &'a Trace) -> Self {
        let min_energy = trace
            .tasks()
            .iter()
            .map(|t| system.min_energy_per_type(t.task_type))
            .sum();
        Evaluator {
            system,
            trace,
            sequence: Vec::with_capacity(trace.len()),
            machine_free: vec![0.0; system.machine_count()],
            machine_util: vec![0.0; system.machine_count()],
            machine_energy: vec![0.0; system.machine_count()],
            min_energy,
            max_utility: trace.max_possible_utility(),
            #[cfg(feature = "delta-eval")]
            pool: Vec::new(),
            #[cfg(feature = "eval-counters")]
            evaluations: 0,
            #[cfg(feature = "eval-counters")]
            delta_hits: 0,
        }
    }

    /// Number of objective evaluations performed by this instance —
    /// [`Evaluator::evaluate`] calls plus `evaluate_delta` requests (both
    /// hits and rebuilds). Always 0 unless the crate is built with the
    /// `eval-counters` feature (off by default, keeping the hot path free
    /// of bookkeeping).
    pub fn evaluations(&self) -> u64 {
        #[cfg(feature = "eval-counters")]
        {
            self.evaluations
        }
        #[cfg(not(feature = "eval-counters"))]
        {
            0
        }
    }

    /// Resets the evaluation counters (a no-op without `eval-counters`).
    pub fn reset_evaluations(&mut self) {
        #[cfg(feature = "eval-counters")]
        {
            self.evaluations = 0;
            self.delta_hits = 0;
        }
    }

    /// The bound system.
    #[inline]
    pub fn system(&self) -> &'a HcSystem {
        self.system
    }

    /// The bound trace.
    #[inline]
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Evaluates without validating; the caller must guarantee feasibility
    /// (the genetic operators and seeding heuristics only construct feasible
    /// allocations). Debug builds assert feasibility.
    pub fn evaluate(&mut self, alloc: &Allocation) -> Outcome {
        debug_assert!(alloc.validate(self.system, self.trace).is_ok());
        #[cfg(feature = "chaos")]
        hetsched_chaos::raise("evaluator.evaluate", &"");
        #[cfg(feature = "eval-counters")]
        {
            self.evaluations += 1;
            counters::add(1);
        }
        let tasks = self.trace.tasks();

        // Rebuild the execution sequence: ascending (order key, task id).
        self.sequence.clear();
        self.sequence.extend(0..tasks.len() as u32);
        let order = &alloc.order;
        self.sequence
            .sort_unstable_by_key(|&i| (order[i as usize], i));

        let mc = self.system.machine_count();
        self.machine_free.clear();
        self.machine_free.resize(mc, 0.0);
        self.machine_util.clear();
        self.machine_util.resize(mc, 0.0);
        self.machine_energy.clear();
        self.machine_energy.resize(mc, 0.0);

        // Accumulate per machine, then sum across machines in machine-index
        // order. This is the contract the incremental path (`ScheduleCache`)
        // reproduces: each machine subtotal is a left fold in queue order and
        // the cross-machine sum is one fixed-order loop, so delta results are
        // bit-identical to full evaluations — not merely close.
        for &i in &self.sequence {
            let task = &tasks[i as usize];
            let machine = alloc.machine[i as usize];
            let mi = machine.index();
            let exec = self.system.exec_time(task.task_type, machine);
            // Machine idles until the task has arrived.
            let start = self.machine_free[mi].max(task.arrival);
            let finish = start + exec;
            self.machine_free[mi] = finish;
            self.machine_util[mi] += task.tuf.utility(finish - task.arrival);
            self.machine_energy[mi] += self.system.energy(task.task_type, machine);
        }
        let mut utility = 0.0;
        let mut energy = 0.0;
        let mut makespan = 0.0f64;
        for m in 0..mc {
            utility += self.machine_util[m];
            energy += self.machine_energy[m];
            makespan = makespan.max(self.machine_free[m]);
        }
        Outcome {
            utility,
            energy,
            makespan,
        }
    }

    /// Evaluates `child` incrementally: `child` must equal `base` with
    /// `moves` applied left to right (the tracked variation operators emit
    /// exactly that diff). When `base`'s schedule is in the pool the cost
    /// is proportional to the touched queue tails; otherwise the child's
    /// schedule is built from scratch — one full evaluation's worth of
    /// work — and cached for future hits either way.
    ///
    /// The result is bit-identical to `evaluate(child)`; see
    /// [`crate::delta`] for why.
    #[cfg(feature = "delta-eval")]
    pub fn evaluate_delta(
        &mut self,
        base: &Allocation,
        child: &Allocation,
        moves: &[TaskMove],
    ) -> Outcome {
        debug_assert!(child.validate(self.system, self.trace).is_ok());
        #[cfg(feature = "eval-counters")]
        {
            self.evaluations += 1;
            counters::add(1);
        }
        // A wide delta touches most queues anyway; rebuilding is cheaper
        // than replaying the moves one by one.
        if moves.len() * 4 <= self.trace.len() {
            let fp = genome_fingerprint(base);
            if let Some(idx) = self
                .pool
                .iter()
                .position(|c| c.fingerprint() == fp && c.baseline() == base)
            {
                let mut cache = self.pool.remove(idx);
                let out = cache.apply(self.system, self.trace, moves);
                debug_assert_eq!(
                    cache.baseline(),
                    child,
                    "moves must describe exactly the base→child diff"
                );
                #[cfg(feature = "eval-counters")]
                {
                    self.delta_hits += 1;
                    counters::add_delta_hits(1);
                }
                self.pool.push(cache);
                return out;
            }
        }
        // Miss: build the child's schedule directly (never base + replay,
        // which would cost a rebuild *and* the move application).
        let cache = if self.pool.len() >= DELTA_POOL_CAP {
            let mut evicted = self.pool.remove(0);
            evicted.rebuild(self.system, self.trace, child);
            evicted
        } else {
            ScheduleCache::build(self.system, self.trace, child)
        };
        let out = cache.outcome();
        self.pool.push(cache);
        out
    }

    /// Number of parent schedules currently held in the delta pool.
    /// A freshly constructed or freshly cloned evaluator reports 0.
    #[cfg(feature = "delta-eval")]
    pub fn delta_pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Number of [`Evaluator::evaluate_delta`] calls on this instance that
    /// were served incrementally from the schedule pool. Always 0 unless
    /// built with the `eval-counters` feature.
    pub fn delta_hits(&self) -> u64 {
        #[cfg(feature = "eval-counters")]
        {
            self.delta_hits
        }
        #[cfg(not(feature = "eval-counters"))]
        {
            0
        }
    }

    /// Validating wrapper around [`Evaluator::evaluate`].
    ///
    /// # Errors
    ///
    /// See [`Allocation::validate`].
    pub fn try_evaluate(&mut self, alloc: &Allocation) -> Result<Outcome> {
        alloc.validate(self.system, self.trace)?;
        Ok(self.evaluate(alloc))
    }

    /// Lower bound on the energy objective: every task on its cheapest
    /// feasible machine. The Min Energy seeding heuristic achieves exactly
    /// this value, and no allocation can consume less. Computed once at
    /// construction.
    pub fn min_possible_energy(&self) -> f64 {
        self.min_energy
    }

    /// Upper bound on the utility objective: every task earns its
    /// priority. Computed once at construction.
    pub fn max_possible_utility(&self) -> f64 {
        self.max_utility
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::{real_system, MachineId};
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize) -> (hetsched_data::HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(42))
            .unwrap();
        (sys, trace)
    }

    #[test]
    fn energy_is_order_independent() {
        let (sys, trace) = setup(50);
        let mut ev = Evaluator::new(&sys, &trace);
        let machines: Vec<MachineId> = (0..50)
            .map(|i| MachineId((i % sys.machine_count()) as u32))
            .collect();
        let a = Allocation::with_arrival_order(machines.clone());
        let mut b = a.clone();
        b.order.reverse();
        let oa = ev.evaluate(&a);
        let ob = ev.evaluate(&b);
        assert!(
            (oa.energy - ob.energy).abs() < 1e-9,
            "energy depends only on assignment"
        );
        // Utility generally differs when execution order changes.
        assert_ne!(oa.utility, ob.utility);
    }

    #[test]
    fn single_machine_serialises_tasks() {
        let (sys, trace) = setup(10);
        let mut ev = Evaluator::new(&sys, &trace);
        let alloc = Allocation::with_arrival_order(vec![MachineId(0); 10]);
        let out = ev.evaluate(&alloc);
        // Makespan is at least the sum of exec times (no overlap possible).
        let total: f64 = trace
            .tasks()
            .iter()
            .map(|t| sys.exec_time(t.task_type, MachineId(0)))
            .sum();
        assert!(out.makespan >= total);
        // Energy equals the exact sum of EECs on machine 0.
        let energy: f64 = trace
            .tasks()
            .iter()
            .map(|t| sys.energy(t.task_type, MachineId(0)))
            .sum();
        assert!((out.energy - energy).abs() < 1e-9);
    }

    #[test]
    fn start_times_respect_arrivals() {
        // A task arriving late on an idle machine must not start early:
        // makespan >= arrival + exec of the last task.
        let (sys, trace) = setup(5);
        let mut ev = Evaluator::new(&sys, &trace);
        let alloc = Allocation::with_arrival_order(vec![MachineId(6); 5]);
        let out = ev.evaluate(&alloc);
        let last = trace.tasks().last().unwrap();
        assert!(out.makespan >= last.arrival + sys.exec_time(last.task_type, MachineId(6)));
    }

    #[test]
    fn utility_bounded_by_max_possible() {
        let (sys, trace) = setup(100);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let machines: Vec<MachineId> = (0..100)
                .map(|_| MachineId(rng.gen_range(0..sys.machine_count()) as u32))
                .collect();
            let alloc = Allocation::with_arrival_order(machines);
            let out = ev.evaluate(&alloc);
            assert!(out.utility <= ev.max_possible_utility() + 1e-9);
            assert!(out.utility >= 0.0);
            assert!(out.energy >= ev.min_possible_energy() - 1e-9);
        }
    }

    #[test]
    fn cheapest_assignment_hits_min_energy_bound() {
        let (sys, trace) = setup(30);
        let mut ev = Evaluator::new(&sys, &trace);
        let machines: Vec<MachineId> = trace
            .tasks()
            .iter()
            .map(|t| {
                *sys.feasible_machines(t.task_type)
                    .iter()
                    .min_by(|&&a, &&b| {
                        sys.energy(t.task_type, a)
                            .total_cmp(&sys.energy(t.task_type, b))
                    })
                    .unwrap()
            })
            .collect();
        let alloc = Allocation::with_arrival_order(machines);
        let out = ev.evaluate(&alloc);
        assert!((out.energy - ev.min_possible_energy()).abs() < 1e-9);
    }

    #[test]
    fn try_evaluate_rejects_bad_allocation() {
        let (sys, trace) = setup(5);
        let mut ev = Evaluator::new(&sys, &trace);
        let alloc = Allocation::with_arrival_order(vec![MachineId(0); 4]);
        assert!(ev.try_evaluate(&alloc).is_err());
    }

    #[test]
    fn evaluation_is_deterministic_and_reusable() {
        let (sys, trace) = setup(40);
        let mut ev = Evaluator::new(&sys, &trace);
        let alloc =
            Allocation::with_arrival_order((0..40).map(|i| MachineId((i % 9) as u32)).collect());
        let a = ev.evaluate(&alloc);
        // Interleave another evaluation to dirty the buffers.
        let other = Allocation::with_arrival_order(vec![MachineId(2); 40]);
        let _ = ev.evaluate(&other);
        let b = ev.evaluate(&alloc);
        assert_eq!(a, b);
    }

    #[test]
    fn earlier_completion_earns_no_less_utility() {
        // Schedule everything on the fastest machine vs the slowest: the
        // faster schedule must earn at least as much utility (TUFs are
        // monotone non-increasing).
        let (sys, trace) = setup(15);
        let mut ev = Evaluator::new(&sys, &trace);
        let fast = Allocation::with_arrival_order(vec![MachineId(6); 15]);
        let slow = Allocation::with_arrival_order(vec![MachineId(0); 15]);
        let fo = ev.evaluate(&fast);
        let so = ev.evaluate(&slow);
        assert!(fo.utility >= so.utility);
        assert!(fo.makespan <= so.makespan);
    }

    #[test]
    fn bounds_match_directly_computed_sums() {
        // The cached bounds must equal what a fresh traversal computes.
        let (sys, trace) = setup(25);
        let ev = Evaluator::new(&sys, &trace);
        let min_e: f64 = trace
            .tasks()
            .iter()
            .map(|t| sys.min_energy_per_type(t.task_type))
            .sum();
        assert_eq!(ev.min_possible_energy(), min_e);
        assert_eq!(ev.max_possible_utility(), trace.max_possible_utility());
    }

    #[cfg(feature = "eval-counters")]
    #[test]
    fn counter_tracks_evaluate_calls() {
        let (sys, trace) = setup(10);
        let mut ev = Evaluator::new(&sys, &trace);
        assert_eq!(ev.evaluations(), 0);
        let global_before = counters::total();
        let alloc = Allocation::with_arrival_order(vec![MachineId(0); 10]);
        for _ in 0..7 {
            ev.evaluate(&alloc);
        }
        assert_eq!(ev.evaluations(), 7);
        // The process-wide total advanced by at least this instance's
        // calls (other tests may run concurrently).
        assert!(counters::total() >= global_before + 7);
        let clone = ev.clone();
        assert_eq!(clone.evaluations(), 7);
        ev.reset_evaluations();
        assert_eq!(ev.evaluations(), 0);
    }

    #[cfg(feature = "delta-eval")]
    #[test]
    fn clone_has_empty_pool_but_identical_outcomes() {
        let (sys, trace) = setup(60);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(77);
        // Warm the pool with a handful of delta evaluations.
        let mut base = Allocation::with_arrival_order(
            (0..60)
                .map(|_| MachineId(rng.gen_range(0..sys.machine_count()) as u32))
                .collect(),
        );
        ev.evaluate_delta(&base, &base, &[]);
        let mut allocs = vec![base.clone()];
        for _ in 0..8 {
            let mut child = base.clone();
            let g = rng.gen_range(0..60);
            child.machine[g] = MachineId(rng.gen_range(0..sys.machine_count()) as u32);
            let moves = [TaskMove {
                task: g as u32,
                machine: child.machine[g],
                order: child.order[g],
            }];
            ev.evaluate_delta(&base, &child, &moves);
            allocs.push(child.clone());
            base = child;
        }
        assert!(ev.delta_pool_len() > 0, "pool should be warm");

        // The clone must NOT have deep-copied the warm pool...
        let mut clone = ev.clone();
        assert_eq!(clone.delta_pool_len(), 0, "clone must start cold");
        // ...yet every outcome must match the warm original bit for bit.
        for a in &allocs {
            let warm = ev.evaluate(a);
            let cold = clone.evaluate(a);
            assert_eq!(warm.utility.to_bits(), cold.utility.to_bits());
            assert_eq!(warm.energy.to_bits(), cold.energy.to_bits());
            assert_eq!(warm.makespan.to_bits(), cold.makespan.to_bits());
        }
    }

    #[test]
    fn order_ties_break_by_task_id() {
        let (sys, trace) = setup(4);
        let mut ev = Evaluator::new(&sys, &trace);
        // All order keys equal: tasks run in id (arrival) order — identical
        // to arrival-order keys.
        let machines = vec![MachineId(1); 4];
        let tied = Allocation {
            machine: machines.clone(),
            order: vec![7; 4],
        };
        let arrival = Allocation::with_arrival_order(machines);
        assert_eq!(ev.evaluate(&tied), ev.evaluate(&arrival));
    }
}
