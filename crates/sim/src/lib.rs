#![warn(missing_docs)]

//! Static scheduling simulator: evaluates a resource allocation against a
//! system and a trace, producing the two paper objectives — total utility
//! earned `U = Σ Υ(t)` (Eq. 1) and total energy consumed
//! `E = Σ Σ EEC(Φ(t), Ω(m))` (Eq. 3) — plus auxiliary metrics.
//!
//! Semantics (§IV-D): every task carries a *global scheduling order*; tasks
//! execute on their assigned machines in that order, and "any task's start
//! time is greater than or equal to its arrival time. If this is not the
//! case, the machine sits idle until this condition is met."

pub mod allocation;
pub mod batch;
pub mod delta;
pub mod detail;
pub mod dvfs;
pub mod evaluator;
pub mod events;
pub mod gantt;
pub mod horizon;
pub mod online;

pub use allocation::Allocation;
pub use batch::{BatchEvaluator, BatchJob};
pub use delta::{genome_fingerprint, DeltaEval, ScheduleCache, TaskMove};
pub use detail::{DetailedOutcome, TaskRecord};
pub use dvfs::{DvfsAllocation, DvfsTable, PState};
#[cfg(feature = "eval-counters")]
pub use evaluator::counters as eval_counters;
pub use evaluator::{Evaluator, Outcome};
pub use events::evaluate_event_driven;
pub use gantt::render_gantt;
pub use horizon::{
    FrozenTask, HorizonConfig, HorizonContext, HorizonRecord, HorizonScheduler, PolicyReoptimizer,
    Reoptimize,
};
pub use online::{
    online_as_detailed, schedule_online, schedule_online_policy, OnlineConfig, OnlineOutcome,
    OnlinePolicy,
};

use hetsched_data::MachineId;
use hetsched_workload::TaskId;
use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Allocation vectors have the wrong length for the trace.
    LengthMismatch {
        /// Expected number of tasks.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// A task is mapped to a machine that cannot execute its type.
    InfeasibleAssignment {
        /// The offending task.
        task: TaskId,
        /// The infeasible machine.
        machine: MachineId,
    },
    /// A machine id is out of range for the system.
    UnknownMachine(MachineId),
    /// A P-state index is out of range for the DVFS table.
    UnknownPState(u8),
    /// A rolling-horizon configuration or feed is invalid.
    InvalidHorizon(&'static str),
    /// A committed plan failed to replay a frozen task's pinned start.
    FrozenTaskMoved {
        /// The task whose start drifted.
        task: TaskId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "allocation length {got} does not match trace length {expected}"
                )
            }
            SimError::InfeasibleAssignment { task, machine } => {
                write!(f, "task {task} cannot execute on machine {machine}")
            }
            SimError::UnknownMachine(m) => write!(f, "machine {m} is not in the system"),
            SimError::UnknownPState(p) => write!(f, "P-state index {p} is out of range"),
            SimError::InvalidHorizon(what) => write!(f, "invalid horizon stream: {what}"),
            SimError::FrozenTaskMoved { task } => {
                write!(f, "frozen task {task} moved in a re-optimized plan")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SimError>;
