//! Detailed (per-task) evaluation for analysis, examples, and the CLI —
//! everything the hot path deliberately does not record.

use crate::allocation::Allocation;
use crate::Result;
use hetsched_data::{HcSystem, MachineId};
use hetsched_workload::{TaskId, Trace};
use serde::{Deserialize, Serialize};

/// Per-task schedule record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task.
    pub task: TaskId,
    /// Machine it executed on.
    pub machine: MachineId,
    /// Arrival time (seconds).
    pub arrival: f64,
    /// Execution start time (≥ arrival).
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Utility earned at completion.
    pub utility: f64,
    /// Energy consumed (joules).
    pub energy: f64,
}

/// A full schedule: totals plus one record per task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetailedOutcome {
    /// Total utility earned.
    pub utility: f64,
    /// Total energy consumed (joules).
    pub energy: f64,
    /// Completion time of the last task.
    pub makespan: f64,
    /// Per-task records, in task-id order.
    pub tasks: Vec<TaskRecord>,
}

impl DetailedOutcome {
    /// Evaluates `alloc` with full per-task detail (validating first).
    ///
    /// # Errors
    ///
    /// See [`Allocation::validate`].
    pub fn evaluate(system: &HcSystem, trace: &Trace, alloc: &Allocation) -> Result<Self> {
        alloc.validate(system, trace)?;
        let tasks = trace.tasks();
        let mut sequence: Vec<u32> = (0..tasks.len() as u32).collect();
        sequence.sort_unstable_by_key(|&i| (alloc.order[i as usize], i));
        let mut machine_free = vec![0.0f64; system.machine_count()];
        let mut records = vec![
            TaskRecord {
                task: TaskId(0),
                machine: MachineId(0),
                arrival: 0.0,
                start: 0.0,
                finish: 0.0,
                utility: 0.0,
                energy: 0.0,
            };
            tasks.len()
        ];
        let (mut utility, mut energy, mut makespan) = (0.0, 0.0, 0.0f64);
        for &i in &sequence {
            let task = &tasks[i as usize];
            let machine = alloc.machine[i as usize];
            let exec = system.exec_time(task.task_type, machine);
            let start = machine_free[machine.index()].max(task.arrival);
            let finish = start + exec;
            machine_free[machine.index()] = finish;
            let u = task.tuf.utility(finish - task.arrival);
            let e = system.energy(task.task_type, machine);
            utility += u;
            energy += e;
            makespan = makespan.max(finish);
            records[i as usize] = TaskRecord {
                task: TaskId(i),
                machine,
                arrival: task.arrival,
                start,
                finish,
                utility: u,
                energy: e,
            };
        }
        Ok(DetailedOutcome {
            utility,
            energy,
            makespan,
            tasks: records,
        })
    }

    /// Per-machine busy time (seconds), indexed by machine id.
    pub fn machine_busy_time(&self, machine_count: usize) -> Vec<f64> {
        let mut busy = vec![0.0; machine_count];
        for r in &self.tasks {
            busy[r.machine.index()] += r.finish - r.start;
        }
        busy
    }

    /// Mean flow time (completion − arrival) over all tasks.
    pub fn mean_flow_time(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(|r| r.finish - r.arrival).sum::<f64>() / self.tasks.len() as f64
    }

    /// Total energy including idle draw: the paper's Eq. 3 counts only
    /// task-attributed energy; real machines also burn `idle_watts` while
    /// switched on but idle. This charges every machine for its idle time
    /// over `[0, makespan]` — the correction a deployment would apply when
    /// machines cannot be powered off mid-trace.
    pub fn energy_with_idle(&self, machine_count: usize, idle_watts: f64) -> f64 {
        debug_assert!(idle_watts >= 0.0);
        let busy = self.machine_busy_time(machine_count);
        let idle_time: f64 = busy.iter().map(|b| (self.makespan - b).max(0.0)).sum();
        self.energy + idle_time * idle_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use hetsched_data::real_system;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (HcSystem, Trace, Allocation) {
        let sys = real_system();
        let trace = TraceGenerator::new(30, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(8))
            .unwrap();
        let machines = (0..30)
            .map(|i| MachineId((i % sys.machine_count()) as u32))
            .collect();
        let alloc = Allocation::with_arrival_order(machines);
        (sys, trace, alloc)
    }

    #[test]
    fn totals_match_fast_evaluator() {
        let (sys, trace, alloc) = setup();
        let detailed = DetailedOutcome::evaluate(&sys, &trace, &alloc).unwrap();
        let fast = Evaluator::new(&sys, &trace).evaluate(&alloc);
        assert!((detailed.utility - fast.utility).abs() < 1e-9);
        assert!((detailed.energy - fast.energy).abs() < 1e-9);
        assert!((detailed.makespan - fast.makespan).abs() < 1e-9);
    }

    #[test]
    fn per_task_invariants_hold() {
        let (sys, trace, alloc) = setup();
        let d = DetailedOutcome::evaluate(&sys, &trace, &alloc).unwrap();
        assert_eq!(d.tasks.len(), 30);
        for (i, r) in d.tasks.iter().enumerate() {
            assert_eq!(r.task, TaskId(i as u32));
            assert!(r.start >= r.arrival, "task {i} started before arrival");
            assert!(r.finish > r.start);
            assert!(r.energy > 0.0);
            assert!(r.utility >= 0.0);
        }
        // No two tasks overlap on the same machine.
        for a in &d.tasks {
            for b in &d.tasks {
                if a.task != b.task && a.machine == b.machine {
                    assert!(
                        a.finish <= b.start + 1e-9 || b.finish <= a.start + 1e-9,
                        "overlap on {:?}: [{}, {}] vs [{}, {}]",
                        a.machine,
                        a.start,
                        a.finish,
                        b.start,
                        b.finish
                    );
                }
            }
        }
    }

    #[test]
    fn busy_time_sums_exec_times() {
        let (sys, trace, alloc) = setup();
        let d = DetailedOutcome::evaluate(&sys, &trace, &alloc).unwrap();
        let busy = d.machine_busy_time(sys.machine_count());
        let total_busy: f64 = busy.iter().sum();
        let total_exec: f64 = trace
            .tasks()
            .iter()
            .zip(&alloc.machine)
            .map(|(t, &m)| sys.exec_time(t.task_type, m))
            .sum();
        assert!((total_busy - total_exec).abs() < 1e-9);
    }

    #[test]
    fn mean_flow_time_positive() {
        let (sys, trace, alloc) = setup();
        let d = DetailedOutcome::evaluate(&sys, &trace, &alloc).unwrap();
        assert!(d.mean_flow_time() > 0.0);
    }

    #[test]
    fn idle_energy_accounting() {
        let (sys, trace, alloc) = setup();
        let d = DetailedOutcome::evaluate(&sys, &trace, &alloc).unwrap();
        // Zero idle power changes nothing.
        assert_eq!(d.energy_with_idle(sys.machine_count(), 0.0), d.energy);
        // Positive idle power adds exactly idle_time × watts.
        let busy: f64 = d.machine_busy_time(sys.machine_count()).iter().sum();
        let idle_time = sys.machine_count() as f64 * d.makespan - busy;
        let with_idle = d.energy_with_idle(sys.machine_count(), 50.0);
        assert!((with_idle - d.energy - idle_time * 50.0).abs() < 1e-6);
        assert!(with_idle > d.energy);
    }

    #[test]
    fn rejects_invalid_allocation() {
        let (sys, trace, _) = setup();
        let alloc = Allocation::with_arrival_order(vec![MachineId(0); 3]);
        assert!(DetailedOutcome::evaluate(&sys, &trace, &alloc).is_err());
    }
}
