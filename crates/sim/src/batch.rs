//! Population-level batch evaluation.
//!
//! The engines' offspring loops used to drive parallelism per cell
//! (rayon `map_init` with a fresh [`Evaluator`] per worker, rebuilt every
//! generation). [`BatchEvaluator`] moves that split up to the evaluator
//! layer: one call evaluates a whole offspring population against a pool
//! of *persistent* worker evaluators whose delta-schedule caches stay
//! warm across generations. Results are returned in job order, and each
//! job runs exactly the same float operations as the corresponding
//! single-shot [`Evaluator`] call, so batching preserves the bit-identity
//! contract of [`crate::delta`].
//!
//! Worker `k` always receives the same contiguous slice position of the
//! batch, and the split is deterministic in the batch length, so runs are
//! reproducible whether or not threads are actually spawned.

use crate::allocation::Allocation;
#[cfg(feature = "delta-eval")]
use crate::delta::TaskMove;
use crate::evaluator::{Evaluator, Outcome};
use hetsched_data::HcSystem;
use hetsched_workload::Trace;

/// One evaluation request in a batch.
///
/// `Skip` marks a job whose outcome the caller already knows (an engine
/// reusing a parent's objectives for a certified no-op child); it keeps
/// indices aligned without costing an evaluation.
#[derive(Debug, Clone, Copy)]
pub enum BatchJob<'g> {
    /// Full evaluation of one allocation.
    Full(&'g Allocation),
    /// Incremental evaluation: `child` equals `base` with `moves` applied.
    /// Falls back to a full evaluation of `child` when the crate is built
    /// without the `delta-eval` feature.
    #[cfg(feature = "delta-eval")]
    Delta {
        /// The parent allocation whose schedule may be pooled.
        base: &'g Allocation,
        /// The offspring allocation to evaluate.
        child: &'g Allocation,
        /// The exact base→child diff, applied left to right.
        moves: &'g [TaskMove],
    },
    /// No evaluation needed; [`BatchEvaluator::evaluate_jobs`] returns
    /// `None` in this slot.
    Skip,
}

/// Evaluates batches of jobs across a pool of persistent [`Evaluator`]
/// workers.
///
/// Worker 0 is the *primary*: serial batches and all single-shot calls
/// (via [`BatchEvaluator::primary`]) run on it, so its delta pool sees
/// every schedule an unbatched run would have seen. Extra workers are
/// cloned lazily from the primary (clones are cheap — empty pool, shared
/// system/trace) the first time a parallel batch needs them, and then
/// kept, so their pools warm up too.
#[derive(Debug, Clone)]
pub struct BatchEvaluator<'a> {
    workers: Vec<Evaluator<'a>>,
    threads: usize,
}

impl<'a> BatchEvaluator<'a> {
    /// Creates a batch evaluator bound to one system + trace, with a
    /// single (primary) worker. The worker pool grows on demand up to the
    /// machine's available parallelism.
    pub fn new(system: &'a HcSystem, trace: &'a Trace) -> Self {
        BatchEvaluator {
            workers: vec![Evaluator::new(system, trace)],
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Wraps an existing evaluator as the primary worker, preserving its
    /// warm delta pool.
    pub fn from_evaluator(primary: Evaluator<'a>) -> Self {
        BatchEvaluator {
            workers: vec![primary],
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// The primary worker, for single-shot evaluation between batches.
    pub fn primary(&mut self) -> &mut Evaluator<'a> {
        &mut self.workers[0]
    }

    /// Shared view of the primary worker.
    pub fn primary_ref(&self) -> &Evaluator<'a> {
        &self.workers[0]
    }

    /// Number of workers currently instantiated (≥ 1).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Evaluates every job, returning outcomes in job order (`None` for
    /// [`BatchJob::Skip`] slots).
    ///
    /// With `parallel == false`, or when the batch is too small to split,
    /// everything runs on the primary worker — exactly the sequence of
    /// calls an unbatched loop would have made. With `parallel == true`
    /// the batch is split into contiguous chunks, one per worker, executed
    /// under `std::thread::scope`; within a chunk jobs still run in order
    /// on one worker, so every individual result is bit-identical to the
    /// serial path (evaluation is pure per job — only the pool warm-up
    /// pattern differs, which affects speed, never values).
    pub fn evaluate_jobs(&mut self, jobs: &[BatchJob<'_>], parallel: bool) -> Vec<Option<Outcome>> {
        let threads = if parallel {
            self.threads.min(jobs.len()).max(1)
        } else {
            1
        };
        // The batch span nests under the engine's evaluation phase via the
        // caller's thread; worker chunks stay untraced (clock reads only —
        // evaluation itself is RNG-free and bit-identical either way).
        let batch_span = tracing::span!(
            tracing::Level::TRACE,
            "batch",
            jobs = jobs.len() as u64,
            threads = threads as u64
        );
        let _in_batch = batch_span.enter();
        if threads <= 1 || jobs.len() < 2 {
            let primary = &mut self.workers[0];
            return jobs.iter().map(|job| Self::run(primary, job)).collect();
        }
        while self.workers.len() < threads {
            let clone = self.workers[0].clone();
            self.workers.push(clone);
        }
        let mut out: Vec<Option<Outcome>> = vec![None; jobs.len()];
        let chunk = jobs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let mut workers: &mut [Evaluator<'a>] = &mut self.workers[..threads];
            let mut jobs_rest = jobs;
            let mut out_rest: &mut [Option<Outcome>] = &mut out;
            while !jobs_rest.is_empty() {
                let take = chunk.min(jobs_rest.len());
                let (job_chunk, jr) = jobs_rest.split_at(take);
                let (out_chunk, or) = out_rest.split_at_mut(take);
                let (worker, wr) = workers.split_first_mut().expect("worker per chunk");
                jobs_rest = jr;
                out_rest = or;
                workers = wr;
                scope.spawn(move || {
                    for (slot, job) in out_chunk.iter_mut().zip(job_chunk) {
                        *slot = Self::run(worker, job);
                    }
                });
            }
        });
        out
    }

    fn run(ev: &mut Evaluator<'a>, job: &BatchJob<'_>) -> Option<Outcome> {
        match job {
            BatchJob::Full(alloc) => Some(ev.evaluate(alloc)),
            #[cfg(feature = "delta-eval")]
            BatchJob::Delta { base, child, moves } => Some(ev.evaluate_delta(base, child, moves)),
            BatchJob::Skip => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::{real_system, MachineId};
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_alloc(rng: &mut StdRng, tasks: usize, machines: usize) -> Allocation {
        Allocation {
            machine: (0..tasks)
                .map(|_| MachineId(rng.gen_range(0..machines as u32)))
                .collect(),
            order: (0..tasks).map(|_| rng.gen_range(0..1000)).collect(),
        }
    }

    #[test]
    fn batched_full_jobs_match_single_shot_bitwise() {
        let sys = real_system();
        let trace = TraceGenerator::new(40, 600.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(7))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let allocs: Vec<Allocation> = (0..17)
            .map(|_| random_alloc(&mut rng, 40, sys.machine_count()))
            .collect();
        let mut reference = Evaluator::new(&sys, &trace);
        let expected: Vec<Outcome> = allocs.iter().map(|a| reference.evaluate(a)).collect();
        for parallel in [false, true] {
            let mut batch = BatchEvaluator::new(&sys, &trace);
            let jobs: Vec<BatchJob<'_>> = allocs.iter().map(BatchJob::Full).collect();
            let got = batch.evaluate_jobs(&jobs, parallel);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                let g = g.expect("full job yields an outcome");
                assert_eq!(g.utility.to_bits(), e.utility.to_bits());
                assert_eq!(g.energy.to_bits(), e.energy.to_bits());
                assert_eq!(g.makespan.to_bits(), e.makespan.to_bits());
            }
        }
    }

    #[test]
    fn skip_jobs_yield_none_and_cost_nothing() {
        let sys = real_system();
        let trace = TraceGenerator::new(10, 600.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(7))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_alloc(&mut rng, 10, sys.machine_count());
        let mut batch = BatchEvaluator::new(&sys, &trace);
        let jobs = [BatchJob::Skip, BatchJob::Full(&a), BatchJob::Skip];
        let got = batch.evaluate_jobs(&jobs, false);
        assert!(got[0].is_none());
        assert!(got[1].is_some());
        assert!(got[2].is_none());
    }

    #[cfg(feature = "delta-eval")]
    #[test]
    fn batched_delta_jobs_match_single_shot_bitwise() {
        use crate::delta::TaskMove;
        let sys = real_system();
        let trace = TraceGenerator::new(60, 600.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(19))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let base = random_alloc(&mut rng, 60, sys.machine_count());
        let mut children = Vec::new();
        for _ in 0..12 {
            let mut child = base.clone();
            let t = rng.gen_range(0..60usize);
            let mv = TaskMove {
                task: t as u32,
                machine: MachineId(rng.gen_range(0..sys.machine_count() as u32)),
                order: rng.gen_range(0..1000),
            };
            child.machine[t] = mv.machine;
            child.order[t] = mv.order;
            children.push((child, vec![mv]));
        }
        let mut reference = Evaluator::new(&sys, &trace);
        let expected: Vec<Outcome> = children
            .iter()
            .map(|(c, m)| reference.evaluate_delta(&base, c, m))
            .collect();
        for parallel in [false, true] {
            let mut batch = BatchEvaluator::new(&sys, &trace);
            // Warm the primary the same way the reference warmed up.
            let jobs: Vec<BatchJob<'_>> = children
                .iter()
                .map(|(c, m)| BatchJob::Delta {
                    base: &base,
                    child: c,
                    moves: m,
                })
                .collect();
            let got = batch.evaluate_jobs(&jobs, parallel);
            for (g, e) in got.iter().zip(&expected) {
                let g = g.expect("delta job yields an outcome");
                assert_eq!(g.utility.to_bits(), e.utility.to_bits());
                assert_eq!(g.energy.to_bits(), e.energy.to_bits());
                assert_eq!(g.makespan.to_bits(), e.makespan.to_bits());
            }
        }
    }

    #[cfg(feature = "delta-eval")]
    #[test]
    fn worker_pools_stay_warm_across_batches() {
        let sys = real_system();
        let trace = TraceGenerator::new(30, 600.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(5))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let base = random_alloc(&mut rng, 30, sys.machine_count());
        let mut batch = BatchEvaluator::new(&sys, &trace);
        let jobs = [BatchJob::Delta {
            base: &base,
            child: &base,
            moves: &[],
        }];
        batch.evaluate_jobs(&jobs, false);
        assert!(
            batch.primary_ref().delta_pool_len() > 0,
            "primary pool warms across batches"
        );
        // A second identical batch must hit the pool, not rebuild.
        batch.evaluate_jobs(&jobs, false);
        assert_eq!(batch.primary_ref().delta_pool_len(), 1);
    }
}
