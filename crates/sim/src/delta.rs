//! Incremental (delta) evaluation: recompute only the machines touched by
//! a variation instead of re-simulating the whole allocation.
//!
//! Machine queues are independent under the paper's semantics — a task's
//! start time depends only on its arrival and the previous finish time on
//! *its own* machine — so the two objectives decompose into per-machine
//! subtotals:
//!
//! ```text
//! U = Σ_m U_m     E = Σ_m E_m     makespan = max_m last_finish_m
//! ```
//!
//! [`ScheduleCache`] materialises that decomposition for one genome:
//! per-machine task queues (in execution order), per-task finish times, and
//! per-machine *prefix sums* of utility and energy. A [`TaskMove`] — one
//! gene rewrite — invalidates only a suffix of at most two queues, so
//! applying a typical mutation costs O(touched-queue tails) instead of
//! O(tasks · log tasks).
//!
//! # Bit-identity contract
//!
//! The cache reproduces [`crate::Evaluator::evaluate`] **bit for bit**, not
//! approximately, because both sides perform the exact same floating-point
//! operations in the exact same order:
//!
//! * per machine, utility/energy are accumulated as a left fold in queue
//!   order (the reference evaluator's global walk visits each machine's
//!   queue members in that same order and folds into per-machine
//!   accumulators);
//! * the cross-machine totals are summed in ascending machine index, the
//!   same loop the reference evaluator runs.
//!
//! The property suite in `tests/` asserts this equality with `total_cmp`
//! on arbitrary genomes and move sequences.

use crate::allocation::Allocation;
use crate::evaluator::Outcome;
use hetsched_data::{HcSystem, MachineId};
use hetsched_workload::Trace;

/// One gene rewrite: task `task` now runs on `machine` with global
/// scheduling-order key `order` (absolute new values, not deltas).
///
/// A sequence of moves is applied left to right; a later move for the same
/// task overrides an earlier one. The variation operators emit the exact
/// base→child diff as a move list so the evaluator can take the
/// incremental path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMove {
    /// Index of the rewritten task (gene) in the trace.
    pub task: u32,
    /// The task's new machine assignment.
    pub machine: MachineId,
    /// The task's new global scheduling-order key.
    pub order: u32,
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn gene_hash(task: usize, machine: MachineId, order: u32) -> u64 {
    splitmix64(splitmix64((task as u64) << 32 | machine.index() as u64) ^ order as u64)
}

/// Order-independent fingerprint of a genome (XOR of per-gene hashes), used
/// as a cheap prefilter before full equality when looking up cached
/// schedules. Collisions are harmless — lookups always confirm with `==`.
pub fn genome_fingerprint(genome: &Allocation) -> u64 {
    genome
        .machine
        .iter()
        .zip(&genome.order)
        .enumerate()
        .fold(0u64, |acc, (i, (&m, &o))| acc ^ gene_hash(i, m, o))
}

/// A decomposed schedule for one genome: per-machine queues, finish times,
/// and utility/energy prefix sums, kept consistent under [`TaskMove`]
/// application.
///
/// # Data layout (SoA arena)
///
/// All per-machine data lives in a handful of flat arenas instead of nested
/// vecs. Machine `m` owns the half-open slice `[seg_start[m], seg_start[m] +
/// seg_cap[m])` of the per-slot arenas (`queue`, `finish`, …) (of which the first
/// `seg_len[m]` entries are live), and — because each prefix segment is one
/// slot longer than its queue — the slice starting at `seg_start[m] + m` of
/// the `util_prefix`/`energy_prefix` arenas. Segments are laid out in
/// ascending machine order with a little slack capacity so inserts rarely
/// reallocate; a full insert triggers [`ScheduleCache::grow`], which shifts
/// the arena tail (rare, amortised). The whole cache is a handful of flat
/// allocations, and steady-state `apply` allocates nothing.
///
/// # Memoised slot values
///
/// Each queue slot also carries the task's execution time and energy —
/// pure functions of (task type, machine), so they stay valid under any
/// reordering of the segment. `recompute` therefore walks flat `f64`
/// arenas instead of chasing the ETC matrices through the task structs.
#[derive(Debug, Clone)]
pub struct ScheduleCache {
    /// The genome this cache currently describes.
    baseline: Allocation,
    /// [`genome_fingerprint`] of `baseline`, updated incrementally.
    fingerprint: u64,
    /// Arena offset of machine m's queue segment.
    seg_start: Vec<u32>,
    /// Capacity of machine m's queue segment.
    seg_cap: Vec<u32>,
    /// Live entries in machine m's queue segment.
    seg_len: Vec<u32>,
    /// Task ids per machine, ascending (order key, task id).
    queue: Vec<u32>,
    /// Completion time of the k-th task on machine m at `seg_start[m] + k`.
    finish: Vec<f64>,
    /// Execution time of the task in each slot on its segment's machine
    /// (reorder-invariant, filled on insert/rebuild).
    exec_t: Vec<f64>,
    /// Energy analogue of `exec_t`.
    energy_t: Vec<f64>,
    /// Utility earned by the first k tasks on m at `seg_start[m] + m + k`
    /// (segment length `seg_cap[m] + 1`; slot k = 0 is always 0.0).
    util_prefix: Vec<f64>,
    /// Energy analogue of `util_prefix`.
    energy_prefix: Vec<f64>,
    /// Per-machine objective totals, maintained by `recompute` so
    /// [`ScheduleCache::outcome`] reduces three flat arrays.
    total_util: Vec<f64>,
    /// Energy analogue of `total_util`.
    total_energy: Vec<f64>,
    /// Finish time of machine m's last task (0.0 for an empty queue).
    last_finish: Vec<f64>,
    /// First invalid queue position per machine; `usize::MAX` = clean.
    dirty_from: Vec<usize>,
    /// Machines with a pending recompute (scratch for `apply`).
    dirty: Vec<u32>,
}

impl ScheduleCache {
    /// Builds the cache for `genome` (one full evaluation's worth of work).
    pub fn build(system: &HcSystem, trace: &Trace, genome: &Allocation) -> Self {
        let mc = system.machine_count();
        let mut cache = ScheduleCache {
            baseline: Allocation {
                machine: Vec::new(),
                order: Vec::new(),
            },
            fingerprint: 0,
            seg_start: Vec::with_capacity(mc),
            seg_cap: Vec::with_capacity(mc),
            seg_len: Vec::with_capacity(mc),
            queue: Vec::new(),
            finish: Vec::new(),
            exec_t: Vec::new(),
            energy_t: Vec::new(),
            util_prefix: Vec::new(),
            energy_prefix: Vec::new(),
            total_util: Vec::with_capacity(mc),
            total_energy: Vec::with_capacity(mc),
            last_finish: Vec::with_capacity(mc),
            dirty_from: vec![usize::MAX; mc],
            dirty: Vec::new(),
        };
        cache.rebuild(system, trace, genome);
        cache
    }

    #[inline]
    fn machine_count(&self) -> usize {
        self.seg_start.len()
    }

    /// Start of machine m's prefix segment (queue offset plus one extra
    /// leading slot per preceding machine).
    #[inline]
    fn prefix_start(&self, m: usize) -> usize {
        self.seg_start[m] as usize + m
    }

    /// Re-targets the cache at a different genome, reusing its buffers.
    /// Costs one full evaluation; `apply` afterwards is incremental.
    pub fn rebuild(&mut self, system: &HcSystem, trace: &Trace, genome: &Allocation) {
        debug_assert!(genome.validate(system, trace).is_ok());
        let mc = system.machine_count();
        self.baseline.clone_from(genome);
        self.fingerprint = genome_fingerprint(genome);
        // Pass 1: queue lengths per machine, then lay out the arena with
        // slack so a burst of inserts doesn't immediately force a grow.
        self.seg_len.clear();
        self.seg_len.resize(mc, 0);
        for &m in &genome.machine {
            self.seg_len[m.index()] += 1;
        }
        self.seg_start.clear();
        self.seg_cap.clear();
        let mut off: u32 = 0;
        for m in 0..mc {
            let len = self.seg_len[m];
            let cap = len + (len / 4).max(4);
            self.seg_start.push(off);
            self.seg_cap.push(cap);
            off += cap;
        }
        let qtotal = off as usize;
        self.queue.clear();
        self.queue.resize(qtotal, 0);
        self.finish.clear();
        self.finish.resize(qtotal, 0.0);
        self.exec_t.clear();
        self.exec_t.resize(qtotal, 0.0);
        self.energy_t.clear();
        self.energy_t.resize(qtotal, 0.0);
        self.util_prefix.clear();
        self.util_prefix.resize(qtotal + mc, 0.0);
        self.energy_prefix.clear();
        self.energy_prefix.resize(qtotal + mc, 0.0);
        self.total_util.clear();
        self.total_util.resize(mc, 0.0);
        self.total_energy.clear();
        self.total_energy.resize(mc, 0.0);
        self.last_finish.clear();
        self.last_finish.resize(mc, 0.0);
        self.dirty_from.clear();
        self.dirty_from.resize(mc, usize::MAX);
        self.dirty.clear();
        // Pass 2: scatter tasks into their segments (seg_len doubles as the
        // write cursor), then sort each segment into execution order =
        // ascending (order key, task id), the machine's slice of the global
        // sequence.
        self.seg_len.clear();
        self.seg_len.resize(mc, 0);
        for (i, &m) in genome.machine.iter().enumerate() {
            let mi = m.index();
            self.queue[(self.seg_start[mi] + self.seg_len[mi]) as usize] = i as u32;
            self.seg_len[mi] += 1;
        }
        let tasks = trace.tasks();
        for m in 0..mc {
            let s = self.seg_start[m] as usize;
            let len = self.seg_len[m] as usize;
            self.queue[s..s + len].sort_unstable_by_key(|&i| (genome.order[i as usize], i));
            let machine = MachineId(m as u32);
            for k in s..s + len {
                let task = &tasks[self.queue[k] as usize];
                self.exec_t[k] = system.exec_time(task.task_type, machine);
                self.energy_t[k] = system.energy(task.task_type, machine);
            }
        }
        for m in 0..mc {
            self.recompute(trace, m, 0);
        }
    }

    /// Applies `moves` to the cached genome and returns the updated
    /// objectives. Only queues touched by the moves are recomputed, from
    /// the earliest edited position onward.
    ///
    /// Each move must name a task present in the cached baseline (any task
    /// is, when the baseline covers the trace); debug builds assert the
    /// queue bookkeeping stays consistent.
    pub fn apply(&mut self, system: &HcSystem, trace: &Trace, moves: &[TaskMove]) -> Outcome {
        debug_assert_eq!(self.machine_count(), system.machine_count());
        for mv in moves {
            let t = mv.task as usize;
            let old_m = self.baseline.machine[t];
            let old_o = self.baseline.order[t];
            {
                // Remove from the old queue: binary search on the (key, id)
                // pair — unique per task, and every other queue member still
                // carries its current key in `baseline.order`.
                let mi = old_m.index();
                let s = self.seg_start[mi] as usize;
                let len = self.seg_len[mi] as usize;
                let order = &self.baseline.order;
                let pos = self.queue[s..s + len]
                    .partition_point(|&u| (order[u as usize], u) < (old_o, mv.task));
                debug_assert!(
                    pos < len && self.queue[s + pos] == mv.task,
                    "TaskMove does not match the cached baseline"
                );
                self.shift_slots_left(s + pos, s + len);
                self.seg_len[mi] -= 1;
                mark_dirty(&mut self.dirty_from, &mut self.dirty, mi, pos);
            }
            self.fingerprint ^= gene_hash(t, old_m, old_o);
            self.baseline.machine[t] = mv.machine;
            self.baseline.order[t] = mv.order;
            self.fingerprint ^= gene_hash(t, mv.machine, mv.order);
            {
                let mi = mv.machine.index();
                if self.seg_len[mi] == self.seg_cap[mi] {
                    self.grow(mi);
                }
                let s = self.seg_start[mi] as usize;
                let len = self.seg_len[mi] as usize;
                let order = &self.baseline.order;
                let pos = self.queue[s..s + len]
                    .partition_point(|&u| (order[u as usize], u) < (mv.order, mv.task));
                self.shift_slots_right(s + pos, s + len);
                let task = &trace.tasks()[t];
                self.queue[s + pos] = mv.task;
                self.exec_t[s + pos] = system.exec_time(task.task_type, mv.machine);
                self.energy_t[s + pos] = system.energy(task.task_type, mv.machine);
                self.seg_len[mi] += 1;
                mark_dirty(&mut self.dirty_from, &mut self.dirty, mi, pos);
            }
        }
        let dirty = std::mem::take(&mut self.dirty);
        for &m in &dirty {
            let from = self.dirty_from[m as usize];
            self.dirty_from[m as usize] = usize::MAX;
            self.recompute(trace, m as usize, from);
        }
        self.dirty = dirty;
        self.dirty.clear();
        self.outcome()
    }

    /// Widens machine `m`'s segment by shifting every later segment towards
    /// the arena tail. Rare: segments are laid out with slack, and removals
    /// never grow. One `memmove` per arena, no recomputation — the shifted
    /// bits are preserved exactly.
    /// Shifts the per-slot arenas left by one over `[from + 1, end)`
    /// (removal at `from`); the memoised values travel with their tasks.
    #[inline]
    fn shift_slots_left(&mut self, from: usize, end: usize) {
        self.queue.copy_within(from + 1..end, from);
        self.finish.copy_within(from + 1..end, from);
        self.exec_t.copy_within(from + 1..end, from);
        self.energy_t.copy_within(from + 1..end, from);
    }

    /// Shifts the per-slot arenas right by one over `[from, end)` (insert
    /// at `from`); the caller fills slot `from` afterwards.
    #[inline]
    fn shift_slots_right(&mut self, from: usize, end: usize) {
        self.queue.copy_within(from..end, from + 1);
        self.finish.copy_within(from..end, from + 1);
        self.exec_t.copy_within(from..end, from + 1);
        self.energy_t.copy_within(from..end, from + 1);
    }

    #[cold]
    fn grow(&mut self, m: usize) {
        let extra = (self.seg_cap[m] / 2).max(4);
        let mc = self.machine_count();
        let old_q = self.queue.len();
        let old_p = self.util_prefix.len();
        self.queue.resize(old_q + extra as usize, 0);
        self.finish.resize(old_q + extra as usize, 0.0);
        self.exec_t.resize(old_q + extra as usize, 0.0);
        self.energy_t.resize(old_q + extra as usize, 0.0);
        self.util_prefix.resize(old_p + extra as usize, 0.0);
        self.energy_prefix.resize(old_p + extra as usize, 0.0);
        if m + 1 < mc {
            let s = self.seg_start[m + 1] as usize;
            self.queue.copy_within(s..old_q, s + extra as usize);
            self.finish.copy_within(s..old_q, s + extra as usize);
            self.exec_t.copy_within(s..old_q, s + extra as usize);
            self.energy_t.copy_within(s..old_q, s + extra as usize);
            let ps = s + (m + 1);
            self.util_prefix.copy_within(ps..old_p, ps + extra as usize);
            self.energy_prefix
                .copy_within(ps..old_p, ps + extra as usize);
            for j in m + 1..mc {
                self.seg_start[j] += extra;
            }
        }
        self.seg_cap[m] += extra;
    }

    /// The objectives of the cached genome, summed across machines in
    /// ascending machine index — the same loop the reference evaluator
    /// runs, so the result is bit-identical to a full evaluation.
    pub fn outcome(&self) -> Outcome {
        let mut utility = 0.0;
        let mut energy = 0.0;
        let mut makespan = 0.0f64;
        for m in 0..self.machine_count() {
            utility += self.total_util[m];
            energy += self.total_energy[m];
            makespan = makespan.max(self.last_finish[m]);
        }
        Outcome {
            utility,
            energy,
            makespan,
        }
    }

    /// The genome this cache currently describes.
    pub fn baseline(&self) -> &Allocation {
        &self.baseline
    }

    /// The incrementally-maintained [`genome_fingerprint`] of the baseline.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Recomputes machine `m`'s finish times and prefix sums from queue
    /// position `from`, resuming the left fold from the stored prefixes.
    /// Prefix reuse is exact: prefix slot `from` *is* the fold of the
    /// first `from` terms, so continuing from it performs the identical
    /// addition sequence a from-scratch fold would. The per-machine totals
    /// are refreshed at the end, keeping `outcome` a flat reduction.
    fn recompute(&mut self, trace: &Trace, m: usize, from: usize) {
        let tasks = trace.tasks();
        let s = self.seg_start[m] as usize;
        let len = self.seg_len[m] as usize;
        let ps = self.prefix_start(m);
        let from = from.min(len);
        let mut free = if from == 0 {
            0.0
        } else {
            self.finish[s + from - 1]
        };
        let mut utility = self.util_prefix[ps + from];
        let mut energy = self.energy_prefix[ps + from];
        for k in from..len {
            let i = s + k;
            let task = &tasks[self.queue[i] as usize];
            let start = free.max(task.arrival);
            let finish = start + self.exec_t[i];
            self.finish[i] = finish;
            free = finish;
            utility += task.tuf.utility(finish - task.arrival);
            energy += self.energy_t[i];
            self.util_prefix[ps + k + 1] = utility;
            self.energy_prefix[ps + k + 1] = energy;
        }
        self.total_util[m] = utility;
        self.total_energy[m] = energy;
        self.last_finish[m] = if len == 0 {
            0.0
        } else {
            self.finish[s + len - 1]
        };
    }
}

fn mark_dirty(dirty_from: &mut [usize], dirty: &mut Vec<u32>, m: usize, pos: usize) {
    if dirty_from[m] == usize::MAX {
        dirty.push(m as u32);
        dirty_from[m] = pos;
    } else if pos < dirty_from[m] {
        dirty_from[m] = pos;
    }
}

/// A [`ScheduleCache`] bound to one system and trace: the incremental
/// counterpart of [`crate::Evaluator`].
///
/// ```
/// use hetsched_data::{real_system, MachineId};
/// use hetsched_sim::{Allocation, DeltaEval, Evaluator, TaskMove};
/// use hetsched_workload::TraceGenerator;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let system = real_system();
/// let trace = TraceGenerator::new(10, 900.0, system.task_type_count())
///     .generate(&mut StdRng::seed_from_u64(1))
///     .unwrap();
/// let base = Allocation::with_arrival_order(vec![MachineId(0); 10]);
/// let mut delta = DeltaEval::new(&system, &trace, &base);
/// let mv = TaskMove { task: 3, machine: MachineId(5), order: base.order[3] };
/// let fast = delta.apply(&base, &[mv]);
///
/// let mut child = base.clone();
/// child.machine[3] = MachineId(5);
/// let full = Evaluator::new(&system, &trace).evaluate(&child);
/// assert!(fast.utility.total_cmp(&full.utility).is_eq());
/// assert!(fast.energy.total_cmp(&full.energy).is_eq());
/// ```
#[derive(Debug, Clone)]
pub struct DeltaEval<'a> {
    system: &'a HcSystem,
    trace: &'a Trace,
    cache: ScheduleCache,
}

impl<'a> DeltaEval<'a> {
    /// Builds the cache for `genome` (one full evaluation's worth of work).
    pub fn new(system: &'a HcSystem, trace: &'a Trace, genome: &Allocation) -> Self {
        DeltaEval {
            system,
            trace,
            cache: ScheduleCache::build(system, trace, genome),
        }
    }

    /// Re-targets the cache at `genome` (full recompute, buffers reused).
    pub fn rebuild(&mut self, genome: &Allocation) {
        self.cache.rebuild(self.system, self.trace, genome);
    }

    /// Evaluates `base` with `moves` applied. Incremental when `base` is
    /// the currently cached genome (the common case: a parent varied into
    /// a child); otherwise the cache is rebuilt at `base` first.
    pub fn apply(&mut self, base: &Allocation, moves: &[TaskMove]) -> Outcome {
        if self.cache.fingerprint() != genome_fingerprint(base) || self.cache.baseline() != base {
            self.cache.rebuild(self.system, self.trace, base);
        }
        self.cache.apply(self.system, self.trace, moves)
    }

    /// Applies `moves` to the currently cached genome without any base
    /// check — the zero-overhead path for callers that chain moves.
    pub fn apply_moves(&mut self, moves: &[TaskMove]) -> Outcome {
        self.cache.apply(self.system, self.trace, moves)
    }

    /// The objectives of the currently cached genome.
    pub fn outcome(&self) -> Outcome {
        self.cache.outcome()
    }

    /// The currently cached genome.
    pub fn genome(&self) -> &Allocation {
        self.cache.baseline()
    }

    /// The incrementally maintained fingerprint of the cached genome —
    /// always equal to [`genome_fingerprint`]`(self.genome())`.
    pub fn fingerprint(&self) -> u64 {
        self.cache.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use hetsched_data::real_system;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize) -> (HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(9))
            .unwrap();
        (sys, trace)
    }

    fn assert_bit_identical(a: Outcome, b: Outcome) {
        assert!(a.utility.total_cmp(&b.utility).is_eq(), "{a:?} vs {b:?}");
        assert!(a.energy.total_cmp(&b.energy).is_eq(), "{a:?} vs {b:?}");
        assert!(a.makespan.total_cmp(&b.makespan).is_eq(), "{a:?} vs {b:?}");
    }

    fn random_alloc(sys: &HcSystem, n: usize, rng: &mut StdRng) -> Allocation {
        let machine = (0..n)
            .map(|_| MachineId(rng.gen_range(0..sys.machine_count()) as u32))
            .collect();
        let order = (0..n).map(|_| rng.gen_range(0..n as u32 * 2)).collect();
        Allocation { machine, order }
    }

    #[test]
    fn build_matches_reference_evaluator() {
        let (sys, trace) = setup(60);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let alloc = random_alloc(&sys, 60, &mut rng);
            let cache = ScheduleCache::build(&sys, &trace, &alloc);
            assert_bit_identical(cache.outcome(), ev.evaluate(&alloc));
        }
    }

    #[test]
    fn single_move_matches_full_reevaluation() {
        let (sys, trace) = setup(40);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(2);
        let base = random_alloc(&sys, 40, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        let mut current = base;
        for _ in 0..200 {
            let mv = TaskMove {
                task: rng.gen_range(0..40u32),
                machine: MachineId(rng.gen_range(0..sys.machine_count()) as u32),
                order: rng.gen_range(0..100u32),
            };
            current.machine[mv.task as usize] = mv.machine;
            current.order[mv.task as usize] = mv.order;
            let fast = delta.apply_moves(&[mv]);
            assert_bit_identical(fast, ev.evaluate(&current));
            assert_eq!(delta.genome(), &current);
        }
    }

    #[test]
    fn batched_moves_match_full_reevaluation() {
        let (sys, trace) = setup(50);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(3);
        let base = random_alloc(&sys, 50, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        let mut current = base;
        for _ in 0..50 {
            let batch: Vec<TaskMove> = (0..rng.gen_range(1..6))
                .map(|_| TaskMove {
                    task: rng.gen_range(0..50u32),
                    machine: MachineId(rng.gen_range(0..sys.machine_count()) as u32),
                    order: rng.gen_range(0..200u32),
                })
                .collect();
            for mv in &batch {
                current.machine[mv.task as usize] = mv.machine;
                current.order[mv.task as usize] = mv.order;
            }
            let fast = delta.apply_moves(&batch);
            assert_bit_identical(fast, ev.evaluate(&current));
        }
    }

    #[test]
    fn noop_move_changes_nothing() {
        let (sys, trace) = setup(20);
        let mut rng = StdRng::seed_from_u64(4);
        let base = random_alloc(&sys, 20, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        let before = delta.outcome();
        let mv = TaskMove {
            task: 7,
            machine: base.machine[7],
            order: base.order[7],
        };
        let after = delta.apply_moves(&[mv]);
        assert_bit_identical(before, after);
        assert_eq!(delta.genome(), &base);
    }

    #[test]
    fn fingerprint_tracks_incremental_edits() {
        let (sys, trace) = setup(30);
        let mut rng = StdRng::seed_from_u64(5);
        let base = random_alloc(&sys, 30, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        let mut current = base;
        for _ in 0..50 {
            let mv = TaskMove {
                task: rng.gen_range(0..30u32),
                machine: MachineId(rng.gen_range(0..sys.machine_count()) as u32),
                order: rng.gen_range(0..60u32),
            };
            current.machine[mv.task as usize] = mv.machine;
            current.order[mv.task as usize] = mv.order;
            delta.apply_moves(&[mv]);
        }
        assert_eq!(delta.cache.fingerprint(), genome_fingerprint(&current));
    }

    #[test]
    fn apply_rebuilds_on_unknown_base() {
        let (sys, trace) = setup(25);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_alloc(&sys, 25, &mut rng);
        let b = random_alloc(&sys, 25, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &a);
        // Different base: must rebuild, then still match the oracle.
        let mv = TaskMove {
            task: 0,
            machine: b.machine[1],
            order: 99,
        };
        let mut child = b.clone();
        child.machine[0] = mv.machine;
        child.order[0] = mv.order;
        assert_bit_identical(delta.apply(&b, &[mv]), ev.evaluate(&child));
    }

    #[test]
    fn all_tasks_on_one_machine_round_trip() {
        let (sys, trace) = setup(15);
        let mut ev = Evaluator::new(&sys, &trace);
        let base = Allocation::with_arrival_order(vec![MachineId(4); 15]);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        assert_bit_identical(delta.outcome(), ev.evaluate(&base));
        // Move a task away and back: empties and refills queue positions.
        let away = TaskMove {
            task: 7,
            machine: MachineId(0),
            order: 7,
        };
        let back = TaskMove {
            task: 7,
            machine: MachineId(4),
            order: 7,
        };
        delta.apply_moves(&[away]);
        assert_bit_identical(delta.apply_moves(&[back]), ev.evaluate(&base));
    }
}
