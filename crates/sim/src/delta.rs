//! Incremental (delta) evaluation: recompute only the machines touched by
//! a variation instead of re-simulating the whole allocation.
//!
//! Machine queues are independent under the paper's semantics — a task's
//! start time depends only on its arrival and the previous finish time on
//! *its own* machine — so the two objectives decompose into per-machine
//! subtotals:
//!
//! ```text
//! U = Σ_m U_m     E = Σ_m E_m     makespan = max_m last_finish_m
//! ```
//!
//! [`ScheduleCache`] materialises that decomposition for one genome:
//! per-machine task queues (in execution order), per-task finish times, and
//! per-machine *prefix sums* of utility and energy. A [`TaskMove`] — one
//! gene rewrite — invalidates only a suffix of at most two queues, so
//! applying a typical mutation costs O(touched-queue tails) instead of
//! O(tasks · log tasks).
//!
//! # Bit-identity contract
//!
//! The cache reproduces [`crate::Evaluator::evaluate`] **bit for bit**, not
//! approximately, because both sides perform the exact same floating-point
//! operations in the exact same order:
//!
//! * per machine, utility/energy are accumulated as a left fold in queue
//!   order (the reference evaluator's global walk visits each machine's
//!   queue members in that same order and folds into per-machine
//!   accumulators);
//! * the cross-machine totals are summed in ascending machine index, the
//!   same loop the reference evaluator runs.
//!
//! The property suite in `tests/` asserts this equality with `total_cmp`
//! on arbitrary genomes and move sequences.

use crate::allocation::Allocation;
use crate::evaluator::Outcome;
use hetsched_data::{HcSystem, MachineId};
use hetsched_workload::Trace;

/// One gene rewrite: task `task` now runs on `machine` with global
/// scheduling-order key `order` (absolute new values, not deltas).
///
/// A sequence of moves is applied left to right; a later move for the same
/// task overrides an earlier one. The variation operators emit the exact
/// base→child diff as a move list so the evaluator can take the
/// incremental path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMove {
    /// Index of the rewritten task (gene) in the trace.
    pub task: u32,
    /// The task's new machine assignment.
    pub machine: MachineId,
    /// The task's new global scheduling-order key.
    pub order: u32,
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn gene_hash(task: usize, machine: MachineId, order: u32) -> u64 {
    splitmix64(splitmix64((task as u64) << 32 | machine.index() as u64) ^ order as u64)
}

/// Order-independent fingerprint of a genome (XOR of per-gene hashes), used
/// as a cheap prefilter before full equality when looking up cached
/// schedules. Collisions are harmless — lookups always confirm with `==`.
pub fn genome_fingerprint(genome: &Allocation) -> u64 {
    genome
        .machine
        .iter()
        .zip(&genome.order)
        .enumerate()
        .fold(0u64, |acc, (i, (&m, &o))| acc ^ gene_hash(i, m, o))
}

/// A decomposed schedule for one genome: per-machine queues, finish times,
/// and utility/energy prefix sums, kept consistent under [`TaskMove`]
/// application.
#[derive(Debug, Clone)]
pub struct ScheduleCache {
    /// The genome this cache currently describes.
    baseline: Allocation,
    /// [`genome_fingerprint`] of `baseline`, updated incrementally.
    fingerprint: u64,
    /// Task ids per machine, ascending (order key, task id).
    queues: Vec<Vec<u32>>,
    /// `finish[m][k]` = completion time of the k-th task on machine m.
    queue_finish: Vec<Vec<f64>>,
    /// `util_prefix[m][k]` = utility earned by the first k tasks on m
    /// (length `queue + 1`, `[0]` always 0.0).
    util_prefix: Vec<Vec<f64>>,
    /// Energy analogue of `util_prefix`.
    energy_prefix: Vec<Vec<f64>>,
    /// First invalid queue position per machine; `usize::MAX` = clean.
    dirty_from: Vec<usize>,
    /// Machines with a pending recompute (scratch for `apply`).
    dirty: Vec<u32>,
}

impl ScheduleCache {
    /// Builds the cache for `genome` (one full evaluation's worth of work).
    pub fn build(system: &HcSystem, trace: &Trace, genome: &Allocation) -> Self {
        let mc = system.machine_count();
        let mut cache = ScheduleCache {
            baseline: Allocation {
                machine: Vec::new(),
                order: Vec::new(),
            },
            fingerprint: 0,
            queues: vec![Vec::new(); mc],
            queue_finish: vec![Vec::new(); mc],
            util_prefix: vec![vec![0.0]; mc],
            energy_prefix: vec![vec![0.0]; mc],
            dirty_from: vec![usize::MAX; mc],
            dirty: Vec::new(),
        };
        cache.rebuild(system, trace, genome);
        cache
    }

    /// Re-targets the cache at a different genome, reusing its buffers.
    /// Costs one full evaluation; `apply` afterwards is incremental.
    pub fn rebuild(&mut self, system: &HcSystem, trace: &Trace, genome: &Allocation) {
        debug_assert!(genome.validate(system, trace).is_ok());
        debug_assert_eq!(self.queues.len(), system.machine_count());
        self.baseline.clone_from(genome);
        self.fingerprint = genome_fingerprint(genome);
        for q in &mut self.queues {
            q.clear();
        }
        for (i, &m) in genome.machine.iter().enumerate() {
            self.queues[m.index()].push(i as u32);
        }
        // Per-machine execution order = the machine's slice of the global
        // sequence: ascending (order key, task id).
        for q in &mut self.queues {
            q.sort_unstable_by_key(|&i| (genome.order[i as usize], i));
        }
        for m in 0..self.queues.len() {
            self.recompute(system, trace, m, 0);
        }
    }

    /// Applies `moves` to the cached genome and returns the updated
    /// objectives. Only queues touched by the moves are recomputed, from
    /// the earliest edited position onward.
    ///
    /// Each move must name a task present in the cached baseline (any task
    /// is, when the baseline covers the trace); debug builds assert the
    /// queue bookkeeping stays consistent.
    pub fn apply(&mut self, system: &HcSystem, trace: &Trace, moves: &[TaskMove]) -> Outcome {
        debug_assert_eq!(self.queues.len(), system.machine_count());
        for mv in moves {
            let t = mv.task as usize;
            let old_m = self.baseline.machine[t];
            let old_o = self.baseline.order[t];
            {
                // Remove from the old queue: binary search on the (key, id)
                // pair — unique per task, and every other queue member still
                // carries its current key in `baseline.order`.
                let order = &self.baseline.order;
                let q = &mut self.queues[old_m.index()];
                let pos = q.partition_point(|&u| (order[u as usize], u) < (old_o, mv.task));
                debug_assert!(
                    pos < q.len() && q[pos] == mv.task,
                    "TaskMove does not match the cached baseline"
                );
                q.remove(pos);
                mark_dirty(&mut self.dirty_from, &mut self.dirty, old_m.index(), pos);
            }
            self.fingerprint ^= gene_hash(t, old_m, old_o);
            self.baseline.machine[t] = mv.machine;
            self.baseline.order[t] = mv.order;
            self.fingerprint ^= gene_hash(t, mv.machine, mv.order);
            {
                let order = &self.baseline.order;
                let q = &mut self.queues[mv.machine.index()];
                let pos = q.partition_point(|&u| (order[u as usize], u) < (mv.order, mv.task));
                q.insert(pos, mv.task);
                mark_dirty(
                    &mut self.dirty_from,
                    &mut self.dirty,
                    mv.machine.index(),
                    pos,
                );
            }
        }
        let dirty = std::mem::take(&mut self.dirty);
        for &m in &dirty {
            let from = self.dirty_from[m as usize];
            self.dirty_from[m as usize] = usize::MAX;
            self.recompute(system, trace, m as usize, from);
        }
        self.dirty = dirty;
        self.dirty.clear();
        self.outcome()
    }

    /// The objectives of the cached genome, summed across machines in
    /// ascending machine index — the same loop the reference evaluator
    /// runs, so the result is bit-identical to a full evaluation.
    pub fn outcome(&self) -> Outcome {
        let mut utility = 0.0;
        let mut energy = 0.0;
        let mut makespan = 0.0f64;
        for m in 0..self.queues.len() {
            utility += self.util_prefix[m].last().copied().unwrap_or(0.0);
            energy += self.energy_prefix[m].last().copied().unwrap_or(0.0);
            makespan = makespan.max(self.queue_finish[m].last().copied().unwrap_or(0.0));
        }
        Outcome {
            utility,
            energy,
            makespan,
        }
    }

    /// The genome this cache currently describes.
    pub fn baseline(&self) -> &Allocation {
        &self.baseline
    }

    /// The incrementally-maintained [`genome_fingerprint`] of the baseline.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Recomputes machine `m`'s finish times and prefix sums from queue
    /// position `from`, resuming the left fold from the stored prefixes.
    /// Prefix reuse is exact: `util_prefix[m][from]` *is* the fold of the
    /// first `from` terms, so continuing from it performs the identical
    /// addition sequence a from-scratch fold would.
    fn recompute(&mut self, system: &HcSystem, trace: &Trace, m: usize, from: usize) {
        let tasks = trace.tasks();
        let machine = MachineId(m as u32);
        let q = &self.queues[m];
        let len = q.len();
        let fin = &mut self.queue_finish[m];
        let up = &mut self.util_prefix[m];
        let ep = &mut self.energy_prefix[m];
        fin.resize(len, 0.0);
        up.resize(len + 1, 0.0);
        ep.resize(len + 1, 0.0);
        let from = from.min(len);
        let mut free = if from == 0 { 0.0 } else { fin[from - 1] };
        let mut utility = up[from];
        let mut energy = ep[from];
        for k in from..len {
            let task = &tasks[q[k] as usize];
            let exec = system.exec_time(task.task_type, machine);
            let start = free.max(task.arrival);
            let finish = start + exec;
            free = finish;
            utility += task.tuf.utility(finish - task.arrival);
            energy += system.energy(task.task_type, machine);
            fin[k] = finish;
            up[k + 1] = utility;
            ep[k + 1] = energy;
        }
    }
}

fn mark_dirty(dirty_from: &mut [usize], dirty: &mut Vec<u32>, m: usize, pos: usize) {
    if dirty_from[m] == usize::MAX {
        dirty.push(m as u32);
        dirty_from[m] = pos;
    } else if pos < dirty_from[m] {
        dirty_from[m] = pos;
    }
}

/// A [`ScheduleCache`] bound to one system and trace: the incremental
/// counterpart of [`crate::Evaluator`].
///
/// ```
/// use hetsched_data::{real_system, MachineId};
/// use hetsched_sim::{Allocation, DeltaEval, Evaluator, TaskMove};
/// use hetsched_workload::TraceGenerator;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let system = real_system();
/// let trace = TraceGenerator::new(10, 900.0, system.task_type_count())
///     .generate(&mut StdRng::seed_from_u64(1))
///     .unwrap();
/// let base = Allocation::with_arrival_order(vec![MachineId(0); 10]);
/// let mut delta = DeltaEval::new(&system, &trace, &base);
/// let mv = TaskMove { task: 3, machine: MachineId(5), order: base.order[3] };
/// let fast = delta.apply(&base, &[mv]);
///
/// let mut child = base.clone();
/// child.machine[3] = MachineId(5);
/// let full = Evaluator::new(&system, &trace).evaluate(&child);
/// assert!(fast.utility.total_cmp(&full.utility).is_eq());
/// assert!(fast.energy.total_cmp(&full.energy).is_eq());
/// ```
#[derive(Debug, Clone)]
pub struct DeltaEval<'a> {
    system: &'a HcSystem,
    trace: &'a Trace,
    cache: ScheduleCache,
}

impl<'a> DeltaEval<'a> {
    /// Builds the cache for `genome` (one full evaluation's worth of work).
    pub fn new(system: &'a HcSystem, trace: &'a Trace, genome: &Allocation) -> Self {
        DeltaEval {
            system,
            trace,
            cache: ScheduleCache::build(system, trace, genome),
        }
    }

    /// Re-targets the cache at `genome` (full recompute, buffers reused).
    pub fn rebuild(&mut self, genome: &Allocation) {
        self.cache.rebuild(self.system, self.trace, genome);
    }

    /// Evaluates `base` with `moves` applied. Incremental when `base` is
    /// the currently cached genome (the common case: a parent varied into
    /// a child); otherwise the cache is rebuilt at `base` first.
    pub fn apply(&mut self, base: &Allocation, moves: &[TaskMove]) -> Outcome {
        if self.cache.fingerprint() != genome_fingerprint(base) || self.cache.baseline() != base {
            self.cache.rebuild(self.system, self.trace, base);
        }
        self.cache.apply(self.system, self.trace, moves)
    }

    /// Applies `moves` to the currently cached genome without any base
    /// check — the zero-overhead path for callers that chain moves.
    pub fn apply_moves(&mut self, moves: &[TaskMove]) -> Outcome {
        self.cache.apply(self.system, self.trace, moves)
    }

    /// The objectives of the currently cached genome.
    pub fn outcome(&self) -> Outcome {
        self.cache.outcome()
    }

    /// The currently cached genome.
    pub fn genome(&self) -> &Allocation {
        self.cache.baseline()
    }

    /// The incrementally maintained fingerprint of the cached genome —
    /// always equal to [`genome_fingerprint`]`(self.genome())`.
    pub fn fingerprint(&self) -> u64 {
        self.cache.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use hetsched_data::real_system;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize) -> (HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(9))
            .unwrap();
        (sys, trace)
    }

    fn assert_bit_identical(a: Outcome, b: Outcome) {
        assert!(a.utility.total_cmp(&b.utility).is_eq(), "{a:?} vs {b:?}");
        assert!(a.energy.total_cmp(&b.energy).is_eq(), "{a:?} vs {b:?}");
        assert!(a.makespan.total_cmp(&b.makespan).is_eq(), "{a:?} vs {b:?}");
    }

    fn random_alloc(sys: &HcSystem, n: usize, rng: &mut StdRng) -> Allocation {
        let machine = (0..n)
            .map(|_| MachineId(rng.gen_range(0..sys.machine_count()) as u32))
            .collect();
        let order = (0..n).map(|_| rng.gen_range(0..n as u32 * 2)).collect();
        Allocation { machine, order }
    }

    #[test]
    fn build_matches_reference_evaluator() {
        let (sys, trace) = setup(60);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let alloc = random_alloc(&sys, 60, &mut rng);
            let cache = ScheduleCache::build(&sys, &trace, &alloc);
            assert_bit_identical(cache.outcome(), ev.evaluate(&alloc));
        }
    }

    #[test]
    fn single_move_matches_full_reevaluation() {
        let (sys, trace) = setup(40);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(2);
        let base = random_alloc(&sys, 40, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        let mut current = base;
        for _ in 0..200 {
            let mv = TaskMove {
                task: rng.gen_range(0..40u32),
                machine: MachineId(rng.gen_range(0..sys.machine_count()) as u32),
                order: rng.gen_range(0..100u32),
            };
            current.machine[mv.task as usize] = mv.machine;
            current.order[mv.task as usize] = mv.order;
            let fast = delta.apply_moves(&[mv]);
            assert_bit_identical(fast, ev.evaluate(&current));
            assert_eq!(delta.genome(), &current);
        }
    }

    #[test]
    fn batched_moves_match_full_reevaluation() {
        let (sys, trace) = setup(50);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(3);
        let base = random_alloc(&sys, 50, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        let mut current = base;
        for _ in 0..50 {
            let batch: Vec<TaskMove> = (0..rng.gen_range(1..6))
                .map(|_| TaskMove {
                    task: rng.gen_range(0..50u32),
                    machine: MachineId(rng.gen_range(0..sys.machine_count()) as u32),
                    order: rng.gen_range(0..200u32),
                })
                .collect();
            for mv in &batch {
                current.machine[mv.task as usize] = mv.machine;
                current.order[mv.task as usize] = mv.order;
            }
            let fast = delta.apply_moves(&batch);
            assert_bit_identical(fast, ev.evaluate(&current));
        }
    }

    #[test]
    fn noop_move_changes_nothing() {
        let (sys, trace) = setup(20);
        let mut rng = StdRng::seed_from_u64(4);
        let base = random_alloc(&sys, 20, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        let before = delta.outcome();
        let mv = TaskMove {
            task: 7,
            machine: base.machine[7],
            order: base.order[7],
        };
        let after = delta.apply_moves(&[mv]);
        assert_bit_identical(before, after);
        assert_eq!(delta.genome(), &base);
    }

    #[test]
    fn fingerprint_tracks_incremental_edits() {
        let (sys, trace) = setup(30);
        let mut rng = StdRng::seed_from_u64(5);
        let base = random_alloc(&sys, 30, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        let mut current = base;
        for _ in 0..50 {
            let mv = TaskMove {
                task: rng.gen_range(0..30u32),
                machine: MachineId(rng.gen_range(0..sys.machine_count()) as u32),
                order: rng.gen_range(0..60u32),
            };
            current.machine[mv.task as usize] = mv.machine;
            current.order[mv.task as usize] = mv.order;
            delta.apply_moves(&[mv]);
        }
        assert_eq!(delta.cache.fingerprint(), genome_fingerprint(&current));
    }

    #[test]
    fn apply_rebuilds_on_unknown_base() {
        let (sys, trace) = setup(25);
        let mut ev = Evaluator::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_alloc(&sys, 25, &mut rng);
        let b = random_alloc(&sys, 25, &mut rng);
        let mut delta = DeltaEval::new(&sys, &trace, &a);
        // Different base: must rebuild, then still match the oracle.
        let mv = TaskMove {
            task: 0,
            machine: b.machine[1],
            order: 99,
        };
        let mut child = b.clone();
        child.machine[0] = mv.machine;
        child.order[0] = mv.order;
        assert_bit_identical(delta.apply(&b, &[mv]), ev.evaluate(&child));
    }

    #[test]
    fn all_tasks_on_one_machine_round_trip() {
        let (sys, trace) = setup(15);
        let mut ev = Evaluator::new(&sys, &trace);
        let base = Allocation::with_arrival_order(vec![MachineId(4); 15]);
        let mut delta = DeltaEval::new(&sys, &trace, &base);
        assert_bit_identical(delta.outcome(), ev.evaluate(&base));
        // Move a task away and back: empties and refills queue positions.
        let away = TaskMove {
            task: 7,
            machine: MachineId(0),
            order: 7,
        };
        let back = TaskMove {
            task: 7,
            machine: MachineId(4),
            order: 7,
        };
        delta.apply_moves(&[away]);
        assert_bit_identical(delta.apply_moves(&[back]), ev.evaluate(&base));
    }
}
