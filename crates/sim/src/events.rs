//! An independent event-driven evaluation path.
//!
//! [`crate::Evaluator`] computes schedules with a sorted sweep; this module
//! re-derives the same semantics with a classic discrete-event simulation —
//! a priority queue of machine-dispatch events. It exists for
//! cross-validation: the two implementations share no code beyond the data
//! model, so agreement is strong evidence the sweep is faithful to the
//! §IV-D execution rules ("tasks execute by global order; a machine sits
//! idle until the task's arrival").
//!
//! The event path is O(T log T + T log M) but with bigger constants than
//! the sweep; it is used in tests and for schedule introspection, never in
//! the GA hot loop.

use crate::allocation::Allocation;
use crate::evaluator::Outcome;
use crate::Result;
use hetsched_data::HcSystem;
use hetsched_workload::Trace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A machine-dispatch event: machine `machine` becomes free at `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FreeEvent {
    time: f64,
    machine: u32,
}

impl Eq for FreeEvent {}

impl PartialOrd for FreeEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FreeEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.machine.cmp(&other.machine))
    }
}

/// Evaluates `alloc` with a discrete-event simulation. Semantically
/// identical to [`crate::Evaluator::evaluate`] (asserted by the
/// cross-validation tests); validates the allocation first.
///
/// # Errors
///
/// See [`Allocation::validate`].
pub fn evaluate_event_driven(
    system: &HcSystem,
    trace: &Trace,
    alloc: &Allocation,
) -> Result<Outcome> {
    alloc.validate(system, trace)?;
    let tasks = trace.tasks();
    let n = tasks.len();

    // Per-machine FIFO queues in global scheduling order.
    let mut sequence: Vec<u32> = (0..n as u32).collect();
    sequence.sort_unstable_by_key(|&i| (alloc.order[i as usize], i));
    let mut queues: Vec<std::collections::VecDeque<u32>> =
        vec![std::collections::VecDeque::new(); system.machine_count()];
    for &i in &sequence {
        queues[alloc.machine[i as usize].index()].push_back(i);
    }

    // Event loop: each machine processes its queue head; when the head has
    // not arrived yet the machine idles until the arrival time.
    let mut events: BinaryHeap<Reverse<FreeEvent>> = BinaryHeap::new();
    for (m, queue) in queues.iter().enumerate() {
        if !queue.is_empty() {
            events.push(Reverse(FreeEvent {
                time: 0.0,
                machine: m as u32,
            }));
        }
    }
    let (mut utility, mut energy, mut makespan) = (0.0, 0.0, 0.0f64);
    while let Some(Reverse(FreeEvent { time, machine })) = events.pop() {
        let queue = &mut queues[machine as usize];
        let Some(i) = queue.pop_front() else {
            continue;
        };
        let task = &tasks[i as usize];
        let m = alloc.machine[i as usize];
        debug_assert_eq!(m.index(), machine as usize);
        let start = time.max(task.arrival);
        let finish = start + system.exec_time(task.task_type, m);
        utility += task.tuf.utility(finish - task.arrival);
        energy += system.energy(task.task_type, m);
        makespan = makespan.max(finish);
        if !queue.is_empty() {
            events.push(Reverse(FreeEvent {
                time: finish,
                machine,
            }));
        }
    }
    Ok(Outcome {
        utility,
        energy,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use hetsched_data::{real_system, MachineId};
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn agrees_with_sweep_on_random_allocations() {
        let sys = real_system();
        for seed in 0..20u64 {
            let trace = TraceGenerator::new(60, 900.0, sys.task_type_count())
                .generate(&mut StdRng::seed_from_u64(seed))
                .unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
            let machine: Vec<MachineId> = trace
                .tasks()
                .iter()
                .map(|t| {
                    let fs = sys.feasible_machines(t.task_type);
                    fs[rng.gen_range(0..fs.len())]
                })
                .collect();
            let mut order: Vec<u32> = (0..60).collect();
            for i in (1..60usize).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let alloc = Allocation { machine, order };
            let sweep = Evaluator::new(&sys, &trace).evaluate(&alloc);
            let events = evaluate_event_driven(&sys, &trace, &alloc).unwrap();
            assert!((sweep.utility - events.utility).abs() < 1e-9, "seed {seed}");
            assert!((sweep.energy - events.energy).abs() < 1e-9, "seed {seed}");
            assert!(
                (sweep.makespan - events.makespan).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_with_duplicate_order_keys() {
        let sys = real_system();
        let trace = TraceGenerator::new(20, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(3))
            .unwrap();
        // All order keys identical — ties broken by task id in both paths.
        let alloc = Allocation {
            machine: vec![MachineId(2); 20],
            order: vec![5; 20],
        };
        let sweep = Evaluator::new(&sys, &trace).evaluate(&alloc);
        let events = evaluate_event_driven(&sys, &trace, &alloc).unwrap();
        assert!((sweep.utility - events.utility).abs() < 1e-9);
        assert!((sweep.makespan - events.makespan).abs() < 1e-9);
    }

    #[test]
    fn validates_input() {
        let sys = real_system();
        let trace = TraceGenerator::new(5, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let alloc = Allocation::with_arrival_order(vec![MachineId(0); 3]);
        assert!(evaluate_event_driven(&sys, &trace, &alloc).is_err());
    }
}
