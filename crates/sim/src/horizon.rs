//! Rolling-horizon streaming scheduling: the mechanics that turn the
//! single-shot online greedy into a re-optimising pipeline.
//!
//! A [`HorizonScheduler`] owns the stream state — every task fed so far,
//! which of them are *frozen* (already started executing), which were
//! rejected to keep the committed schedule inside the energy budget, and
//! the currently committed schedule. Each [`tick`](HorizonScheduler::tick)
//! hands the pending window to a [`Reoptimize`] implementation (an
//! evolutionary engine warm-started from the previous front lives in
//! `hetsched-core`; the non-evolutionary [`PolicyReoptimizer`] lives here)
//! and commits the returned plan.
//!
//! # Contract
//!
//! * **Determinism** — the scheduler itself draws no random numbers:
//!   `feed` + `tick` sequences are pure functions of the fed tasks and the
//!   reoptimizer's output, so a stream replayed from a persisted
//!   checkpoint re-commits bit-identical schedules. Engine-backed
//!   reoptimizers derive their RNG streams from their *own* seeds; the
//!   scheduler never perturbs them (RNG-stream isolation).
//! * **Freeze rule** — after committing at tick *k* (wall time
//!   `k × horizon`), every task whose committed start lies before
//!   `(k+1) × horizon` is frozen: its machine and start time are pinned in
//!   every later horizon. The scheduler *enforces* this by construction —
//!   frozen tasks are re-assigned their pinned machine and scheduled ahead
//!   of all pending work in their original start order, which replays
//!   their start times exactly — and then *verifies* it, failing the tick
//!   with [`SimError::FrozenTaskMoved`] if a committed start ever drifts.
//! * **Budget invariant** — the committed schedule's total energy is kept
//!   `≤ energy_budget` at *every* tick, not just the last: when a
//!   reoptimized plan overruns, pending (never frozen) tasks are rejected
//!   lowest-value-first (priority per joule) until the plan fits. Frozen
//!   energy can only shrink the head-room monotonically, so an admitted
//!   prefix never has to be clawed back.

use crate::allocation::Allocation;
use crate::detail::{DetailedOutcome, TaskRecord};
use crate::online::OnlinePolicy;
use crate::{Result, SimError};
use hetsched_data::{HcSystem, MachineId};
use hetsched_workload::{Task, TaskId, Trace};
use serde::{Deserialize, Serialize};

/// Rolling-horizon configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorizonConfig {
    /// Tick length in seconds (> 0): wall time advances by this much per
    /// [`HorizonScheduler::tick`], and tasks starting within the upcoming
    /// window freeze.
    pub horizon: f64,
    /// Stream-wide committed-energy cap in joules
    /// (`f64::INFINITY` = unconstrained).
    pub energy_budget: f64,
}

impl Default for HorizonConfig {
    fn default() -> Self {
        HorizonConfig {
            horizon: 60.0,
            energy_budget: f64::INFINITY,
        }
    }
}

// JSON has no infinity, so an unconstrained budget is encoded as an
// *absent* `energy_budget` field — hence hand-written serde (the derive
// would emit `null` and fail the round-trip a resumed stream relies on).
impl serde::Serialize for HorizonConfig {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        let mut entries = vec![("horizon".to_string(), serde::to_value(&self.horizon))];
        if self.energy_budget.is_finite() {
            entries.push((
                "energy_budget".to_string(),
                serde::to_value(&self.energy_budget),
            ));
        }
        serializer.serialize_value(serde::Value::Object(entries))
    }
}

impl<'de> serde::Deserialize<'de> for HorizonConfig {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::__private::{from_field, into_object};
        let mut entries = into_object::<D::Error>(deserializer.take_value()?, "HorizonConfig")?;
        let horizon: f64 = from_field(&mut entries, "horizon")?;
        let energy_budget: f64 = if entries.iter().any(|(k, _)| k == "energy_budget") {
            from_field(&mut entries, "energy_budget")?
        } else {
            f64::INFINITY
        };
        Ok(HorizonConfig {
            horizon,
            energy_budget,
        })
    }
}

/// A task whose execution has begun: machine and start time are pinned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrozenTask {
    /// The task. Global (stream) id in [`HorizonScheduler`] state; the id
    /// within the tick's working trace inside [`HorizonContext`].
    pub task: TaskId,
    /// The machine it started on.
    pub machine: MachineId,
    /// Its committed start time (bit-stable across horizons).
    pub start: f64,
}

/// Everything a [`Reoptimize`] implementation sees at one tick.
///
/// `trace` covers the tick's *working set* — every non-rejected task fed
/// so far, ids re-ranked `0..trace.len()`. `frozen` and `carried` are
/// expressed in those working ids.
pub struct HorizonContext<'a> {
    /// The heterogeneous system.
    pub system: &'a HcSystem,
    /// The working trace for this tick.
    pub trace: &'a Trace,
    /// Already-started tasks (working ids): the plan must keep machine and
    /// start; the scheduler re-pins them regardless of what the
    /// reoptimizer returns.
    pub frozen: &'a [FrozenTask],
    /// For each working id, the task's index in the trace the reoptimizer
    /// saw at the *previous* tick (`None` for tasks that arrived since) —
    /// the projection map a warm-started reoptimizer uses to carry its
    /// previous genomes forward. Indices refer to the previous tick's
    /// *pre-repair* working set, i.e. exactly the genome length the
    /// reoptimizer produced then.
    pub carried: &'a [Option<u32>],
    /// Wall time of this tick (`tick × horizon`).
    pub now: f64,
    /// Tick index (0-based).
    pub tick: usize,
    /// The stream-wide energy budget the committed plan must respect.
    pub energy_budget: f64,
}

/// A per-tick re-optimizer: returns a full [`Allocation`] over
/// `ctx.trace`. Frozen tasks' entries are advisory — the scheduler
/// overrides them with the pinned machine/start order — but pending
/// machines and the pending tasks' *relative* order are honoured verbatim.
pub trait Reoptimize {
    /// Produces the plan for one tick.
    fn reoptimize(&mut self, ctx: &HorizonContext<'_>) -> Allocation;
}

/// What one tick committed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizonRecord {
    /// Tick index.
    pub tick: usize,
    /// Wall time the tick planned at.
    pub now: f64,
    /// Tasks covered by the committed schedule.
    pub tasks: usize,
    /// Frozen tasks after this tick.
    pub frozen: usize,
    /// Global ids rejected *at this tick* to fit the budget.
    pub rejected: Vec<u32>,
    /// Committed total utility.
    pub utility: f64,
    /// Committed total energy (≤ the budget).
    pub energy: f64,
    /// Committed makespan.
    pub makespan: f64,
}

/// The rolling-horizon stream scheduler. Serializable in full: persisting
/// a scheduler and deserializing it resumes the stream bit-identically
/// (see the module contract).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HorizonScheduler {
    config: HorizonConfig,
    /// Every task fed, in (non-decreasing) arrival order; index = global id.
    tasks: Vec<Task>,
    /// Sorted global ids rejected to keep the plan inside the budget.
    rejected: Vec<u32>,
    /// Frozen tasks (global ids), sorted by (start, id).
    frozen: Vec<FrozenTask>,
    /// Committed allocation over the previous tick's working set.
    committed: Option<Allocation>,
    /// Global ids of the trace the reoptimizer saw at the previous tick
    /// (pre-budget-repair) — the reference frame of `carried`.
    prev_active: Vec<u32>,
    /// Per-task committed schedule, task field = global id.
    timeline: Vec<TaskRecord>,
    records: Vec<HorizonRecord>,
    tick: usize,
}

impl HorizonScheduler {
    /// Creates a scheduler at tick 0 with no tasks.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidHorizon`] for a non-positive/non-finite horizon
    /// or a negative/NaN budget.
    pub fn new(config: HorizonConfig) -> Result<Self> {
        if !(config.horizon.is_finite() && config.horizon > 0.0) {
            return Err(SimError::InvalidHorizon("horizon must be finite and > 0"));
        }
        if config.energy_budget.is_nan() || config.energy_budget < 0.0 {
            return Err(SimError::InvalidHorizon("energy budget must be >= 0"));
        }
        Ok(HorizonScheduler {
            config,
            tasks: Vec::new(),
            rejected: Vec::new(),
            frozen: Vec::new(),
            committed: None,
            prev_active: Vec::new(),
            timeline: Vec::new(),
            records: Vec::new(),
            tick: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> HorizonConfig {
        self.config
    }

    /// Wall time of the *next* tick.
    pub fn now(&self) -> f64 {
        self.tick as f64 * self.config.horizon
    }

    /// Completed tick count.
    pub fn ticks(&self) -> usize {
        self.tick
    }

    /// Total tasks fed so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Global ids rejected so far (sorted).
    pub fn rejected(&self) -> &[u32] {
        &self.rejected
    }

    /// Frozen tasks (global ids, sorted by start).
    pub fn frozen(&self) -> &[FrozenTask] {
        &self.frozen
    }

    /// One record per completed tick.
    pub fn records(&self) -> &[HorizonRecord] {
        &self.records
    }

    /// The committed schedule, one record per scheduled task with `task`
    /// holding the *global* id. Rejected tasks do not appear.
    pub fn timeline(&self) -> &[TaskRecord] {
        &self.timeline
    }

    /// The committed allocation over the current working set (None before
    /// the first tick).
    pub fn committed(&self) -> Option<&Allocation> {
        self.committed.as_ref()
    }

    /// Appends newly arrived tasks. Arrivals must be finite, non-negative,
    /// and non-decreasing across the whole stream — that is what keeps
    /// global ids (arrival ranks) stable as the stream grows. Task ids on
    /// the way in are ignored and re-assigned. Returns the number of tasks
    /// now known.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidHorizon`] on an out-of-order or invalid arrival.
    pub fn feed(&mut self, new_tasks: Vec<Task>) -> Result<usize> {
        #[cfg(feature = "chaos")]
        hetsched_chaos::raise("arrivals.feed", &self.tasks.len());
        let mut frontier = self.tasks.last().map_or(0.0, |t| t.arrival);
        for mut t in new_tasks {
            if !t.arrival.is_finite() || t.arrival < 0.0 {
                return Err(SimError::InvalidHorizon(
                    "arrival must be finite and non-negative",
                ));
            }
            if t.arrival < frontier {
                return Err(SimError::InvalidHorizon(
                    "arrivals must be fed in non-decreasing order",
                ));
            }
            frontier = t.arrival;
            t.id = TaskId(self.tasks.len() as u32);
            self.tasks.push(t);
        }
        Ok(self.tasks.len())
    }

    /// Global ids of the current working set (fed minus rejected).
    fn active(&self) -> Vec<u32> {
        let mut rejected = self.rejected.iter().copied().peekable();
        let mut active = Vec::with_capacity(self.tasks.len() - self.rejected.len());
        for g in 0..self.tasks.len() as u32 {
            if rejected.peek() == Some(&g) {
                rejected.next();
            } else {
                active.push(g);
            }
        }
        active
    }

    /// Builds the working trace over `active` (ids become working ranks).
    fn working_trace(&self, active: &[u32]) -> Result<Trace> {
        let tasks: Vec<Task> = active
            .iter()
            .map(|&g| self.tasks[g as usize].clone())
            .collect();
        let max_arrival = tasks.last().map_or(0.0, |t| t.arrival);
        let duration = max_arrival
            .max((self.tick + 1) as f64 * self.config.horizon)
            .max(self.config.horizon);
        Trace::new(tasks, duration).map_err(|_| SimError::InvalidHorizon("invalid working trace"))
    }

    /// Runs one horizon tick: re-optimizes the working set, enforces the
    /// freeze rule and the budget invariant, and commits the plan. Wall
    /// time then advances by one horizon.
    ///
    /// # Errors
    ///
    /// * [`SimError::FrozenTaskMoved`] — the committed plan failed to
    ///   replay a frozen task's start (a reoptimizer/scheduler bug; the
    ///   normalisation makes this unreachable in practice).
    /// * Validation errors from a malformed reoptimizer allocation.
    pub fn tick(&mut self, system: &HcSystem, reopt: &mut dyn Reoptimize) -> Result<HorizonRecord> {
        let now = self.now();
        let freeze_before = (self.tick + 1) as f64 * self.config.horizon;
        let mut active = self.active();

        if active.is_empty() {
            let record = HorizonRecord {
                tick: self.tick,
                now,
                tasks: 0,
                frozen: self.frozen.len(),
                rejected: Vec::new(),
                utility: 0.0,
                energy: 0.0,
                makespan: 0.0,
            };
            self.records.push(record.clone());
            self.prev_active = active;
            self.tick += 1;
            return Ok(record);
        }

        let trace = self.working_trace(&active)?;
        // The working set as the reoptimizer sees it — budget repair below
        // mutates `active`, but `carried` at the *next* tick must index
        // into the genome produced against this view.
        let seen = active.clone();

        // Working-id views of the frozen set and the carry-forward map.
        let frozen_local: Vec<FrozenTask> = self
            .frozen
            .iter()
            .map(|f| FrozenTask {
                task: TaskId(index_of(&active, f.task.0)),
                machine: f.machine,
                start: f.start,
            })
            .collect();
        let carried: Vec<Option<u32>> = active
            .iter()
            .map(|&g| self.prev_active.binary_search(&g).ok().map(|i| i as u32))
            .collect();

        let ctx = HorizonContext {
            system,
            trace: &trace,
            frozen: &frozen_local,
            carried: &carried,
            now,
            tick: self.tick,
            energy_budget: self.config.energy_budget,
        };
        let plan = reopt.reoptimize(&ctx);
        plan.validate(system, &trace)?;

        // Normalise: frozen tasks get their pinned machine and the lowest
        // order keys (in start order), which replays their starts exactly;
        // pending tasks keep the reoptimizer's machines and relative order.
        let mut alloc = normalize(&plan, &frozen_local);
        let mut trace = trace;
        let mut detail = DetailedOutcome::evaluate(system, &trace, &alloc)?;

        // Budget repair: reject pending tasks, lowest priority-per-joule
        // first, until the committed energy fits.
        let mut rejected_now: Vec<u32> = Vec::new();
        while detail.energy > self.config.energy_budget {
            // Working ids shift as victims are removed, so the frozen set
            // must be re-indexed against the *current* working set each
            // iteration — indexing via the stale pre-repair view could
            // leave a frozen task unprotected and reject it.
            let frozen_ids: Vec<u32> = self
                .frozen
                .iter()
                .map(|f| index_of(&active, f.task.0))
                .collect();
            let victim = detail
                .tasks
                .iter()
                .enumerate()
                .filter(|(i, _)| !frozen_ids.contains(&(*i as u32)))
                .min_by(|(ia, a), (ib, b)| {
                    let score_a = trace.tasks()[*ia].tuf.priority() / a.energy;
                    let score_b = trace.tasks()[*ib].tuf.priority() / b.energy;
                    // Lowest value-per-joule goes first; ties drop the
                    // later arrival.
                    score_a.total_cmp(&score_b).then(ib.cmp(ia))
                })
                .map(|(i, _)| i);
            let Some(victim) = victim else {
                // Only frozen tasks remain; their energy was admitted
                // under the budget at freeze time.
                break;
            };
            rejected_now.push(active[victim]);
            active.remove(victim);
            let mut machines = alloc.machine;
            let mut order = alloc.order;
            machines.remove(victim);
            order.remove(victim);
            alloc = Allocation {
                machine: machines,
                order,
            };
            trace = self.working_trace(&active)?;
            detail = DetailedOutcome::evaluate(system, &trace, &alloc)?;
        }
        rejected_now.sort_unstable();

        // Verify the freeze rule held (bit-exact starts).
        for f in &self.frozen {
            let w = index_of(&active, f.task.0) as usize;
            let r = &detail.tasks[w];
            if r.machine != f.machine || r.start.to_bits() != f.start.to_bits() {
                return Err(SimError::FrozenTaskMoved { task: f.task });
            }
        }

        #[cfg(feature = "chaos")]
        hetsched_chaos::raise("scheduler.horizon.commit", &self.tick);

        // Commit: freeze newly started tasks and record the schedule with
        // global ids.
        let mut timeline = Vec::with_capacity(detail.tasks.len());
        for (w, r) in detail.tasks.iter().enumerate() {
            let mut r = *r;
            r.task = TaskId(active[w]);
            timeline.push(r);
            if r.start < freeze_before && !self.frozen.iter().any(|f| f.task == r.task) {
                self.frozen.push(FrozenTask {
                    task: r.task,
                    machine: r.machine,
                    start: r.start,
                });
            }
        }
        self.frozen
            .sort_by(|a, b| a.start.total_cmp(&b.start).then(a.task.cmp(&b.task)));
        for g in &rejected_now {
            let pos = self.rejected.binary_search(g).unwrap_err();
            self.rejected.insert(pos, *g);
        }

        let record = HorizonRecord {
            tick: self.tick,
            now,
            tasks: detail.tasks.len(),
            frozen: self.frozen.len(),
            rejected: rejected_now,
            utility: detail.utility,
            energy: detail.energy,
            makespan: detail.makespan,
        };
        self.records.push(record.clone());
        self.timeline = timeline;
        self.committed = Some(alloc);
        self.prev_active = seen;
        self.tick += 1;
        Ok(record)
    }
}

/// Position of global id `g` in the sorted working set.
fn index_of(active: &[u32], g: u32) -> u32 {
    active
        .binary_search(&g)
        .expect("frozen tasks are never rejected") as u32
}

/// Applies the freeze rule to a reoptimizer plan: frozen tasks are pinned
/// to their machine and scheduled first in start order; pending tasks keep
/// their machines and relative order after them.
fn normalize(plan: &Allocation, frozen: &[FrozenTask]) -> Allocation {
    let n = plan.len();
    let mut machine = plan.machine.clone();
    let mut order = vec![0u32; n];
    let mut is_frozen = vec![false; n];
    // Frozen prefix: keys 0..f in (start, id) order — per machine this is
    // exactly the original queue order, so starts replay bit-identically.
    let mut by_start: Vec<&FrozenTask> = frozen.iter().collect();
    by_start.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.task.cmp(&b.task)));
    for (key, f) in by_start.iter().enumerate() {
        let i = f.task.0 as usize;
        machine[i] = f.machine;
        order[i] = key as u32;
        is_frozen[i] = true;
    }
    // Pending: keys f.. in the plan's own (order, id) sequence.
    let mut pending: Vec<u32> = (0..n as u32).filter(|&i| !is_frozen[i as usize]).collect();
    pending.sort_by_key(|&i| (plan.order[i as usize], i));
    for (rank, &i) in pending.iter().enumerate() {
        order[i as usize] = (frozen.len() + rank) as u32;
    }
    Allocation { machine, order }
}

/// A non-evolutionary [`Reoptimize`]r: replays an [`OnlinePolicy`] over
/// the pending window given the frozen machine states — the principled
/// streaming baseline (Gupta et al.'s natural online rule via
/// [`OnlinePolicy::GuptaGreedy`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PolicyReoptimizer {
    /// The per-arrival placement rule.
    pub policy: OnlinePolicy,
}

impl PolicyReoptimizer {
    /// A reoptimizer applying `policy` each tick.
    pub fn new(policy: OnlinePolicy) -> Self {
        PolicyReoptimizer { policy }
    }
}

impl Reoptimize for PolicyReoptimizer {
    fn reoptimize(&mut self, ctx: &HorizonContext<'_>) -> Allocation {
        let system = ctx.system;
        let tasks = ctx.trace.tasks();
        let mut machine_free = vec![0.0f64; system.machine_count()];
        let mut remaining = ctx.energy_budget;
        let mut is_frozen = vec![false; tasks.len()];
        for f in ctx.frozen {
            let i = f.task.0 as usize;
            let exec = system.exec_time(tasks[i].task_type, f.machine);
            machine_free[f.machine.index()] = machine_free[f.machine.index()].max(f.start + exec);
            remaining -= system.energy(tasks[i].task_type, f.machine);
            is_frozen[i] = true;
        }
        let mut machines: Vec<MachineId> = vec![MachineId(0); tasks.len()];
        for (i, task) in tasks.iter().enumerate() {
            if is_frozen[i] {
                machines[i] = ctx
                    .frozen
                    .iter()
                    .find(|f| f.task.0 as usize == i)
                    .expect("frozen flag set from this list")
                    .machine;
                continue;
            }
            let placed = crate::online::place(self.policy, system, task, &machine_free, remaining);
            let m = match placed {
                Some((_, m, e, finish)) => {
                    machine_free[m.index()] = finish;
                    remaining = (remaining - e).max(0.0);
                    m
                }
                // Budget-infeasible: park on the cheapest machine and let
                // the scheduler's budget repair reject it.
                None => *system
                    .feasible_machines(task.task_type)
                    .iter()
                    .min_by(|&&a, &&b| {
                        system
                            .energy(task.task_type, a)
                            .total_cmp(&system.energy(task.task_type, b))
                    })
                    .expect("validated system"),
            };
            machines[i] = m;
        }
        Allocation::with_arrival_order(machines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_workload::{ArrivalSpec, TufPolicy};

    fn stream_tasks(rate: f64, until: f64) -> Vec<Task> {
        ArrivalSpec::poisson(rate)
            .unwrap()
            .generate(
                17,
                0.0..until,
                real_system().task_type_count(),
                &TufPolicy::essc_default(),
            )
            .unwrap()
    }

    fn run_stream(
        config: HorizonConfig,
        policy: OnlinePolicy,
        windows: &[f64],
        rate: f64,
    ) -> HorizonScheduler {
        let sys = real_system();
        let mut sched = HorizonScheduler::new(config).unwrap();
        let mut reopt = PolicyReoptimizer::new(policy);
        let mut from = 0.0;
        for &until in windows {
            let tasks: Vec<Task> = stream_tasks(rate, *windows.last().unwrap())
                .into_iter()
                .filter(|t| t.arrival >= from && t.arrival < until)
                .collect();
            from = until;
            sched.feed(tasks).unwrap();
            sched.tick(&sys, &mut reopt).unwrap();
        }
        sched
    }

    #[test]
    fn config_and_feed_validation() {
        assert!(HorizonScheduler::new(HorizonConfig {
            horizon: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(HorizonScheduler::new(HorizonConfig {
            horizon: 60.0,
            energy_budget: -1.0,
        })
        .is_err());
        let mut s = HorizonScheduler::new(HorizonConfig::default()).unwrap();
        let mut tasks = stream_tasks(2.0, 30.0);
        assert!(s.feed(tasks.clone()).is_ok());
        // Feeding an earlier arrival than the frontier is rejected.
        tasks.truncate(1);
        assert!(s.feed(tasks).is_err());
    }

    #[test]
    fn frozen_tasks_keep_machine_and_start_across_ticks() {
        let config = HorizonConfig {
            horizon: 20.0,
            energy_budget: f64::INFINITY,
        };
        let sys = real_system();
        let mut sched = HorizonScheduler::new(config).unwrap();
        let mut reopt = PolicyReoptimizer::new(OnlinePolicy::MaxUtility);
        let all = stream_tasks(2.0, 80.0);
        let mut pinned: Vec<FrozenTask> = Vec::new();
        for k in 0..4 {
            let (from, until) = (k as f64 * 20.0, (k + 1) as f64 * 20.0);
            let batch: Vec<Task> = all
                .iter()
                .filter(|t| t.arrival >= from && t.arrival < until)
                .cloned()
                .collect();
            sched.feed(batch).unwrap();
            sched.tick(&sys, &mut reopt).unwrap();
            // Every previously pinned task must be unchanged in the new
            // frozen set, bit for bit.
            for p in &pinned {
                let f = sched
                    .frozen()
                    .iter()
                    .find(|f| f.task == p.task)
                    .expect("frozen tasks never thaw");
                assert_eq!(f.machine, p.machine);
                assert_eq!(f.start.to_bits(), p.start.to_bits());
            }
            pinned = sched.frozen().to_vec();
            assert!(!pinned.is_empty(), "tick {k} froze nothing");
        }
    }

    #[test]
    fn budget_invariant_holds_at_every_tick() {
        let unconstrained = run_stream(
            HorizonConfig {
                horizon: 15.0,
                energy_budget: f64::INFINITY,
            },
            OnlinePolicy::MaxUtility,
            &[15.0, 30.0, 45.0, 60.0],
            3.0,
        );
        let total = unconstrained.records().last().unwrap().energy;
        let budget = total * 0.5;
        let capped = run_stream(
            HorizonConfig {
                horizon: 15.0,
                energy_budget: budget,
            },
            OnlinePolicy::MaxUtility,
            &[15.0, 30.0, 45.0, 60.0],
            3.0,
        );
        for r in capped.records() {
            assert!(
                r.energy <= budget,
                "tick {} committed {} over budget {budget}",
                r.tick,
                r.energy
            );
        }
        assert!(
            !capped.rejected().is_empty(),
            "half the budget must force rejections"
        );
        // Rejected tasks are not in the timeline; accepted + rejected
        // account for everything fed.
        let last = capped.records().last().unwrap();
        assert_eq!(last.tasks + capped.rejected().len(), capped.task_count());
    }

    #[test]
    fn timeline_uses_global_ids_and_covers_active_tasks() {
        let sched = run_stream(
            HorizonConfig {
                horizon: 10.0,
                energy_budget: f64::INFINITY,
            },
            OnlinePolicy::GuptaGreedy,
            &[10.0, 20.0, 30.0],
            2.0,
        );
        let ids: Vec<u32> = sched.timeline().iter().map(|r| r.task.0).collect();
        let expected: Vec<u32> = (0..sched.task_count() as u32).collect();
        assert_eq!(ids, expected);
        for r in sched.timeline() {
            assert!(r.start >= r.arrival);
            assert!(r.finish > r.start);
        }
    }

    #[test]
    fn serialized_scheduler_resumes_bit_identically() {
        let config = HorizonConfig {
            horizon: 12.0,
            energy_budget: f64::INFINITY,
        };
        let sys = real_system();
        let all = stream_tasks(2.5, 48.0);
        let batch = |from: f64, until: f64| -> Vec<Task> {
            all.iter()
                .filter(|t| t.arrival >= from && t.arrival < until)
                .cloned()
                .collect()
        };

        // Uninterrupted run: four ticks.
        let mut a = HorizonScheduler::new(config).unwrap();
        let mut reopt = PolicyReoptimizer::new(OnlinePolicy::MaxUtility);
        for k in 0..4 {
            a.feed(batch(k as f64 * 12.0, (k + 1) as f64 * 12.0))
                .unwrap();
            a.tick(&sys, &mut reopt).unwrap();
        }

        // Interrupted run: snapshot after two ticks, resume from JSON.
        let mut b = HorizonScheduler::new(config).unwrap();
        for k in 0..2 {
            b.feed(batch(k as f64 * 12.0, (k + 1) as f64 * 12.0))
                .unwrap();
            b.tick(&sys, &mut reopt).unwrap();
        }
        let snapshot = serde_json::to_string(&b).unwrap();
        let mut resumed: HorizonScheduler = serde_json::from_str(&snapshot).unwrap();
        for k in 2..4 {
            resumed
                .feed(batch(k as f64 * 12.0, (k + 1) as f64 * 12.0))
                .unwrap();
            resumed.tick(&sys, &mut reopt).unwrap();
        }

        assert_eq!(
            serde_json::to_string(a.timeline()).unwrap(),
            serde_json::to_string(resumed.timeline()).unwrap(),
            "resumed stream must re-commit a byte-identical schedule"
        );
        assert_eq!(a.records(), resumed.records());
    }

    #[test]
    fn empty_tick_advances_time_without_work() {
        let sys = real_system();
        let mut sched = HorizonScheduler::new(HorizonConfig::default()).unwrap();
        let mut reopt = PolicyReoptimizer::new(OnlinePolicy::MaxUtility);
        let r = sched.tick(&sys, &mut reopt).unwrap();
        assert_eq!(r.tasks, 0);
        assert_eq!(sched.now(), 60.0);
    }
}
