//! Resource allocations: a complete mapping of tasks to machines plus the
//! global scheduling order (§IV-D's chromosome contents, kept here so the
//! simulator, the seeding heuristics, and the genetic encoding all share
//! one representation).

use crate::{Result, SimError};
use hetsched_data::{HcSystem, MachineId};
use hetsched_workload::{TaskId, Trace};
use serde::{Deserialize, Serialize};

/// A complete resource allocation for a trace of `T` tasks.
///
/// Index `i` of both vectors refers to `TaskId(i)` — the i-th task in
/// arrival order. `order` holds the *global scheduling order* keys: tasks
/// execute on their machines by ascending key (ties broken by task id), so
/// any `u32` values work; they need not form a permutation (the genetic
/// crossover freely mixes keys from two parents).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Machine assignment per task.
    pub machine: Vec<MachineId>,
    /// Global scheduling order key per task.
    pub order: Vec<u32>,
}

impl Allocation {
    /// Creates an allocation with the given assignment and arrival-order
    /// scheduling (task i has key i).
    pub fn with_arrival_order(machine: Vec<MachineId>) -> Self {
        let order = (0..machine.len() as u32).collect();
        Allocation { machine, order }
    }

    /// Number of tasks covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.machine.len()
    }

    /// Whether the allocation covers zero tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.machine.is_empty()
    }

    /// Validates the allocation against a system and trace.
    ///
    /// # Errors
    ///
    /// * [`SimError::LengthMismatch`] — vectors shorter/longer than the
    ///   trace, or disagreeing with each other.
    /// * [`SimError::UnknownMachine`] — machine id out of range.
    /// * [`SimError::InfeasibleAssignment`] — task mapped to a machine that
    ///   cannot execute its type (special-purpose mismatch).
    pub fn validate(&self, system: &HcSystem, trace: &Trace) -> Result<()> {
        if self.machine.len() != trace.len() || self.order.len() != trace.len() {
            return Err(SimError::LengthMismatch {
                expected: trace.len(),
                got: self.machine.len().min(self.order.len()),
            });
        }
        for (i, (&m, task)) in self.machine.iter().zip(trace.tasks()).enumerate() {
            if m.index() >= system.machine_count() {
                return Err(SimError::UnknownMachine(m));
            }
            if !system.is_feasible(task.task_type, m) {
                return Err(SimError::InfeasibleAssignment {
                    task: TaskId(i as u32),
                    machine: m,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (hetsched_data::HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(20, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        (sys, trace)
    }

    #[test]
    fn arrival_order_constructor() {
        let alloc = Allocation::with_arrival_order(vec![MachineId(0); 5]);
        assert_eq!(alloc.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(alloc.len(), 5);
        assert!(!alloc.is_empty());
    }

    #[test]
    fn validate_accepts_feasible() {
        let (sys, trace) = setup();
        let alloc = Allocation::with_arrival_order(vec![MachineId(3); trace.len()]);
        assert!(alloc.validate(&sys, &trace).is_ok());
    }

    #[test]
    fn validate_rejects_length_mismatch() {
        let (sys, trace) = setup();
        let alloc = Allocation::with_arrival_order(vec![MachineId(0); 3]);
        assert!(matches!(
            alloc.validate(&sys, &trace),
            Err(SimError::LengthMismatch {
                expected: 20,
                got: 3
            })
        ));
    }

    #[test]
    fn validate_rejects_unknown_machine() {
        let (sys, trace) = setup();
        let alloc = Allocation::with_arrival_order(vec![MachineId(99); trace.len()]);
        assert!(matches!(
            alloc.validate(&sys, &trace),
            Err(SimError::UnknownMachine(_))
        ));
    }
}
