//! Dynamic voltage and frequency scaling — the paper's first named piece of
//! future work ("incorporating dynamic voltage and frequency scaling
//! capabilities of processors").
//!
//! Each machine exposes a table of discrete P-states. Running a task at
//! frequency scale `f ∈ (0, 1]` stretches its execution time by `1/f` and
//! scales its power by the classic CMOS cubic model `P ∝ f³` (dynamic power
//! ∝ f·V² with V ∝ f). Energy per task therefore scales by `f²` — slowing
//! down saves energy but delays completion and so loses utility: exactly
//! the bi-objective tension the framework analyses.

use crate::allocation::Allocation;
use crate::evaluator::Outcome;
use crate::{Result, SimError};
use hetsched_data::HcSystem;
use hetsched_workload::Trace;
use serde::{Deserialize, Serialize};

/// One processor performance state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Frequency relative to nominal, in (0, 1].
    pub freq_scale: f64,
    /// Power relative to nominal at this frequency.
    pub power_scale: f64,
}

/// A table of P-states shared by all machines (index 0 = nominal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsTable {
    states: Vec<PState>,
}

impl DvfsTable {
    /// Builds a table; index 0 must be the nominal state (scale 1.0).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownPState`] is *not* used here; invalid tables are
    /// rejected with [`SimError::LengthMismatch`]-free validation via
    /// `Option`: returns `None` on an empty table, non-positive scales, or a
    /// non-nominal first entry.
    pub fn new(states: Vec<PState>) -> Option<Self> {
        if states.is_empty() {
            return None;
        }
        if (states[0].freq_scale - 1.0).abs() > 1e-12 || (states[0].power_scale - 1.0).abs() > 1e-12
        {
            return None;
        }
        for s in &states {
            if !(s.freq_scale > 0.0 && s.freq_scale <= 1.0 && s.power_scale > 0.0) {
                return None;
            }
        }
        Some(DvfsTable { states })
    }

    /// The classic four-state cubic-power table:
    /// f ∈ {1.0, 0.85, 0.7, 0.55}, P = f³.
    pub fn cubic_default() -> Self {
        let states = [1.0, 0.85, 0.7, 0.55]
            .iter()
            .map(|&f| PState {
                freq_scale: f,
                power_scale: f * f * f,
            })
            .collect();
        DvfsTable::new(states).expect("default table is valid")
    }

    /// Number of states.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// State by index.
    #[inline]
    pub fn state(&self, idx: u8) -> Option<PState> {
        self.states.get(idx as usize).copied()
    }
}

/// An allocation extended with a per-task P-state choice and an optional
/// per-task *drop* flag (the paper's second piece of future work: "dropping
/// tasks that will generate negligible utility when they complete").
/// Dropped tasks consume no energy and earn no utility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsAllocation {
    /// The machine assignment and scheduling order.
    pub base: Allocation,
    /// P-state index per task (into a [`DvfsTable`]).
    pub pstate: Vec<u8>,
    /// Whether each task is dropped.
    pub dropped: Vec<bool>,
}

impl DvfsAllocation {
    /// Wraps a plain allocation at nominal frequency with nothing dropped.
    pub fn nominal(base: Allocation) -> Self {
        let n = base.len();
        DvfsAllocation {
            base,
            pstate: vec![0; n],
            dropped: vec![false; n],
        }
    }

    /// Evaluates the extended allocation.
    ///
    /// # Errors
    ///
    /// Base-allocation validation failures plus
    /// [`SimError::UnknownPState`] / [`SimError::LengthMismatch`] for the
    /// extension vectors.
    pub fn evaluate(&self, system: &HcSystem, trace: &Trace, table: &DvfsTable) -> Result<Outcome> {
        self.base.validate(system, trace)?;
        if self.pstate.len() != trace.len() || self.dropped.len() != trace.len() {
            return Err(SimError::LengthMismatch {
                expected: trace.len(),
                got: self.pstate.len().min(self.dropped.len()),
            });
        }
        for &p in &self.pstate {
            if p as usize >= table.len() {
                return Err(SimError::UnknownPState(p));
            }
        }

        let tasks = trace.tasks();
        let mut sequence: Vec<u32> = (0..tasks.len() as u32).collect();
        sequence.sort_unstable_by_key(|&i| (self.base.order[i as usize], i));
        let mut machine_free = vec![0.0f64; system.machine_count()];
        let (mut utility, mut energy, mut makespan) = (0.0, 0.0, 0.0f64);
        for &i in &sequence {
            let idx = i as usize;
            if self.dropped[idx] {
                continue;
            }
            let task = &tasks[idx];
            let machine = self.base.machine[idx];
            let ps = table.state(self.pstate[idx]).expect("checked above");
            let exec = system.exec_time(task.task_type, machine) / ps.freq_scale;
            let power = system
                .epc()
                .power(task.task_type, system.machine_type(machine))
                * ps.power_scale;
            let start = machine_free[machine.index()].max(task.arrival);
            let finish = start + exec;
            machine_free[machine.index()] = finish;
            utility += task.tuf.utility(finish - task.arrival);
            energy += exec * power;
            makespan = makespan.max(finish);
        }
        Ok(Outcome {
            utility,
            energy,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use hetsched_data::{real_system, MachineId};
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (HcSystem, Trace, Allocation) {
        let sys = real_system();
        let trace = TraceGenerator::new(20, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(17))
            .unwrap();
        let machines = (0..20).map(|i| MachineId((i % 9) as u32)).collect();
        (sys, trace, Allocation::with_arrival_order(machines))
    }

    #[test]
    fn nominal_matches_plain_evaluation() {
        let (sys, trace, alloc) = setup();
        let table = DvfsTable::cubic_default();
        let ext = DvfsAllocation::nominal(alloc.clone());
        let out = ext.evaluate(&sys, &trace, &table).unwrap();
        let plain = Evaluator::new(&sys, &trace).evaluate(&alloc);
        assert!((out.utility - plain.utility).abs() < 1e-9);
        assert!((out.energy - plain.energy).abs() < 1e-9);
        assert!((out.makespan - plain.makespan).abs() < 1e-9);
    }

    #[test]
    fn slower_pstate_saves_energy_loses_utility() {
        let (sys, trace, alloc) = setup();
        let table = DvfsTable::cubic_default();
        let nominal = DvfsAllocation::nominal(alloc.clone());
        let mut slow = DvfsAllocation::nominal(alloc);
        slow.pstate = vec![3; 20]; // deepest state
        let on = nominal.evaluate(&sys, &trace, &table).unwrap();
        let os = slow.evaluate(&sys, &trace, &table).unwrap();
        assert!(os.energy < on.energy, "cubic power: energy must drop");
        assert!(
            os.utility <= on.utility,
            "longer runtimes cannot earn more utility"
        );
        assert!(os.makespan > on.makespan);
        // Energy scales as f² per task: check the exact global factor since
        // every task uses the same state.
        let f: f64 = 0.55;
        assert!((os.energy / on.energy - f * f).abs() < 1e-9);
    }

    #[test]
    fn dropping_everything_zeroes_both_objectives() {
        let (sys, trace, alloc) = setup();
        let table = DvfsTable::cubic_default();
        let mut ext = DvfsAllocation::nominal(alloc);
        ext.dropped = vec![true; 20];
        let out = ext.evaluate(&sys, &trace, &table).unwrap();
        assert_eq!(out.utility, 0.0);
        assert_eq!(out.energy, 0.0);
        assert_eq!(out.makespan, 0.0);
    }

    #[test]
    fn dropping_one_task_frees_its_machine() {
        let (sys, trace, alloc) = setup();
        let table = DvfsTable::cubic_default();
        let full = DvfsAllocation::nominal(alloc.clone());
        let mut one_less = DvfsAllocation::nominal(alloc);
        one_less.dropped[0] = true;
        let of = full.evaluate(&sys, &trace, &table).unwrap();
        let ol = one_less.evaluate(&sys, &trace, &table).unwrap();
        assert!(ol.energy < of.energy);
        // Remaining tasks finish no later, so their utility cannot drop.
        let t0 = &trace.tasks()[0];
        let u0_max = t0.tuf.priority();
        assert!(ol.utility >= of.utility - u0_max - 1e-9);
    }

    #[test]
    fn table_validation() {
        assert!(DvfsTable::new(vec![]).is_none());
        // First state must be nominal.
        assert!(DvfsTable::new(vec![PState {
            freq_scale: 0.8,
            power_scale: 0.5
        }])
        .is_none());
        // Scales must be positive and frequency ≤ 1.
        assert!(DvfsTable::new(vec![
            PState {
                freq_scale: 1.0,
                power_scale: 1.0
            },
            PState {
                freq_scale: 1.5,
                power_scale: 2.0
            },
        ])
        .is_none());
        let ok = DvfsTable::cubic_default();
        assert_eq!(ok.len(), 4);
        assert!(ok.state(3).is_some());
        assert!(ok.state(4).is_none());
    }

    #[test]
    fn out_of_range_pstate_rejected() {
        let (sys, trace, alloc) = setup();
        let table = DvfsTable::cubic_default();
        let mut ext = DvfsAllocation::nominal(alloc);
        ext.pstate[5] = 9;
        assert!(matches!(
            ext.evaluate(&sys, &trace, &table),
            Err(SimError::UnknownPState(9))
        ));
    }

    #[test]
    fn extension_vector_length_checked() {
        let (sys, trace, alloc) = setup();
        let table = DvfsTable::cubic_default();
        let mut ext = DvfsAllocation::nominal(alloc);
        ext.pstate.pop();
        assert!(ext.evaluate(&sys, &trace, &table).is_err());
    }
}
