//! The NSGA-II generational loop (§IV-D, Algorithm 1).

use crate::dominance::Objectives;
use crate::observe::{GenerationStats, NullObserver, Observer, PhaseTimings};
use crate::problem::{BatchRequest, Problem, Variation};
use crate::sort::{crowding_distance, fast_nondominated_sort};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// An evaluated member of the population.
#[derive(Debug, Clone)]
pub struct Individual<G> {
    /// The chromosome.
    pub genome: G,
    /// Minimisation objectives.
    pub objectives: Objectives,
}

/// How the last partially-admitted front is truncated to fill the next
/// parent population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Survival {
    /// Crowding-distance truncation (Deb et al. 2002; the paper's choice —
    /// "creates a more equally spaced Pareto front").
    #[default]
    Crowding,
    /// Naive truncation: keep the front members in index order. Exists as
    /// the ablation baseline showing why crowding matters.
    Truncate,
}

/// Early-termination criterion: stop when the population's best objective
/// corner has improved by less than `epsilon` (relative) in *both*
/// objectives over the last `window` generations. Implements the paper's
/// abstract "while termination criterion is not met" loop guard for users
/// who prefer convergence detection over a fixed generation budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stagnation {
    /// Number of consecutive non-improving generations required to stop.
    pub window: usize,
    /// Minimum per-objective improvement that counts as progress, applied
    /// on a relative-plus-absolute scale: a generation improves objective
    /// `o` only if it gains more than `epsilon * (1 + |best[o]|)`. The
    /// absolute term keeps the threshold meaningful when the best value
    /// sits at exactly 0.0 (where a purely relative threshold vanishes).
    pub epsilon: f64,
}

/// Mating (parent) selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mating {
    /// Parents chosen uniformly at random — the paper's §IV-D choice ("we
    /// first select two chromosomes uniformly at random from the
    /// population").
    #[default]
    Uniform,
    /// Deb's crowded binary tournament (canonical NSGA-II): lower front
    /// rank wins; ties go to the larger crowding distance. Exposed so the
    /// ablation benches can quantify what the paper's simplification costs.
    CrowdedTournament,
}

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nsga2Config {
    /// Population size N (paper example: 100).
    pub population: usize,
    /// Per-offspring mutation probability ("selected by experimentation").
    pub mutation_rate: f64,
    /// Number of generations to run (an upper bound when `stagnation` is
    /// set).
    pub generations: usize,
    /// Evaluate offspring in parallel with rayon. Results are identical
    /// either way; parallel pays off once genome evaluation is non-trivial
    /// (the scheduling problem), serial avoids overhead for micro-problems.
    pub parallel: bool,
    /// Truncation rule for the last admitted front.
    pub survival: Survival,
    /// Optional convergence-based early stop.
    pub stagnation: Option<Stagnation>,
    /// Mating-selection rule.
    pub mating: Mating,
    /// Reference point for the hypervolume reported in
    /// [`GenerationStats`]; `None` skips the hypervolume computation.
    /// Only read when an enabled [`Observer`] is attached.
    pub hv_reference: Option<[f64; 2]>,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 100,
            mutation_rate: 0.5,
            generations: 100,
            parallel: true,
            survival: Survival::Crowding,
            stagnation: None,
            mating: Mating::Uniform,
            hv_reference: None,
        }
    }
}

/// The NSGA-II runner bound to one problem instance.
pub struct Nsga2<'a, P: Problem> {
    problem: &'a P,
    config: Nsga2Config,
}

impl<'a, P: Problem> Nsga2<'a, P> {
    /// Creates a runner.
    pub fn new(problem: &'a P, config: Nsga2Config) -> Self {
        debug_assert!(config.population >= 2, "population must be at least 2");
        Nsga2 { problem, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &Nsga2Config {
        &self.config
    }

    /// Fully evaluates a batch of genomes through the problem's
    /// population-level entry point ([`Problem::evaluate_batch`]). The
    /// long-lived evaluator in `slot` (created on first use) persists
    /// across generations so evaluator state — scratch buffers, the delta
    /// schedule pool — stays warm; evaluation is a pure function of the
    /// genome, so persistence cannot change any result.
    fn evaluate_all(
        &self,
        genomes: Vec<P::Genome>,
        slot: &mut Option<P::Evaluator>,
    ) -> Vec<Individual<P::Genome>> {
        let ev = slot.get_or_insert_with(|| self.problem.evaluator());
        let requests: Vec<BatchRequest<'_, P::Genome, P::Move>> =
            genomes.iter().map(BatchRequest::Full).collect();
        let objectives = self
            .problem
            .evaluate_batch(ev, self.config.parallel, &requests);
        drop(requests);
        genomes
            .into_iter()
            .zip(objectives)
            .map(|(genome, objectives)| Individual { genome, objectives })
            .collect()
    }

    /// Evaluates a whole offspring generation in one
    /// [`Problem::evaluate_batch`] call. Each offspring's tracked
    /// [`Variation`] becomes a [`BatchRequest`]: a certified no-op (empty
    /// move list) carries the base objectives so the problem skips it
    /// without touching the evaluator, tracked moves take the incremental
    /// path, and untracked children are fully evaluated.
    #[allow(clippy::type_complexity)]
    fn evaluate_offspring(
        &self,
        parents: &[Individual<P::Genome>],
        offspring: Vec<(P::Genome, usize, Variation<P::Move>)>,
        slot: &mut Option<P::Evaluator>,
    ) -> Vec<Individual<P::Genome>> {
        let ev = slot.get_or_insert_with(|| self.problem.evaluator());
        let requests: Vec<BatchRequest<'_, P::Genome, P::Move>> = offspring
            .iter()
            .map(|(genome, base, variation)| match variation {
                Variation::Moves(moves) => BatchRequest::Moves {
                    base: &parents[*base].genome,
                    base_objectives: parents[*base].objectives,
                    child: genome,
                    moves,
                },
                Variation::Unknown => BatchRequest::Full(genome),
            })
            .collect();
        let objectives = self
            .problem
            .evaluate_batch(ev, self.config.parallel, &requests);
        drop(requests);
        offspring
            .into_iter()
            .zip(objectives)
            .map(|((genome, _, _), objectives)| Individual { genome, objectives })
            .collect()
    }

    /// Builds the initial population: the provided `seeds` (truncated to the
    /// population size) padded with random genomes (§V-B: "We place this
    /// chromosome into the population and create the rest of the
    /// chromosomes for that population randomly").
    fn initial_population(
        &self,
        seeds: Vec<P::Genome>,
        rng: &mut StdRng,
        slot: &mut Option<P::Evaluator>,
    ) -> Vec<Individual<P::Genome>> {
        let n = self.config.population;
        let mut genomes: Vec<P::Genome> = seeds.into_iter().take(n).collect();
        while genomes.len() < n {
            genomes.push(self.problem.random_genome(rng));
        }
        self.evaluate_all(genomes, slot)
    }

    /// One generation: create N offspring by N/2 uniform-random crossovers,
    /// mutate each with probability `mutation_rate`, evaluate, merge with
    /// the parents, and select the next N by nondominated sorting with
    /// crowding-distance truncation.
    ///
    /// When `probe` is present, phase wall-clocks and the evaluation count
    /// are recorded into it; when absent no clock is read.
    fn step(
        &self,
        parents: Vec<Individual<P::Genome>>,
        rng: &mut StdRng,
        mut probe: Option<&mut StepProbe>,
        slot: &mut Option<P::Evaluator>,
    ) -> Vec<Individual<P::Genome>> {
        let mut mark = probe.as_ref().map(|_| Instant::now());
        // Records the elapsed time since the last phase boundary and resets
        // the clock; a no-op when unobserved.
        let mut lap = |slot: fn(&mut PhaseTimings) -> &mut f64,
                       probe: &mut Option<&mut StepProbe>| {
            if let (Some(t), Some(p)) = (mark.as_mut(), probe.as_mut()) {
                *slot(&mut p.timings) += t.elapsed().as_secs_f64();
                *t = Instant::now();
            }
        };
        let n = self.config.population;
        // Phase spans mirror the probe's lap boundaries; they read clocks
        // only (never the RNG), so traced and untraced steps are
        // bit-identical.
        let mating_span = tracing::span!(tracing::Level::TRACE, "mating");
        let in_mating = mating_span.enter();
        // Crowded-tournament mating needs rank + crowding of the parents.
        let tournament_keys: Option<Vec<(usize, f64)>> = match self.config.mating {
            Mating::Uniform => None,
            Mating::CrowdedTournament => {
                let points: Vec<Objectives> = parents.iter().map(|ind| ind.objectives).collect();
                let fronts = fast_nondominated_sort(&points);
                let mut keys = vec![(0usize, 0.0f64); parents.len()];
                for (rank, front) in fronts.iter().enumerate() {
                    let dist = crowding_distance(front, &points);
                    for (w, &p) in front.iter().enumerate() {
                        keys[p] = (rank, dist[w]);
                    }
                }
                Some(keys)
            }
        };
        let pick = |rng: &mut StdRng| -> usize {
            let a = rng.gen_range(0..parents.len());
            match &tournament_keys {
                None => a,
                Some(keys) => {
                    let b = rng.gen_range(0..parents.len());
                    let (ra, da) = keys[a];
                    let (rb, db) = keys[b];
                    if ra < rb || (ra == rb && da >= db) {
                        a
                    } else {
                        b
                    }
                }
            }
        };
        // Offspring carry their base parent's index plus the tracked
        // variation so evaluation can go incremental (or be skipped for
        // certified-identical children).
        let mut offspring: Vec<(P::Genome, usize, Variation<P::Move>)> = Vec::with_capacity(n + 1);
        while offspring.len() < n {
            let i = pick(rng);
            let j = pick(rng);
            let ((a, va), (b, vb)) =
                self.problem
                    .crossover_tracked(rng, &parents[i].genome, &parents[j].genome);
            offspring.push((a, i, va));
            offspring.push((b, j, vb));
        }
        offspring.truncate(n);
        for (genome, _, variation) in &mut offspring {
            if rng.gen::<f64>() < self.config.mutation_rate {
                self.problem.mutate_tracked(rng, genome, variation);
            }
        }
        if let Some(p) = probe.as_mut() {
            p.evaluations += offspring.len();
        }
        lap(|t| &mut t.mating_s, &mut probe);
        drop(in_mating);
        drop(mating_span);
        let evaluation_span = tracing::span!(tracing::Level::TRACE, "evaluation");
        let in_evaluation = evaluation_span.enter();
        let offspring = self.evaluate_offspring(&parents, offspring, slot);
        let mut meta = parents;
        meta.extend(offspring);
        lap(|t| &mut t.evaluation_s, &mut probe);
        drop(in_evaluation);
        drop(evaluation_span);
        let sorting_span = tracing::span!(tracing::Level::TRACE, "sorting");
        let in_sorting = sorting_span.enter();

        // Survival: fronts in order, crowding truncation on the last one.
        let points: Vec<Objectives> = meta.iter().map(|ind| ind.objectives).collect();
        let fronts = fast_nondominated_sort(&points);
        let mut survivors: Vec<Individual<P::Genome>> = Vec::with_capacity(n);
        let mut keep = vec![false; meta.len()];
        let mut taken = 0usize;
        for front in &fronts {
            if taken + front.len() <= n {
                for &p in front {
                    keep[p] = true;
                }
                taken += front.len();
                if taken == n {
                    break;
                }
            } else {
                match self.config.survival {
                    Survival::Crowding => {
                        // Partial front: keep the least crowded members.
                        let dist = crowding_distance(front, &points);
                        let mut by_dist: Vec<usize> = (0..front.len()).collect();
                        by_dist.sort_unstable_by(|&a, &b| dist[b].total_cmp(&dist[a]));
                        for &w in by_dist.iter().take(n - taken) {
                            keep[front[w]] = true;
                        }
                    }
                    Survival::Truncate => {
                        for &p in front.iter().take(n - taken) {
                            keep[p] = true;
                        }
                    }
                }
                break;
            }
        }
        for (ind, keep) in meta.into_iter().zip(keep) {
            if keep {
                survivors.push(ind);
            }
        }
        debug_assert_eq!(survivors.len(), n);
        lap(|t| &mut t.sorting_s, &mut probe);
        drop(in_sorting);
        drop(sorting_span);
        survivors
    }

    /// Runs the full loop from a seeded initial population.
    ///
    /// `snapshots` is an ascending list of generation numbers at which
    /// `on_snapshot(generation, population)` fires — the mechanism the
    /// figure harness uses to capture the front after 100 / 1 000 / 10 000
    /// iterations within one run. A snapshot at the final generation is
    /// implied by the return value, not the callback.
    pub fn run_with_snapshots(
        &self,
        seeds: Vec<P::Genome>,
        seed: u64,
        snapshots: &[usize],
        on_snapshot: impl FnMut(usize, &[Individual<P::Genome>]),
    ) -> Vec<Individual<P::Genome>> {
        self.run_observed(seeds, seed, snapshots, on_snapshot, &mut NullObserver)
    }

    /// As [`Nsga2::run_with_snapshots`], additionally delivering one
    /// [`GenerationStats`] record per generation to `observer`. With the
    /// default [`NullObserver`] (whose `enabled()` is `false`) no metrics
    /// are computed and no clock is read, so the instrumented loop costs
    /// nothing over the plain one.
    pub fn run_observed<O: Observer<P::Genome>>(
        &self,
        seeds: Vec<P::Genome>,
        seed: u64,
        snapshots: &[usize],
        mut on_snapshot: impl FnMut(usize, &[Individual<P::Genome>]),
        observer: &mut O,
    ) -> Vec<Individual<P::Genome>> {
        debug_assert!(
            snapshots.windows(2).all(|w| w[0] < w[1]),
            "snapshots must ascend"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // One evaluator lives for the whole run; how a batch is split
        // across workers is the problem's call (`Problem::evaluate_batch`).
        let mut slot: Option<P::Evaluator> = None;
        let mut population = self.initial_population(seeds, &mut rng, &mut slot);
        let mut next_snapshot = 0usize;
        let mut stagnant = 0usize;
        let mut best = best_corner(&population);
        for generation in 1..=self.config.generations {
            let mut probe = if observer.enabled() {
                Some(StepProbe::default())
            } else {
                None
            };
            let gen_span = tracing::span!(
                tracing::Level::DEBUG,
                "generation",
                generation = generation as u64
            );
            let in_generation = gen_span.enter();
            population = self.step(population, &mut rng, probe.as_mut(), &mut slot);
            drop(in_generation);
            drop(gen_span);
            if let Some(probe) = probe {
                let stats = GenerationStats::compute(
                    generation,
                    &population,
                    probe.evaluations,
                    probe.timings,
                    self.config.hv_reference,
                );
                tracing::debug!(
                    "generation {generation}: {} ranks, front {}, ideal [{:.4}, {:.4}], {} evaluations",
                    stats.front_sizes.len(),
                    stats.front_sizes.first().copied().unwrap_or(0),
                    stats.ideal[0],
                    stats.ideal[1],
                    stats.evaluations,
                );
                observer.on_generation(&stats, &population);
            }
            if next_snapshot < snapshots.len() && snapshots[next_snapshot] == generation {
                on_snapshot(generation, &population);
                next_snapshot += 1;
            }
            if let Some(stop) = self.config.stagnation {
                let corner = best_corner(&population);
                // Relative-plus-absolute threshold: the pure relative form
                // `epsilon * |best|` collapses to ~0 when the best objective
                // sits at 0.0 (e.g. zero utility), letting arbitrarily tiny
                // drifts count as progress forever.
                let improved =
                    (0..2).any(|o| best[o] - corner[o] > stop.epsilon * (1.0 + best[o].abs()));
                best = [best[0].min(corner[0]), best[1].min(corner[1])];
                stagnant = if improved { 0 } else { stagnant + 1 };
                if stagnant >= stop.window {
                    tracing::info!(
                        "stagnation stop at generation {generation} ({} stagnant of window {})",
                        stagnant,
                        stop.window,
                    );
                    break;
                }
            }
        }
        population
    }

    /// Runs without snapshots.
    pub fn run(&self, seeds: Vec<P::Genome>, seed: u64) -> Vec<Individual<P::Genome>> {
        self.run_with_snapshots(seeds, seed, &[], |_, _| {})
    }
}

/// Per-generation measurement scratch filled by [`Nsga2::step`] when an
/// enabled observer is attached.
#[derive(Debug, Default)]
struct StepProbe {
    timings: PhaseTimings,
    evaluations: usize,
}

/// Per-objective minima of a population (the ideal corner).
fn best_corner<G>(population: &[Individual<G>]) -> [f64; 2] {
    let mut corner = [f64::INFINITY; 2];
    for ind in population {
        corner[0] = corner[0].min(ind.objectives[0]);
        corner[1] = corner[1].min(ind.objectives[1]);
    }
    corner
}

/// Extracts the rank-1 (nondominated) members of a population.
pub fn pareto_front<G: Clone>(population: &[Individual<G>]) -> Vec<Individual<G>> {
    let points: Vec<Objectives> = population.iter().map(|i| i.objectives).collect();
    let fronts = fast_nondominated_sort(&points);
    match fronts.first() {
        Some(first) => first.iter().map(|&p| population[p].clone()).collect(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Schaffer, Zdt1};

    fn front_points<G: Clone>(pop: &[Individual<G>]) -> Vec<Objectives> {
        pareto_front(pop).iter().map(|i| i.objectives).collect()
    }

    #[test]
    fn schaffer_converges_to_known_front() {
        let problem = Schaffer::default();
        let cfg = Nsga2Config {
            population: 60,
            mutation_rate: 0.7,
            generations: 150,
            parallel: false,
            ..Default::default()
        };
        let pop = Nsga2::new(&problem, cfg).run(vec![], 7);
        let front = pareto_front(&pop);
        assert!(front.len() > 10, "front collapsed to {}", front.len());
        // Pareto set is x in [0, 2]: f1 + f2 with f1 = x², f2 = (x−2)²,
        // and on the true front √f1 + √f2 = 2.
        for ind in &front {
            let s = ind.objectives[0].max(0.0).sqrt() + ind.objectives[1].max(0.0).sqrt();
            assert!(
                (s - 2.0).abs() < 0.15,
                "off-front point: {:?}",
                ind.objectives
            );
        }
    }

    #[test]
    fn zdt1_improves_with_generations() {
        let problem = Zdt1 { vars: 10 };
        let cfg = Nsga2Config {
            population: 60,
            mutation_rate: 0.9,
            generations: 30,
            parallel: false,
            ..Default::default()
        };
        let runner = Nsga2::new(&problem, cfg);
        let mut early: Vec<Objectives> = Vec::new();
        let pop = runner.run_with_snapshots(vec![], 3, &[5], |_, p| {
            early = front_points(p);
        });
        let late = front_points(&pop);
        // Mean g-proxy (sum of both objectives) must shrink.
        let mean =
            |pts: &[Objectives]| pts.iter().map(|p| p[0] + p[1]).sum::<f64>() / pts.len() as f64;
        assert!(
            mean(&late) < mean(&early),
            "no convergence: early {} late {}",
            mean(&early),
            mean(&late)
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let problem = Schaffer::default();
        let cfg = Nsga2Config {
            population: 20,
            mutation_rate: 0.5,
            generations: 20,
            parallel: false,
            ..Default::default()
        };
        let runner = Nsga2::new(&problem, cfg);
        let a = runner.run(vec![], 11);
        let b = runner.run(vec![], 11);
        let pa: Vec<Objectives> = a.iter().map(|i| i.objectives).collect();
        let pb: Vec<Objectives> = b.iter().map(|i| i.objectives).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Genetic operators draw from the same single-threaded RNG stream;
        // only evaluation is parallelised, so results must be identical.
        let problem = Zdt1 { vars: 8 };
        let mk = |parallel| Nsga2Config {
            population: 24,
            mutation_rate: 0.5,
            generations: 10,
            parallel,
            ..Default::default()
        };
        let serial = Nsga2::new(&problem, mk(false)).run(vec![], 5);
        let parallel = Nsga2::new(&problem, mk(true)).run(vec![], 5);
        let ps: Vec<Objectives> = serial.iter().map(|i| i.objectives).collect();
        let pp: Vec<Objectives> = parallel.iter().map(|i| i.objectives).collect();
        assert_eq!(ps, pp);
    }

    #[test]
    fn population_size_is_invariant() {
        let problem = Schaffer::default();
        let cfg = Nsga2Config {
            population: 30,
            mutation_rate: 0.5,
            generations: 5,
            parallel: false,
            ..Default::default()
        };
        let runner = Nsga2::new(&problem, cfg);
        let pop = runner.run_with_snapshots(vec![], 1, &[1, 3], |_, p| {
            assert_eq!(p.len(), 30);
        });
        assert_eq!(pop.len(), 30);
    }

    #[test]
    fn seeds_enter_the_initial_population() {
        // Seed an optimal genome into a tiny run with zero mutation; the
        // seed (or a descendant at least as good) must survive: the final
        // front must contain a point dominating-or-equal to the seed's.
        let problem = Schaffer::default();
        let cfg = Nsga2Config {
            population: 10,
            mutation_rate: 0.0,
            generations: 3,
            parallel: false,
            ..Default::default()
        };
        let runner = Nsga2::new(&problem, cfg);
        let pop = runner.run(vec![1.0], 2); // x = 1 is on the true front
        let best = pop
            .iter()
            .map(|i| i.objectives[0] + i.objectives[1])
            .fold(f64::INFINITY, f64::min);
        // On the true front f1 + f2 = x² + (x−2)² is minimised at x=1 → 2.
        assert!(best <= 2.0 + 1e-9, "seed lost: best sum {best}");
    }

    #[test]
    fn elitism_never_regresses_the_best_point() {
        let problem = Schaffer::default();
        let cfg = Nsga2Config {
            population: 16,
            mutation_rate: 0.8,
            generations: 40,
            parallel: false,
            ..Default::default()
        };
        let runner = Nsga2::new(&problem, cfg);
        let mut best_f0 = f64::INFINITY;
        runner.run_with_snapshots(vec![], 9, &(1..=40).collect::<Vec<_>>(), |_, pop| {
            let min_f0 = pop
                .iter()
                .map(|i| i.objectives[0])
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_f0 <= best_f0 + 1e-12,
                "best f0 regressed: {min_f0} > {best_f0}"
            );
            best_f0 = best_f0.min(min_f0);
        });
    }

    #[test]
    fn crowded_tournament_mating_converges_too() {
        let problem = Schaffer::default();
        let mk = |mating| Nsga2Config {
            population: 40,
            mutation_rate: 0.7,
            generations: 80,
            parallel: false,
            mating,
            ..Default::default()
        };
        for mating in [Mating::Uniform, Mating::CrowdedTournament] {
            let pop = Nsga2::new(&problem, mk(mating)).run(vec![], 6);
            let front = pareto_front(&pop);
            assert!(front.len() > 5, "{mating:?} front collapsed");
            for ind in &front {
                let sum = ind.objectives[0].max(0.0).sqrt() + ind.objectives[1].max(0.0).sqrt();
                assert!(
                    (sum - 2.0).abs() < 0.3,
                    "{mating:?} off front: {:?}",
                    ind.objectives
                );
            }
        }
    }

    #[test]
    fn mating_rules_differ_in_trajectory() {
        // Same seed, different mating rule: the populations should diverge
        // (sanity check that the flag actually changes behaviour).
        let problem = Schaffer::default();
        let mk = |mating| Nsga2Config {
            population: 20,
            mutation_rate: 0.5,
            generations: 10,
            parallel: false,
            mating,
            ..Default::default()
        };
        let a = Nsga2::new(&problem, mk(Mating::Uniform)).run(vec![], 5);
        let b = Nsga2::new(&problem, mk(Mating::CrowdedTournament)).run(vec![], 5);
        let pa: Vec<Objectives> = a.iter().map(|i| i.objectives).collect();
        let pb: Vec<Objectives> = b.iter().map(|i| i.objectives).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn stagnation_stops_early_on_converged_problem() {
        // Zero mutation + a converged seed population: the ideal corner
        // cannot improve, so the run must stop after `window` generations.
        let problem = Schaffer::default();
        let cfg = Nsga2Config {
            population: 8,
            mutation_rate: 0.0,
            generations: 10_000,
            parallel: false,
            stagnation: Some(Stagnation {
                window: 5,
                epsilon: 1e-12,
            }),
            ..Default::default()
        };
        let runner = Nsga2::new(&problem, cfg);
        let mut generations_seen = 0usize;
        let all: Vec<usize> = (1..=10_000).collect();
        runner.run_with_snapshots(vec![0.0, 2.0], 3, &all, |_, _| {
            generations_seen += 1;
        });
        assert!(
            generations_seen < 200,
            "stagnation did not trigger: ran {generations_seen} generations"
        );
        assert!(generations_seen >= 5);
    }

    #[test]
    fn without_stagnation_runs_full_budget() {
        let problem = Schaffer::default();
        let cfg = Nsga2Config {
            population: 8,
            mutation_rate: 0.0,
            generations: 25,
            parallel: false,
            ..Default::default()
        };
        let mut generations_seen = 0usize;
        let all: Vec<usize> = (1..=25).collect();
        Nsga2::new(&problem, cfg).run_with_snapshots(vec![], 3, &all, |_, _| {
            generations_seen += 1;
        });
        assert_eq!(generations_seen, 25);
    }

    #[test]
    fn pareto_front_of_empty_population() {
        let empty: Vec<Individual<f64>> = Vec::new();
        assert!(pareto_front(&empty).is_empty());
    }

    /// A problem whose best objective starts at 0.0 and creeps downward by
    /// ~1e-19 per mutation — the regression case for the stagnation
    /// threshold: `epsilon * |best|` is ~0 near best = 0, so every creep
    /// counted as progress and stagnation never fired.
    struct Creep;

    impl Problem for Creep {
        type Genome = f64;
        type Evaluator = ();
        type Move = ();

        fn evaluator(&self) {}

        fn evaluate(&self, _ev: &mut (), genome: &f64) -> Objectives {
            [-genome, -genome]
        }

        fn random_genome(&self, _rng: &mut dyn rand::RngCore) -> f64 {
            0.0
        }

        fn crossover(&self, _rng: &mut dyn rand::RngCore, a: &f64, b: &f64) -> (f64, f64) {
            (a.max(*b), a.max(*b))
        }

        fn mutate(&self, rng: &mut dyn rand::RngCore, genome: &mut f64) {
            *genome += rng.gen::<f64>() * 1e-19;
        }
    }

    #[test]
    fn stagnation_ignores_sub_epsilon_creep_at_zero() {
        let cfg = Nsga2Config {
            population: 8,
            mutation_rate: 1.0,
            generations: 10_000,
            parallel: false,
            stagnation: Some(Stagnation {
                window: 5,
                epsilon: 1e-9,
            }),
            ..Default::default()
        };
        let mut generations_seen = 0usize;
        let all: Vec<usize> = (1..=10_000).collect();
        Nsga2::new(&Creep, cfg).run_with_snapshots(vec![], 1, &all, |_, _| {
            generations_seen += 1;
        });
        assert_eq!(
            generations_seen, 5,
            "1e-19 creep below best = 0 must not count as progress"
        );
    }

    #[test]
    fn observer_receives_one_record_per_generation() {
        use crate::observe::StatsLog;
        let problem = Schaffer::default();
        let cfg = Nsga2Config {
            population: 16,
            mutation_rate: 0.5,
            generations: 12,
            parallel: false,
            hv_reference: Some([1e7, 1e7]),
            ..Default::default()
        };
        let mut log = StatsLog::default();
        Nsga2::new(&problem, cfg).run_observed(vec![], 4, &[], |_, _| {}, &mut log);
        assert_eq!(log.records.len(), 12);
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(rec.generation, i + 1);
            assert_eq!(rec.front_sizes.iter().sum::<usize>(), 16);
            assert_eq!(rec.evaluations, 16);
            assert!(rec.ideal[0].is_finite() && rec.ideal[1].is_finite());
            assert!(rec.hypervolume.unwrap() > 0.0);
            assert!(rec.timings.mating_s >= 0.0 && rec.timings.evaluation_s >= 0.0);
        }
        // Convergence pressure: the final hypervolume beats the first (it
        // is not strictly monotone — crowding truncation may drop front
        // members — but over a run it must grow).
        let first = log.records.first().unwrap().hypervolume.unwrap();
        let last = log.records.last().unwrap().hypervolume.unwrap();
        assert!(
            last >= first,
            "hypervolume regressed over the run: {first} -> {last}"
        );
    }

    #[test]
    fn observation_does_not_perturb_the_run() {
        use crate::observe::StatsLog;
        let problem = Zdt1 { vars: 6 };
        let cfg = Nsga2Config {
            population: 20,
            mutation_rate: 0.6,
            generations: 15,
            parallel: false,
            ..Default::default()
        };
        let runner = Nsga2::new(&problem, cfg);
        let plain = runner.run(vec![], 8);
        let mut log = StatsLog::default();
        let observed = runner.run_observed(vec![], 8, &[], |_, _| {}, &mut log);
        let pa: Vec<Objectives> = plain.iter().map(|i| i.objectives).collect();
        let pb: Vec<Objectives> = observed.iter().map(|i| i.objectives).collect();
        assert_eq!(pa, pb, "metrics collection must not change the trajectory");
    }
}
