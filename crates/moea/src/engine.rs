//! The algorithm-agnostic [`Engine`] abstraction.
//!
//! The framework and CLI used to be hard-wired to NSGA-II. This module
//! factors the three MOEA families — [`Nsga2Config`] (dominance +
//! crowding), [`MoeadConfig`] (Tchebycheff decomposition), and
//! [`Spea2Config`] (strength fitness + archive) — behind one trait so
//! callers pick a solver at runtime: campaigns sweep `--algorithm`,
//! ablation benches swap engines without code changes, and new engines
//! plug in by implementing [`Engine`] for their config type.
//!
//! [`EngineConfig`] is the closed sum of the built-in engines (what the
//! CLI and `ExperimentConfig` select through [`Algorithm`]); the open
//! trait is what `Framework` runs against, so external engines remain
//! possible.

use crate::moead::{moead_observed, MoeadConfig};
use crate::nsga2::{Individual, Mating, Nsga2, Nsga2Config, Stagnation, Survival};
use crate::observe::Observer;
use crate::problem::Problem;
use crate::spea2::{spea2_observed, Spea2Config};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The built-in MOEA families, as a plain tag — this is what configs,
/// manifests, and CLI flags serialise; the full parameterisation lives in
/// [`EngineConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Algorithm {
    /// NSGA-II (Deb et al. 2002) — the paper's engine.
    #[default]
    Nsga2,
    /// MOEA/D (Zhang & Li 2007), Tchebycheff decomposition.
    Moead,
    /// SPEA2 (Zitzler et al. 2001), strength fitness + archive.
    Spea2,
}

impl Algorithm {
    /// Every built-in algorithm, in canonical order.
    pub const ALL: [Algorithm; 3] = [Algorithm::Nsga2, Algorithm::Moead, Algorithm::Spea2];

    /// Stable lowercase label used by CLI flags and file names.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Nsga2 => "nsga2",
            Algorithm::Moead => "moead",
            Algorithm::Spea2 => "spea2",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Algorithm {
    type Err = EngineError;

    fn from_str(s: &str) -> Result<Self, EngineError> {
        match s.to_ascii_lowercase().as_str() {
            "nsga2" | "nsga-ii" | "nsga" => Ok(Algorithm::Nsga2),
            "moead" | "moea/d" | "moea-d" => Ok(Algorithm::Moead),
            "spea2" | "spea-ii" | "spea" => Ok(Algorithm::Spea2),
            _ => Err(EngineError::UnknownAlgorithm(s.to_string())),
        }
    }
}

/// What an engine reports about itself — enough for orchestration code to
/// size buffers and interpret results without downcasting the config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineCaps {
    /// Which family this engine belongs to.
    pub algorithm: Algorithm,
    /// Working population size (subproblem count for MOEA/D).
    pub population: usize,
    /// Generation budget (an upper bound when early stopping is active).
    pub generations: usize,
    /// Whether the engine keeps an elitist memory across generations
    /// ((μ+λ) survival or an external archive).
    pub elitist: bool,
    /// Whether [`Engine::evolve`]'s return value is guaranteed mutually
    /// nondominated (SPEA2's archive is; the NSGA-II and MOEA/D final
    /// populations may contain dominated members and need a sort).
    pub returns_nondominated: bool,
}

/// Snapshot callback handed to [`Engine::evolve`]: invoked as
/// `(generation, post-survival population)` at each requested snapshot
/// generation.
pub type SnapshotFn<'a, G> = dyn FnMut(usize, &[Individual<G>]) + 'a;

/// A multi-objective evolutionary engine over a [`Problem`].
///
/// # Contract
///
/// * **Determinism** — `evolve` must be a pure function of
///   `(config, problem, seeds, stream)`: the same inputs produce the same
///   output population, and the snapshot/observer hooks must never touch
///   the RNG stream. Campaign resume relies on this: replayed cells are
///   skipped and the remainder must walk the exact trajectory they would
///   have walked in an uninterrupted run.
/// * **Per-thread evaluators** — engines must evaluate genomes only
///   through [`Problem::Evaluator`] contexts obtained from
///   [`Problem::evaluator`], creating one per worker thread when
///   evaluating in parallel. Evaluators hold mutable scratch (the
///   scheduling evaluator sorts a sequence buffer and tracks machine-free
///   times); sharing one across threads would race, and the `Evaluator:
///   Send` + `Problem: Sync` bounds encode exactly this split. Engines
///   that evaluate serially may hold a single evaluator for the whole
///   run.
/// * **Snapshots** — `snapshots` lists generation numbers in strictly
///   ascending order; `on_snapshot(generation, population)` fires at each
///   listed generation with the post-survival population of that
///   generation. Generations past the engine's actual stopping point
///   (early termination) are silently skipped.
/// * **Observation** — one [`crate::GenerationStats`] record per completed
///   generation is delivered to `observer` when `observer.enabled()`;
///   engines must skip metric computation entirely otherwise, so
///   unobserved runs pay nothing.
pub trait Engine<P: Problem> {
    /// Capability and sizing introspection.
    fn caps(&self) -> EngineCaps;

    /// Runs the engine to completion and returns the final population
    /// (the archive for archive-based engines).
    fn evolve(
        &self,
        problem: &P,
        seeds: Vec<P::Genome>,
        stream: u64,
        snapshots: &[usize],
        on_snapshot: &mut SnapshotFn<'_, P::Genome>,
        observer: &mut dyn Observer<P::Genome>,
    ) -> Vec<Individual<P::Genome>>;
}

impl<P: Problem> Engine<P> for Nsga2Config {
    fn caps(&self) -> EngineCaps {
        EngineCaps {
            algorithm: Algorithm::Nsga2,
            population: self.population,
            generations: self.generations,
            elitist: true,
            returns_nondominated: false,
        }
    }

    fn evolve(
        &self,
        problem: &P,
        seeds: Vec<P::Genome>,
        stream: u64,
        snapshots: &[usize],
        on_snapshot: &mut SnapshotFn<'_, P::Genome>,
        mut observer: &mut dyn Observer<P::Genome>,
    ) -> Vec<Individual<P::Genome>> {
        Nsga2::new(problem, *self).run_observed(
            seeds,
            stream,
            snapshots,
            |g, p| on_snapshot(g, p),
            &mut observer,
        )
    }
}

impl<P: Problem> Engine<P> for MoeadConfig {
    fn caps(&self) -> EngineCaps {
        EngineCaps {
            algorithm: Algorithm::Moead,
            population: self.subproblems,
            generations: self.generations,
            elitist: false,
            returns_nondominated: false,
        }
    }

    fn evolve(
        &self,
        problem: &P,
        seeds: Vec<P::Genome>,
        stream: u64,
        snapshots: &[usize],
        on_snapshot: &mut SnapshotFn<'_, P::Genome>,
        mut observer: &mut dyn Observer<P::Genome>,
    ) -> Vec<Individual<P::Genome>> {
        moead_observed(
            problem,
            *self,
            seeds,
            stream,
            snapshots,
            |g, p| on_snapshot(g, p),
            &mut observer,
        )
    }
}

impl<P: Problem> Engine<P> for Spea2Config {
    fn caps(&self) -> EngineCaps {
        EngineCaps {
            algorithm: Algorithm::Spea2,
            population: self.population,
            generations: self.generations,
            elitist: true,
            returns_nondominated: true,
        }
    }

    fn evolve(
        &self,
        problem: &P,
        seeds: Vec<P::Genome>,
        stream: u64,
        snapshots: &[usize],
        on_snapshot: &mut SnapshotFn<'_, P::Genome>,
        mut observer: &mut dyn Observer<P::Genome>,
    ) -> Vec<Individual<P::Genome>> {
        spea2_observed(
            problem,
            *self,
            seeds,
            stream,
            snapshots,
            |g, p| on_snapshot(g, p),
            &mut observer,
        )
    }
}

/// The closed sum of the built-in engines — one value the framework, the
/// campaign runner, and the CLI can store, copy, and dispatch on. Build
/// one with [`EngineConfig::builder`] (validated) or wrap an existing
/// per-algorithm config directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineConfig {
    /// NSGA-II with its full parameterisation.
    Nsga2(Nsga2Config),
    /// MOEA/D with its full parameterisation.
    Moead(MoeadConfig),
    /// SPEA2 with its full parameterisation.
    Spea2(Spea2Config),
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::Nsga2(Nsga2Config::default())
    }
}

impl EngineConfig {
    /// Starts a validated builder (the preferred construction path; see
    /// [`EngineConfigBuilder`]).
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// Which family this config parameterises.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            EngineConfig::Nsga2(_) => Algorithm::Nsga2,
            EngineConfig::Moead(_) => Algorithm::Moead,
            EngineConfig::Spea2(_) => Algorithm::Spea2,
        }
    }

    /// Working population size (subproblem count for MOEA/D).
    pub fn population(&self) -> usize {
        match self {
            EngineConfig::Nsga2(c) => c.population,
            EngineConfig::Moead(c) => c.subproblems,
            EngineConfig::Spea2(c) => c.population,
        }
    }

    /// Generation budget.
    pub fn generations(&self) -> usize {
        match self {
            EngineConfig::Nsga2(c) => c.generations,
            EngineConfig::Moead(c) => c.generations,
            EngineConfig::Spea2(c) => c.generations,
        }
    }

    /// Hypervolume reference point used when an observer is attached.
    pub fn hv_reference(&self) -> Option<[f64; 2]> {
        match self {
            EngineConfig::Nsga2(c) => c.hv_reference,
            EngineConfig::Moead(c) => c.hv_reference,
            EngineConfig::Spea2(c) => c.hv_reference,
        }
    }

    /// Sets the hypervolume reference point on whichever variant this is.
    pub fn with_hv_reference(mut self, hv: Option<[f64; 2]>) -> Self {
        match &mut self {
            EngineConfig::Nsga2(c) => c.hv_reference = hv,
            EngineConfig::Moead(c) => c.hv_reference = hv,
            EngineConfig::Spea2(c) => c.hv_reference = hv,
        }
        self
    }

    /// Convenience: evolve with no snapshots and no observer.
    pub fn run<P: Problem>(
        &self,
        problem: &P,
        seeds: Vec<P::Genome>,
        stream: u64,
    ) -> Vec<Individual<P::Genome>> {
        self.evolve(
            problem,
            seeds,
            stream,
            &[],
            &mut |_, _| {},
            &mut crate::observe::NullObserver,
        )
    }
}

impl<P: Problem> Engine<P> for EngineConfig {
    fn caps(&self) -> EngineCaps {
        match self {
            EngineConfig::Nsga2(c) => Engine::<P>::caps(c),
            EngineConfig::Moead(c) => Engine::<P>::caps(c),
            EngineConfig::Spea2(c) => Engine::<P>::caps(c),
        }
    }

    fn evolve(
        &self,
        problem: &P,
        seeds: Vec<P::Genome>,
        stream: u64,
        snapshots: &[usize],
        on_snapshot: &mut SnapshotFn<'_, P::Genome>,
        observer: &mut dyn Observer<P::Genome>,
    ) -> Vec<Individual<P::Genome>> {
        match self {
            EngineConfig::Nsga2(c) => {
                c.evolve(problem, seeds, stream, snapshots, on_snapshot, observer)
            }
            EngineConfig::Moead(c) => {
                c.evolve(problem, seeds, stream, snapshots, on_snapshot, observer)
            }
            EngineConfig::Spea2(c) => {
                c.evolve(problem, seeds, stream, snapshots, on_snapshot, observer)
            }
        }
    }
}

/// A configuration error caught at [`EngineConfigBuilder::build`] time.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The algorithm name did not parse.
    UnknownAlgorithm(String),
    /// Population (or subproblem count) below the minimum of 2.
    PopulationTooSmall(usize),
    /// Mutation rate outside `[0, 1]`.
    MutationRateOutOfRange(f64),
    /// A zero generation budget.
    ZeroGenerations,
    /// MOEA/D neighbourhood smaller than 2.
    NeighbourhoodTooSmall(usize),
    /// SPEA2 archive smaller than 2.
    ArchiveTooSmall(usize),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownAlgorithm(s) => {
                write!(
                    f,
                    "unknown algorithm {s:?} (expected nsga2, moead, or spea2)"
                )
            }
            EngineError::PopulationTooSmall(n) => {
                write!(f, "population must be at least 2, got {n}")
            }
            EngineError::MutationRateOutOfRange(r) => {
                write!(f, "mutation rate must be within [0, 1], got {r}")
            }
            EngineError::ZeroGenerations => write!(f, "generation budget must be at least 1"),
            EngineError::NeighbourhoodTooSmall(t) => {
                write!(f, "MOEA/D neighbourhood must be at least 2, got {t}")
            }
            EngineError::ArchiveTooSmall(a) => {
                write!(f, "SPEA2 archive must be at least 2, got {a}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Validated builder for [`EngineConfig`] — the supported construction
/// path. Field-struct literals of `Nsga2Config`/`MoeadConfig`/
/// `Spea2Config` still compile but bypass validation and break on every
/// added field; prefer this builder in new code, examples, and docs.
///
/// Algorithm-specific knobs ([`neighbours`](Self::neighbours),
/// [`archive`](Self::archive), [`survival`](Self::survival), …) are held
/// until [`build`](Self::build) and only applied when the selected
/// algorithm uses them.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    algorithm: Algorithm,
    population: usize,
    mutation_rate: f64,
    generations: usize,
    parallel: bool,
    neighbours: usize,
    archive: Option<usize>,
    hv_reference: Option<[f64; 2]>,
    survival: Survival,
    mating: Mating,
    stagnation: Option<Stagnation>,
}

impl Default for EngineConfigBuilder {
    fn default() -> Self {
        let d = Nsga2Config::default();
        EngineConfigBuilder {
            algorithm: Algorithm::Nsga2,
            population: d.population,
            mutation_rate: d.mutation_rate,
            generations: d.generations,
            parallel: d.parallel,
            neighbours: MoeadConfig::default().neighbours,
            archive: None,
            hv_reference: None,
            survival: d.survival,
            mating: d.mating,
            stagnation: d.stagnation,
        }
    }
}

impl EngineConfigBuilder {
    /// Selects the algorithm family (default: NSGA-II).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Working population size (MOEA/D subproblem count).
    pub fn population(mut self, population: usize) -> Self {
        self.population = population;
        self
    }

    /// Per-offspring mutation probability.
    pub fn mutation_rate(mut self, rate: f64) -> Self {
        self.mutation_rate = rate;
        self
    }

    /// Generation budget.
    pub fn generations(mut self, generations: usize) -> Self {
        self.generations = generations;
        self
    }

    /// Parallel offspring evaluation (NSGA-II only).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// MOEA/D mating/replacement neighbourhood size.
    pub fn neighbours(mut self, neighbours: usize) -> Self {
        self.neighbours = neighbours;
        self
    }

    /// SPEA2 archive size (defaults to the population size).
    pub fn archive(mut self, archive: usize) -> Self {
        self.archive = Some(archive);
        self
    }

    /// Hypervolume reference point for observed runs.
    pub fn hv_reference(mut self, hv: [f64; 2]) -> Self {
        self.hv_reference = Some(hv);
        self
    }

    /// NSGA-II survival truncation rule.
    pub fn survival(mut self, survival: Survival) -> Self {
        self.survival = survival;
        self
    }

    /// NSGA-II mating-selection rule.
    pub fn mating(mut self, mating: Mating) -> Self {
        self.mating = mating;
        self
    }

    /// NSGA-II convergence-based early stop.
    pub fn stagnation(mut self, stagnation: Stagnation) -> Self {
        self.stagnation = Some(stagnation);
        self
    }

    /// Validates and assembles the config for the selected algorithm.
    pub fn build(self) -> Result<EngineConfig, EngineError> {
        if self.population < 2 {
            return Err(EngineError::PopulationTooSmall(self.population));
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(EngineError::MutationRateOutOfRange(self.mutation_rate));
        }
        if self.generations == 0 {
            return Err(EngineError::ZeroGenerations);
        }
        Ok(match self.algorithm {
            Algorithm::Nsga2 => EngineConfig::Nsga2(Nsga2Config {
                population: self.population,
                mutation_rate: self.mutation_rate,
                generations: self.generations,
                parallel: self.parallel,
                survival: self.survival,
                stagnation: self.stagnation,
                mating: self.mating,
                hv_reference: self.hv_reference,
            }),
            Algorithm::Moead => {
                if self.neighbours < 2 {
                    return Err(EngineError::NeighbourhoodTooSmall(self.neighbours));
                }
                EngineConfig::Moead(MoeadConfig {
                    subproblems: self.population,
                    neighbours: self.neighbours,
                    mutation_rate: self.mutation_rate,
                    generations: self.generations,
                    hv_reference: self.hv_reference,
                })
            }
            Algorithm::Spea2 => {
                let archive = self.archive.unwrap_or(self.population);
                if archive < 2 {
                    return Err(EngineError::ArchiveTooSmall(archive));
                }
                EngineConfig::Spea2(Spea2Config {
                    population: self.population,
                    archive,
                    mutation_rate: self.mutation_rate,
                    generations: self.generations,
                    hv_reference: self.hv_reference,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::StatsLog;
    use crate::problem::Schaffer;

    #[test]
    fn algorithm_labels_roundtrip_through_fromstr() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.label().parse::<Algorithm>().unwrap(), alg);
        }
        assert!("simulated-annealing".parse::<Algorithm>().is_err());
    }

    #[test]
    fn algorithm_serde_roundtrip() {
        for alg in Algorithm::ALL {
            let json = serde_json::to_string(&alg).unwrap();
            let back: Algorithm = serde_json::from_str(&json).unwrap();
            assert_eq!(alg, back);
        }
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            EngineConfig::builder().population(1).build(),
            Err(EngineError::PopulationTooSmall(1))
        );
        assert_eq!(
            EngineConfig::builder().mutation_rate(1.5).build(),
            Err(EngineError::MutationRateOutOfRange(1.5))
        );
        assert_eq!(
            EngineConfig::builder().generations(0).build(),
            Err(EngineError::ZeroGenerations)
        );
        assert_eq!(
            EngineConfig::builder()
                .algorithm(Algorithm::Moead)
                .neighbours(1)
                .build(),
            Err(EngineError::NeighbourhoodTooSmall(1))
        );
        assert_eq!(
            EngineConfig::builder()
                .algorithm(Algorithm::Spea2)
                .archive(1)
                .build(),
            Err(EngineError::ArchiveTooSmall(1))
        );
    }

    #[test]
    fn builder_defaults_match_config_defaults() {
        assert_eq!(
            EngineConfig::builder().build().unwrap(),
            EngineConfig::Nsga2(Nsga2Config::default())
        );
        assert_eq!(
            EngineConfig::builder()
                .algorithm(Algorithm::Moead)
                .build()
                .unwrap(),
            EngineConfig::Moead(MoeadConfig::default())
        );
        assert_eq!(
            EngineConfig::builder()
                .algorithm(Algorithm::Spea2)
                .build()
                .unwrap(),
            EngineConfig::Spea2(Spea2Config::default())
        );
    }

    #[test]
    fn engine_trait_matches_direct_calls() {
        // Dispatching through the trait must reproduce the direct API
        // bit-for-bit for every family — the property campaign resume
        // stands on.
        let problem = Schaffer::default();
        let builder = || {
            EngineConfig::builder()
                .population(16)
                .generations(10)
                .mutation_rate(0.5)
        };

        let cfg = builder().build().unwrap();
        let via_trait = cfg.run(&problem, vec![], 42);
        let direct = match cfg {
            EngineConfig::Nsga2(c) => Nsga2::new(&problem, c).run(vec![], 42),
            _ => unreachable!(),
        };
        let a: Vec<_> = via_trait.iter().map(|i| i.objectives).collect();
        let b: Vec<_> = direct.iter().map(|i| i.objectives).collect();
        assert_eq!(a, b);

        for alg in [Algorithm::Moead, Algorithm::Spea2] {
            let cfg = builder().algorithm(alg).build().unwrap();
            let once = cfg.run(&problem, vec![], 7);
            let twice = cfg.run(&problem, vec![], 7);
            let a: Vec<_> = once.iter().map(|i| i.objectives).collect();
            let b: Vec<_> = twice.iter().map(|i| i.objectives).collect();
            assert_eq!(a, b, "{alg} not deterministic through the trait");
        }
    }

    #[test]
    fn trait_snapshots_and_observer_fire_for_every_engine() {
        let problem = Schaffer::default();
        for alg in Algorithm::ALL {
            let cfg = EngineConfig::builder()
                .algorithm(alg)
                .population(12)
                .generations(8)
                .hv_reference([2e6, 2e6])
                .build()
                .unwrap();
            let mut seen = Vec::new();
            let mut log = StatsLog::default();
            let pop = cfg.evolve(
                &problem,
                vec![],
                3,
                &[2, 8],
                &mut |g, p| seen.push((g, p.len())),
                &mut log,
            );
            assert!(!pop.is_empty(), "{alg}: empty final population");
            assert_eq!(
                seen.iter().map(|&(g, _)| g).collect::<Vec<_>>(),
                vec![2, 8],
                "{alg}: snapshot generations"
            );
            assert_eq!(
                log.records.len(),
                8,
                "{alg}: one stats record per generation"
            );
            assert!(
                log.records.iter().all(|r| r.hypervolume.is_some()),
                "{alg}: hypervolume computed when reference set"
            );
        }
    }

    #[test]
    fn caps_report_family_and_sizing() {
        let cfg = EngineConfig::builder()
            .algorithm(Algorithm::Spea2)
            .population(24)
            .generations(40)
            .build()
            .unwrap();
        let caps = Engine::<Schaffer>::caps(&cfg);
        assert_eq!(caps.algorithm, Algorithm::Spea2);
        assert_eq!(caps.population, 24);
        assert_eq!(caps.generations, 40);
        assert!(caps.elitist);
        assert!(caps.returns_nondominated);
    }
}
