#![warn(missing_docs)]

//! Multi-objective evolutionary algorithm engine.
//!
//! Implements the **Nondominated Sorting Genetic Algorithm II** (Deb et al.,
//! IEEE TEC 2002) as adapted by the paper (§IV-D, Algorithm 1): elitist
//! (μ+λ) survival driven by fast nondominated sorting and crowding-distance
//! truncation, with *uniform-random* mating selection (the paper selects
//! crossover parents uniformly at random rather than by crowded tournament).
//!
//! The engine is generic over a [`Problem`]: the allocation crate binds it
//! to the utility/energy scheduling problem, and the test-suite binds it to
//! analytic benchmark problems (SCH, ZDT1) with known Pareto fronts.
//!
//! Objectives are always **minimised**; the scheduling problem feeds
//! `(-utility, energy)`.

pub mod baselines;
pub mod dominance;
pub mod engine;
pub mod moead;
pub mod nsga2;
pub mod observe;
pub mod problem;
pub mod seeding;
pub mod sort;
pub mod spea2;

pub use dominance::{dominates, Objectives};
pub use engine::{Algorithm, Engine, EngineCaps, EngineConfig, EngineConfigBuilder, EngineError};
pub use moead::{moead, moead_observed, MoeadConfig};
pub use nsga2::{pareto_front, Individual, Mating, Nsga2, Nsga2Config, Stagnation, Survival};
pub use observe::{GenerationStats, NullObserver, Observer, PhaseTimings, StatsLog};
pub use problem::{BatchRequest, Problem, Variation};
pub use seeding::prepare_warm_seeds;
pub use sort::{crowding_distance, fast_nondominated_sort};
pub use spea2::{spea2, spea2_observed, Spea2Config};
