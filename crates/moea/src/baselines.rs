//! Comparator algorithms for the ablation benches: pure random search and a
//! weighted-sum single-objective GA (the approach of the related work in
//! §II that "produces a single solution" per run, unlike NSGA-II which
//! yields a whole front in one run).

use crate::dominance::Objectives;
use crate::nsga2::Individual;
use crate::problem::Problem;
use crate::sort::fast_nondominated_sort;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `evaluations` random genomes and returns the nondominated subset.
/// Uses the same evaluation budget currency as NSGA-II (one evaluation per
/// genome) so budgets are directly comparable.
pub fn random_search<P: Problem>(
    problem: &P,
    evaluations: usize,
    seed: u64,
) -> Vec<Individual<P::Genome>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ev = problem.evaluator();
    let population: Vec<Individual<P::Genome>> = (0..evaluations)
        .map(|_| {
            let genome = problem.random_genome(&mut rng);
            let objectives = problem.evaluate(&mut ev, &genome);
            Individual { genome, objectives }
        })
        .collect();
    let points: Vec<Objectives> = population.iter().map(|i| i.objectives).collect();
    let fronts = fast_nondominated_sort(&points);
    match fronts.first() {
        Some(first) => first.iter().map(|&p| population[p].clone()).collect(),
        None => Vec::new(),
    }
}

/// A single-objective GA minimising the weighted sum `w·f₀ + (1−w)·f₁`
/// (objectives are min-max normalised against the running population so the
/// weight is scale-free). One run yields one solution; sweeping `w`
/// produces a front the way the §II related-work heuristics do.
pub fn weighted_sum_ga<P: Problem>(
    problem: &P,
    weight: f64,
    population: usize,
    generations: usize,
    seed: u64,
) -> Individual<P::Genome> {
    assert!((0.0..=1.0).contains(&weight), "weight must be in [0, 1]");
    assert!(population >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ev = problem.evaluator();
    let mut pop: Vec<Individual<P::Genome>> = (0..population)
        .map(|_| {
            let genome = problem.random_genome(&mut rng);
            let objectives = problem.evaluate(&mut ev, &genome);
            Individual { genome, objectives }
        })
        .collect();

    let fitness = |pop: &[Individual<P::Genome>]| -> Vec<f64> {
        let (mut lo0, mut hi0) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo1, mut hi1) = (f64::INFINITY, f64::NEG_INFINITY);
        for i in pop {
            lo0 = lo0.min(i.objectives[0]);
            hi0 = hi0.max(i.objectives[0]);
            lo1 = lo1.min(i.objectives[1]);
            hi1 = hi1.max(i.objectives[1]);
        }
        let norm = |v: f64, lo: f64, hi: f64| if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
        pop.iter()
            .map(|i| {
                weight * norm(i.objectives[0], lo0, hi0)
                    + (1.0 - weight) * norm(i.objectives[1], lo1, hi1)
            })
            .collect()
    };

    for _ in 0..generations {
        let fit = fitness(&pop);
        // Binary-tournament parent selection, generational replacement with
        // one elite.
        let elite = fit
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("population non-empty");
        let mut next: Vec<Individual<P::Genome>> = vec![pop[elite].clone()];
        while next.len() < population {
            let pick = |rng: &mut StdRng| {
                let a = rng.gen_range(0..pop.len());
                let b = rng.gen_range(0..pop.len());
                if fit[a] <= fit[b] {
                    a
                } else {
                    b
                }
            };
            let (i, j) = (pick(&mut rng), pick(&mut rng));
            let (mut a, mut b) = problem.crossover(&mut rng, &pop[i].genome, &pop[j].genome);
            if rng.gen::<f64>() < 0.5 {
                problem.mutate(&mut rng, &mut a);
            }
            if rng.gen::<f64>() < 0.5 {
                problem.mutate(&mut rng, &mut b);
            }
            for genome in [a, b] {
                if next.len() < population {
                    let objectives = problem.evaluate(&mut ev, &genome);
                    next.push(Individual { genome, objectives });
                }
            }
        }
        pop = next;
    }
    let fit = fitness(&pop);
    let best = fit
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("population non-empty");
    pop.swap_remove(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Schaffer;

    #[test]
    fn random_search_returns_nondominated_points() {
        let problem = Schaffer::default();
        let front = random_search(&problem, 500, 3);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                assert!(!crate::dominance::dominates(&a.objectives, &b.objectives));
            }
        }
    }

    #[test]
    fn weighted_sum_extremes_favor_their_objective() {
        let problem = Schaffer::default();
        // w = 1 minimises f0 = x² → x near 0; w = 0 minimises f1 → x near 2.
        let f0_biased = weighted_sum_ga(&problem, 1.0, 40, 60, 4);
        let f1_biased = weighted_sum_ga(&problem, 0.0, 40, 60, 4);
        assert!(f0_biased.objectives[0] < f1_biased.objectives[0]);
        assert!(f1_biased.objectives[1] < f0_biased.objectives[1]);
    }

    #[test]
    fn weighted_sum_is_deterministic() {
        let problem = Schaffer::default();
        let a = weighted_sum_ga(&problem, 0.5, 20, 10, 9);
        let b = weighted_sum_ga(&problem, 0.5, 20, 10, 9);
        assert_eq!(a.objectives, b.objectives);
    }

    #[test]
    #[should_panic(expected = "weight must be in")]
    fn weighted_sum_rejects_bad_weight() {
        let problem = Schaffer::default();
        let _ = weighted_sum_ga(&problem, 1.5, 10, 5, 1);
    }
}
