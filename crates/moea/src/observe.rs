//! Engine observability: per-generation metrics delivered through an
//! [`Observer`] hook on the NSGA-II loop.
//!
//! The engine computes a [`GenerationStats`] record after every generation
//! — front sizes per rank, the ideal corner, hypervolume against a fixed
//! reference point, crowding spread, evaluation counts, and wall-clock per
//! phase — but **only when an observer asks for it**: the default
//! [`NullObserver`] reports `enabled() == false` and the loop then skips
//! both the metric computation and the `Instant` reads, so uninstrumented
//! runs pay nothing beyond one branch per generation.

use crate::dominance::Objectives;
use crate::nsga2::Individual;
use crate::sort::{crowding_distance, fast_nondominated_sort};
use serde::{Deserialize, Serialize};

/// Wall-clock seconds spent in each phase of one generation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Parent selection, crossover, and mutation.
    pub mating_s: f64,
    /// Offspring fitness evaluation (the hot path).
    pub evaluation_s: f64,
    /// Nondominated sorting and survival truncation.
    pub sorting_s: f64,
}

/// Closes one timed phase segment: adds the elapsed time since `mark` to
/// `acc` and returns a fresh mark for the next segment. `None`
/// (observation disabled) stays `None`, keeping hot loops free of clock
/// reads.
#[inline]
pub(crate) fn lap(acc: &mut f64, mark: Option<std::time::Instant>) -> Option<std::time::Instant> {
    mark.map(|m| {
        *acc += m.elapsed().as_secs_f64();
        std::time::Instant::now()
    })
}

/// One generation's metrics record — the unit the run journal serialises.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation number (1-based; generation 0 is the initial population).
    pub generation: usize,
    /// Population count per nondomination rank (index 0 = Pareto front).
    pub front_sizes: Vec<usize>,
    /// Per-objective minima of the population (the ideal corner).
    pub ideal: [f64; 2],
    /// Staircase hypervolume of the rank-1 front against the configured
    /// reference point; `None` when no reference point is set.
    pub hypervolume: Option<f64>,
    /// Sample standard deviation of the finite crowding distances on the
    /// rank-1 front — 0 means perfectly uniform spacing.
    pub crowding_spread: f64,
    /// Fitness evaluations performed this generation.
    pub evaluations: usize,
    /// Wall-clock breakdown of the generation.
    pub timings: PhaseTimings,
}

impl GenerationStats {
    /// Computes the record for a post-survival population. Runs one extra
    /// nondominated sort of the N survivors; only called when observing.
    pub fn compute<G>(
        generation: usize,
        population: &[Individual<G>],
        evaluations: usize,
        timings: PhaseTimings,
        hv_reference: Option<[f64; 2]>,
    ) -> Self {
        let points: Vec<Objectives> = population.iter().map(|i| i.objectives).collect();
        let fronts = fast_nondominated_sort(&points);
        let front_sizes: Vec<usize> = fronts.iter().map(Vec::len).collect();
        let mut ideal = [f64::INFINITY; 2];
        for p in &points {
            ideal[0] = ideal[0].min(p[0]);
            ideal[1] = ideal[1].min(p[1]);
        }
        let first = fronts.first().map(Vec::as_slice).unwrap_or(&[]);
        let hypervolume = hv_reference.map(|r| hypervolume_2d(first.iter().map(|&p| points[p]), r));
        let crowding_spread = spread(&crowding_distance(first, &points));
        GenerationStats {
            generation,
            front_sizes,
            ideal,
            hypervolume,
            crowding_spread,
            evaluations,
            timings,
        }
    }
}

/// Receives one [`GenerationStats`] per generation from a running engine.
pub trait Observer<G> {
    /// Whether the engine should compute metrics at all. Defaults to
    /// `true`; return `false` to make observation free.
    fn enabled(&self) -> bool {
        true
    }

    /// Called after survival selection, once per generation.
    fn on_generation(&mut self, stats: &GenerationStats, population: &[Individual<G>]);
}

impl<G, O: Observer<G> + ?Sized> Observer<G> for &mut O {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn on_generation(&mut self, stats: &GenerationStats, population: &[Individual<G>]) {
        (**self).on_generation(stats, population);
    }
}

/// The do-nothing observer: `enabled()` is `false`, so an engine run with
/// it skips all metric computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl<G> Observer<G> for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_generation(&mut self, _stats: &GenerationStats, _population: &[Individual<G>]) {}
}

/// An observer that accumulates every record in memory — the simple sink
/// for tests and post-hoc analysis.
#[derive(Debug, Clone, Default)]
pub struct StatsLog {
    /// The collected records, one per generation, in order.
    pub records: Vec<GenerationStats>,
}

impl<G> Observer<G> for StatsLog {
    fn on_generation(&mut self, stats: &GenerationStats, _population: &[Individual<G>]) {
        self.records.push(stats.clone());
    }
}

/// Exact 2-D hypervolume (minimisation) of a mutually nondominated point
/// set against `reference`: the area dominated by the set and bounded by
/// the reference corner. Points not strictly below the reference in both
/// objectives contribute nothing.
pub fn hypervolume_2d(points: impl IntoIterator<Item = Objectives>, reference: [f64; 2]) -> f64 {
    let mut inside: Vec<Objectives> = points
        .into_iter()
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .collect();
    // Descending f0: each point adds the slab between its f0 and the
    // previous (larger) f0, at its own f1 height.
    inside.sort_unstable_by(|a, b| b[0].total_cmp(&a[0]));
    let mut hv = 0.0;
    let mut prev_f0 = reference[0];
    for p in inside {
        hv += (prev_f0 - p[0]).max(0.0) * (reference[1] - p[1]);
        prev_f0 = prev_f0.min(p[0]);
    }
    hv
}

/// Sample standard deviation of the finite entries (boundary points carry
/// infinite crowding distance and are excluded).
fn spread(distances: &[f64]) -> f64 {
    let finite: Vec<f64> = distances
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .collect();
    if finite.len() < 2 {
        return 0.0;
    }
    let mean = finite.iter().sum::<f64>() / finite.len() as f64;
    let var =
        finite.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (finite.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypervolume_of_single_point() {
        let hv = hypervolume_2d([[1.0, 1.0]], [3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn hypervolume_staircase_of_two_points() {
        // a = (1, 2), b = (2, 1), ref (3, 3):
        // slab of b: (3-2)·(3-1) = 2; slab of a: (2-1)·(3-2) = 1.
        let hv = hypervolume_2d([[1.0, 2.0], [2.0, 1.0]], [3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn hypervolume_ignores_points_outside_reference() {
        let hv = hypervolume_2d([[1.0, 1.0], [5.0, 0.5], [0.5, 5.0]], [3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12, "hv = {hv}");
        assert_eq!(hypervolume_2d([], [3.0, 3.0]), 0.0);
    }

    #[test]
    fn hypervolume_is_monotone_in_added_points() {
        let base = hypervolume_2d([[1.0, 2.0], [2.0, 1.0]], [4.0, 4.0]);
        let more = hypervolume_2d([[1.0, 2.0], [2.0, 1.0], [0.5, 3.0]], [4.0, 4.0]);
        assert!(more > base, "{more} <= {base}");
    }

    #[test]
    fn hypervolume_of_duplicate_points_counts_once() {
        // Duplicates add a zero-width slab: same value as a single copy.
        let single = hypervolume_2d([[1.0, 1.0]], [3.0, 3.0]);
        let duped = hypervolume_2d([[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]], [3.0, 3.0]);
        assert!((duped - single).abs() < 1e-12, "{duped} != {single}");
    }

    #[test]
    fn hypervolume_excludes_points_exactly_on_the_reference_boundary() {
        // The filter is strict `<`: a point sharing either coordinate
        // with the reference dominates zero area and must contribute
        // nothing (not a negative or NaN slab).
        assert_eq!(hypervolume_2d([[3.0, 1.0]], [3.0, 3.0]), 0.0);
        assert_eq!(hypervolume_2d([[1.0, 3.0]], [3.0, 3.0]), 0.0);
        assert_eq!(hypervolume_2d([[3.0, 3.0]], [3.0, 3.0]), 0.0);
        // A boundary point alongside an interior one changes nothing.
        let hv = hypervolume_2d([[1.0, 1.0], [3.0, 1.0], [1.0, 3.0]], [3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn hypervolume_is_nan_free_under_total_cmp() {
        // NaN coordinates fail the strict `<` filter (all comparisons
        // with NaN are false), so they are dropped before the total_cmp
        // sort ever sees them and the result stays finite.
        let hv = hypervolume_2d(
            [
                [f64::NAN, 1.0],
                [1.0, f64::NAN],
                [f64::NAN, f64::NAN],
                [1.0, 1.0],
            ],
            [3.0, 3.0],
        );
        assert!(hv.is_finite());
        assert!((hv - 4.0).abs() < 1e-12, "hv = {hv}");
        // An all-NaN input degenerates to the empty set, not NaN.
        assert_eq!(hypervolume_2d([[f64::NAN, f64::NAN]], [3.0, 3.0]), 0.0);
    }

    #[test]
    fn spread_is_zero_for_uniform_distances() {
        assert_eq!(spread(&[f64::INFINITY, 2.0, 2.0, 2.0, f64::INFINITY]), 0.0);
        assert_eq!(spread(&[f64::INFINITY]), 0.0);
        assert!(spread(&[1.0, 3.0]) > 0.0);
    }

    #[test]
    fn compute_ranks_and_ideal() {
        // Two nondominated points plus one dominated straggler.
        let pop: Vec<Individual<u8>> = [[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]]
            .into_iter()
            .map(|objectives| Individual {
                genome: 0u8,
                objectives,
            })
            .collect();
        let stats = GenerationStats::compute(7, &pop, 3, PhaseTimings::default(), Some([4.0, 4.0]));
        assert_eq!(stats.generation, 7);
        assert_eq!(stats.front_sizes, vec![2, 1]);
        assert_eq!(stats.ideal, [1.0, 1.0]);
        assert_eq!(stats.evaluations, 3);
        let hv = stats.hypervolume.unwrap();
        assert!((hv - 8.0).abs() < 1e-12, "hv = {hv}"); // 2·3 + 1·2
    }

    #[test]
    fn stats_roundtrip_through_json() {
        let stats = GenerationStats::compute(
            1,
            &[Individual {
                genome: 0u8,
                objectives: [1.0, 2.0],
            }],
            5,
            PhaseTimings {
                mating_s: 0.25,
                evaluation_s: 0.5,
                sorting_s: 0.125,
            },
            None,
        );
        let line = serde_json::to_string(&stats).unwrap();
        let back: GenerationStats = serde_json::from_str(&line).unwrap();
        assert_eq!(stats, back);
    }
}
