//! The problem abstraction the NSGA-II engine evolves over.

use crate::dominance::Objectives;
use rand::RngCore;

/// What a variation operator reports about the child it produced, enabling
/// incremental (delta) evaluation downstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Variation<M> {
    /// The operator did not track its edits; the child must be evaluated
    /// from scratch.
    Unknown,
    /// The child equals its base genome with exactly these moves applied,
    /// left to right. An **empty** list certifies the child bit-identical
    /// to its base, so engines skip evaluation entirely and reuse the
    /// base's objectives.
    Moves(Vec<M>),
}

impl<M> Variation<M> {
    /// Whether this variation certifies the child identical to its base.
    pub fn is_noop(&self) -> bool {
        matches!(self, Variation::Moves(moves) if moves.is_empty())
    }
}

/// One evaluation request in a population-level batch (borrowed views into
/// the engine's parent and offspring storage).
///
/// Engines translate each offspring's [`Variation`] into a request:
/// [`Variation::Unknown`] becomes `Full`, tracked moves become `Moves`
/// carrying the base parent's already-known objectives so a certified
/// no-op (empty move list) costs nothing.
#[derive(Debug)]
pub enum BatchRequest<'p, G, M> {
    /// Fully evaluate one genome.
    Full(&'p G),
    /// Evaluate `child`, which equals `base` with `moves` applied left to
    /// right. An empty `moves` certifies `child == base`, so the problem
    /// returns `base_objectives` without evaluating anything.
    Moves {
        /// The base parent genome.
        base: &'p G,
        /// The base parent's objectives (engines always know them).
        base_objectives: Objectives,
        /// The offspring genome to evaluate.
        child: &'p G,
        /// The exact base→child diff.
        moves: &'p [M],
    },
}

// Manual impls: the derive would demand `G: Clone`/`M: Clone`, but every
// field is a reference (or `Objectives`), so requests copy regardless.
impl<G, M> Clone for BatchRequest<'_, G, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<G, M> Copy for BatchRequest<'_, G, M> {}

/// A bi-objective optimisation problem with genetic operators.
///
/// Evaluation is split into a per-thread [`Problem::Evaluator`] so the
/// engine can evaluate populations in parallel while each worker reuses its
/// own scratch buffers (the scheduling evaluator sorts a sequence buffer
/// and tracks machine-free times; sharing those across threads would race).
///
/// # Tracked variation (incremental evaluation)
///
/// Engines call the `*_tracked` operator variants, which additionally
/// return a [`Variation`]: the move set the operator applied to turn the
/// base parent into the child. Problems that can evaluate a child
/// incrementally from its base override [`Problem::evaluate_moves`]; the
/// defaults keep every existing problem working unchanged (operators
/// report [`Variation::Unknown`], `evaluate_moves` falls back to a full
/// [`Problem::evaluate`]).
///
/// **Contract:** a tracked operator must draw from the RNG exactly as its
/// untracked counterpart (so trajectories are independent of tracking),
/// and `Moves(v)` must mean "child = base with `v` applied" *exactly* —
/// engines trust an empty `v` enough to skip evaluation.
pub trait Problem: Sync {
    /// A candidate solution (the chromosome).
    type Genome: Clone + Send + Sync;
    /// Per-thread evaluation context.
    type Evaluator: Send;
    /// One tracked edit of a variation operator (`()` when untracked).
    /// `Sync` so batched requests (which borrow move slices) can cross
    /// worker threads.
    type Move: Send + Sync;

    /// Creates a fresh evaluation context.
    fn evaluator(&self) -> Self::Evaluator;

    /// Evaluates a genome into minimisation objectives.
    fn evaluate(&self, ev: &mut Self::Evaluator, genome: &Self::Genome) -> Objectives;

    /// Samples a uniformly random genome.
    fn random_genome(&self, rng: &mut dyn RngCore) -> Self::Genome;

    /// Produces two offspring from two parents.
    fn crossover(
        &self,
        rng: &mut dyn RngCore,
        a: &Self::Genome,
        b: &Self::Genome,
    ) -> (Self::Genome, Self::Genome);

    /// Mutates a genome in place.
    fn mutate(&self, rng: &mut dyn RngCore, genome: &mut Self::Genome);

    /// As [`Problem::crossover`], additionally reporting each child's
    /// [`Variation`] relative to its base parent (first child ↔ `a`,
    /// second child ↔ `b`).
    #[allow(clippy::type_complexity)]
    fn crossover_tracked(
        &self,
        rng: &mut dyn RngCore,
        a: &Self::Genome,
        b: &Self::Genome,
    ) -> (
        (Self::Genome, Variation<Self::Move>),
        (Self::Genome, Variation<Self::Move>),
    ) {
        let (c, d) = self.crossover(rng, a, b);
        ((c, Variation::Unknown), (d, Variation::Unknown))
    }

    /// As [`Problem::mutate`], updating the genome's accumulated
    /// [`Variation`] to cover the mutation's edits (or degrading it to
    /// [`Variation::Unknown`] when the operator cannot track them).
    fn mutate_tracked(
        &self,
        rng: &mut dyn RngCore,
        genome: &mut Self::Genome,
        variation: &mut Variation<Self::Move>,
    ) {
        self.mutate(rng, genome);
        *variation = Variation::Unknown;
    }

    /// Evaluates `child` given that it equals `base` with `moves` applied.
    /// The default ignores the moves and fully evaluates; problems with an
    /// incremental evaluator override this. Must return exactly what
    /// `evaluate(ev, child)` would.
    fn evaluate_moves(
        &self,
        ev: &mut Self::Evaluator,
        base: &Self::Genome,
        child: &Self::Genome,
        moves: &[Self::Move],
    ) -> Objectives {
        let _ = (base, moves);
        self.evaluate(ev, child)
    }

    /// Resolves one [`BatchRequest`]: skip (empty tracked moves, reuse the
    /// base objectives without touching the evaluator), incremental
    /// ([`Problem::evaluate_moves`]), or full ([`Problem::evaluate`]) —
    /// the same triage every engine used to inline.
    fn evaluate_request(
        &self,
        ev: &mut Self::Evaluator,
        request: &BatchRequest<'_, Self::Genome, Self::Move>,
    ) -> Objectives {
        match request {
            BatchRequest::Full(genome) => self.evaluate(ev, genome),
            BatchRequest::Moves {
                base,
                base_objectives,
                child,
                moves,
            } => {
                if moves.is_empty() {
                    *base_objectives
                } else {
                    self.evaluate_moves(ev, base, child, moves)
                }
            }
        }
    }

    /// Evaluates a whole batch of requests, returning objectives in
    /// request order. Engines route their population loops through this
    /// single entry point so problems can own the parallelism split.
    ///
    /// The default reproduces the engines' historical behaviour exactly:
    /// serial batches run one request at a time on the caller's persistent
    /// evaluator; parallel batches fan out with rayon, each worker
    /// initialising a fresh evaluator. Problems with a population-aware
    /// evaluator (the scheduling problem's `BatchEvaluator`) override this
    /// to keep per-worker state warm across generations.
    fn evaluate_batch(
        &self,
        ev: &mut Self::Evaluator,
        parallel: bool,
        batch: &[BatchRequest<'_, Self::Genome, Self::Move>],
    ) -> Vec<Objectives> {
        if parallel {
            use rayon::prelude::*;
            batch
                .to_vec()
                .into_par_iter()
                .map_init(
                    || self.evaluator(),
                    |worker, request| self.evaluate_request(worker, &request),
                )
                .collect()
        } else {
            batch
                .iter()
                .map(|request| self.evaluate_request(ev, request))
                .collect()
        }
    }
}

/// Schaffer's single-variable problem (SCH): minimise `(x², (x−2)²)`.
/// Its exact Pareto-optimal set is `x ∈ [0, 2]`; the classic smoke test
/// for NSGA-II implementations (used by Deb et al. 2002 itself).
#[derive(Debug, Clone, Copy)]
pub struct Schaffer {
    /// Genome search range `[-range, range]`.
    pub range: f64,
    /// Gaussian-ish mutation step.
    pub step: f64,
}

impl Default for Schaffer {
    fn default() -> Self {
        Schaffer {
            range: 1000.0,
            step: 0.5,
        }
    }
}

impl Problem for Schaffer {
    type Genome = f64;
    type Evaluator = ();
    type Move = ();

    fn evaluator(&self) {}

    fn evaluate(&self, _ev: &mut (), genome: &f64) -> Objectives {
        [genome * genome, (genome - 2.0) * (genome - 2.0)]
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng;
        rng.gen_range(-self.range..=self.range)
    }

    fn crossover(&self, rng: &mut dyn RngCore, a: &f64, b: &f64) -> (f64, f64) {
        use rand::Rng;
        // Blend crossover.
        let w = rng.gen::<f64>();
        (w * a + (1.0 - w) * b, (1.0 - w) * a + w * b)
    }

    fn mutate(&self, rng: &mut dyn RngCore, genome: &mut f64) {
        use rand::Rng;
        *genome += rng.gen_range(-self.step..=self.step);
        *genome = genome.clamp(-self.range, self.range);
    }
}

/// ZDT1: a 30-variable benchmark with Pareto front `f₂ = 1 − √f₁` at
/// `g = 1` (all tail variables zero). Exercises convergence pressure on a
/// high-dimensional genome.
#[derive(Debug, Clone, Copy)]
pub struct Zdt1 {
    /// Number of decision variables (≥ 2).
    pub vars: usize,
}

impl Default for Zdt1 {
    fn default() -> Self {
        Zdt1 { vars: 30 }
    }
}

impl Problem for Zdt1 {
    type Genome = Vec<f64>;
    type Evaluator = ();
    type Move = ();

    fn evaluator(&self) {}

    fn evaluate(&self, _ev: &mut (), x: &Vec<f64>) -> Objectives {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        [f1, f2]
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        use rand::Rng;
        (0..self.vars).map(|_| rng.gen::<f64>()).collect()
    }

    fn crossover(&self, rng: &mut dyn RngCore, a: &Vec<f64>, b: &Vec<f64>) -> (Vec<f64>, Vec<f64>) {
        use rand::Rng;
        // Single-point crossover.
        let cut = rng.gen_range(1..self.vars);
        let mut c = a.clone();
        let mut d = b.clone();
        c[cut..].copy_from_slice(&b[cut..]);
        d[cut..].copy_from_slice(&a[cut..]);
        (c, d)
    }

    fn mutate(&self, rng: &mut dyn RngCore, x: &mut Vec<f64>) {
        use rand::Rng;
        let i = rng.gen_range(0..x.len());
        x[i] = (x[i] + rng.gen_range(-0.1..=0.1)).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schaffer_objectives() {
        let p = Schaffer::default();
        assert_eq!(p.evaluate(&mut (), &0.0), [0.0, 4.0]);
        assert_eq!(p.evaluate(&mut (), &2.0), [4.0, 0.0]);
        assert_eq!(p.evaluate(&mut (), &1.0), [1.0, 1.0]);
    }

    #[test]
    fn schaffer_operators_stay_in_range() {
        let p = Schaffer::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let mut g = p.random_genome(&mut rng);
            assert!(g.abs() <= p.range);
            p.mutate(&mut rng, &mut g);
            assert!(g.abs() <= p.range);
        }
    }

    #[test]
    fn zdt1_front_at_g_equals_one() {
        let p = Zdt1 { vars: 5 };
        let mut x = vec![0.0; 5];
        x[0] = 0.25;
        let [f1, f2] = p.evaluate(&mut (), &x);
        assert_eq!(f1, 0.25);
        assert!((f2 - (1.0 - 0.25f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn zdt1_crossover_preserves_length_and_genes() {
        let p = Zdt1 { vars: 6 };
        let mut rng = StdRng::seed_from_u64(2);
        let a = vec![0.0; 6];
        let b = vec![1.0; 6];
        let (c, d) = p.crossover(&mut rng, &a, &b);
        assert_eq!(c.len(), 6);
        assert_eq!(d.len(), 6);
        // Each position holds a gene from one of the parents, and the two
        // children complement each other.
        for i in 0..6 {
            assert!((c[i] == 0.0 || c[i] == 1.0) && (c[i] + d[i] == 1.0));
        }
    }
}
