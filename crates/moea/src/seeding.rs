//! Warm-start seed preparation for rolling re-optimization.
//!
//! A streaming scheduler re-runs an engine every horizon, seeding it with
//! the previous horizon's front (projected onto the new task set) plus
//! heuristic repairs. Engines truncate the seed list to their population
//! size, so *what survives the cut matters*: duplicated genomes waste
//! initial-population slots, and an over-long list silently drops the
//! heuristic repairs appended at the end. [`prepare_warm_seeds`]
//! normalises the pool deterministically before it reaches
//! [`Engine::evolve`](crate::Engine::evolve).

/// Dedups a warm-start seed pool (first occurrence wins, order preserved)
/// and caps it at `cap` genomes. Deterministic: output is a pure function
/// of the input sequence, so warm-started runs stay replayable.
///
/// The earlier a genome appears the more it is trusted — callers should
/// order the pool best-first (e.g. knee/selected point, then the rest of
/// the carried front, then heuristic repairs).
pub fn prepare_warm_seeds<G: PartialEq>(seeds: Vec<G>, cap: usize) -> Vec<G> {
    let mut out: Vec<G> = Vec::with_capacity(seeds.len().min(cap));
    for g in seeds {
        if out.len() >= cap {
            break;
        }
        if !out.contains(&g) {
            out.push(g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_preserving_first_occurrence_order() {
        let pool = vec![3, 1, 3, 2, 1, 4];
        assert_eq!(prepare_warm_seeds(pool, 10), vec![3, 1, 2, 4]);
    }

    #[test]
    fn caps_after_dedup_not_before() {
        // Duplicates must not consume cap slots: with cap 3, the pool
        // below still yields three *distinct* genomes.
        let pool = vec![1, 1, 1, 2, 2, 3, 4];
        assert_eq!(prepare_warm_seeds(pool, 3), vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_zero_cap_are_fine() {
        assert_eq!(prepare_warm_seeds(Vec::<u8>::new(), 5), Vec::<u8>::new());
        assert_eq!(prepare_warm_seeds(vec![1, 2], 0), Vec::<i32>::new());
    }
}
