//! MOEA/D (Zhang & Li, IEEE TEC 2007) — decomposition-based multi-objective
//! optimisation, the third major MOEA family next to NSGA-II (dominance)
//! and SPEA2 (indicator/archive). The bi-objective problem is decomposed
//! into `N` scalar subproblems by weight vectors `λᵢ = (i/(N−1), 1−i/(N−1))`
//! under the Tchebycheff scalarisation
//!
//! ```text
//! g(x | λ, z*) = max( λ₀·|f₀(x) − z₀*|, λ₁·|f₁(x) − z₁*| )
//! ```
//!
//! where `z*` is the running ideal point. Each subproblem mates within a
//! `neighbours`-wide neighbourhood of adjacent weight vectors and improved
//! offspring replace neighbouring incumbents.
//!
//! Included so the engine ablation can ask: does the paper's
//! dominance-based choice matter, or would any modern MOEA produce the same
//! analysis?

use crate::dominance::Objectives;
use crate::nsga2::Individual;
use crate::observe::{lap, GenerationStats, NullObserver, Observer, PhaseTimings};
use crate::problem::{BatchRequest, Problem, Variation};
use crate::sort::fast_nondominated_sort;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// MOEA/D parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoeadConfig {
    /// Number of subproblems (= population size).
    pub subproblems: usize,
    /// Mating/replacement neighbourhood size.
    pub neighbours: usize,
    /// Per-offspring mutation probability.
    pub mutation_rate: f64,
    /// Number of generations.
    pub generations: usize,
    /// Reference point for the hypervolume reported in
    /// [`GenerationStats`]; `None` skips the hypervolume computation.
    /// Only read when an enabled [`Observer`] is attached.
    pub hv_reference: Option<[f64; 2]>,
}

impl Default for MoeadConfig {
    fn default() -> Self {
        MoeadConfig {
            subproblems: 100,
            neighbours: 10,
            mutation_rate: 0.5,
            generations: 100,
            hv_reference: None,
        }
    }
}

/// Tchebycheff scalarisation of `objectives` under weight `lambda` with
/// ideal point `ideal`. Zero weights are nudged so every objective always
/// counts a little (the standard 1e-4 floor).
#[inline]
fn tchebycheff(objectives: &Objectives, lambda: (f64, f64), ideal: &Objectives) -> f64 {
    let w0 = lambda.0.max(1e-4);
    let w1 = lambda.1.max(1e-4);
    (w0 * (objectives[0] - ideal[0])).max(w1 * (objectives[1] - ideal[1]))
}

/// Runs MOEA/D and returns the nondominated subset of the final population.
pub fn moead<P: Problem>(
    problem: &P,
    config: MoeadConfig,
    seeds: Vec<P::Genome>,
    seed: u64,
) -> Vec<Individual<P::Genome>> {
    let population = moead_observed(
        problem,
        config,
        seeds,
        seed,
        &[],
        |_, _| {},
        &mut NullObserver,
    );
    // Return the nondominated subset.
    let points: Vec<Objectives> = population.iter().map(|i| i.objectives).collect();
    let fronts = fast_nondominated_sort(&points);
    match fronts.first() {
        Some(first) => first.iter().map(|&p| population[p].clone()).collect(),
        None => Vec::new(),
    }
}

/// As [`moead`], but returns the **full final population** (one incumbent
/// per subproblem, dominated members included), firing `on_snapshot` at
/// each listed generation and delivering one [`GenerationStats`] record per
/// generation to `observer`. Snapshot and observer hooks never touch the
/// RNG stream, so an observed run walks the exact trajectory of an
/// unobserved one.
pub fn moead_observed<P: Problem, O: Observer<P::Genome>>(
    problem: &P,
    config: MoeadConfig,
    seeds: Vec<P::Genome>,
    seed: u64,
    snapshots: &[usize],
    mut on_snapshot: impl FnMut(usize, &[Individual<P::Genome>]),
    observer: &mut O,
) -> Vec<Individual<P::Genome>> {
    assert!(config.subproblems >= 2, "need at least two subproblems");
    let n = config.subproblems;
    let t = config.neighbours.clamp(2, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ev = problem.evaluator();

    // Uniform weight vectors and their index neighbourhoods (weights are
    // sorted, so index distance = weight distance).
    let lambda: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let w = i as f64 / (n - 1) as f64;
            (w, 1.0 - w)
        })
        .collect();
    let neighbourhood = |i: usize| -> std::ops::Range<usize> {
        let half = t / 2;
        let lo = i.saturating_sub(half).min(n - t);
        lo..lo + t
    };

    // Initial population: one random incumbent per subproblem.
    let mut population: Vec<Individual<P::Genome>> = Vec::with_capacity(n);
    while population.len() < n {
        let genome = problem.random_genome(&mut rng);
        let objectives = problem.evaluate(&mut ev, &genome);
        population.push(Individual { genome, objectives });
    }
    let mut ideal = [f64::INFINITY; 2];
    for ind in &population {
        ideal[0] = ideal[0].min(ind.objectives[0]);
        ideal[1] = ideal[1].min(ind.objectives[1]);
    }
    // Seeds replace the incumbent of the subproblem whose scalarisation
    // they minimise. Placing them by index instead (seed k at subproblem k)
    // pins a corner optimum to the weight vector it scores *worst* on, so
    // it is replaced within a generation and the corner is lost. The ideal
    // point must absorb ALL seeds before any placement: under a partially
    // updated ideal a seed's own objectives sit below z* in one coordinate,
    // its scalarisation degenerates to 0 for every weight, and argmin ties
    // collapse to subproblem 0.
    let seeded: Vec<Individual<P::Genome>> = seeds
        .into_iter()
        .take(n)
        .map(|genome| {
            let objectives = problem.evaluate(&mut ev, &genome);
            ideal[0] = ideal[0].min(objectives[0]);
            ideal[1] = ideal[1].min(objectives[1]);
            Individual { genome, objectives }
        })
        .collect();
    for ind in seeded {
        let best = (0..n)
            .min_by(|&a, &b| {
                let ga = tchebycheff(&ind.objectives, lambda[a], &ideal);
                let gb = tchebycheff(&ind.objectives, lambda[b], &ideal);
                ga.total_cmp(&gb)
            })
            .expect("at least two subproblems");
        population[best] = ind;
    }

    debug_assert!(
        snapshots.windows(2).all(|w| w[0] < w[1]),
        "snapshots must ascend"
    );
    let mut next_snapshot = 0usize;
    for generation in 1..=config.generations {
        let observing = observer.enabled();
        let gen_span = tracing::span!(
            tracing::Level::DEBUG,
            "generation",
            generation = generation as u64
        );
        let _in_generation = gen_span.enter();
        // MOEA/D interleaves its phases per subproblem, so the timings
        // are accumulated across the inner loop: mating = neighbour pick
        // + variation, evaluation = the fitness call, sorting = ideal
        // update + neighbourhood replacement (its selection analogue).
        let mut timings = PhaseTimings::default();
        for i in 0..n {
            let mark = observing.then(Instant::now);
            // Mate within the neighbourhood.
            let hood = neighbourhood(i);
            let a = rng.gen_range(hood.clone());
            let b = rng.gen_range(hood.clone());
            // The first tracked child's base is the first parent, so its
            // variation is relative to `population[a]`.
            let ((mut child, mut variation), _) =
                problem.crossover_tracked(&mut rng, &population[a].genome, &population[b].genome);
            if rng.gen::<f64>() < config.mutation_rate {
                problem.mutate_tracked(&mut rng, &mut child, &mut variation);
            }
            let mark = lap(&mut timings.mating_s, mark);
            // Steady-state: the child must be evaluated before the next
            // subproblem mates, so this is a batch of one — the shared
            // request triage (skip / incremental / full), not a fan-out.
            let request = match &variation {
                Variation::Moves(moves) => BatchRequest::Moves {
                    base: &population[a].genome,
                    base_objectives: population[a].objectives,
                    child: &child,
                    moves,
                },
                Variation::Unknown => BatchRequest::Full(&child),
            };
            let objectives = problem.evaluate_request(&mut ev, &request);
            let mark = lap(&mut timings.evaluation_s, mark);
            ideal[0] = ideal[0].min(objectives[0]);
            ideal[1] = ideal[1].min(objectives[1]);
            // Replace any neighbour the child improves on (bounded to the
            // neighbourhood, per the original algorithm).
            for j in hood {
                if tchebycheff(&objectives, lambda[j], &ideal)
                    < tchebycheff(&population[j].objectives, lambda[j], &ideal)
                {
                    population[j] = Individual {
                        genome: child.clone(),
                        objectives,
                    };
                }
            }
            lap(&mut timings.sorting_s, mark);
        }
        if observing {
            let stats =
                GenerationStats::compute(generation, &population, n, timings, config.hv_reference);
            observer.on_generation(&stats, &population);
        }
        if next_snapshot < snapshots.len() && snapshots[next_snapshot] == generation {
            on_snapshot(generation, &population);
            next_snapshot += 1;
        }
    }

    population
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use crate::problem::Schaffer;

    #[test]
    fn tchebycheff_properties() {
        let ideal = [0.0, 0.0];
        // Pure weight on objective 0 scores only that objective.
        let g = tchebycheff(&[2.0, 100.0], (1.0, 0.0), &ideal);
        assert!((g - 2.0).abs() < 0.011, "g = {g}"); // 1e-4 floor leaks 0.01
                                                     // Balanced weight takes the max.
        let g = tchebycheff(&[2.0, 6.0], (0.5, 0.5), &ideal);
        assert_eq!(g, 3.0);
    }

    #[test]
    fn converges_on_schaffer() {
        let problem = Schaffer::default();
        let cfg = MoeadConfig {
            subproblems: 50,
            neighbours: 8,
            mutation_rate: 0.8,
            generations: 120,
            hv_reference: None,
        };
        let front = moead(&problem, cfg, vec![], 5);
        assert!(front.len() > 10, "front collapsed to {}", front.len());
        let mut on_front = 0;
        for ind in &front {
            let s = ind.objectives[0].max(0.0).sqrt() + ind.objectives[1].max(0.0).sqrt();
            if (s - 2.0).abs() < 0.25 {
                on_front += 1;
            }
        }
        assert!(
            on_front * 2 >= front.len(),
            "only {on_front}/{} near the true front",
            front.len()
        );
    }

    #[test]
    fn returns_mutually_nondominated_set() {
        let problem = Schaffer::default();
        let cfg = MoeadConfig {
            subproblems: 30,
            neighbours: 6,
            mutation_rate: 0.5,
            generations: 40,
            hv_reference: None,
        };
        let front = moead(&problem, cfg, vec![], 9);
        for a in &front {
            for b in &front {
                assert!(!dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives);
            }
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let problem = Schaffer::default();
        let cfg = MoeadConfig {
            subproblems: 20,
            neighbours: 4,
            mutation_rate: 0.5,
            generations: 20,
            hv_reference: None,
        };
        let a = moead(&problem, cfg, vec![], 3);
        let b = moead(&problem, cfg, vec![], 3);
        let pa: Vec<Objectives> = a.iter().map(|i| i.objectives).collect();
        let pb: Vec<Objectives> = b.iter().map(|i| i.objectives).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn observed_run_reports_all_three_phases() {
        use crate::observe::StatsLog;

        let problem = Schaffer::default();
        let cfg = MoeadConfig {
            subproblems: 30,
            neighbours: 6,
            mutation_rate: 0.5,
            generations: 25,
            hv_reference: Some([1e7, 1e7]),
        };
        let mut log = StatsLog::default();
        let observed = moead_observed(&problem, cfg, vec![], 13, &[], |_, _| {}, &mut log);
        assert_eq!(log.records.len(), 25);
        // Per-generation clock reads can land on 0 for trivial problems;
        // the sums across the run must not (NSGA-II-parity contract).
        let mating: f64 = log.records.iter().map(|r| r.timings.mating_s).sum();
        let evaluation: f64 = log.records.iter().map(|r| r.timings.evaluation_s).sum();
        let sorting: f64 = log.records.iter().map(|r| r.timings.sorting_s).sum();
        assert!(mating > 0.0, "mating untimed");
        assert!(evaluation > 0.0, "evaluation untimed");
        assert!(sorting > 0.0, "sorting untimed");
        assert!(log.records.iter().all(|r| r.hypervolume.is_some()));

        // And observation must not perturb the trajectory.
        let bare = moead_observed(&problem, cfg, vec![], 13, &[], |_, _| {}, &mut NullObserver);
        let pa: Vec<Objectives> = bare.iter().map(|i| i.objectives).collect();
        let pb: Vec<Objectives> = observed.iter().map(|i| i.objectives).collect();
        assert_eq!(pa, pb);
        assert_eq!(observed.len(), cfg.subproblems);
    }

    #[test]
    fn seeds_pull_the_front_to_the_extremes() {
        // Basic MOEA/D keeps no elitist archive, so the exact seeds may be
        // replaced by blended children — but seeding both extreme optima
        // must leave the final front close to both corners, far closer
        // than a 5-generation unseeded run could reach from x ∈ ±1000.
        let problem = Schaffer::default();
        let cfg = MoeadConfig {
            subproblems: 10,
            neighbours: 3,
            mutation_rate: 0.0,
            generations: 5,
            hv_reference: None,
        };
        let front = moead(&problem, cfg, vec![0.0, 2.0], 1);
        let min_f0 = front
            .iter()
            .map(|i| i.objectives[0])
            .fold(f64::INFINITY, f64::min);
        let min_f1 = front
            .iter()
            .map(|i| i.objectives[1])
            .fold(f64::INFINITY, f64::min);
        assert!(min_f0 < 0.1, "f0 corner lost: {min_f0}");
        assert!(min_f1 < 0.1, "f1 corner lost: {min_f1}");
    }
}
