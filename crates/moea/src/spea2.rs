//! SPEA2 (Zitzler, Laumanns & Thiele, 2001) — the other canonical Pareto
//! MOEA of NSGA-II's generation, implemented over the same [`Problem`]
//! interface so the benches can compare engine designs on the scheduling
//! problem. Differences from NSGA-II:
//!
//! * fitness = *raw strength* (sum of strengths of dominators) + a k-th
//!   nearest-neighbour density term, instead of front rank + crowding;
//! * a fixed-size external **archive** of nondominated solutions survives
//!   between generations and is truncated by repeated nearest-neighbour
//!   removal;
//! * mating selection is binary tournament on the archive.

use crate::dominance::{dominates, Objectives};
use crate::nsga2::Individual;
use crate::observe::{lap, GenerationStats, NullObserver, Observer, PhaseTimings};
use crate::problem::{BatchRequest, Problem, Variation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// SPEA2 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spea2Config {
    /// Working population size.
    pub population: usize,
    /// Archive size (commonly equal to the population size).
    pub archive: usize,
    /// Per-offspring mutation probability.
    pub mutation_rate: f64,
    /// Number of generations.
    pub generations: usize,
    /// Reference point for the hypervolume reported in
    /// [`GenerationStats`]; `None` skips the hypervolume computation.
    /// Only read when an enabled [`Observer`] is attached.
    pub hv_reference: Option<[f64; 2]>,
}

impl Default for Spea2Config {
    fn default() -> Self {
        Spea2Config {
            population: 100,
            archive: 100,
            mutation_rate: 0.5,
            generations: 100,
            hv_reference: None,
        }
    }
}

/// Runs SPEA2 and returns the final archive (the nondominated memory).
pub fn spea2<P: Problem>(
    problem: &P,
    config: Spea2Config,
    seeds: Vec<P::Genome>,
    seed: u64,
) -> Vec<Individual<P::Genome>> {
    spea2_observed(
        problem,
        config,
        seeds,
        seed,
        &[],
        |_, _| {},
        &mut NullObserver,
    )
}

/// As [`spea2`], additionally firing `on_snapshot` with the archive at each
/// listed generation and delivering one [`GenerationStats`] record per
/// generation (computed over the post-selection archive) to `observer`.
/// Snapshot and observer hooks never touch the RNG stream, so an observed
/// run walks the exact trajectory of an unobserved one.
pub fn spea2_observed<P: Problem, O: Observer<P::Genome>>(
    problem: &P,
    config: Spea2Config,
    seeds: Vec<P::Genome>,
    seed: u64,
    snapshots: &[usize],
    mut on_snapshot: impl FnMut(usize, &[Individual<P::Genome>]),
    observer: &mut O,
) -> Vec<Individual<P::Genome>> {
    assert!(config.population >= 2 && config.archive >= 2);
    debug_assert!(
        snapshots.windows(2).all(|w| w[0] < w[1]),
        "snapshots must ascend"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ev = problem.evaluator();
    // Generate every initial genome first, then evaluate them as one
    // batch. Evaluation never touches the RNG, so hoisting the draws out
    // of the evaluation loop leaves the stream — and thus the whole
    // trajectory — unchanged.
    let mut genomes: Vec<P::Genome> = seeds.into_iter().take(config.population).collect();
    while genomes.len() < config.population {
        genomes.push(problem.random_genome(&mut rng));
    }
    let mut population: Vec<Individual<P::Genome>> = {
        let requests: Vec<BatchRequest<'_, P::Genome, P::Move>> =
            genomes.iter().map(BatchRequest::Full).collect();
        let objectives = problem.evaluate_batch(&mut ev, true, &requests);
        drop(requests);
        genomes
            .into_iter()
            .zip(objectives)
            .map(|(genome, objectives)| Individual { genome, objectives })
            .collect()
    };
    let mut archive: Vec<Individual<P::Genome>> = Vec::new();
    let mut next_snapshot = 0usize;

    for generation in 1..=config.generations {
        let observing = observer.enabled();
        let gen_span = tracing::span!(
            tracing::Level::DEBUG,
            "generation",
            generation = generation as u64
        );
        let _in_generation = gen_span.enter();
        let mut timings = PhaseTimings::default();
        let mark = observing.then(Instant::now);
        // Union of population and archive; compute SPEA2 fitness.
        let mut union: Vec<Individual<P::Genome>> = archive.clone();
        union.extend(population.iter().cloned());
        let points: Vec<Objectives> = union.iter().map(|i| i.objectives).collect();
        let fitness = spea2_fitness(&points);

        // Environmental selection: nondominated members (fitness < 1).
        let mut selected: Vec<usize> = (0..union.len()).filter(|&i| fitness[i] < 1.0).collect();
        if selected.len() > config.archive {
            truncate_by_nearest_neighbour(&mut selected, &points, config.archive);
        } else {
            // Fill with the best dominated members.
            let mut rest: Vec<usize> = (0..union.len()).filter(|&i| fitness[i] >= 1.0).collect();
            rest.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
            for i in rest {
                if selected.len() == config.archive {
                    break;
                }
                selected.push(i);
            }
        }
        archive = selected.iter().map(|&i| union[i].clone()).collect();
        lap(&mut timings.sorting_s, mark);
        if next_snapshot < snapshots.len() && snapshots[next_snapshot] == generation {
            on_snapshot(generation, &archive);
            next_snapshot += 1;
        }

        // Re-mark after the snapshot callback so its cost is not billed
        // to the mating phase.
        let mark = observing.then(Instant::now);
        // Mating: binary tournament on the archive by fitness.
        let arch_points: Vec<Objectives> = archive.iter().map(|i| i.objectives).collect();
        let arch_fit = spea2_fitness(&arch_points);
        let mut offspring = Vec::with_capacity(config.population + 1);
        while offspring.len() < config.population {
            let pick = |rng: &mut StdRng| {
                let a = rng.gen_range(0..archive.len());
                let b = rng.gen_range(0..archive.len());
                if arch_fit[a] <= arch_fit[b] {
                    a
                } else {
                    b
                }
            };
            let (i, j) = (pick(&mut rng), pick(&mut rng));
            let ((mut a, mut va), (mut b, mut vb)) =
                problem.crossover_tracked(&mut rng, &archive[i].genome, &archive[j].genome);
            if rng.gen::<f64>() < config.mutation_rate {
                problem.mutate_tracked(&mut rng, &mut a, &mut va);
            }
            if rng.gen::<f64>() < config.mutation_rate {
                problem.mutate_tracked(&mut rng, &mut b, &mut vb);
            }
            offspring.push((a, i, va));
            offspring.push((b, j, vb));
        }
        offspring.truncate(config.population);
        let mark = lap(&mut timings.mating_s, mark);
        // Whole-generation batch: each offspring's tracked variation
        // becomes a request against its base archive member.
        let requests: Vec<BatchRequest<'_, P::Genome, P::Move>> = offspring
            .iter()
            .map(|(genome, base, variation)| match variation {
                Variation::Moves(moves) => BatchRequest::Moves {
                    base: &archive[*base].genome,
                    base_objectives: archive[*base].objectives,
                    child: genome,
                    moves,
                },
                Variation::Unknown => BatchRequest::Full(genome),
            })
            .collect();
        let objectives = problem.evaluate_batch(&mut ev, true, &requests);
        drop(requests);
        population = offspring
            .into_iter()
            .zip(objectives)
            .map(|((genome, _, _), objectives)| Individual { genome, objectives })
            .collect();
        lap(&mut timings.evaluation_s, mark);
        if observing {
            // Stats are computed over the post-selection archive; the
            // record is delivered after the generation's mating and
            // offspring evaluation so all three phases carry real time
            // (observer hooks never touch the RNG stream, so delivery
            // order cannot perturb the trajectory).
            let stats = GenerationStats::compute(
                generation,
                &archive,
                config.population,
                timings,
                config.hv_reference,
            );
            observer.on_generation(&stats, &archive);
        }
    }
    archive
}

/// SPEA2 fitness: `R(i) + 1/(σᵏᵢ + 2)` where `R` is the raw dominated
/// strength sum and `σᵏ` the distance to the k-th nearest neighbour
/// (k = √N). Nondominated solutions have fitness < 1.
fn spea2_fitness(points: &[Objectives]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // Strength: how many points each one dominates.
    let mut strength = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(&points[i], &points[j]) {
                strength[i] += 1;
            }
        }
    }
    // Raw fitness: sum of strengths of dominators.
    let mut raw = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(&points[j], &points[i]) {
                raw[i] += strength[j] as f64;
            }
        }
    }
    // Density: 1 / (distance to k-th nearest neighbour + 2).
    let k = (n as f64).sqrt() as usize;
    let mut fitness = Vec::with_capacity(n);
    let mut dists = Vec::with_capacity(n);
    for i in 0..n {
        dists.clear();
        for (j, q) in points.iter().enumerate() {
            if i != j {
                let dx = points[i][0] - q[0];
                let dy = points[i][1] - q[1];
                dists.push(dx * dx + dy * dy);
            }
        }
        dists.sort_by(f64::total_cmp);
        let sigma = dists
            .get(k.min(dists.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0.0);
        fitness.push(raw[i] + 1.0 / (sigma.sqrt() + 2.0));
    }
    fitness
}

/// Archive truncation: repeatedly remove the member with the smallest
/// nearest-neighbour distance until `target` members remain.
fn truncate_by_nearest_neighbour(selected: &mut Vec<usize>, points: &[Objectives], target: usize) {
    while selected.len() > target {
        let mut worst = 0usize;
        let mut worst_d = f64::INFINITY;
        for (si, &i) in selected.iter().enumerate() {
            let mut nn = f64::INFINITY;
            for &j in selected.iter() {
                if i != j {
                    let dx = points[i][0] - points[j][0];
                    let dy = points[i][1] - points[j][1];
                    nn = nn.min(dx * dx + dy * dy);
                }
            }
            if nn < worst_d {
                worst_d = nn;
                worst = si;
            }
        }
        selected.swap_remove(worst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Schaffer;

    #[test]
    fn archive_members_are_nondominated() {
        let problem = Schaffer::default();
        let cfg = Spea2Config {
            population: 40,
            archive: 40,
            mutation_rate: 0.7,
            generations: 60,
            hv_reference: None,
        };
        let archive = spea2(&problem, cfg, vec![], 3);
        assert!(!archive.is_empty());
        assert!(archive.len() <= 40);
        for a in &archive {
            for b in &archive {
                assert!(!dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives);
            }
        }
    }

    #[test]
    fn converges_on_schaffer() {
        let problem = Schaffer::default();
        let cfg = Spea2Config {
            population: 50,
            archive: 50,
            mutation_rate: 0.8,
            generations: 120,
            hv_reference: None,
        };
        let archive = spea2(&problem, cfg, vec![], 7);
        // On the true front √f1 + √f2 = 2.
        let mut on_front = 0;
        for ind in &archive {
            let s = ind.objectives[0].max(0.0).sqrt() + ind.objectives[1].max(0.0).sqrt();
            if (s - 2.0).abs() < 0.2 {
                on_front += 1;
            }
        }
        assert!(
            on_front * 2 >= archive.len(),
            "only {on_front} of {} near the true front",
            archive.len()
        );
    }

    #[test]
    fn is_deterministic_per_seed() {
        let problem = Schaffer::default();
        let cfg = Spea2Config {
            population: 20,
            archive: 20,
            mutation_rate: 0.5,
            generations: 15,
            hv_reference: None,
        };
        let a = spea2(&problem, cfg, vec![], 11);
        let b = spea2(&problem, cfg, vec![], 11);
        let pa: Vec<Objectives> = a.iter().map(|i| i.objectives).collect();
        let pb: Vec<Objectives> = b.iter().map(|i| i.objectives).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn observed_run_reports_all_three_phases() {
        use crate::observe::{NullObserver, StatsLog};

        let problem = Schaffer::default();
        let cfg = Spea2Config {
            population: 30,
            archive: 30,
            mutation_rate: 0.5,
            generations: 25,
            hv_reference: Some([1e7, 1e7]),
        };
        let mut log = StatsLog::default();
        let observed = spea2_observed(&problem, cfg, vec![], 13, &[], |_, _| {}, &mut log);
        assert_eq!(log.records.len(), 25);
        // Per-generation clock reads can land on 0 for trivial problems;
        // the sums across the run must not (NSGA-II-parity contract).
        let mating: f64 = log.records.iter().map(|r| r.timings.mating_s).sum();
        let evaluation: f64 = log.records.iter().map(|r| r.timings.evaluation_s).sum();
        let sorting: f64 = log.records.iter().map(|r| r.timings.sorting_s).sum();
        assert!(mating > 0.0, "mating untimed");
        assert!(evaluation > 0.0, "evaluation untimed");
        assert!(sorting > 0.0, "sorting untimed");
        assert!(log.records.iter().all(|r| r.hypervolume.is_some()));

        // And observation must not perturb the trajectory.
        let bare = spea2_observed(&problem, cfg, vec![], 13, &[], |_, _| {}, &mut NullObserver);
        let pa: Vec<Objectives> = bare.iter().map(|i| i.objectives).collect();
        let pb: Vec<Objectives> = observed.iter().map(|i| i.objectives).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn fitness_identifies_nondominated() {
        let points = [[0.0, 2.0], [2.0, 0.0], [3.0, 3.0]];
        let f = spea2_fitness(&points);
        assert!(f[0] < 1.0);
        assert!(f[1] < 1.0);
        assert!(
            f[2] >= 1.0,
            "dominated point must have fitness >= 1, got {}",
            f[2]
        );
    }

    #[test]
    fn truncation_keeps_target_count_and_extremes_spread() {
        let points: Vec<Objectives> = (0..20).map(|i| [i as f64, 20.0 - i as f64]).collect();
        let mut selected: Vec<usize> = (0..20).collect();
        truncate_by_nearest_neighbour(&mut selected, &points, 8);
        assert_eq!(selected.len(), 8);
    }

    #[test]
    fn empty_fitness() {
        assert!(spea2_fitness(&[]).is_empty());
    }
}
