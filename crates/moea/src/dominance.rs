//! Pareto dominance for bi-objective minimisation (§IV-C, Fig. 2).

/// A point in the bi-objective space. Both components are minimised.
pub type Objectives = [f64; 2];

/// Returns `true` when `a` dominates `b`: `a` is no worse in both
/// objectives and strictly better in at least one (§IV-C: "it must be
/// better than the other solution in at least one objective, and better
/// than or equal in the other").
#[inline]
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    (a[0] <= b[0] && a[1] <= b[1]) && (a[0] < b[0] || a[1] < b[1])
}

/// Mutual non-dominance: neither point dominates the other (both lie on a
/// common front, or they are identical).
#[inline]
pub fn incomparable(a: &Objectives, b: &Objectives) -> bool {
    !dominates(a, b) && !dominates(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's Fig. 2 scenario, translated to minimisation: objective 0
    // is energy (min), objective 1 is -utility (min). A earns more utility
    // and uses less energy than B; C uses less energy than A but earns less
    // utility.
    const A: Objectives = [5.0, -8.0];
    const B: Objectives = [7.0, -6.0];
    const C: Objectives = [3.0, -4.0];

    #[test]
    fn fig2_a_dominates_b() {
        assert!(dominates(&A, &B));
        assert!(!dominates(&B, &A));
    }

    #[test]
    fn fig2_a_and_c_incomparable() {
        assert!(incomparable(&A, &C));
        assert!(!dominates(&A, &C));
        assert!(!dominates(&C, &A));
    }

    #[test]
    fn equal_points_do_not_dominate() {
        assert!(!dominates(&A, &A));
        assert!(incomparable(&A, &A));
    }

    #[test]
    fn weak_improvement_in_one_objective_suffices() {
        let p = [1.0, 2.0];
        let q = [1.0, 3.0];
        assert!(dominates(&p, &q));
        assert!(!dominates(&q, &p));
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric() {
        let pts = [[0.0, 0.0], [1.0, -1.0], [-1.0, 1.0], [2.0, 2.0], [0.5, 0.5]];
        for p in &pts {
            assert!(!dominates(p, p));
            for q in &pts {
                assert!(!(dominates(p, q) && dominates(q, p)));
            }
        }
    }

    #[test]
    fn dominance_is_transitive() {
        let p = [0.0, 0.0];
        let q = [1.0, 1.0];
        let r = [2.0, 2.0];
        assert!(dominates(&p, &q) && dominates(&q, &r) && dominates(&p, &r));
    }
}
