//! Fast nondominated sorting and crowding distance (Deb et al. 2002, §III).

use crate::dominance::{dominates, Objectives};

/// Partitions point indices into Pareto fronts. `fronts[0]` is the
/// nondominated set (the paper's rank-1 solutions), `fronts[1]` the set
/// nondominated once `fronts[0]` is removed, and so on. Every index appears
/// in exactly one front.
///
/// Complexity O(M·N²) with M = 2 objectives, as in the original paper.
pub fn fast_nondominated_sort(points: &[Objectives]) -> Vec<Vec<usize>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[p] = how many points dominate p;
    // dominating[p] = indices p dominates.
    let mut dominated_by = vec![0usize; n];
    let mut dominating: Vec<Vec<usize>> = vec![Vec::new(); n];
    for p in 0..n {
        for q in (p + 1)..n {
            if dominates(&points[p], &points[q]) {
                dominating[p].push(q);
                dominated_by[q] += 1;
            } else if dominates(&points[q], &points[p]) {
                dominating[q].push(p);
                dominated_by[p] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&p| dominated_by[p] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominating[p] {
                dominated_by[q] -= 1;
                if dominated_by[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distance of each member of one front (Deb et al. 2002):
/// boundary solutions get `+∞`; interior ones the sum over objectives of
/// the normalised gap between their neighbours. Larger = less crowded =
/// preferred at truncation.
pub fn crowding_distance(front: &[usize], points: &[Objectives]) -> Vec<f64> {
    let n = front.len();
    let mut distance = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    // Positions of front members, sortable per objective.
    let mut idx: Vec<usize> = (0..n).collect();
    #[allow(clippy::needless_range_loop)] // `obj` indexes a fixed-size objective tuple
    for obj in 0..2 {
        idx.sort_unstable_by(|&a, &b| points[front[a]][obj].total_cmp(&points[front[b]][obj]));
        let lo = points[front[idx[0]]][obj];
        let hi = points[front[idx[n - 1]]][obj];
        distance[idx[0]] = f64::INFINITY;
        distance[idx[n - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue; // all equal in this objective: contributes nothing
        }
        for w in 1..n - 1 {
            let prev = points[front[idx[w - 1]]][obj];
            let next = points[front[idx[w + 1]]][obj];
            distance[idx[w]] += (next - prev) / span;
        }
    }
    distance
}

/// Rank (1-based front index) per point, convenience over
/// [`fast_nondominated_sort`].
pub fn ranks(points: &[Objectives]) -> Vec<usize> {
    let fronts = fast_nondominated_sort(points);
    let mut out = vec![0usize; points.len()];
    for (r, front) in fronts.iter().enumerate() {
        for &p in front {
            out[p] = r + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_front_one() {
        let fronts = fast_nondominated_sort(&[[1.0, 2.0]]);
        assert_eq!(fronts, vec![vec![0]]);
    }

    #[test]
    fn empty_input() {
        assert!(fast_nondominated_sort(&[]).is_empty());
    }

    #[test]
    fn chain_of_dominated_points_forms_layers() {
        // p0 dominates p1 dominates p2.
        let pts = [[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]];
        let fronts = fast_nondominated_sort(&pts);
        assert_eq!(fronts, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(ranks(&pts), vec![1, 2, 3]);
    }

    #[test]
    fn tradeoff_points_share_front_one() {
        let pts = [[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]];
        let fronts = fast_nondominated_sort(&pts);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 4);
    }

    #[test]
    fn mixed_layers() {
        // Front 1: (0,2), (2,0). Front 2: (1,3), (3,1). Front 3: (4,4).
        let pts = [[0.0, 2.0], [2.0, 0.0], [1.0, 3.0], [3.0, 1.0], [4.0, 4.0]];
        let fronts = fast_nondominated_sort(&pts);
        assert_eq!(fronts.len(), 3);
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        assert_eq!(f0, vec![0, 1]);
        let mut f1 = fronts[1].clone();
        f1.sort_unstable();
        assert_eq!(f1, vec![2, 3]);
        assert_eq!(fronts[2], vec![4]);
    }

    #[test]
    fn every_index_in_exactly_one_front() {
        let pts: Vec<Objectives> = (0..40)
            .map(|i| {
                let x = (i * 7 % 13) as f64;
                let y = (i * 11 % 17) as f64;
                [x, y]
            })
            .collect();
        let fronts = fast_nondominated_sort(&pts);
        let mut seen = vec![false; pts.len()];
        for f in &fronts {
            for &p in f {
                assert!(!seen[p], "index {p} in two fronts");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn front_members_are_mutually_nondominated() {
        let pts: Vec<Objectives> = (0..30)
            .map(|i| [(i % 6) as f64, ((i * 5) % 7) as f64])
            .collect();
        for front in fast_nondominated_sort(&pts) {
            for &a in &front {
                for &b in &front {
                    assert!(!dominates(&pts[a], &pts[b]));
                }
            }
        }
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let pts = [[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]];
        let front = vec![0, 1, 2, 3];
        let d = crowding_distance(&front, &pts);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
        // Evenly spaced: interior distances are equal.
        assert!((d[1] - d[2]).abs() < 1e-12);
    }

    #[test]
    fn crowding_rewards_isolation() {
        // Points at x = 0, 1, 2, 9, 10 on a line (y mirrors x reversed).
        let pts = [[0.0, 10.0], [1.0, 9.0], [2.0, 8.0], [9.0, 1.0], [10.0, 0.0]];
        let front = vec![0, 1, 2, 3, 4];
        let d = crowding_distance(&front, &pts);
        // Index 3 sits in the sparse region: larger crowding distance than
        // the packed index 1.
        assert!(d[3] > d[1]);
    }

    #[test]
    fn tiny_fronts_are_all_infinite() {
        let pts = [[0.0, 1.0], [1.0, 0.0]];
        assert_eq!(crowding_distance(&[0, 1], &pts), vec![f64::INFINITY; 2]);
        assert_eq!(crowding_distance(&[0], &pts), vec![f64::INFINITY]);
    }

    #[test]
    fn degenerate_objective_span_is_handled() {
        // All points share objective 0; crowding falls back to objective 1.
        let pts = [[5.0, 0.0], [5.0, 1.0], [5.0, 2.0], [5.0, 3.0]];
        let d = crowding_distance(&[0, 1, 2, 3], &pts);
        assert!(d.iter().all(|v| !v.is_nan()));
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
    }
}
