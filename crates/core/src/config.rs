//! Experiment configurations for the paper's three data sets (§V-A).
//!
//! | Data set | System | Tasks | Window | Snapshot iterations (paper) |
//! |---|---|---|---|---|
//! | 1 | real 5×9, 9 machines | 250 | 15 min | 100 / 1 000 / 10 000 / 100 000 |
//! | 2 | synthetic 30×13, 30 machines | 1 000 | 15 min | 1 000 / 10 000 / 100 000 / 1 000 000 |
//! | 3 | synthetic 30×13, 30 machines | 4 000 | 1 h | 1 000 / 10 000 / 100 000 / 1 000 000 |
//!
//! The paper-scale iteration counts take cluster-scale CPU time; use
//! [`ExperimentConfig::scaled`] to shrink every snapshot by a factor while
//! keeping the logarithmic spacing that makes the convergence story
//! visible.

use hetsched_heuristics::SeedKind;
use hetsched_moea::Algorithm;
use serde::{Deserialize, Serialize};

/// Which of the paper's data sets an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// Real 5×9 benchmark data, one machine per type.
    One,
    /// Synthetic 30-task-type system, 1000 tasks over 15 minutes.
    Two,
    /// Synthetic 30-task-type system, 4000 tasks over one hour.
    Three,
}

impl DatasetId {
    /// The paper's task count for this data set.
    pub fn tasks(self) -> usize {
        match self {
            DatasetId::One => 250,
            DatasetId::Two => 1000,
            DatasetId::Three => 4000,
        }
    }

    /// The paper's trace window in seconds.
    pub fn duration(self) -> f64 {
        match self {
            DatasetId::One | DatasetId::Two => 900.0,
            DatasetId::Three => 3600.0,
        }
    }

    /// The paper's snapshot iteration counts for this data set.
    pub fn paper_snapshots(self) -> Vec<usize> {
        match self {
            DatasetId::One => vec![100, 1_000, 10_000, 100_000],
            DatasetId::Two | DatasetId::Three => vec![1_000, 10_000, 100_000, 1_000_000],
        }
    }
}

/// Full experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Data set to build.
    pub dataset: DatasetId,
    /// MOEA family the framework evolves with (default NSGA-II, the
    /// paper's engine; see [`hetsched_moea::Engine`]).
    pub algorithm: Algorithm,
    /// Number of tasks in the trace (paper value via [`DatasetId::tasks`]).
    pub tasks: usize,
    /// Trace window in seconds.
    pub duration: f64,
    /// NSGA-II population size N (paper example: 100).
    pub population: usize,
    /// Per-offspring mutation probability.
    pub mutation_rate: f64,
    /// Ascending iteration counts at which fronts are captured; the last
    /// entry is the total generation budget.
    pub snapshots: Vec<usize>,
    /// Seed configurations to compare (defaults to all five).
    pub seeds: Vec<SeedKind>,
    /// Master RNG seed: drives data-set synthesis, trace generation, and
    /// the per-population engine streams. Same seed ⇒ identical report.
    pub rng_seed: u64,
    /// Evaluate offspring in parallel (rayon).
    pub parallel: bool,
}

impl ExperimentConfig {
    fn base(dataset: DatasetId, snapshots: Vec<usize>) -> Self {
        ExperimentConfig {
            dataset,
            algorithm: Algorithm::default(),
            tasks: dataset.tasks(),
            duration: dataset.duration(),
            population: 100,
            mutation_rate: 0.5,
            snapshots,
            seeds: SeedKind::ALL.to_vec(),
            rng_seed: 0x5EED,
            parallel: true,
        }
    }

    /// Data set 1 at a laptop-friendly default budget (snapshots
    /// 100 / 500 / 2 000 iterations). Use [`ExperimentConfig::paper_scale`]
    /// for the full counts.
    pub fn dataset1() -> Self {
        Self::base(DatasetId::One, vec![100, 500, 2_000])
    }

    /// Data set 2 at a laptop-friendly default budget.
    pub fn dataset2() -> Self {
        Self::base(DatasetId::Two, vec![100, 500, 2_000])
    }

    /// Data set 3 at a laptop-friendly default budget.
    pub fn dataset3() -> Self {
        Self::base(DatasetId::Three, vec![100, 500, 2_000])
    }

    /// The paper's full iteration schedule for `dataset` (expensive!).
    pub fn paper_scale(dataset: DatasetId) -> Self {
        Self::base(dataset, dataset.paper_snapshots())
    }

    /// A validating builder seeded with the laptop-friendly defaults for
    /// `dataset` — the mutation-friendly alternative to struct-literal
    /// update syntax, with [`ExperimentConfig::validate`] enforced at
    /// [`ExperimentConfigBuilder::build`].
    pub fn builder(dataset: DatasetId) -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            config: Self::base(dataset, vec![100, 500, 2_000]),
        }
    }

    /// Scales every snapshot count by `factor` (rounded up, minimum 1),
    /// preserving the paper's logarithmic spacing; duplicate counts that
    /// appear after rounding are collapsed.
    pub fn scaled(dataset: DatasetId, factor: f64) -> Self {
        let mut snapshots: Vec<usize> = dataset
            .paper_snapshots()
            .into_iter()
            .map(|s| ((s as f64 * factor).ceil() as usize).max(1))
            .collect();
        snapshots.dedup();
        Self::base(dataset, snapshots)
    }

    /// Total generation budget (the last snapshot).
    pub fn generations(&self) -> usize {
        self.snapshots.last().copied().unwrap_or(0)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::InvalidConfig`] with a description.
    pub fn validate(&self) -> crate::Result<()> {
        if self.tasks == 0 {
            return Err(crate::CoreError::InvalidConfig("tasks must be > 0"));
        }
        if self.population < 2 {
            return Err(crate::CoreError::InvalidConfig("population must be >= 2"));
        }
        if self.snapshots.is_empty() {
            return Err(crate::CoreError::InvalidConfig(
                "need at least one snapshot",
            ));
        }
        if self.snapshots.windows(2).any(|w| w[0] >= w[1]) {
            return Err(crate::CoreError::InvalidConfig(
                "snapshots must strictly ascend",
            ));
        }
        if self.snapshots.first() == Some(&0) {
            return Err(crate::CoreError::InvalidConfig(
                "snapshots must start at generation 1 or later",
            ));
        }
        if self.seeds.is_empty() {
            return Err(crate::CoreError::InvalidConfig(
                "need at least one seed kind",
            ));
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(crate::CoreError::InvalidConfig(
                "mutation rate must be in [0, 1]",
            ));
        }
        Ok(())
    }
}

/// Builder for [`ExperimentConfig`], mirroring
/// [`hetsched_moea::EngineConfigBuilder`]: setters never fail, every
/// consistency rule is checked once at [`ExperimentConfigBuilder::build`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    config: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// MOEA family the framework evolves with.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Number of tasks in the trace.
    pub fn tasks(mut self, tasks: usize) -> Self {
        self.config.tasks = tasks;
        self
    }

    /// Trace window in seconds.
    pub fn duration(mut self, duration: f64) -> Self {
        self.config.duration = duration;
        self
    }

    /// Population size N.
    pub fn population(mut self, population: usize) -> Self {
        self.config.population = population;
        self
    }

    /// Per-offspring mutation probability.
    pub fn mutation_rate(mut self, rate: f64) -> Self {
        self.config.mutation_rate = rate;
        self
    }

    /// Ascending iteration counts at which fronts are captured.
    pub fn snapshots(mut self, snapshots: Vec<usize>) -> Self {
        self.config.snapshots = snapshots;
        self
    }

    /// Seed configurations to compare.
    pub fn seeds(mut self, seeds: Vec<SeedKind>) -> Self {
        self.config.seeds = seeds;
        self
    }

    /// Master RNG seed.
    pub fn rng_seed(mut self, rng_seed: u64) -> Self {
        self.config.rng_seed = rng_seed;
        self
    }

    /// Evaluate offspring in parallel (rayon).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.config.parallel = parallel;
        self
    }

    /// Validates the accumulated configuration and returns it.
    ///
    /// # Errors
    ///
    /// [`crate::Error::InvalidConfig`] on any rule
    /// [`ExperimentConfig::validate`] enforces (zero tasks, population
    /// below 2, empty or non-ascending snapshots, empty seed list, a
    /// mutation rate outside `[0, 1]`).
    pub fn build(self) -> crate::Result<ExperimentConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_section_v() {
        assert_eq!(DatasetId::One.tasks(), 250);
        assert_eq!(DatasetId::One.duration(), 900.0);
        assert_eq!(DatasetId::Two.tasks(), 1000);
        assert_eq!(DatasetId::Two.duration(), 900.0);
        assert_eq!(DatasetId::Three.tasks(), 4000);
        assert_eq!(DatasetId::Three.duration(), 3600.0);
        assert_eq!(
            DatasetId::One.paper_snapshots(),
            vec![100, 1_000, 10_000, 100_000]
        );
        assert_eq!(
            DatasetId::Three.paper_snapshots(),
            vec![1_000, 10_000, 100_000, 1_000_000]
        );
    }

    #[test]
    fn defaults_validate() {
        for cfg in [
            ExperimentConfig::dataset1(),
            ExperimentConfig::dataset2(),
            ExperimentConfig::dataset3(),
            ExperimentConfig::paper_scale(DatasetId::One),
            ExperimentConfig::scaled(DatasetId::Two, 0.01),
        ] {
            cfg.validate().unwrap();
            assert_eq!(cfg.seeds.len(), 5);
        }
    }

    #[test]
    fn scaled_preserves_spacing_and_dedups() {
        let cfg = ExperimentConfig::scaled(DatasetId::One, 0.01);
        assert_eq!(cfg.snapshots, vec![1, 10, 100, 1000]);
        // Extreme shrink collapses to a single snapshot.
        let tiny = ExperimentConfig::scaled(DatasetId::One, 1e-9);
        assert_eq!(tiny.snapshots, vec![1]);
        tiny.validate().unwrap();
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut cfg = ExperimentConfig::dataset1();
        cfg.tasks = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::dataset1();
        cfg.snapshots = vec![10, 10];
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::dataset1();
        cfg.snapshots.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::dataset1();
        cfg.population = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::dataset1();
        cfg.mutation_rate = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::dataset1();
        cfg.seeds.clear();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn generations_is_last_snapshot() {
        assert_eq!(ExperimentConfig::dataset1().generations(), 2_000);
    }

    #[test]
    fn builder_defaults_match_presets() {
        let built = ExperimentConfig::builder(DatasetId::Two).build().unwrap();
        assert_eq!(built, ExperimentConfig::dataset2());
    }

    #[test]
    fn builder_setters_land_in_the_config() {
        let cfg = ExperimentConfig::builder(DatasetId::One)
            .algorithm(Algorithm::Spea2)
            .tasks(40)
            .duration(120.0)
            .population(16)
            .mutation_rate(0.25)
            .snapshots(vec![5, 10])
            .seeds(vec![SeedKind::Random])
            .rng_seed(7)
            .parallel(false)
            .build()
            .unwrap();
        assert_eq!(cfg.algorithm, Algorithm::Spea2);
        assert_eq!(cfg.tasks, 40);
        assert_eq!(cfg.duration, 120.0);
        assert_eq!(cfg.population, 16);
        assert_eq!(cfg.mutation_rate, 0.25);
        assert_eq!(cfg.snapshots, vec![5, 10]);
        assert_eq!(cfg.seeds, vec![SeedKind::Random]);
        assert_eq!(cfg.rng_seed, 7);
        assert!(!cfg.parallel);
    }

    #[test]
    fn builder_rejects_inconsistencies_at_build() {
        assert!(ExperimentConfig::builder(DatasetId::One)
            .tasks(0)
            .build()
            .is_err());
        assert!(ExperimentConfig::builder(DatasetId::One)
            .snapshots(vec![])
            .build()
            .is_err());
        assert!(ExperimentConfig::builder(DatasetId::One)
            .seeds(vec![])
            .build()
            .is_err());
        assert!(ExperimentConfig::builder(DatasetId::One)
            .mutation_rate(1.5)
            .build()
            .is_err());
    }
}
