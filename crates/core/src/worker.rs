//! Distributed campaign execution: the `hetsched work` worker loop.
//!
//! A [`Worker`] wraps a [`Campaign`] and drives the same cell machinery
//! (watchdog, retries, quarantine — see [`Campaign::run`]) one cell at a
//! time, coordinating with other workers **entirely through the
//! manifest**: there is no network protocol, no coordinator process, and
//! no shared memory — just interleaved cell and [`LeaseRecord`] lines in
//! one append-only log (see [`crate::manifest`]).
//!
//! # The lease protocol
//!
//! For each cell a worker wants to run it executes a read-decide-append
//! critical section under the store lock:
//!
//! 1. **tail + replay** the manifest; pick the first cell in canonical
//!    grid order that has no surviving result and no live lease.
//! 2. **acquire**: append `Acquire` at `epoch = max_epoch(cell) + 1` with
//!    a wall-clock deadline `now + ttl`. Claiming over an *expired*
//!    lease (the holder stopped renewing — it is presumed dead) is a
//!    **steal**; the epoch bump is what fences the previous holder.
//! 3. **run** the cell (unchanged [`Campaign`] attempt machinery) while a
//!    renewal thread appends `Renew` every `ttl/3`. A renewal thread
//!    that oversleeps past its own deadline appends `Expire` and stops —
//!    self-fencing, so a paused worker never believes it still holds a
//!    lease another worker has since stolen.
//! 4. **append** the result tagged with `(worker, epoch)`, then
//!    `Release` — but only after re-checking under the lock that the
//!    epoch still admits: if another worker stole the lease while this
//!    one was stalled, the result is discarded *here*, and even a worker
//!    that skips this check (a true zombie) is fenced at merge time by
//!    [`crate::manifest::replay_records`].
//!
//! Because every cell runs on an RNG stream derived purely from its grid
//! coordinates, *which* worker runs a cell never affects its record:
//! the merged [`CampaignOutcome`] is byte-identical to a single-process
//! run of the same spec, no matter how workers raced, crashed, or stole.
//!
//! Fault points (`chaos` feature): `lease.acquire` fires after a cell is
//! chosen but before the Acquire append; `lease.renew` fires in the
//! renewal thread before each Renew append; `worker.cell.append` fires
//! after the admission re-check but before the result append. Each
//! simulates a worker killed at that instant.

use crate::campaign::{Campaign, CampaignOutcome, CellId, CellRecord};
use crate::chaos_hooks;
use crate::config::DatasetId;
use crate::framework::Framework;
use crate::lease::{LeaseAction, LeaseRecord, DEFAULT_SKEW_SLACK_S};
use crate::manifest::{replay_records, LocalManifestStore, ManifestStore, ManifestView};
use crate::telemetry::CampaignObserver;
use crate::{CoreError, Result};
use hetsched_heuristics::SeedKind;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wall-clock seconds since the Unix epoch — the shared clock lease
/// deadlines are written in. Workers on different machines compare these
/// through the skew slack (see [`crate::lease`]).
fn now_s() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// What one worker process contributed to a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerOutcome {
    /// The merged campaign outcome as seen when this worker drained the
    /// grid (reports, failures, replays) — identical across workers and
    /// to a single-process run once the campaign completes.
    pub outcome: CampaignOutcome,
    /// Cells this worker executed and whose results survived fencing.
    pub executed: usize,
    /// Leases this worker stole from expired holders.
    pub stolen: usize,
    /// Results this worker computed but discarded because its lease had
    /// been superseded (it was presumed dead and the cell re-ran).
    pub fenced: usize,
}

/// A single worker process in a distributed campaign. See the module
/// docs for the protocol; construct with [`Worker::new`], tune the lease
/// with [`Worker::lease_ttl`] / [`Worker::skew_slack`], then call
/// [`Worker::run`] against the shared manifest path.
pub struct Worker {
    campaign: Campaign,
    id: String,
    ttl: Duration,
    slack_s: f64,
    poll: Duration,
}

impl Worker {
    /// A worker named `id` driving `campaign`'s spec. The id lands in
    /// every record the worker appends; give each process a unique one
    /// (`hetsched work` defaults to `host:pid`).
    pub fn new(campaign: Campaign, id: impl Into<String>) -> Self {
        Worker {
            campaign,
            id: id.into(),
            ttl: Duration::from_secs(30),
            slack_s: DEFAULT_SKEW_SLACK_S,
            poll: Duration::from_millis(50),
        }
    }

    /// Sets the lease time-to-live (default 30s; clamped to ≥ 10ms).
    /// Leases renew every `ttl/3`, so a worker must fall silent for a
    /// full `ttl` (plus slack) before its cell is up for stealing.
    pub fn lease_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = ttl.max(Duration::from_millis(10));
        self
    }

    /// Sets the clock-skew slack added to lease deadlines before another
    /// worker may treat them as expired (default
    /// [`DEFAULT_SKEW_SLACK_S`]).
    pub fn skew_slack(mut self, slack_s: f64) -> Self {
        self.slack_s = slack_s.max(0.0);
        self
    }

    /// How long the worker sleeps between polls while every remaining
    /// cell is validly leased to someone else (default 50ms).
    pub fn poll_interval(mut self, poll: Duration) -> Self {
        self.poll = poll.max(Duration::from_millis(1));
        self
    }

    /// The worker's id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Runs the worker loop until the grid is drained (every cell has a
    /// surviving record or is terminally quarantined) or the campaign's
    /// cancel token fires. Returns this worker's contribution plus the
    /// merged outcome.
    ///
    /// # Errors
    ///
    /// Spec validation, framework construction, manifest I/O, a manifest
    /// owned by a different spec, or an unbreakable store lock.
    pub fn run(&self, manifest: &Path) -> Result<WorkerOutcome> {
        let spec = self.campaign.spec();
        spec.validate()?;
        let cells = spec.cells();
        let fingerprint = spec.fingerprint();
        let store = Arc::new(LocalManifestStore::open(
            manifest,
            &fingerprint,
            self.campaign.sync_every(),
        )?);

        let mut frameworks: HashMap<DatasetId, Framework> = HashMap::new();
        for &dataset in &spec.datasets {
            let mut config = spec.base.clone();
            config.dataset = dataset;
            frameworks.insert(dataset, Framework::new(&config)?);
        }
        let streams: HashMap<SeedKind, u64> = spec
            .base
            .seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u64))
            .collect();

        let observer = Arc::clone(self.campaign.observer());
        let observing = observer.enabled();
        let cancel = self.campaign.cancel_token();
        tracing::info!(
            "worker {}: joining campaign {fingerprint} ({} cells, ttl {:?})",
            self.id,
            cells.len(),
            self.ttl
        );

        let mut executed = 0usize;
        let mut executed_cells: Vec<CellId> = Vec::new();
        let mut stolen = 0usize;
        let mut fenced = 0usize;
        loop {
            if cancel.is_cancelled() {
                break;
            }
            // Read-decide-acquire under the store lock.
            let claim = {
                let _guard = store.lock()?;
                let view = self.replay(&store, &fingerprint)?;
                let known = self.known_cells(&view);
                match self.pick_cell(&cells, &known, &view) {
                    Pick::Done => break,
                    Pick::Wait => None,
                    Pick::Claim { cell, steal } => {
                        chaos_hooks::raise("lease.acquire", &cell);
                        let epoch = view.leases.next_epoch(&cell);
                        let deadline = now_s() + self.ttl.as_secs_f64();
                        let acquire = LeaseRecord::new(
                            cell,
                            self.id.clone(),
                            epoch,
                            LeaseAction::Acquire,
                            deadline,
                        );
                        store
                            .append_lease(&acquire)
                            .and_then(|()| store.sync())
                            .map_err(|e| CoreError::Io(format!("append lease acquire: {e}")))?;
                        Some((cell, epoch, deadline, steal))
                    }
                }
            };
            let Some((cell, epoch, deadline, steal)) = claim else {
                // Everything left is validly leased to someone else; wait
                // for results to land or leases to lapse.
                std::thread::sleep(self.poll);
                continue;
            };
            if steal {
                stolen += 1;
            }
            if observing {
                observer.on_lease_acquired(&cell, &self.id, steal);
            }
            tracing::debug!(
                "worker {}: leased cell {cell} at epoch {epoch}{}",
                self.id,
                if steal { " (stolen)" } else { "" }
            );

            let renewal = RenewalThread::spawn(
                Arc::clone(&store),
                Arc::clone(&observer),
                cell,
                self.id.clone(),
                epoch,
                deadline,
                self.ttl,
            );
            let mut record =
                self.campaign
                    .execute_cell(&frameworks[&cell.dataset], cell, streams[&cell.seed]);
            record.worker = Some(self.id.clone());
            record.epoch = Some(epoch);
            renewal.stop();

            // Commit under the lock, re-checking admission: a worker that
            // stalled long enough to be presumed dead must not clobber
            // its successor's claim.
            let _guard = store.lock()?;
            let view = self.replay(&store, &fingerprint)?;
            if view.leases.admits(&cell, Some(epoch)) {
                chaos_hooks::raise("worker.cell.append", &cell);
                let release =
                    LeaseRecord::new(cell, self.id.clone(), epoch, LeaseAction::Release, now_s());
                store
                    .append_cell(&record)
                    .and_then(|()| store.append_lease(&release))
                    .and_then(|()| store.sync())
                    .map_err(|e| CoreError::Io(format!("append cell result: {e}")))?;
                executed += 1;
                executed_cells.push(cell);
            } else {
                fenced += 1;
                if observing {
                    observer.on_lease_fenced(&cell, &self.id);
                }
                tracing::warn!(
                    "worker {}: lease for cell {cell} superseded (epoch {epoch} < {}); \
                     discarding result",
                    self.id,
                    view.leases.max_epoch(&cell)
                );
            }
        }

        // Assemble the merged outcome from the final manifest state,
        // exactly as a resuming single-process campaign would.
        let view = self.replay(&store, &fingerprint)?;
        let known = self.known_cells(&view);
        let replayed = cells
            .iter()
            .filter(|c| known.contains_key(c) && !executed_cells.contains(c))
            .count();
        let skipped: Vec<CellId> = cells
            .iter()
            .copied()
            .filter(|c| !known.contains_key(c))
            .collect();
        let outcome = self
            .campaign
            .assemble(&cells, known, skipped, executed, replayed);
        tracing::info!(
            "worker {}: done — {executed} executed, {stolen} stolen, {fenced} fenced",
            self.id
        );
        Ok(WorkerOutcome {
            outcome,
            executed,
            stolen,
            fenced,
        })
    }

    /// Tails and merges the manifest, checking ownership.
    fn replay(&self, store: &LocalManifestStore, fingerprint: &str) -> Result<ManifestView> {
        match store.tail()? {
            None => Ok(ManifestView::default()),
            Some((owner, records)) => {
                if owner != fingerprint {
                    return Err(CoreError::Manifest(format!(
                        "manifest belongs to campaign {owner} but this campaign is \
                         {fingerprint}; refusing to mix cells"
                    )));
                }
                Ok(replay_records(&records))
            }
        }
    }

    /// Last-record-wins cell map, honouring the campaign's quarantine
    /// policy (mirrors [`Campaign::run`]'s replay step).
    fn known_cells(&self, view: &ManifestView) -> HashMap<CellId, CellRecord> {
        let mut known: HashMap<CellId, CellRecord> = HashMap::new();
        for record in &view.cells {
            known.insert(record.cell, record.clone());
        }
        known.retain(|_, r| r.run.is_some() || !self.campaign.requeues_quarantined());
        known
    }

    /// Chooses the next cell: the first (canonical grid order) with no
    /// surviving record and no live lease.
    fn pick_cell(
        &self,
        cells: &[CellId],
        known: &HashMap<CellId, CellRecord>,
        view: &ManifestView,
    ) -> Pick {
        let now = now_s();
        let mut waiting = false;
        for &cell in cells {
            if known.contains_key(&cell) {
                continue;
            }
            match view.leases.holder(&cell) {
                Some(holder) if now < holder.deadline_s + self.slack_s => waiting = true,
                Some(_) => return Pick::Claim { cell, steal: true },
                None => return Pick::Claim { cell, steal: false },
            }
        }
        if waiting {
            Pick::Wait
        } else {
            Pick::Done
        }
    }
}

enum Pick {
    /// Every cell is recorded (or terminally quarantined): stop.
    Done,
    /// Unrecorded cells remain but all are validly leased: poll again.
    Wait,
    /// Claim this cell (stealing an expired lease or taking a free one).
    Claim { cell: CellId, steal: bool },
}

/// The heartbeat keeping a running cell's lease alive: appends `Renew`
/// every `ttl/3`, self-fences with `Expire` if it ever wakes past its
/// own deadline, and stops when the cell finishes.
struct RenewalThread {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RenewalThread {
    #[allow(clippy::too_many_arguments)]
    fn spawn(
        store: Arc<LocalManifestStore>,
        observer: Arc<dyn CampaignObserver>,
        cell: CellId,
        worker: String,
        epoch: u64,
        deadline: f64,
        ttl: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let deadline_bits = Arc::new(AtomicU64::new(deadline.to_bits()));
        let interval = (ttl / 3).max(Duration::from_millis(5));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("hetsched-renew-{cell}"))
                .spawn(move || {
                    let observing = observer.enabled();
                    loop {
                        // Sleep in small steps so stop() returns promptly
                        // even with long TTLs.
                        let mut slept = Duration::ZERO;
                        while slept < interval {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            let step = Duration::from_millis(5).min(interval - slept);
                            std::thread::sleep(step);
                            slept += step;
                        }
                        let now = now_s();
                        let current = f64::from_bits(deadline_bits.load(Ordering::Relaxed));
                        if now >= current {
                            // Missed the renewal window (suspended, paged
                            // out…): the lease may already be stolen.
                            // Self-fence rather than renew a claim we can
                            // no longer trust.
                            let expire = LeaseRecord::new(
                                cell,
                                worker.clone(),
                                epoch,
                                LeaseAction::Expire,
                                now,
                            );
                            if let Err(e) = store.append_lease(&expire) {
                                tracing::warn!("lease expire append failed for {cell}: {e}");
                            }
                            if observing {
                                observer.on_lease_expired(&cell, &worker);
                            }
                            return;
                        }
                        chaos_hooks::raise("lease.renew", &cell);
                        let renewed = now + 3.0 * interval.as_secs_f64();
                        let renew = LeaseRecord::new(
                            cell,
                            worker.clone(),
                            epoch,
                            LeaseAction::Renew,
                            renewed,
                        );
                        match store.append_lease(&renew) {
                            Ok(()) => {
                                deadline_bits.store(renewed.to_bits(), Ordering::Relaxed);
                                if observing {
                                    observer.on_lease_renewed(&cell, &worker);
                                }
                            }
                            Err(e) => {
                                tracing::warn!("lease renew append failed for {cell}: {e}");
                            }
                        }
                    }
                })
                .ok()
        };
        RenewalThread { stop, handle }
    }

    /// Signals the thread and waits for it (a chaos-panicked thread just
    /// reports as finished).
    fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RenewalThread {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignSpec;
    use crate::config::ExperimentConfig;
    use std::path::PathBuf;

    fn tiny_spec() -> CampaignSpec {
        let mut base = ExperimentConfig::dataset1();
        base.tasks = 25;
        base.population = 10;
        base.snapshots = vec![2, 4];
        base.seeds = vec![SeedKind::MinEnergy, SeedKind::Random];
        CampaignSpec::single(&base)
    }

    fn temp_manifest(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hetsched-worker-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn one_worker_matches_the_single_process_run_bit_for_bit() {
        let spec = tiny_spec();
        let solo = Campaign::new(spec.clone()).run(None).unwrap();

        let path = temp_manifest("solo");
        let _ = std::fs::remove_file(&path);
        let outcome = Worker::new(Campaign::new(spec), "w1")
            .lease_ttl(Duration::from_secs(5))
            .run(&path)
            .unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(outcome.executed, 2);
        assert_eq!(outcome.stolen, 0);
        assert_eq!(outcome.fenced, 0);
        assert_eq!(outcome.outcome.reports, solo.reports);
        assert!(outcome.outcome.is_complete());
    }

    #[test]
    fn second_worker_replays_what_the_first_ran() {
        let spec = tiny_spec();
        let path = temp_manifest("handoff");
        let _ = std::fs::remove_file(&path);
        let first = Worker::new(Campaign::new(spec.clone()), "w1")
            .run(&path)
            .unwrap();
        let second = Worker::new(Campaign::new(spec), "w2").run(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(first.executed, 2);
        assert_eq!(second.executed, 0);
        assert_eq!(second.outcome.replayed, 2);
        assert_eq!(second.outcome.reports, first.outcome.reports);
    }

    #[test]
    fn expired_leases_are_stolen_and_the_result_still_matches() {
        let spec = tiny_spec();
        let solo = Campaign::new(spec.clone()).run(None).unwrap();
        let cells = spec.cells();
        let fingerprint = spec.fingerprint();

        // A dead worker left an expired claim on the first cell.
        let path = temp_manifest("steal");
        let _ = std::fs::remove_file(&path);
        let store = LocalManifestStore::open(&path, &fingerprint, 1).unwrap();
        store
            .append_lease(&LeaseRecord::new(
                cells[0],
                "dead",
                1,
                LeaseAction::Acquire,
                now_s() - 60.0,
            ))
            .unwrap();
        store.sync().unwrap();
        drop(store);

        let outcome = Worker::new(Campaign::new(spec), "w2")
            .lease_ttl(Duration::from_secs(5))
            .run(&path)
            .unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(outcome.stolen, 1, "the expired lease is stolen");
        assert_eq!(outcome.executed, 2);
        assert_eq!(outcome.outcome.reports, solo.reports);
    }

    #[test]
    fn zombie_result_is_fenced_after_a_steal() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let fingerprint = spec.fingerprint();

        let path = temp_manifest("zombie");
        let _ = std::fs::remove_file(&path);
        {
            // The takeover worker re-ran the cell at epoch 2...
            let store = LocalManifestStore::open(&path, &fingerprint, 1).unwrap();
            store
                .append_lease(&LeaseRecord::new(
                    cells[0],
                    "w2",
                    2,
                    LeaseAction::Acquire,
                    now_s() + 60.0,
                ))
                .unwrap();
            // ...and the presumed-dead w1 then wakes up and appends its
            // stale epoch-1 result straight to the log (no lock, no
            // re-check — a true zombie).
            let mut zombie = CellRecord {
                cell: cells[0],
                run: None,
                error: Some("zombie".to_string()),
                outcome: crate::campaign::CellOutcome::Poisoned,
                attempts: 1,
                duration_s: 0.1,
                worker: Some("w1".to_string()),
                epoch: Some(1),
            };
            store.append_cell(&zombie).unwrap();
            zombie.worker = Some("w2".to_string());
            zombie.epoch = Some(2);
            store.append_cell(&zombie).unwrap();
            store.sync().unwrap();
        }

        let (_, records) = crate::manifest::load_manifest_records(&path)
            .unwrap()
            .unwrap();
        let _ = std::fs::remove_file(&path);
        let view = replay_records(&records);
        assert_eq!(view.cells.len(), 1, "only the takeover's record survives");
        assert_eq!(view.cells[0].worker.as_deref(), Some("w2"));
        assert_eq!(view.fenced.get("w1"), Some(&1));
    }
}
