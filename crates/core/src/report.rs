//! Experiment results: per-population snapshot fronts plus the analyses a
//! system administrator reads off them.

use hetsched_analysis::{FigureSeries, ParetoFront, UpeAnalysis};
use hetsched_heuristics::SeedKind;
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};

/// One seeded population's evolution: the Pareto front at each snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationRun {
    /// The seed configuration of this population.
    pub seed: SeedKind,
    /// `(iterations, front)` pairs, ascending in iterations; the last entry
    /// is the final population's front.
    pub fronts: Vec<(usize, ParetoFront)>,
}

// The `(usize, ParetoFront)` pairs have no tuple representation in the
// vendored serde data model, so the impls are written by hand: each pair
// becomes an `{"iterations": …, "front": …}` object.
impl Serialize for PopulationRun {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let fronts: Vec<Value> = self
            .fronts
            .iter()
            .map(|(iterations, front)| {
                Value::Object(vec![
                    ("iterations".to_string(), serde::to_value(iterations)),
                    ("front".to_string(), serde::to_value(front)),
                ])
            })
            .collect();
        serializer.serialize_value(Value::Object(vec![
            ("seed".to_string(), serde::to_value(&self.seed)),
            ("fronts".to_string(), Value::Array(fronts)),
        ]))
    }
}

impl<'de> Deserialize<'de> for PopulationRun {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::__private::{from_field, into_array, into_object, take_field};
        let mut entries = into_object::<D::Error>(deserializer.take_value()?, "PopulationRun")?;
        let seed: SeedKind = from_field(&mut entries, "seed")?;
        let raw = take_field::<D::Error>(&mut entries, "fronts")?;
        let mut fronts = Vec::new();
        for item in into_array::<D::Error>(raw, "PopulationRun.fronts")? {
            let mut pair = into_object::<D::Error>(item, "PopulationRun.fronts[]")?;
            let iterations: usize = from_field(&mut pair, "iterations")?;
            let front: ParetoFront = from_field(&mut pair, "front")?;
            fronts.push((iterations, front));
        }
        Ok(PopulationRun { seed, fronts })
    }
}

impl PopulationRun {
    /// The final front of this population.
    pub fn final_front(&self) -> &ParetoFront {
        &self
            .fronts
            .last()
            .expect("runs always have at least one snapshot")
            .1
    }

    /// The front at a specific snapshot, if captured.
    pub fn front_at(&self, iterations: usize) -> Option<&ParetoFront> {
        self.fronts
            .iter()
            .find(|(i, _)| *i == iterations)
            .map(|(_, f)| f)
    }
}

/// A complete experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// One run per seed configuration, in config order.
    pub runs: Vec<PopulationRun>,
    /// The snapshot schedule shared by all runs.
    pub snapshots: Vec<usize>,
}

impl AnalysisReport {
    /// The run for a given seed kind.
    pub fn run(&self, seed: SeedKind) -> Option<&PopulationRun> {
        self.runs.iter().find(|r| r.seed == seed)
    }

    /// The nondominated union of every population's final front — the
    /// best-known overall trade-off curve.
    pub fn combined_front(&self) -> ParetoFront {
        self.runs
            .iter()
            .map(|r| r.final_front().clone())
            .reduce(|a, b| a.merge(&b))
            .unwrap_or_else(|| ParetoFront::from_points(std::iter::empty()))
    }

    /// The Fig. 5 utility-per-energy analysis of the combined front.
    pub fn upe(&self) -> Option<UpeAnalysis> {
        UpeAnalysis::of(&self.combined_front())
    }

    /// Flattens the report into figure series (one per population per
    /// snapshot) — the exact data behind Figs. 3, 4, and 6.
    pub fn to_series(&self) -> Vec<FigureSeries> {
        let mut out = Vec::new();
        for run in &self.runs {
            for (iterations, front) in &run.fronts {
                out.push(FigureSeries::from_front(
                    run.seed.label(),
                    *iterations,
                    front,
                ));
            }
        }
        out
    }

    /// Convergence summary: for each snapshot, the hypervolume of every
    /// population's front relative to a shared reference point (the worst
    /// corner across the whole report). Used by the seeding-comparison
    /// analysis ("seeded populations dominate the random population").
    pub fn hypervolume_table(&self) -> Vec<(SeedKind, Vec<f64>)> {
        // Shared reference: min utility and max energy over all fronts.
        let mut ref_u = f64::INFINITY;
        let mut ref_e = f64::NEG_INFINITY;
        for run in &self.runs {
            for (_, front) in &run.fronts {
                for p in front.points() {
                    ref_u = ref_u.min(p.utility);
                    ref_e = ref_e.max(p.energy);
                }
            }
        }
        self.runs
            .iter()
            .map(|run| {
                let hvs = run
                    .fronts
                    .iter()
                    .map(|(_, f)| hetsched_analysis::hypervolume(f, ref_u, ref_e))
                    .collect();
                (run.seed, hvs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_front(points: &[(f64, f64)]) -> ParetoFront {
        ParetoFront::from_points(points.iter().copied())
    }

    fn sample_report() -> AnalysisReport {
        AnalysisReport {
            runs: vec![
                PopulationRun {
                    seed: SeedKind::MinEnergy,
                    fronts: vec![
                        (10, mk_front(&[(1.0, 1.0)])),
                        (100, mk_front(&[(2.0, 1.0), (5.0, 4.0)])),
                    ],
                },
                PopulationRun {
                    seed: SeedKind::Random,
                    fronts: vec![
                        (10, mk_front(&[(0.5, 2.0)])),
                        (100, mk_front(&[(4.0, 3.0), (6.0, 8.0)])),
                    ],
                },
            ],
            snapshots: vec![10, 100],
        }
    }

    #[test]
    fn combined_front_merges_final_fronts() {
        let report = sample_report();
        let combined = report.combined_front();
        // (2,1), (4,3), (5,4), (6,8): (5,4) is dominated by... no: (4,3) has
        // less utility than (5,4) but less energy too → trade-off, all stay.
        assert_eq!(combined.len(), 4);
        assert_eq!(combined.min_energy().unwrap().energy, 1.0);
        assert_eq!(combined.max_utility().unwrap().utility, 6.0);
    }

    #[test]
    fn run_lookup_and_front_at() {
        let report = sample_report();
        let run = report.run(SeedKind::MinEnergy).unwrap();
        assert!(run.front_at(10).is_some());
        assert!(run.front_at(55).is_none());
        assert_eq!(run.final_front().len(), 2);
        assert!(report.run(SeedKind::MaxUtility).is_none());
    }

    #[test]
    fn series_cover_all_runs_and_snapshots() {
        let report = sample_report();
        let series = report.to_series();
        assert_eq!(series.len(), 4);
        assert!(series
            .iter()
            .any(|s| s.label == "min-energy" && s.iterations == 10));
        assert!(series
            .iter()
            .any(|s| s.label == "random" && s.iterations == 100));
    }

    #[test]
    fn hypervolume_table_grows_with_iterations() {
        let report = sample_report();
        let table = report.hypervolume_table();
        assert_eq!(table.len(), 2);
        for (_, hvs) in &table {
            assert_eq!(hvs.len(), 2);
            assert!(hvs[1] >= hvs[0], "hypervolume should not shrink: {hvs:?}");
        }
    }

    #[test]
    fn upe_of_combined_front() {
        let report = sample_report();
        let upe = report.upe().unwrap();
        // Best utility/energy among (2,1)=2, (4,3)≈1.33, (5,4)=1.25,
        // (6,8)=0.75.
        assert_eq!(upe.peak_upe, 2.0);
        assert_eq!(upe.peak.utility, 2.0);
    }

    #[test]
    fn report_roundtrips_through_json_deterministically() {
        let report = sample_report();
        let json = serde_json::to_string(&report).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        // Byte-stable: re-serialising the deserialised report reproduces
        // the exact line — what campaign resume's bit-identity rests on.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn empty_report_combined_front_is_empty() {
        let report = AnalysisReport {
            runs: vec![],
            snapshots: vec![],
        };
        assert!(report.combined_front().is_empty());
        assert!(report.upe().is_none());
    }
}
