//! One function per table/figure of the paper's evaluation, producing the
//! data the original plots show. The CLI (`hetsched figure N`) and the
//! bench harness are thin wrappers around these.

use crate::config::{DatasetId, ExperimentConfig};
use crate::framework::Framework;
use crate::report::AnalysisReport;
use crate::Result;
use hetsched_analysis::{FigureSeries, UpeAnalysis};
use hetsched_data::inventory::dataset2_inventory;
use hetsched_data::{MachineTypeId, REAL_MACHINE_NAMES, REAL_TASK_NAMES};
use hetsched_heuristics::SeedKind;
use hetsched_workload::{Tuf, TufBuilder, UtilityClass};

/// Table I: the nine benchmark machines.
pub fn table1() -> Vec<&'static str> {
    REAL_MACHINE_NAMES.to_vec()
}

/// Table II: the five benchmark programs.
pub fn table2() -> Vec<&'static str> {
    REAL_TASK_NAMES.to_vec()
}

/// Table III: (machine type name, number of machines) for data sets 2/3.
pub fn table3() -> Vec<(String, u32)> {
    let inv = dataset2_inventory();
    hetsched_data::inventory::dataset2_machine_type_names()
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, inv.count(MachineTypeId(i as u16))))
        .collect()
}

/// The Fig. 1 sample time-utility function: priority 12, three
/// characteristic classes, earning ≈12 units when finishing at t = 20 and
/// ≈7 units at t = 47.
pub fn fig1_tuf() -> Tuf {
    TufBuilder::new(12.0)
        .urgency(0.012)
        .class(UtilityClass {
            duration: 30.0,
            begin_fraction: 1.0,
            end_fraction: 0.75,
            urgency_modifier: 1.0,
        })
        .class(UtilityClass {
            duration: 30.0,
            begin_fraction: 0.7,
            end_fraction: 0.4,
            urgency_modifier: 1.5,
        })
        .class(UtilityClass {
            duration: 40.0,
            begin_fraction: 0.35,
            end_fraction: 0.0,
            urgency_modifier: 2.5,
        })
        .build()
        .expect("figure TUF is valid")
}

/// Samples the Fig. 1 curve on `[0, horizon]` with `samples` points.
pub fn fig1_curve(samples: usize) -> Vec<(f64, f64)> {
    let tuf = fig1_tuf();
    let horizon = tuf.horizon() * 1.1;
    (0..samples)
        .map(|i| {
            let t = horizon * i as f64 / (samples.max(2) - 1) as f64;
            (t, tuf.utility(t))
        })
        .collect()
}

/// The Fig. 2 dominance illustration: three labelled `(energy, utility)`
/// points where A dominates B and is incomparable with C.
pub fn fig2_points() -> [(&'static str, f64, f64); 3] {
    [("A", 5.0, 8.0), ("B", 7.0, 6.0), ("C", 3.0, 4.0)]
}

/// Runs the Fig. 3 experiment (data set 1: real 5×9 data, 250 tasks /
/// 15 min, five seeded populations) at `scale` × the paper's iteration
/// schedule and returns the marker series of all four subplots.
///
/// # Errors
///
/// Propagates configuration/data failures.
pub fn fig3(scale: f64) -> Result<(AnalysisReport, Vec<FigureSeries>)> {
    run_figure(DatasetId::One, scale)
}

/// Fig. 4: data set 2 (1000 tasks / 15 min on the 30-machine synthetic
/// system).
///
/// # Errors
///
/// Propagates configuration/data failures.
pub fn fig4(scale: f64) -> Result<(AnalysisReport, Vec<FigureSeries>)> {
    run_figure(DatasetId::Two, scale)
}

/// Fig. 6: data set 3 (4000 tasks / 1 h).
///
/// # Errors
///
/// Propagates configuration/data failures.
pub fn fig6(scale: f64) -> Result<(AnalysisReport, Vec<FigureSeries>)> {
    run_figure(DatasetId::Three, scale)
}

fn run_figure(dataset: DatasetId, scale: f64) -> Result<(AnalysisReport, Vec<FigureSeries>)> {
    let config = ExperimentConfig::scaled(dataset, scale);
    let framework = Framework::new(&config)?;
    let report = framework.run();
    let series = report.to_series();
    Ok((report, series))
}

/// The three subplots of Fig. 5, computed from the max-utility-per-energy
/// population of a data-set-2 report (falling back to the combined front if
/// that population was not run).
#[derive(Debug, Clone)]
pub struct Fig5Data {
    /// Subplot A: the final Pareto front `(energy, utility)`.
    pub front: Vec<(f64, f64)>,
    /// Subplot B: `(utility, utility-per-energy)`.
    pub upe_vs_utility: Vec<(f64, f64)>,
    /// Subplot C: `(energy, utility-per-energy)`.
    pub upe_vs_energy: Vec<(f64, f64)>,
    /// The peak `(utility, energy)` marked by the solid/dashed lines.
    pub peak: (f64, f64),
    /// Indices of the "circled region" (within 5 % of peak efficiency).
    pub peak_region: Vec<usize>,
}

/// Computes Fig. 5 from an existing report.
pub fn fig5(report: &AnalysisReport) -> Option<Fig5Data> {
    let front = match report.run(SeedKind::MaxUtilityPerEnergy) {
        Some(run) => run.final_front().clone(),
        None => report.combined_front(),
    };
    let upe = UpeAnalysis::of(&front)?;
    Some(Fig5Data {
        front: front
            .points()
            .iter()
            .map(|p| (p.energy, p.utility))
            .collect(),
        upe_vs_utility: upe.upe_vs_utility(&front),
        upe_vs_energy: upe.upe_vs_energy(&front),
        peak: (upe.peak.utility, upe.peak.energy),
        peak_region: upe.peak_region(0.05),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_match_paper_counts() {
        assert_eq!(table1().len(), 9);
        assert_eq!(table2().len(), 5);
        let t3 = table3();
        assert_eq!(t3.len(), 13);
        assert_eq!(t3.iter().map(|(_, c)| c).sum::<u32>(), 30);
        assert_eq!(t3[0].0, "Special-purpose machine A");
        assert_eq!(t3[4], ("AMD A8-3870K".to_string(), 2));
        assert_eq!(t3[11], ("Intel Core i7 3770K".to_string(), 5));
    }

    #[test]
    fn fig1_matches_paper_readings() {
        let tuf = fig1_tuf();
        // "if a task finished at time 20, it would earn twelve units" —
        // within the first class, close to full priority.
        let u20 = tuf.utility(20.0);
        assert!((u20 - 12.0).abs() < 3.0, "u(20) = {u20}");
        // "if the task finished at time 47, it would only earn seven units".
        let u47 = tuf.utility(47.0);
        assert!((u47 - 7.0).abs() < 2.0, "u(47) = {u47}");
        // Monotone to zero.
        assert_eq!(tuf.utility(1e4), 0.0);
    }

    #[test]
    fn fig1_curve_is_monotone_grid() {
        let curve = fig1_curve(200);
        assert_eq!(curve.len(), 200);
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 >= w[1].1 - 1e-9);
        }
    }

    #[test]
    fn fig2_relations() {
        let [(_, ea, ua), (_, eb, ub), (_, ec, uc)] = fig2_points();
        // A dominates B: less energy, more utility.
        assert!(ea < eb && ua > ub);
        // A and C incomparable: C cheaper but earns less.
        assert!(ec < ea && uc < ua);
    }

    #[test]
    fn fig3_miniature_run() {
        // Tiny scale keeps the test fast while exercising the whole path.
        let (report, series) = fig3(0.0001).unwrap();
        assert_eq!(report.runs.len(), 5);
        // 5 populations × snapshots (scale collapses to one snapshot).
        assert_eq!(series.len(), 5 * report.snapshots.len());
        let f5 = fig5(&report).unwrap();
        assert!(!f5.front.is_empty());
        assert!(f5.peak_region.iter().all(|&i| i < f5.front.len()));
    }
}
