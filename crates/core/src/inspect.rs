//! Post-hoc inspection of run artifacts: reads a campaign manifest or a
//! run journal back and summarises convergence per population/cell —
//! the analysis half of the paper's workflow (`hetsched report`),
//! operating purely on the JSONL files without re-running anything.
//!
//! Two sources, one summary shape:
//!
//! * a **run journal** ([`RunJournal`]) has the full per-generation
//!   trajectory, so its summaries carry exact hypervolume convergence,
//!   evaluation totals, and the phase-time breakdown;
//! * a **campaign manifest** ([`load_manifest`]) has each cell's
//!   snapshot fronts and retry/duration bookkeeping, so its summaries
//!   carry per-cell status plus convergence at snapshot resolution
//!   (hypervolume recomputed against a reference shared by every cell,
//!   exactly like [`AnalysisReport::hypervolume_table`]).
//!
//! [`AnalysisReport::hypervolume_table`]: crate::report::AnalysisReport::hypervolume_table

use crate::campaign::{CellOutcome, CellRecord};
use crate::journal::{JournalRecord, RunJournal};
use crate::manifest::{load_manifest_records, replay_records, ManifestView};
use crate::{CoreError, Result};
use hetsched_moea::observe::GenerationStats;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// Hypervolume fraction of the peak that counts as "converged" for the
/// generations-to-95%-of-peak statistic.
const CONVERGED_FRACTION: f64 = 0.95;

/// Convergence statistics of one population's hypervolume trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSummary {
    /// Population label (journal) or cell id (manifest).
    pub label: String,
    /// Generations (journal) or final snapshot iteration (manifest)
    /// covered by the trajectory.
    pub generations: usize,
    /// Hypervolume of the last point in the trajectory.
    pub final_hv: Option<f64>,
    /// Best hypervolume anywhere in the trajectory.
    pub peak_hv: Option<f64>,
    /// First generation whose hypervolume reached
    /// [`CONVERGED_FRACTION`] of the peak.
    pub gens_to_95pct_peak: Option<usize>,
    /// Last generation that set a strictly new peak — after this point
    /// the population stagnated.
    pub stagnation_generation: Option<usize>,
    /// Total fitness evaluations (0 when the source doesn't record
    /// them, i.e. manifests).
    pub evaluations: usize,
    /// Wall-clock spent in mating (journal sources only).
    pub mating_s: f64,
    /// Wall-clock spent in evaluation (journal sources only).
    pub evaluation_s: f64,
    /// Wall-clock spent in sorting/selection (journal sources only).
    pub sorting_s: f64,
}

/// Derives the convergence statistics from `(generation, hypervolume)`
/// points, ascending in generation.
fn convergence(label: String, trajectory: &[(usize, Option<f64>)]) -> ConvergenceSummary {
    let generations = trajectory.last().map_or(0, |(g, _)| *g);
    let final_hv = trajectory.last().and_then(|(_, hv)| *hv);
    let mut peak_hv: Option<f64> = None;
    let mut stagnation_generation = None;
    for &(generation, hv) in trajectory {
        if let Some(hv) = hv {
            if peak_hv.is_none_or(|peak| hv > peak) {
                peak_hv = Some(hv);
                stagnation_generation = Some(generation);
            }
        }
    }
    let gens_to_95pct_peak = peak_hv.and_then(|peak| {
        trajectory
            .iter()
            .find(|(_, hv)| hv.is_some_and(|hv| hv >= CONVERGED_FRACTION * peak))
            .map(|(g, _)| *g)
    });
    ConvergenceSummary {
        label,
        generations,
        final_hv,
        peak_hv,
        gens_to_95pct_peak,
        stagnation_generation,
        evaluations: 0,
        mating_s: 0.0,
        evaluation_s: 0.0,
        sorting_s: 0.0,
    }
}

/// What [`summarise_journal`] produces: one convergence row per
/// population stream, in first-appearance order.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSummary {
    /// Per-population convergence, with exact evaluation and phase-time
    /// totals.
    pub populations: Vec<ConvergenceSummary>,
}

/// Groups journal records by (population, stream) and summarises each
/// trajectory. Records arrive interleaved (populations run in
/// parallel), so grouping keys on the record fields, not on order.
pub fn summarise_journal(records: &[JournalRecord]) -> JournalSummary {
    let mut groups: Vec<((&str, u64), Vec<&GenerationStats>)> = Vec::new();
    for record in records {
        let key = (record.population.as_str(), record.stream);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, stats)) => stats.push(&record.stats),
            None => groups.push((key, vec![&record.stats])),
        }
    }
    let populations = groups
        .into_iter()
        .map(|((population, stream), mut stats)| {
            stats.sort_by_key(|s| s.generation);
            let trajectory: Vec<(usize, Option<f64>)> = stats
                .iter()
                .map(|s| (s.generation, s.hypervolume))
                .collect();
            let mut summary = convergence(format!("{population}/s{stream}"), &trajectory);
            summary.evaluations = stats.iter().map(|s| s.evaluations).sum();
            summary.mating_s = stats.iter().map(|s| s.timings.mating_s).sum();
            summary.evaluation_s = stats.iter().map(|s| s.timings.evaluation_s).sum();
            summary.sorting_s = stats.iter().map(|s| s.timings.sorting_s).sum();
            summary
        })
        .collect();
    JournalSummary { populations }
}

/// A cell's outcome, read off its manifest record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Succeeded on the first attempt.
    Done,
    /// Succeeded after at least one retry.
    Retried,
    /// An attempt exceeded the campaign's cell timeout (quarantined).
    TimedOut,
    /// Exhausted its attempt budget (quarantined).
    Poisoned,
}

impl CellStatus {
    fn of(record: &CellRecord) -> Self {
        match (record.outcome, record.attempts) {
            (CellOutcome::Ok, 1) => CellStatus::Done,
            (CellOutcome::Ok, _) => CellStatus::Retried,
            (CellOutcome::TimedOut, _) => CellStatus::TimedOut,
            (CellOutcome::Poisoned, _) => CellStatus::Poisoned,
        }
    }

    /// Whether the cell delivered a population.
    fn succeeded(self) -> bool {
        matches!(self, CellStatus::Done | CellStatus::Retried)
    }

    fn label(self) -> &'static str {
        match self {
            CellStatus::Done => "done",
            CellStatus::Retried => "retried",
            CellStatus::TimedOut => "timeout",
            CellStatus::Poisoned => "poisoned",
        }
    }
}

/// One row of the per-cell table.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell's id, rendered (`dataset/algorithm/seed/replicate`).
    pub cell: String,
    /// Outcome classification.
    pub status: CellStatus,
    /// Attempts the cell took.
    pub attempts: usize,
    /// Wall-clock seconds, all attempts included.
    pub duration_s: f64,
    /// The last error, for failed cells.
    pub error: Option<String>,
    /// Worker that appended the record (distributed campaigns only).
    pub worker: Option<String>,
}

/// One worker's contribution, computed purely from the manifest (cell
/// records it appended plus the replayed lease state machine). Also the
/// wire shape of the serve daemon's per-worker view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSummary {
    /// The worker's id.
    pub worker: String,
    /// Surviving cell records this worker appended.
    pub cells: usize,
    /// Leases this worker stole from expired holders.
    pub stolen: usize,
    /// Appends of this worker rejected by epoch fencing.
    pub fenced: usize,
    /// Wall-clock summed over this worker's surviving cells.
    pub wall_clock_s: f64,
}

/// What [`summarise_manifest`] produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestSummary {
    /// Fingerprint of the campaign that owns the manifest.
    pub fingerprint: String,
    /// Per-cell status/duration/retry table, in manifest order.
    pub cells: Vec<CellSummary>,
    /// Per-worker rollup (empty for single-process manifests, whose
    /// records carry no worker tag).
    pub workers: Vec<WorkerSummary>,
    /// Per-cell convergence over snapshot fronts, successful cells only.
    pub populations: Vec<ConvergenceSummary>,
}

/// Summarises a merged manifest view: the cell table (with the worker
/// that ran each cell, for distributed campaigns), a per-worker rollup,
/// and snapshot-resolution convergence with hypervolume computed against
/// a reference shared by every front of every cell (the report-wide
/// worst corner), so rows are comparable.
pub fn summarise_manifest(fingerprint: String, view: &ManifestView) -> ManifestSummary {
    let records: &[CellRecord] = &view.cells;
    let cells: Vec<CellSummary> = records
        .iter()
        .map(|r| CellSummary {
            cell: r.cell.to_string(),
            status: CellStatus::of(r),
            attempts: r.attempts,
            duration_s: r.duration_s,
            error: r.error.clone(),
            worker: r.worker.clone(),
        })
        .collect();

    // Per-worker rollup, in first-appearance order (cell records first,
    // then workers known only from lease/fencing traffic).
    let mut workers: Vec<WorkerSummary> = Vec::new();
    fn rollup(workers: &mut Vec<WorkerSummary>, worker: &str) -> usize {
        match workers.iter().position(|w| w.worker == worker) {
            Some(i) => i,
            None => {
                workers.push(WorkerSummary {
                    worker: worker.to_string(),
                    cells: 0,
                    stolen: 0,
                    fenced: 0,
                    wall_clock_s: 0.0,
                });
                workers.len() - 1
            }
        }
    }
    for record in records {
        if let Some(worker) = &record.worker {
            let i = rollup(&mut workers, worker);
            workers[i].cells += 1;
            workers[i].wall_clock_s += record.duration_s;
        }
    }
    let mut stealers: Vec<(&String, &usize)> = view.leases.steals().iter().collect();
    stealers.sort_unstable();
    for (worker, stolen) in stealers {
        let i = rollup(&mut workers, worker);
        workers[i].stolen = *stolen;
    }
    let mut fenced_workers: Vec<(&String, &usize)> = view.fenced.iter().collect();
    fenced_workers.sort_unstable();
    for (worker, fenced) in fenced_workers {
        let i = rollup(&mut workers, worker);
        workers[i].fenced = *fenced;
    }

    // Shared reference: min utility and max energy over all fronts.
    let mut ref_u = f64::INFINITY;
    let mut ref_e = f64::NEG_INFINITY;
    for record in records {
        for (_, front) in record.run.iter().flat_map(|run| &run.fronts) {
            for p in front.points() {
                ref_u = ref_u.min(p.utility);
                ref_e = ref_e.max(p.energy);
            }
        }
    }
    let populations = records
        .iter()
        .filter_map(|record| {
            let run = record.run.as_ref()?;
            let trajectory: Vec<(usize, Option<f64>)> = run
                .fronts
                .iter()
                .map(|(iterations, front)| {
                    (
                        *iterations,
                        Some(hetsched_analysis::hypervolume(front, ref_u, ref_e)),
                    )
                })
                .collect();
            Some(convergence(record.cell.to_string(), &trajectory))
        })
        .collect();
    ManifestSummary {
        fingerprint,
        cells,
        workers,
        populations,
    }
}

/// A summarised artifact, whichever kind the file turned out to be.
#[derive(Debug, Clone, PartialEq)]
pub enum Inspection {
    /// The file was a campaign manifest.
    Manifest(ManifestSummary),
    /// The file was a run journal.
    Journal(JournalSummary),
}

/// Reads and summarises `path`, sniffing whether it is a campaign
/// manifest (first line is a fingerprint header) or a run journal.
///
/// # Errors
///
/// I/O failures, or a file that parses as neither artifact.
pub fn inspect_path(path: &Path) -> Result<Inspection> {
    let first_line = std::fs::read_to_string(path)
        .map_err(|e| CoreError::Io(format!("read {}: {e}", path.display())))?
        .lines()
        .next()
        .unwrap_or_default()
        .to_string();
    if first_line.contains("\"fingerprint\"") {
        let (fingerprint, records) = load_manifest_records(path)?.ok_or_else(|| {
            CoreError::Manifest(format!("{} is an empty manifest", path.display()))
        })?;
        let view = replay_records(&records);
        Ok(Inspection::Manifest(summarise_manifest(fingerprint, &view)))
    } else {
        let records = RunJournal::read(path)
            .map_err(|e| CoreError::Io(format!("read journal {}: {e}", path.display())))?;
        if records.is_empty() {
            return Err(CoreError::Manifest(format!(
                "{} is neither a campaign manifest nor a run journal",
                path.display()
            )));
        }
        Ok(Inspection::Journal(summarise_journal(&records)))
    }
}

fn fmt_opt_hv(hv: Option<f64>) -> String {
    hv.map_or_else(|| "-".to_string(), |hv| format!("{hv:.4}"))
}

fn fmt_opt_gen(g: Option<usize>) -> String {
    g.map_or_else(|| "-".to_string(), |g| g.to_string())
}

fn render_convergence_table(out: &mut String, rows: &[ConvergenceSummary], with_phases: bool) {
    let width = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(0)
        .max("population".len());
    let _ = write!(
        out,
        "{:width$}  {:>6}  {:>12}  {:>12}  {:>7}  {:>7}",
        "population", "gens", "final HV", "peak HV", "95%@", "stagn@",
    );
    if with_phases {
        let _ = write!(out, "  {:>9}  {:>24}", "evals", "mating/eval/sort (s)");
    }
    out.push('\n');
    for row in rows {
        let _ = write!(
            out,
            "{:width$}  {:>6}  {:>12}  {:>12}  {:>7}  {:>7}",
            row.label,
            row.generations,
            fmt_opt_hv(row.final_hv),
            fmt_opt_hv(row.peak_hv),
            fmt_opt_gen(row.gens_to_95pct_peak),
            fmt_opt_gen(row.stagnation_generation),
        );
        if with_phases {
            let _ = write!(
                out,
                "  {:>9}  {:>8.3}/{:.3}/{:.3}",
                row.evaluations, row.mating_s, row.evaluation_s, row.sorting_s
            );
        }
        out.push('\n');
    }
}

impl JournalSummary {
    /// Renders the summary for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run journal: {} population(s), {} evaluations total\n",
            self.populations.len(),
            self.populations
                .iter()
                .map(|p| p.evaluations)
                .sum::<usize>(),
        );
        render_convergence_table(&mut out, &self.populations, true);
        out
    }
}

impl ManifestSummary {
    /// Renders the summary for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let done = self.cells.iter().filter(|c| c.status.succeeded()).count();
        let retried = self
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Retried)
            .count();
        let timed_out = self
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::TimedOut)
            .count();
        let poisoned = self
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Poisoned)
            .count();
        let _ = writeln!(
            out,
            "campaign {}: {} cell(s) recorded ({done} done, {retried} retried, \
             {timed_out} timed out, {poisoned} poisoned)\n",
            self.fingerprint,
            self.cells.len(),
        );
        let width = self
            .cells
            .iter()
            .map(|c| c.cell.len())
            .max()
            .unwrap_or(0)
            .max("cell".len());
        // The worker column only appears on distributed manifests — a
        // single-process campaign's table stays exactly as before.
        let distributed = self.cells.iter().any(|c| c.worker.is_some());
        let worker_width = self
            .cells
            .iter()
            .filter_map(|c| c.worker.as_deref())
            .map(str::len)
            .max()
            .unwrap_or(0)
            .max("worker".len());
        let _ = write!(
            out,
            "{:width$}  {:>8}  {:>8}  {:>10}",
            "cell", "status", "attempts", "duration"
        );
        if distributed {
            let _ = write!(out, "  {:>worker_width$}", "worker");
        }
        out.push('\n');
        for cell in &self.cells {
            let _ = write!(
                out,
                "{:width$}  {:>8}  {:>8}  {:>9.3}s",
                cell.cell,
                cell.status.label(),
                cell.attempts,
                cell.duration_s,
            );
            if distributed {
                let _ = write!(
                    out,
                    "  {:>worker_width$}",
                    cell.worker.as_deref().unwrap_or("-")
                );
            }
            if let Some(error) = &cell.error {
                let _ = write!(out, "  ({error})");
            }
            out.push('\n');
        }
        if !self.workers.is_empty() {
            let _ = writeln!(out, "\nworkers:\n");
            let width = self
                .workers
                .iter()
                .map(|w| w.worker.len())
                .max()
                .unwrap_or(0)
                .max("worker".len());
            let _ = writeln!(
                out,
                "{:width$}  {:>6}  {:>6}  {:>6}  {:>11}",
                "worker", "cells", "stolen", "fenced", "wall-clock"
            );
            for w in &self.workers {
                let _ = writeln!(
                    out,
                    "{:width$}  {:>6}  {:>6}  {:>6}  {:>10.3}s",
                    w.worker, w.cells, w.stolen, w.fenced, w.wall_clock_s
                );
            }
        }
        if !self.populations.is_empty() {
            let _ = writeln!(
                out,
                "\nconvergence at snapshot resolution (shared-reference hypervolume):\n"
            );
            render_convergence_table(&mut out, &self.populations, false);
        }
        out
    }
}

impl Inspection {
    /// Renders whichever summary this is.
    pub fn render(&self) -> String {
        match self {
            Inspection::Manifest(m) => m.render(),
            Inspection::Journal(j) => j.render(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_moea::observe::PhaseTimings;

    fn record(population: &str, stream: u64, generation: usize, hv: f64) -> JournalRecord {
        JournalRecord {
            population: population.to_string(),
            stream,
            stats: GenerationStats {
                generation,
                front_sizes: vec![4],
                ideal: [-hv, hv],
                hypervolume: Some(hv),
                crowding_spread: 0.1,
                evaluations: 10,
                timings: PhaseTimings {
                    mating_s: 0.1,
                    evaluation_s: 0.2,
                    sorting_s: 0.05,
                },
            },
        }
    }

    #[test]
    fn journal_summary_computes_convergence_per_population() {
        // Interleaved populations, HV trajectory 1 → 10 → 10 (stagnates
        // at generation 2; 95% of peak (9.5) first reached there too).
        let records = vec![
            record("Random", 0, 1, 1.0),
            record("Min Energy", 1, 1, 5.0),
            record("Random", 0, 2, 10.0),
            record("Min Energy", 1, 2, 5.0),
            record("Random", 0, 3, 10.0),
        ];
        let summary = summarise_journal(&records);
        assert_eq!(summary.populations.len(), 2);
        let random = &summary.populations[0];
        assert_eq!(random.label, "Random/s0");
        assert_eq!(random.generations, 3);
        assert_eq!(random.final_hv, Some(10.0));
        assert_eq!(random.peak_hv, Some(10.0));
        assert_eq!(random.gens_to_95pct_peak, Some(2));
        assert_eq!(random.stagnation_generation, Some(2));
        assert_eq!(random.evaluations, 30);
        assert!((random.evaluation_s - 0.6).abs() < 1e-9);
        let seeded = &summary.populations[1];
        assert_eq!(seeded.gens_to_95pct_peak, Some(1));
        assert_eq!(seeded.stagnation_generation, Some(1));
        let rendered = summary.render();
        assert!(rendered.contains("Random/s0"), "{rendered}");
        assert!(rendered.contains("10.0000"), "{rendered}");
    }

    #[test]
    fn convergence_handles_missing_hypervolume() {
        let summary = convergence("x".to_string(), &[(1, None), (2, None)]);
        assert_eq!(summary.final_hv, None);
        assert_eq!(summary.peak_hv, None);
        assert_eq!(summary.gens_to_95pct_peak, None);
        assert_eq!(summary.stagnation_generation, None);
        assert_eq!(summary.generations, 2);
    }

    #[test]
    fn cell_status_classifies_records() {
        use crate::report::PopulationRun;
        use hetsched_analysis::ParetoFront;
        use hetsched_heuristics::SeedKind;

        let run = PopulationRun {
            seed: SeedKind::Random,
            fronts: vec![(5, ParetoFront::from_points([(1.0, 1.0)]))],
        };
        let base = CellRecord {
            cell: sample_cell(),
            run: Some(run),
            error: None,
            outcome: CellOutcome::Ok,
            attempts: 1,
            duration_s: 0.5,
            worker: None,
            epoch: None,
        };
        assert_eq!(CellStatus::of(&base), CellStatus::Done);
        let retried = CellRecord {
            attempts: 2,
            ..base.clone()
        };
        assert_eq!(CellStatus::of(&retried), CellStatus::Retried);
        let poisoned = CellRecord {
            run: None,
            error: Some("boom".to_string()),
            outcome: CellOutcome::Poisoned,
            ..base.clone()
        };
        assert_eq!(CellStatus::of(&poisoned), CellStatus::Poisoned);
        let timed_out = CellRecord {
            run: None,
            error: Some("cell timeout".to_string()),
            outcome: CellOutcome::TimedOut,
            ..base
        };
        assert_eq!(CellStatus::of(&timed_out), CellStatus::TimedOut);
    }

    #[test]
    fn manifest_summary_builds_cell_table_and_convergence() {
        use crate::report::PopulationRun;
        use hetsched_analysis::ParetoFront;
        use hetsched_heuristics::SeedKind;

        let ok = CellRecord {
            cell: sample_cell(),
            run: Some(PopulationRun {
                seed: SeedKind::Random,
                fronts: vec![
                    (5, ParetoFront::from_points([(1.0, 3.0)])),
                    (10, ParetoFront::from_points([(3.0, 2.0)])),
                ],
            }),
            error: None,
            outcome: CellOutcome::Ok,
            attempts: 2,
            duration_s: 1.25,
            worker: None,
            epoch: None,
        };
        let mut bad_cell = sample_cell();
        bad_cell.replicate = 1;
        let bad = CellRecord {
            cell: bad_cell,
            run: None,
            error: Some("panicked".to_string()),
            outcome: CellOutcome::Poisoned,
            attempts: 2,
            duration_s: 0.1,
            worker: None,
            epoch: None,
        };
        let view = ManifestView {
            cells: vec![ok, bad],
            ..ManifestView::default()
        };
        let summary = summarise_manifest("f00d".to_string(), &view);
        assert_eq!(summary.cells.len(), 2);
        assert_eq!(summary.cells[0].status, CellStatus::Retried);
        assert_eq!(summary.cells[1].status, CellStatus::Poisoned);
        assert!(summary.workers.is_empty(), "untagged records: no rollup");
        // Only the successful cell contributes a convergence row, at
        // snapshot resolution.
        assert_eq!(summary.populations.len(), 1);
        let pop = &summary.populations[0];
        assert_eq!(pop.generations, 10);
        assert!(pop.final_hv.unwrap() > 0.0);
        assert!(pop.final_hv.unwrap() >= pop.gens_to_95pct_peak.map_or(0.0, |_| 0.0));
        let rendered = summary.render();
        assert!(
            rendered.contains("1 done, 1 retried, 0 timed out, 1 poisoned"),
            "{rendered}"
        );
        assert!(rendered.contains("(panicked)"), "{rendered}");
        assert!(
            !rendered.contains("worker"),
            "single-process table has no worker column: {rendered}"
        );
    }

    #[test]
    fn distributed_manifests_get_worker_column_and_rollup() {
        use crate::lease::{LeaseAction, LeaseRecord};
        use crate::manifest::{replay_records, ManifestRecord};

        let tagged = |replicate: usize, worker: &str, epoch: u64| {
            let mut cell = sample_cell();
            cell.replicate = replicate;
            CellRecord {
                cell,
                run: None,
                error: Some("x".to_string()),
                outcome: CellOutcome::Poisoned,
                attempts: 1,
                duration_s: 0.5,
                worker: Some(worker.to_string()),
                epoch: Some(epoch),
            }
        };
        let cell0 = sample_cell();
        let records = vec![
            // w1 leases replicate 0 and dies; w2 steals it at epoch 2,
            // records it, and w1's zombie append is fenced.
            ManifestRecord::Lease(LeaseRecord::new(cell0, "w1", 1, LeaseAction::Acquire, 0.0)),
            ManifestRecord::Lease(LeaseRecord::new(cell0, "w2", 2, LeaseAction::Acquire, 1e12)),
            ManifestRecord::Cell(tagged(0, "w1", 1)),
            ManifestRecord::Cell(tagged(0, "w2", 2)),
            ManifestRecord::Cell(tagged(1, "w2", 1)),
        ];
        let view = replay_records(&records);
        let summary = summarise_manifest("f00d".to_string(), &view);
        assert_eq!(summary.cells.len(), 2);
        assert_eq!(summary.cells[0].worker.as_deref(), Some("w2"));
        assert_eq!(summary.workers.len(), 2);
        let w1 = summary.workers.iter().find(|w| w.worker == "w1").unwrap();
        let w2 = summary.workers.iter().find(|w| w.worker == "w2").unwrap();
        assert_eq!((w1.cells, w1.stolen, w1.fenced), (0, 0, 1));
        assert_eq!((w2.cells, w2.stolen, w2.fenced), (2, 1, 0));
        assert!((w2.wall_clock_s - 1.0).abs() < 1e-9);
        let rendered = summary.render();
        assert!(rendered.contains("worker"), "{rendered}");
        assert!(rendered.contains("wall-clock"), "{rendered}");
        assert!(rendered.contains("w2"), "{rendered}");
    }

    fn sample_cell() -> crate::campaign::CellId {
        crate::campaign::CellId {
            dataset: crate::config::DatasetId::One,
            algorithm: hetsched_moea::Algorithm::Nsga2,
            seed: hetsched_heuristics::SeedKind::Random,
            replicate: 0,
        }
    }
}
