//! Resilient experiment campaigns: a checkpoint/resume orchestrator over
//! the [`Engine`]-generic framework.
//!
//! A *campaign* is the paper's analysis workflow at full width: the grid
//! dataset × algorithm × seed-kind × replicate, expanded into independent
//! **cells** (one evolved population each) and executed on rayon. Each
//! completed cell is appended to a JSONL **manifest** and flushed, so a
//! run killed at any point resumes by replaying the manifest and
//! executing only the missing cells — and because every cell runs on a
//! decorrelated RNG stream derived purely from its coordinates, the
//! resumed campaign's [`AnalysisReport`]s are bit-identical to an
//! uninterrupted run's.
//!
//! Resilience properties:
//!
//! * **isolation** — a panicking cell is caught, retried up to the
//!   configured attempt budget, and then recorded as failed without
//!   sinking the rest of the campaign;
//! * **watchdog** — with a [`Campaign::cell_timeout`], a hung cell is
//!   abandoned and recorded as [`CellOutcome::TimedOut`] instead of
//!   stalling the whole campaign;
//! * **backoff** — retries wait out a deterministic exponential backoff
//!   with seeded jitter (kept entirely off the engine RNG streams, so
//!   retried and first-try campaigns stay bit-identical);
//! * **quarantine** — a cell that exhausts its budget is recorded as
//!   [`CellOutcome::Poisoned`] and, on resume, *not* re-executed unless
//!   [`Campaign::requeue_quarantined`] says so;
//! * **durability** — each manifest append is flushed and fsynced (in
//!   configurable batches), and a panic while holding the manifest lock
//!   cannot disable checkpointing for the surviving cells;
//! * **cooperative cancellation** — a [`CancelToken`] stops new cells
//!   from starting (in-flight cells finish and are checkpointed);
//! * **deadline** — a wall-clock budget after which remaining cells are
//!   skipped the same way;
//! * **resume** — the manifest begins with a fingerprint of the
//!   [`CampaignSpec`]; resuming with a different spec is rejected rather
//!   than silently mixing incompatible cells, and a torn final line
//!   (killed mid-write) is ignored.
//!
//! The `chaos` feature threads deterministic fault points through this
//! module (`campaign.cell.run`, `manifest.append`) so every one of these
//! properties is exercised by injected panics, IO errors, hangs, and
//! aborts — see README § Fault tolerance.
//!
//! [`Engine`]: hetsched_moea::Engine

use crate::chaos_hooks;
use crate::config::{DatasetId, ExperimentConfig};
use crate::framework::Framework;
use crate::manifest::{load_manifest_records, replay_records, LocalManifestStore, ManifestStore};
use crate::report::{AnalysisReport, PopulationRun};
use crate::telemetry::{CampaignObserver, NullCampaignObserver};
use crate::{CoreError, Result};
use hetsched_heuristics::SeedKind;
use hetsched_moea::observe::GenerationStats;
use hetsched_moea::{Algorithm, Individual};
use hetsched_sim::Allocation;
use rayon::prelude::*;
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// The grid a campaign sweeps. `base` supplies everything the grid axes
/// don't: trace size, population, snapshot schedule, seed kinds, and the
/// master RNG seed (`base.dataset` and `base.algorithm` are ignored in
/// favour of the explicit axes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Template configuration shared by every cell.
    pub base: ExperimentConfig,
    /// Datasets to sweep (each builds one system + trace).
    pub datasets: Vec<DatasetId>,
    /// Engines to sweep.
    pub algorithms: Vec<Algorithm>,
    /// Replicates per (dataset, algorithm) point, on decorrelated RNG
    /// streams (see [`Framework::replicate_seed`]).
    pub replicates: usize,
}

impl CampaignSpec {
    /// The one-point campaign equivalent to `Framework::new(&config)` +
    /// [`Framework::run`].
    pub fn single(config: &ExperimentConfig) -> Self {
        CampaignSpec {
            datasets: vec![config.dataset],
            algorithms: vec![config.algorithm],
            replicates: 1,
            base: config.clone(),
        }
    }

    /// Validates the grid and the base configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on an empty axis, duplicate axis
    /// entries (they would alias cells in the manifest), or an invalid
    /// base config.
    pub fn validate(&self) -> Result<()> {
        self.base.validate()?;
        if self.datasets.is_empty() {
            return Err(CoreError::InvalidConfig("campaign needs >= 1 dataset"));
        }
        if self.algorithms.is_empty() {
            return Err(CoreError::InvalidConfig("campaign needs >= 1 algorithm"));
        }
        if self.replicates == 0 {
            return Err(CoreError::InvalidConfig("campaign needs >= 1 replicate"));
        }
        if unique_count(&self.datasets) != self.datasets.len() {
            return Err(CoreError::InvalidConfig("duplicate dataset in campaign"));
        }
        if unique_count(&self.algorithms) != self.algorithms.len() {
            return Err(CoreError::InvalidConfig("duplicate algorithm in campaign"));
        }
        if unique_count(&self.base.seeds) != self.base.seeds.len() {
            return Err(CoreError::InvalidConfig("duplicate seed kind in campaign"));
        }
        Ok(())
    }

    /// Expands the grid into cells, in the campaign's canonical order
    /// (dataset, then algorithm, then replicate, then seed kind).
    pub fn cells(&self) -> Vec<CellId> {
        let mut out =
            Vec::with_capacity(self.datasets.len() * self.algorithms.len() * self.replicates);
        for &dataset in &self.datasets {
            for &algorithm in &self.algorithms {
                for replicate in 0..self.replicates {
                    for &seed in &self.base.seeds {
                        out.push(CellId {
                            dataset,
                            algorithm,
                            seed,
                            replicate,
                        });
                    }
                }
            }
        }
        out
    }

    /// A stable fingerprint of the spec (FNV-1a over its canonical JSON),
    /// written as the manifest header so a manifest can never be resumed
    /// against a different campaign.
    pub fn fingerprint(&self) -> String {
        let json = serde_json::to_string(self).unwrap_or_default();
        format!("{:016x}", fnv1a(json.as_bytes()))
    }

    /// A validating builder seeded from `base` (one dataset, one
    /// algorithm, one replicate — the [`CampaignSpec::single`] grid), with
    /// [`CampaignSpec::validate`] enforced at
    /// [`CampaignSpecBuilder::build`].
    pub fn builder(base: ExperimentConfig) -> CampaignSpecBuilder {
        CampaignSpecBuilder {
            spec: CampaignSpec::single(&base),
        }
    }
}

/// Builder for [`CampaignSpec`], mirroring
/// [`hetsched_moea::EngineConfigBuilder`]: setters never fail, the grid
/// rules (non-empty axes, no duplicates, at least one replicate) are
/// checked once at [`CampaignSpecBuilder::build`].
#[derive(Debug, Clone)]
pub struct CampaignSpecBuilder {
    spec: CampaignSpec,
}

impl CampaignSpecBuilder {
    /// Datasets to sweep (replaces the default single-dataset axis).
    pub fn datasets(mut self, datasets: Vec<DatasetId>) -> Self {
        self.spec.datasets = datasets;
        self
    }

    /// Engines to sweep (replaces the default single-algorithm axis).
    pub fn algorithms(mut self, algorithms: Vec<Algorithm>) -> Self {
        self.spec.algorithms = algorithms;
        self
    }

    /// Replicates per (dataset, algorithm) grid point.
    pub fn replicates(mut self, replicates: usize) -> Self {
        self.spec.replicates = replicates;
        self
    }

    /// Validates the accumulated grid and returns the spec.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on an empty or duplicate-bearing
    /// axis, zero replicates, or an invalid base configuration — the
    /// same rules as [`CampaignSpec::validate`].
    pub fn build(self) -> Result<CampaignSpec> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

fn unique_count<T: PartialEq>(items: &[T]) -> usize {
    items
        .iter()
        .enumerate()
        .filter(|(i, item)| !items[..*i].contains(item))
        .count()
}

/// Coordinates of one campaign cell: a single evolved population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellId {
    /// Which dataset's system + trace the cell runs on.
    pub dataset: DatasetId,
    /// Which engine evolves the population.
    pub algorithm: Algorithm,
    /// The seeding heuristic of the population.
    pub seed: SeedKind,
    /// Replicate index (decorrelates the RNG stream).
    pub replicate: usize,
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}/{}/{}/r{}",
            self.dataset,
            self.algorithm,
            self.seed.label(),
            self.replicate
        )
    }
}

/// How a cell's execution ended — the quarantine-relevant classification
/// of a [`CellRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// The cell completed and `run` holds its population.
    Ok,
    /// An attempt exceeded the campaign's [`Campaign::cell_timeout`];
    /// the hung attempt was abandoned and the cell quarantined.
    TimedOut,
    /// Every attempt in the budget panicked or failed; the cell is
    /// quarantined until the operator clears it (or the campaign runs
    /// with [`Campaign::requeue_quarantined`]).
    Poisoned,
}

/// One manifest line: a cell's outcome. Exactly one of `run` (success)
/// and `error` (failed after all attempts) is set — a data-carrying enum
/// would say this in the type, but the vendored serde derive only handles
/// flat structs; `outcome` classifies the failure side.
///
/// `worker` and `epoch` are set only by `hetsched work` (distributed
/// mode): they name the worker that produced the record and the fencing
/// epoch of the lease it held, so a stale worker's late append can be
/// rejected at merge time (see [`crate::manifest::replay_records`]).
/// Single-process campaigns leave both `None`, which also keeps their
/// manifest lines byte-identical to the v3 format.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Which cell this records.
    pub cell: CellId,
    /// The evolved population's snapshot fronts, on success.
    pub run: Option<PopulationRun>,
    /// The last attempt's panic/failure message, on failure.
    pub error: Option<String>,
    /// Terminal classification: success, watchdog timeout, or quarantine.
    pub outcome: CellOutcome,
    /// How many attempts were made.
    pub attempts: usize,
    /// Wall-clock seconds the cell took, all attempts included.
    pub duration_s: f64,
    /// Worker id that appended the record (distributed mode only).
    pub worker: Option<String>,
    /// Fencing epoch of the lease held while running (distributed mode
    /// only). A record whose epoch is older than the cell's newest lease
    /// is dropped at merge time.
    pub epoch: Option<u64>,
}

// Hand-written so the v4 fields are *omitted* when absent: a
// single-process manifest stays byte-identical to v3, and a v3 manifest
// (no `worker`/`epoch` keys) deserialises cleanly with both `None`.
impl Serialize for CellRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        let mut entries = vec![
            ("cell".to_string(), serde::to_value(&self.cell)),
            ("run".to_string(), serde::to_value(&self.run)),
            ("error".to_string(), serde::to_value(&self.error)),
            ("outcome".to_string(), serde::to_value(&self.outcome)),
            ("attempts".to_string(), serde::to_value(&self.attempts)),
            ("duration_s".to_string(), serde::to_value(&self.duration_s)),
        ];
        if self.worker.is_some() {
            entries.push(("worker".to_string(), serde::to_value(&self.worker)));
        }
        if self.epoch.is_some() {
            entries.push(("epoch".to_string(), serde::to_value(&self.epoch)));
        }
        serializer.serialize_value(Value::Object(entries))
    }
}

impl<'de> Deserialize<'de> for CellRecord {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let mut entries = serde::__private::into_object::<D::Error>(value, "CellRecord")?;
        let worker = if entries.iter().any(|(k, _)| k == "worker") {
            serde::__private::from_field::<Option<String>, D::Error>(&mut entries, "worker")?
        } else {
            None
        };
        let epoch = if entries.iter().any(|(k, _)| k == "epoch") {
            serde::__private::from_field::<Option<u64>, D::Error>(&mut entries, "epoch")?
        } else {
            None
        };
        Ok(Self {
            cell: serde::__private::from_field(&mut entries, "cell")?,
            run: serde::__private::from_field(&mut entries, "run")?,
            error: serde::__private::from_field(&mut entries, "error")?,
            outcome: serde::__private::from_field(&mut entries, "outcome")?,
            attempts: serde::__private::from_field(&mut entries, "attempts")?,
            duration_s: serde::__private::from_field(&mut entries, "duration_s")?,
            worker,
            epoch,
        })
    }
}

/// Cooperative cancellation flag, cloneable across threads: call
/// [`CancelToken::cancel`] from anywhere (a ctrl-c handler, a watchdog)
/// and the campaign stops starting new cells.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// One per-(dataset, algorithm, replicate) result assembled from a
/// campaign's cells — the campaign analogue of [`Framework::run`]'s
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The dataset axis value.
    pub dataset: DatasetId,
    /// The algorithm axis value.
    pub algorithm: Algorithm,
    /// The replicate index.
    pub replicate: usize,
    /// One run per seed kind, in `base.seeds` order.
    pub report: AnalysisReport,
}

/// What a campaign invocation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Complete reports (every seed-kind cell succeeded), in canonical
    /// grid order. Grid points with failed or skipped cells are omitted.
    pub reports: Vec<CampaignReport>,
    /// Cells that exhausted their attempts, in canonical order.
    pub failed: Vec<CellRecord>,
    /// Cells not executed because of cancellation or the deadline.
    pub skipped: Vec<CellId>,
    /// Cells executed by *this* invocation.
    pub executed: usize,
    /// Cells replayed from the manifest instead of executed.
    pub replayed: usize,
}

impl CampaignOutcome {
    /// The report for one grid point, if complete.
    pub fn report(
        &self,
        dataset: DatasetId,
        algorithm: Algorithm,
        replicate: usize,
    ) -> Option<&AnalysisReport> {
        self.reports
            .iter()
            .find(|r| r.dataset == dataset && r.algorithm == algorithm && r.replicate == replicate)
            .map(|r| &r.report)
    }

    /// Whether every cell of the grid completed successfully.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty()
    }
}

/// Per-attempt fault hook used by tests to simulate failing cells:
/// returns `Some(message)` to fail the attempt.
type FaultHook = dyn Fn(&CellId, usize) -> Option<String> + Send + Sync;

/// The orchestrator. Construct with [`Campaign::new`], tune with the
/// builder-style methods, then [`Campaign::run`].
///
/// # Retry / timeout / quarantine state machine
///
/// Each cell moves through exactly one path:
///
/// ```text
///             ┌────────────────────────────────────────────────┐
///             │ attempt n (catch_unwind; watchdog if timeout)  │
///             └────────────────────────────────────────────────┘
///    completes │          panics/fails │           hangs │
///              ▼                       ▼                 ▼
///      outcome = Ok        n < attempts? ── yes ──► backoff(n+1),
///      (recorded,              │                    retry (observer
///       replayed on            no                   sees on_cell_retry)
///       resume)                ▼
///                     outcome = Poisoned     outcome = TimedOut
///                     (on_cell_failed)       (on_cell_timed_out;
///                                             terminal immediately —
///                                             hangs are deterministic,
///                                             retrying re-hangs)
/// ```
///
/// * **Backoff** before attempt `n ≥ 2` sleeps an *equal-jitter*
///   exponential delay: `window = min(cap, base · 2^(n-2))`, sleep =
///   `window/2 + jitter` with the jitter drawn from a splitmix64 stream
///   seeded off the spec fingerprint (see [`Campaign::retry_backoff`]) —
///   never from the engine RNG, so results are bit-identical whatever
///   the attempt budget.
/// * **Quarantine**: `TimedOut`/`Poisoned` records persist in the
///   manifest; a resumed campaign replays them as terminal (the grid
///   point stays incomplete) rather than burning the budget again.
///   [`Campaign::requeue_quarantined`] opts back into re-execution, and
///   a fresh record then supersedes the quarantined one (last record
///   wins on replay).
pub struct Campaign {
    spec: CampaignSpec,
    attempts: usize,
    deadline: Option<Duration>,
    cell_timeout: Option<Duration>,
    backoff_base: Duration,
    backoff_cap: Duration,
    backoff_seed: u64,
    requeue_quarantined: bool,
    manifest_sync_every: usize,
    cancel: CancelToken,
    fault: Option<Arc<FaultHook>>,
    observer: Arc<dyn CampaignObserver>,
}

impl Campaign {
    /// A campaign over `spec` with default resilience settings: 2
    /// attempts per cell, 25ms-base/1s-cap retry backoff seeded off the
    /// spec fingerprint, no cell timeout, no deadline, quarantine
    /// honoured on resume, per-record manifest fsync, a fresh cancel
    /// token, no telemetry.
    pub fn new(spec: CampaignSpec) -> Self {
        let backoff_seed = fnv1a(spec.fingerprint().as_bytes());
        Campaign {
            spec,
            attempts: 2,
            deadline: None,
            cell_timeout: None,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            backoff_seed,
            requeue_quarantined: false,
            manifest_sync_every: 1,
            cancel: CancelToken::new(),
            fault: None,
            observer: Arc::new(NullCampaignObserver),
        }
    }

    /// The spec under execution.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Sets the per-cell attempt budget (first try + retries; min 1).
    pub fn attempts(mut self, attempts: usize) -> Self {
        self.attempts = attempts.max(1);
        self
    }

    /// Sets a wall-clock budget measured from [`Campaign::run`]'s start;
    /// cells not yet started when it expires are skipped.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Arms the per-cell watchdog: an attempt running longer than
    /// `timeout` is abandoned (its thread keeps running detached but can
    /// no longer touch the observer) and the cell is recorded as
    /// [`CellOutcome::TimedOut`] without retrying — a deterministic hang
    /// would only hang again. Cells then run on a dedicated thread per
    /// attempt; without a timeout they run inline on the rayon worker.
    pub fn cell_timeout(mut self, timeout: Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }

    /// Tunes the retry backoff window: attempt `n ≥ 2` waits
    /// `min(cap, base · 2^(n-2))/2` plus seeded jitter up to the same
    /// amount (equal jitter). A zero `base` disables the wait entirely
    /// (used by tests that only care about retry counting).
    pub fn retry_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap.max(base);
        self
    }

    /// Overrides the backoff jitter seed (defaults to a hash of the spec
    /// fingerprint). The stream is independent of every engine RNG, so
    /// this changes only wait times, never results.
    pub fn retry_backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = seed;
        self
    }

    /// Re-executes quarantined (`TimedOut`/`Poisoned`) manifest records
    /// on resume instead of replaying them as terminal. The default
    /// (`false`) preserves the attempt budget's meaning across resumes:
    /// a poisoned cell stays poisoned until an operator intervenes.
    pub fn requeue_quarantined(mut self, requeue: bool) -> Self {
        self.requeue_quarantined = requeue;
        self
    }

    /// Fsyncs the manifest after every `every` appended records (min 1,
    /// the default). Raising it trades a bounded window of re-executable
    /// cells after a power loss for fewer fsyncs on large grids; the
    /// campaign always fsyncs once more when the grid drains.
    pub fn manifest_sync_every(mut self, every: usize) -> Self {
        self.manifest_sync_every = every.max(1);
        self
    }

    /// Uses an external cancel token (e.g. shared with a signal handler).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A clone of the campaign's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The campaign's observer (shared with [`crate::worker::Worker`]).
    pub(crate) fn observer(&self) -> &Arc<dyn CampaignObserver> {
        &self.observer
    }

    /// Whether quarantined records are requeued on resume.
    pub(crate) fn requeues_quarantined(&self) -> bool {
        self.requeue_quarantined
    }

    /// The manifest fsync batching window.
    pub(crate) fn sync_every(&self) -> usize {
        self.manifest_sync_every
    }

    /// Attaches a [`CampaignObserver`] receiving cell lifecycle events
    /// and per-generation engine stats. When the observer's
    /// [`enabled`](CampaignObserver::enabled) is `false` (the default
    /// [`NullCampaignObserver`]) all event plumbing is skipped and the
    /// engines run unobserved, so telemetry is pay-for-what-you-use.
    pub fn with_observer(mut self, observer: Arc<dyn CampaignObserver>) -> Self {
        self.observer = observer;
        self
    }

    /// Injects a per-attempt fault: `hook(cell, attempt)` returning
    /// `Some(message)` makes that attempt fail. Test-only plumbing for
    /// exercising retry and failure recording.
    #[doc(hidden)]
    pub fn with_fault_injection(
        mut self,
        hook: impl Fn(&CellId, usize) -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        self.fault = Some(Arc::new(hook));
        self
    }

    /// Runs the campaign, checkpointing to `manifest` when given. An
    /// existing manifest is replayed first (resume); its successfully
    /// recorded cells are not re-executed.
    ///
    /// # Errors
    ///
    /// Spec validation, framework construction, manifest I/O, or a
    /// manifest written by a different spec.
    pub fn run(&self, manifest: Option<&Path>) -> Result<CampaignOutcome> {
        self.spec.validate()?;
        let cells = self.spec.cells();
        let fingerprint = self.spec.fingerprint();

        // Replay, then open for append (creating + stamping the header on
        // a fresh file).
        let mut known: HashMap<CellId, CellRecord> = HashMap::new();
        let sink = match manifest {
            Some(path) => {
                if path.exists() {
                    for record in read_manifest(path, &fingerprint)? {
                        known.insert(record.cell, record);
                    }
                }
                Some(LocalManifestStore::open(
                    path,
                    &fingerprint,
                    self.manifest_sync_every,
                )?)
            }
            None => None,
        };
        // Successes are replayed; quarantined (timed-out / poisoned)
        // records are replayed as terminal unless the campaign was asked
        // to requeue them for a fresh chance.
        known.retain(|_, r| r.run.is_some() || !self.requeue_quarantined);
        let replayed = cells.iter().filter(|c| known.contains_key(c)).count();

        // One framework per dataset, built once and shared by its cells
        // (the system and trace depend only on the dataset and the base
        // master seed, never on algorithm or replicate).
        let mut frameworks: HashMap<DatasetId, Framework> = HashMap::new();
        for &dataset in &self.spec.datasets {
            let mut config = self.spec.base.clone();
            config.dataset = dataset;
            frameworks.insert(dataset, Framework::new(&config)?);
        }
        let streams: HashMap<SeedKind, u64> = self
            .spec
            .base
            .seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u64))
            .collect();

        let started = Instant::now();
        let missing: Vec<CellId> = cells
            .iter()
            .copied()
            .filter(|c| !known.contains_key(c))
            .collect();
        tracing::info!(
            "campaign {fingerprint}: {} cells ({} replayed, {} to run)",
            cells.len(),
            replayed,
            missing.len(),
        );
        // The campaign span roots every cell's timeline (or nests under a
        // serve job span when one is current). Cells run on rayon workers
        // where this thread's span stack is invisible, so its context is
        // captured here and re-parented explicitly per cell.
        let campaign_span = tracing::span!(
            tracing::Level::INFO,
            "campaign",
            fingerprint = fingerprint.as_str(),
            cells = cells.len() as u64,
            replayed = replayed as u64
        );
        let campaign_ctx = campaign_span.context();
        let _campaign_entered = campaign_span.enter();
        let observing = self.observer.enabled();
        if observing {
            self.observer.on_campaign_start(cells.len(), replayed);
            // The pool never runs more workers than there are cells left.
            self.observer
                .on_workers(rayon::current_num_threads().min(missing.len()).max(1));
            for cell in cells.iter().filter(|c| known.contains_key(c)) {
                self.observer.on_cell_replayed(cell);
            }
        }
        let results: Vec<Option<CellRecord>> = missing
            .par_iter()
            .map(|&cell| {
                let expired = self
                    .deadline
                    .is_some_and(|budget| started.elapsed() >= budget);
                if self.cancel.is_cancelled() || expired {
                    if observing {
                        self.observer.on_cell_skipped(&cell);
                    }
                    return None;
                }
                let mut cell_span = tracing::Span::child_of(
                    campaign_ctx,
                    tracing::Level::INFO,
                    module_path!(),
                    "cell",
                );
                if cell_span.is_enabled() {
                    cell_span.record("dataset", format!("{:?}", cell.dataset));
                    cell_span.record("algorithm", cell.algorithm.to_string());
                    cell_span.record("seed", cell.seed.label().to_string());
                    cell_span.record("replicate", cell.replicate as u64);
                }
                let cell_entered = cell_span.enter();
                let record =
                    self.execute_cell(&frameworks[&cell.dataset], cell, streams[&cell.seed]);
                drop(cell_entered);
                drop(cell_span);
                if let Some(sink) = &sink {
                    // A lost checkpoint only costs re-execution on the
                    // next resume; the computed record is still used. The
                    // append is unwind-isolated so even a panic inside the
                    // sink (chaos-injected or otherwise) can't take the
                    // rayon worker down with it.
                    match catch_unwind(AssertUnwindSafe(|| sink.append_cell(&record))) {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            tracing::warn!("manifest append failed for cell {cell}: {e}");
                        }
                        Err(payload) => {
                            tracing::warn!(
                                "manifest append panicked for cell {cell}: {}",
                                panic_message(payload)
                            );
                        }
                    }
                }
                Some(record)
            })
            .collect();

        if let Some(sink) = &sink {
            // Drain the batched-fsync window so every record written this
            // invocation is durable before we report the outcome.
            if let Err(e) = sink.sync() {
                tracing::warn!("manifest final sync failed: {e}");
            }
        }

        let executed = results.iter().flatten().count();
        let skipped: Vec<CellId> = missing
            .iter()
            .zip(&results)
            .filter(|(_, r)| r.is_none())
            .map(|(&c, _)| c)
            .collect();
        for record in results.into_iter().flatten() {
            known.insert(record.cell, record);
        }
        if observing {
            self.observer.on_campaign_end();
        }

        Ok(self.assemble(&cells, known, skipped, executed, replayed))
    }

    /// Runs one cell with the attempt budget, catching panics. Fires
    /// observer lifecycle events when observation is enabled; the engine
    /// itself is observed (per-generation stats routed to
    /// [`CampaignObserver::on_generation`]) only then — the observation
    /// contract guarantees the evolved population is identical either
    /// way.
    pub(crate) fn execute_cell(
        &self,
        framework: &Framework,
        cell: CellId,
        stream: u64,
    ) -> CellRecord {
        let observing = self.observer.enabled();
        let cell_started = Instant::now();
        if observing {
            self.observer.on_cell_start(&cell);
        }
        let mut last_error = String::new();
        for attempt in 1..=self.attempts {
            if attempt > 1 {
                if observing {
                    self.observer.on_cell_retry(&cell, attempt);
                }
                let delay = self.backoff_delay(&cell, attempt);
                if !delay.is_zero() {
                    tracing::debug!("cell {cell} attempt {attempt}: backing off {delay:?}");
                    std::thread::sleep(delay);
                }
            }
            if let Some(hook) = &self.fault {
                if let Some(message) = hook(&cell, attempt) {
                    tracing::warn!("cell {cell} attempt {attempt} failed (injected): {message}");
                    if observing {
                        self.observer.on_cell_panic(&cell, attempt, &message);
                    }
                    last_error = message;
                    continue;
                }
            }
            let fw = framework.variant(
                Framework::replicate_seed(self.spec.base.rng_seed, cell.replicate as u64),
                cell.algorithm,
            );
            match self.run_attempt(fw, cell, stream, attempt) {
                AttemptOutcome::Completed(run) => {
                    if observing {
                        self.observer
                            .on_cell_finish(&cell, attempt, cell_started.elapsed());
                    }
                    return CellRecord {
                        cell,
                        run: Some(run),
                        error: None,
                        outcome: CellOutcome::Ok,
                        attempts: attempt,
                        duration_s: cell_started.elapsed().as_secs_f64(),
                        worker: None,
                        epoch: None,
                    };
                }
                AttemptOutcome::Panicked(message) => {
                    last_error = message;
                    tracing::warn!("cell {cell} attempt {attempt} panicked: {last_error}");
                    if observing {
                        self.observer.on_cell_panic(&cell, attempt, &last_error);
                    }
                }
                AttemptOutcome::TimedOut => {
                    // Terminal without retry: a cell that hangs once will
                    // hang again (everything it does is deterministic), so
                    // retrying only multiplies abandoned threads.
                    let timeout = self.cell_timeout.unwrap_or_default();
                    last_error = format!(
                        "attempt {attempt} exceeded the {:.3}s cell timeout",
                        timeout.as_secs_f64()
                    );
                    tracing::warn!("cell {cell} timed out: {last_error}");
                    if observing {
                        self.observer.on_cell_timed_out(&cell, attempt, timeout);
                    }
                    return CellRecord {
                        cell,
                        run: None,
                        error: Some(last_error),
                        outcome: CellOutcome::TimedOut,
                        attempts: attempt,
                        duration_s: cell_started.elapsed().as_secs_f64(),
                        worker: None,
                        epoch: None,
                    };
                }
            }
        }
        if observing {
            self.observer
                .on_cell_failed(&cell, self.attempts, &last_error);
        }
        CellRecord {
            cell,
            run: None,
            error: Some(last_error),
            outcome: CellOutcome::Poisoned,
            attempts: self.attempts,
            duration_s: cell_started.elapsed().as_secs_f64(),
            worker: None,
            epoch: None,
        }
    }

    /// Runs one attempt, inline or (with a [`Campaign::cell_timeout`])
    /// on a watchdogged thread. The `campaign.cell.run` fault point sits
    /// inside the unwind barrier, so injected panics behave exactly like
    /// organic engine panics.
    fn run_attempt(
        &self,
        fw: Framework,
        cell: CellId,
        stream: u64,
        attempt: usize,
    ) -> AttemptOutcome {
        let observing = self.observer.enabled();
        let observer = Arc::clone(&self.observer);
        let abandoned = Arc::new(AtomicBool::new(false));
        // The cell span is entered on the calling rayon worker; capture it
        // so the attempt span parents correctly even when the watchdog
        // moves the attempt to a dedicated thread.
        let cell_ctx = tracing::current_span();
        let body = {
            let abandoned = Arc::clone(&abandoned);
            move || {
                catch_unwind(AssertUnwindSafe(|| {
                    let mut attempt_span = tracing::Span::child_of(
                        cell_ctx,
                        tracing::Level::DEBUG,
                        module_path!(),
                        "attempt",
                    );
                    attempt_span.record("attempt", attempt as u64);
                    let _in_attempt = attempt_span.enter();
                    chaos_hooks::raise("campaign.cell.run", &cell);
                    if observing {
                        let mut bridge = CellStatsBridge {
                            cell,
                            observer,
                            abandoned,
                        };
                        fw.run_population_observed(cell.seed, stream, &mut bridge)
                    } else {
                        fw.run_population(cell.seed, stream)
                    }
                }))
            }
        };
        let Some(timeout) = self.cell_timeout else {
            return match body() {
                Ok(run) => AttemptOutcome::Completed(run),
                Err(payload) => AttemptOutcome::Panicked(panic_message(payload)),
            };
        };
        // The watchdog deliberately detaches instead of joining: joining a
        // hung thread is the stall the watchdog exists to prevent. The
        // abandoned flag silences the orphan's observer bridge so a cell
        // recorded as TimedOut can't later pollute telemetry.
        let (tx, rx) = mpsc::channel();
        let spawned = std::thread::Builder::new()
            .name(format!("hetsched-cell-{cell}"))
            .spawn(move || {
                let _ = tx.send(body());
            });
        if let Err(e) = spawned {
            return AttemptOutcome::Panicked(format!("failed to spawn cell thread: {e}"));
        }
        match rx.recv_timeout(timeout) {
            Ok(Ok(run)) => AttemptOutcome::Completed(run),
            Ok(Err(payload)) => AttemptOutcome::Panicked(panic_message(payload)),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                abandoned.store(true, Ordering::Relaxed);
                AttemptOutcome::TimedOut
            }
            // The sender dropped without sending: the thread died in a way
            // catch_unwind can't report (e.g. an abort racing teardown).
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                AttemptOutcome::Panicked("cell thread terminated without a result".to_string())
            }
        }
    }

    /// The deterministic pre-retry sleep for `attempt` (≥ 2): equal
    /// jitter over an exponentially growing, capped window, seeded off
    /// the campaign's backoff stream and the cell's identity — two runs
    /// of the same campaign back off identically, and no engine RNG is
    /// consulted.
    fn backoff_delay(&self, cell: &CellId, attempt: usize) -> Duration {
        if self.backoff_base.is_zero() || attempt < 2 {
            return Duration::ZERO;
        }
        let exponent = (attempt - 2).min(20) as u32;
        let window = self
            .backoff_cap
            .min(self.backoff_base.saturating_mul(1u32 << exponent));
        let window_ms = window.as_millis() as u64;
        if window_ms == 0 {
            return window;
        }
        let salt = fnv1a(cell.to_string().as_bytes()) ^ (attempt as u64);
        let jitter = splitmix64(self.backoff_seed ^ salt) % (window_ms / 2 + 1);
        Duration::from_millis(window_ms / 2 + jitter)
    }

    /// Groups cell records into per-grid-point reports, in canonical
    /// order — the step that makes resumed and uninterrupted campaigns
    /// indistinguishable.
    pub(crate) fn assemble(
        &self,
        cells: &[CellId],
        known: HashMap<CellId, CellRecord>,
        skipped: Vec<CellId>,
        executed: usize,
        replayed: usize,
    ) -> CampaignOutcome {
        let mut reports = Vec::new();
        for &dataset in &self.spec.datasets {
            for &algorithm in &self.spec.algorithms {
                for replicate in 0..self.spec.replicates {
                    let runs: Vec<PopulationRun> = self
                        .spec
                        .base
                        .seeds
                        .iter()
                        .filter_map(|&seed| {
                            let cell = CellId {
                                dataset,
                                algorithm,
                                seed,
                                replicate,
                            };
                            known.get(&cell).and_then(|r| r.run.clone())
                        })
                        .collect();
                    if runs.len() == self.spec.base.seeds.len() {
                        reports.push(CampaignReport {
                            dataset,
                            algorithm,
                            replicate,
                            report: AnalysisReport {
                                runs,
                                snapshots: self.spec.base.snapshots.clone(),
                            },
                        });
                    }
                }
            }
        }
        let failed: Vec<CellRecord> = cells
            .iter()
            .filter_map(|c| known.get(c).filter(|r| r.run.is_none()).cloned())
            .collect();
        CampaignOutcome {
            reports,
            failed,
            skipped,
            executed,
            replayed,
        }
    }
}

/// How one attempt of one cell ended (internal to the attempt loop).
enum AttemptOutcome {
    /// The engine finished; the population is in hand.
    Completed(PopulationRun),
    /// The attempt panicked (organically, via the test fault hook, or
    /// via an injected chaos fault) — retryable.
    Panicked(String),
    /// The watchdog expired — terminal.
    TimedOut,
}

/// Adapts the campaign observer to the engine's per-generation
/// [`Observer`](hetsched_moea::observe::Observer) hook for one cell, so
/// every observed generation anywhere in the grid rolls up to
/// [`CampaignObserver::on_generation`]. Owned (not borrowed) because a
/// watchdogged attempt runs on its own thread; `abandoned` flips when
/// that thread outlives its timeout, muting the orphan.
struct CellStatsBridge {
    cell: CellId,
    observer: Arc<dyn CampaignObserver>,
    abandoned: Arc<AtomicBool>,
}

impl hetsched_moea::observe::Observer<Allocation> for CellStatsBridge {
    fn on_generation(&mut self, stats: &GenerationStats, _population: &[Individual<Allocation>]) {
        if !self.abandoned.load(Ordering::Relaxed) {
            self.observer.on_generation(&self.cell, stats);
        }
    }
}

/// FNV-1a, the workspace's no-dependency stable hash (also behind
/// [`CampaignSpec::fingerprint`]).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// splitmix64 — drives backoff jitter on a stream of its own.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked (non-string payload)".to_string()
    }
}

/// Replays a manifest: checks the header fingerprint, then parses and
/// merges records. A torn final line (the process was killed mid-write)
/// is tolerated; a torn or alien *header* is not.
fn read_manifest(path: &Path, fingerprint: &str) -> Result<Vec<CellRecord>> {
    match load_manifest(path)? {
        None => Ok(Vec::new()), // empty file: fresh manifest
        Some((owner, records)) => {
            if owner != fingerprint {
                return Err(CoreError::Manifest(format!(
                    "manifest belongs to campaign {owner} but this campaign is {fingerprint}; \
                     refusing to mix cells"
                )));
            }
            Ok(records)
        }
    }
}

/// Reads a campaign manifest back without knowing its spec: returns the
/// owning campaign's fingerprint and the *surviving* cell records (lease
/// fencing applied — a stale worker's late append is dropped), or `None`
/// for an empty file. Post-hoc inspection tooling (`hetsched report`)
/// uses this directly, and resume layers a fingerprint check on top.
///
/// This is a convenience wrapper over
/// [`crate::manifest::load_manifest_records`] +
/// [`crate::manifest::replay_records`] for callers that only want the
/// merged cell view; callers that also need lease state (who holds what,
/// steal/fence counts) should use those directly.
///
/// # Errors
///
/// I/O failures, a corrupt or torn header, or an unsupported manifest
/// version (older than v3 or newer than v4).
pub fn load_manifest(path: &Path) -> Result<Option<(String, Vec<CellRecord>)>> {
    match load_manifest_records(path)? {
        None => Ok(None),
        Some((owner, records)) => Ok(Some((owner, replay_records(&records).cells))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        let mut base = ExperimentConfig::dataset1();
        base.tasks = 25;
        base.population = 10;
        base.snapshots = vec![2, 4];
        base.seeds = vec![SeedKind::MinEnergy, SeedKind::Random];
        CampaignSpec {
            base,
            datasets: vec![DatasetId::One],
            algorithms: vec![Algorithm::Nsga2, Algorithm::Spea2],
            replicates: 2,
        }
    }

    #[test]
    fn builder_defaults_to_the_single_grid() {
        let base = ExperimentConfig::dataset1();
        let spec = CampaignSpec::builder(base.clone()).build().unwrap();
        assert_eq!(spec, CampaignSpec::single(&base));
    }

    #[test]
    fn builder_sets_axes_and_validates_at_build() {
        let spec = CampaignSpec::builder(ExperimentConfig::dataset1())
            .datasets(vec![DatasetId::One, DatasetId::Two])
            .algorithms(vec![Algorithm::Nsga2, Algorithm::Moead])
            .replicates(3)
            .build()
            .unwrap();
        assert_eq!(spec.datasets, vec![DatasetId::One, DatasetId::Two]);
        assert_eq!(spec.algorithms, vec![Algorithm::Nsga2, Algorithm::Moead]);
        assert_eq!(spec.replicates, 3);

        // Empty axes, zero replicates, and duplicates are all rejected.
        assert!(CampaignSpec::builder(ExperimentConfig::dataset1())
            .datasets(vec![])
            .build()
            .is_err());
        assert!(CampaignSpec::builder(ExperimentConfig::dataset1())
            .algorithms(vec![])
            .build()
            .is_err());
        assert!(CampaignSpec::builder(ExperimentConfig::dataset1())
            .replicates(0)
            .build()
            .is_err());
        assert!(CampaignSpec::builder(ExperimentConfig::dataset1())
            .datasets(vec![DatasetId::One, DatasetId::One])
            .build()
            .is_err());
    }

    fn temp_manifest(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "hetsched-campaign-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn cells_cover_the_grid_in_canonical_order() {
        let spec = tiny_spec();
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(
            cells[0],
            CellId {
                dataset: DatasetId::One,
                algorithm: Algorithm::Nsga2,
                seed: SeedKind::MinEnergy,
                replicate: 0,
            }
        );
        // Dataset-major, then algorithm: the second half is SPEA2.
        assert!(cells[4..].iter().all(|c| c.algorithm == Algorithm::Spea2));
    }

    #[test]
    fn spec_validation_rejects_degenerate_grids() {
        let mut spec = tiny_spec();
        spec.datasets.clear();
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.replicates = 0;
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.algorithms = vec![Algorithm::Nsga2, Algorithm::Nsga2];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let spec = tiny_spec();
        assert_eq!(spec.fingerprint(), spec.fingerprint());
        let mut other = tiny_spec();
        other.base.rng_seed ^= 1;
        assert_ne!(spec.fingerprint(), other.fingerprint());
    }

    #[test]
    fn single_dataset_campaign_reproduces_framework_run() {
        let spec = CampaignSpec::single(&tiny_spec().base);
        let outcome = Campaign::new(spec.clone()).run(None).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.reports.len(), 1);
        let direct = Framework::new(&spec.base).unwrap().run();
        assert_eq!(outcome.reports[0].report, direct);
    }

    #[test]
    fn campaign_resumes_from_manifest_bit_identically() {
        let spec = tiny_spec();
        let uninterrupted = Campaign::new(spec.clone()).run(None).unwrap();
        assert!(uninterrupted.is_complete());

        // Write a full manifest, then simulate a kill after three cells by
        // truncating it at a record boundary (deterministic regardless of
        // host core count, unlike racing the cancel token).
        let path = temp_manifest("resume");
        let _ = std::fs::remove_file(&path);
        Campaign::new(spec.clone()).run(Some(&path)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: String = text.lines().take(1 + 3).fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
        std::fs::write(&path, kept).unwrap();

        // Second invocation replays the manifest and finishes the rest.
        let resumed = Campaign::new(spec).run(Some(&path)).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(resumed.is_complete());
        assert_eq!(resumed.replayed, 3);
        assert_eq!(
            resumed.executed + resumed.replayed,
            uninterrupted.executed,
            "resume re-executed replayed cells"
        );
        assert_eq!(resumed.reports, uninterrupted.reports);
        // Byte-identical, not just PartialEq-identical.
        for (a, b) in resumed.reports.iter().zip(&uninterrupted.reports) {
            assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap()
            );
        }
    }

    #[test]
    fn failing_cell_is_retried_then_recorded_without_sinking_the_campaign() {
        let spec = tiny_spec();
        let doomed = CellId {
            dataset: DatasetId::One,
            algorithm: Algorithm::Spea2,
            seed: SeedKind::Random,
            replicate: 1,
        };
        let flaky = CellId {
            algorithm: Algorithm::Nsga2,
            ..doomed
        };
        let outcome = Campaign::new(spec)
            .attempts(2)
            .with_fault_injection(move |cell, attempt| {
                if *cell == doomed {
                    Some("injected permanent fault".to_string())
                } else if *cell == flaky && attempt == 1 {
                    Some("injected transient fault".to_string())
                } else {
                    None
                }
            })
            .run(None)
            .unwrap();
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].cell, doomed);
        assert_eq!(outcome.failed[0].attempts, 2);
        assert_eq!(
            outcome.failed[0].error.as_deref(),
            Some("injected permanent fault")
        );
        // The transient cell recovered on attempt 2...
        assert!(outcome.skipped.is_empty());
        // ...so only the grid point containing the doomed cell is missing.
        assert_eq!(outcome.reports.len(), 3);
        assert!(outcome
            .report(doomed.dataset, doomed.algorithm, doomed.replicate)
            .is_none());
    }

    #[test]
    fn manifest_from_a_different_spec_is_rejected() {
        let path = temp_manifest("mismatch");
        let _ = std::fs::remove_file(&path);
        let spec = tiny_spec();
        Campaign::new(spec.clone()).run(Some(&path)).unwrap();
        let mut other = spec;
        other.base.rng_seed ^= 0xBEEF;
        let err = Campaign::new(other).run(Some(&path)).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(
            matches!(err, CoreError::Manifest(_)),
            "expected manifest mismatch, got {err:?}"
        );
    }

    #[test]
    fn torn_final_line_is_dropped_and_reexecuted() {
        let path = temp_manifest("torn");
        let _ = std::fs::remove_file(&path);
        let spec = tiny_spec();
        let full = Campaign::new(spec.clone()).run(Some(&path)).unwrap();
        assert!(full.is_complete());

        // Simulate a kill mid-write: truncate the file inside its last
        // record.
        let text = std::fs::read_to_string(&path).unwrap();
        let truncated = &text[..text.len() - 17];
        assert!(!truncated.ends_with('\n'));
        std::fs::write(&path, truncated).unwrap();

        let resumed = Campaign::new(spec).run(Some(&path)).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(resumed.is_complete());
        assert_eq!(resumed.executed, 1, "exactly the torn cell re-runs");
        assert_eq!(resumed.reports, full.reports);
    }

    #[test]
    fn observer_sees_full_cell_lifecycle_and_results_are_unchanged() {
        use crate::telemetry::{Heartbeat, MetricsRegistry, TelemetryObserver};

        let spec = tiny_spec();
        let bare = Campaign::new(spec.clone()).run(None).unwrap();

        let flaky = CellId {
            dataset: DatasetId::One,
            algorithm: Algorithm::Nsga2,
            seed: SeedKind::Random,
            replicate: 1,
        };
        let registry = Arc::new(MetricsRegistry::new());
        let observer = Arc::new(TelemetryObserver::new(Arc::clone(&registry)));
        let observed = Campaign::new(spec)
            .attempts(2)
            .with_fault_injection(move |cell, attempt| {
                (*cell == flaky && attempt == 1).then(|| "injected".to_string())
            })
            .with_observer(observer)
            .run(None)
            .unwrap();

        // Observation must not perturb the evolved populations.
        assert_eq!(observed.reports, bare.reports);

        let s = registry.snapshot();
        assert_eq!(s.cells_total, 8);
        assert_eq!(s.cells_started, 8);
        assert_eq!(s.cells_finished, 8);
        assert_eq!(s.cells_retried, 1);
        assert_eq!(s.cells_panicked, 1);
        assert_eq!(s.cells_failed, 0);
        assert!(s.generations > 0, "engine stats reached the registry");
        assert!(s.evaluations > 0);
        assert!(s.phase_evaluation_s > 0.0);
        assert_eq!(s.cell_duration_count, 8);
        assert!(s.ewma_cell_s > 0.0);
        // And the manifest-facing record carries the duration too.
        let _ = Heartbeat::to_writer(Vec::new(), Duration::ZERO); // exercised elsewhere
    }

    #[test]
    fn cell_records_carry_positive_durations() {
        let spec = CampaignSpec::single(&tiny_spec().base);
        let path = temp_manifest("duration");
        let _ = std::fs::remove_file(&path);
        Campaign::new(spec).run(Some(&path)).unwrap();
        let (_, records) = load_manifest(&path).unwrap().expect("non-empty manifest");
        let _ = std::fs::remove_file(&path);
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.duration_s > 0.0));
    }

    #[test]
    fn cancelled_campaign_skips_every_remaining_cell() {
        let campaign = Campaign::new(tiny_spec());
        campaign.cancel_token().cancel();
        let outcome = campaign.run(None).unwrap();
        assert_eq!(outcome.executed, 0);
        assert_eq!(outcome.skipped.len(), 8);
        assert!(outcome.reports.is_empty());
        assert!(!outcome.is_complete());
    }

    #[test]
    fn expired_deadline_skips_every_cell() {
        let outcome = Campaign::new(tiny_spec())
            .deadline(Duration::ZERO)
            .run(None)
            .unwrap();
        assert_eq!(outcome.executed, 0);
        assert_eq!(outcome.skipped.len(), 8);
        assert!(outcome.reports.is_empty());
    }

    #[test]
    fn load_manifest_rejects_corrupt_header_and_old_versions() {
        let path = temp_manifest("badheader");

        std::fs::write(&path, "{not json at all\n").unwrap();
        let err = load_manifest(&path).unwrap_err();
        assert!(
            matches!(&err, CoreError::Manifest(m) if m.contains("corrupt manifest header")),
            "got {err:?}"
        );

        // A v2 manifest (pre-`outcome` records) must be refused up front,
        // not half-parsed.
        std::fs::write(&path, "{\"fingerprint\":\"deadbeef\",\"version\":2}\n").unwrap();
        let err = load_manifest(&path).unwrap_err();
        assert!(
            matches!(&err, CoreError::Manifest(m) if m.contains("version 2 unsupported")),
            "got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v3_manifests_load_with_worker_and_epoch_defaulted() {
        // A campaign written by the previous release: v3 header, cell
        // records without `worker`/`epoch` keys. Must load with both
        // fields defaulted to None rather than being refused.
        let path = temp_manifest("v3compat");
        let record = CellRecord {
            cell: tiny_spec().cells()[0],
            run: None,
            error: Some("boom".to_string()),
            outcome: CellOutcome::Poisoned,
            attempts: 2,
            duration_s: 0.25,
            worker: None,
            epoch: None,
        };
        let line = serde_json::to_string(&record).unwrap();
        assert!(
            !line.contains("worker") && !line.contains("epoch"),
            "a record without worker/epoch serialises in the v3 shape: {line}"
        );
        std::fs::write(
            &path,
            format!("{{\"fingerprint\":\"cafe0000cafe0000\",\"version\":3}}\n{line}\n"),
        )
        .unwrap();
        let (owner, records) = load_manifest(&path).unwrap().expect("v3 manifest loads");
        let _ = std::fs::remove_file(&path);
        assert_eq!(owner, "cafe0000cafe0000");
        assert_eq!(records, vec![record]);
        assert_eq!(records[0].worker, None);
        assert_eq!(records[0].epoch, None);
    }

    #[test]
    fn load_manifest_handles_empty_and_header_only_files() {
        let path = temp_manifest("headeronly");

        std::fs::write(&path, "").unwrap();
        assert_eq!(load_manifest(&path).unwrap(), None, "empty file is fresh");

        let header = format!(
            "{{\"fingerprint\":\"cafe0000cafe0000\",\"version\":{}}}\n",
            crate::manifest::MANIFEST_VERSION
        );
        std::fs::write(&path, header).unwrap();
        let (owner, records) = load_manifest(&path).unwrap().expect("header parses");
        assert_eq!(owner, "cafe0000cafe0000");
        assert!(records.is_empty(), "header-only file has no records");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_off_the_engine_rng() {
        let spec = tiny_spec();
        let cell = spec.cells()[0];
        let other = spec.cells()[1];
        let campaign = Campaign::new(spec.clone())
            .retry_backoff(Duration::from_millis(40), Duration::from_millis(200));

        // Same campaign, same cell, same attempt: identical delays.
        let again = Campaign::new(spec.clone())
            .retry_backoff(Duration::from_millis(40), Duration::from_millis(200));
        for attempt in 2..=6 {
            let d = campaign.backoff_delay(&cell, attempt);
            assert_eq!(d, again.backoff_delay(&cell, attempt));
            // Equal jitter: window/2 <= delay <= window.
            let window = Duration::from_millis(200)
                .min(Duration::from_millis(40u64 << (attempt as u64 - 2).min(20)));
            assert!(d >= window / 2 && d <= window, "attempt {attempt}: {d:?}");
        }
        // Different cells draw different jitter (with overwhelming
        // likelihood for this seed), decorrelating retry stampedes.
        assert_ne!(
            campaign.backoff_delay(&cell, 3),
            campaign.backoff_delay(&other, 3)
        );
        // The first attempt and a zero base never wait.
        assert_eq!(campaign.backoff_delay(&cell, 1), Duration::ZERO);
        let no_backoff = Campaign::new(spec).retry_backoff(Duration::ZERO, Duration::ZERO);
        assert_eq!(no_backoff.backoff_delay(&cell, 5), Duration::ZERO);
    }

    #[test]
    fn attempt_budget_never_perturbs_engine_results() {
        // The backoff/jitter stream is off the engine RNGs: a campaign
        // retried through 4 injected failures produces reports
        // byte-identical to a first-try campaign.
        let spec = tiny_spec();
        let clean = Campaign::new(spec.clone()).attempts(1).run(None).unwrap();
        let flaky = CellId {
            dataset: DatasetId::One,
            algorithm: Algorithm::Nsga2,
            seed: SeedKind::MinEnergy,
            replicate: 0,
        };
        let retried = Campaign::new(spec)
            .attempts(5)
            .retry_backoff(Duration::from_millis(1), Duration::from_millis(2))
            .with_fault_injection(move |cell, attempt| {
                (*cell == flaky && attempt < 5).then(|| "transient".to_string())
            })
            .run(None)
            .unwrap();
        assert!(clean.is_complete() && retried.is_complete());
        assert_eq!(clean.reports, retried.reports);
        for (a, b) in clean.reports.iter().zip(&retried.reports) {
            assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap()
            );
        }
    }

    #[test]
    fn watchdogged_cells_match_inline_execution_bit_for_bit() {
        // A generous timeout moves every cell onto the watchdog thread
        // path without tripping it; results must not change.
        let spec = CampaignSpec::single(&tiny_spec().base);
        let inline = Campaign::new(spec.clone()).run(None).unwrap();
        let watched = Campaign::new(spec)
            .cell_timeout(Duration::from_secs(600))
            .run(None)
            .unwrap();
        assert!(watched.is_complete());
        assert_eq!(inline.reports, watched.reports);
        for (a, b) in inline.reports.iter().zip(&watched.reports) {
            assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap()
            );
        }
    }

    #[test]
    fn expired_watchdog_records_timed_out_without_retrying() {
        // A 1ns budget expires before any real cell can finish. The cells
        // are sized up (vs `tiny_spec`) so none can sneak a result into
        // the channel before the watchdog's first deadline check — a
        // completed result always wins over an expired deadline.
        let mut base = tiny_spec().base;
        base.tasks = 200;
        base.population = 48;
        base.snapshots = vec![30];
        let spec = CampaignSpec::single(&base);
        let outcome = Campaign::new(spec)
            .attempts(3)
            .cell_timeout(Duration::from_nanos(1))
            .run(None)
            .unwrap();
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.failed.len(), 2);
        for record in &outcome.failed {
            assert_eq!(record.outcome, CellOutcome::TimedOut);
            assert_eq!(record.attempts, 1, "timeouts are terminal, not retried");
            assert!(record.error.as_deref().unwrap().contains("cell timeout"));
        }
    }

    #[test]
    fn quarantined_cells_stay_poisoned_across_resume_until_requeued() {
        let spec = tiny_spec();
        let doomed = CellId {
            dataset: DatasetId::One,
            algorithm: Algorithm::Spea2,
            seed: SeedKind::Random,
            replicate: 1,
        };
        let path = temp_manifest("quarantine");
        let _ = std::fs::remove_file(&path);

        let first = Campaign::new(spec.clone())
            .attempts(1)
            .retry_backoff(Duration::ZERO, Duration::ZERO)
            .with_fault_injection(move |cell, _| {
                (*cell == doomed).then(|| "injected permanent fault".to_string())
            })
            .run(Some(&path))
            .unwrap();
        assert_eq!(first.failed.len(), 1);
        assert_eq!(first.failed[0].outcome, CellOutcome::Poisoned);

        // Resume without the fault: the poisoned record is quarantined,
        // not retried — the budget already condemned it.
        let resumed = Campaign::new(spec.clone()).run(Some(&path)).unwrap();
        assert_eq!(resumed.executed, 0, "quarantine re-executed a cell");
        assert_eq!(resumed.replayed, 8);
        assert_eq!(resumed.failed.len(), 1);
        assert_eq!(resumed.failed[0].cell, doomed);

        // Requeueing clears the quarantine; the fresh record supersedes
        // the poisoned one and the campaign completes.
        let requeued = Campaign::new(spec.clone())
            .requeue_quarantined(true)
            .run(Some(&path))
            .unwrap();
        assert_eq!(requeued.executed, 1);
        assert!(requeued.is_complete());

        // ...and the superseding record wins on the next replay too.
        let settled = Campaign::new(spec).run(Some(&path)).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(settled.is_complete());
        assert_eq!(settled.executed, 0);
        assert_eq!(settled.reports, requeued.reports);
    }
}
