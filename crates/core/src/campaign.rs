//! Resilient experiment campaigns: a checkpoint/resume orchestrator over
//! the [`Engine`]-generic framework.
//!
//! A *campaign* is the paper's analysis workflow at full width: the grid
//! dataset × algorithm × seed-kind × replicate, expanded into independent
//! **cells** (one evolved population each) and executed on rayon. Each
//! completed cell is appended to a JSONL **manifest** and flushed, so a
//! run killed at any point resumes by replaying the manifest and
//! executing only the missing cells — and because every cell runs on a
//! decorrelated RNG stream derived purely from its coordinates, the
//! resumed campaign's [`AnalysisReport`]s are bit-identical to an
//! uninterrupted run's.
//!
//! Resilience properties:
//!
//! * **isolation** — a panicking cell is caught, retried up to the
//!   configured attempt budget, and then recorded as failed without
//!   sinking the rest of the campaign;
//! * **cooperative cancellation** — a [`CancelToken`] stops new cells
//!   from starting (in-flight cells finish and are checkpointed);
//! * **deadline** — a wall-clock budget after which remaining cells are
//!   skipped the same way;
//! * **resume** — the manifest begins with a fingerprint of the
//!   [`CampaignSpec`]; resuming with a different spec is rejected rather
//!   than silently mixing incompatible cells, and a torn final line
//!   (killed mid-write) is ignored.
//!
//! [`Engine`]: hetsched_moea::Engine

use crate::config::{DatasetId, ExperimentConfig};
use crate::framework::Framework;
use crate::report::{AnalysisReport, PopulationRun};
use crate::telemetry::{CampaignObserver, NullCampaignObserver};
use crate::{CoreError, Result};
use hetsched_heuristics::SeedKind;
use hetsched_moea::observe::GenerationStats;
use hetsched_moea::{Algorithm, Individual};
use hetsched_sim::Allocation;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The grid a campaign sweeps. `base` supplies everything the grid axes
/// don't: trace size, population, snapshot schedule, seed kinds, and the
/// master RNG seed (`base.dataset` and `base.algorithm` are ignored in
/// favour of the explicit axes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Template configuration shared by every cell.
    pub base: ExperimentConfig,
    /// Datasets to sweep (each builds one system + trace).
    pub datasets: Vec<DatasetId>,
    /// Engines to sweep.
    pub algorithms: Vec<Algorithm>,
    /// Replicates per (dataset, algorithm) point, on decorrelated RNG
    /// streams (see [`Framework::replicate_seed`]).
    pub replicates: usize,
}

impl CampaignSpec {
    /// The one-point campaign equivalent to `Framework::new(&config)` +
    /// [`Framework::run`].
    pub fn single(config: &ExperimentConfig) -> Self {
        CampaignSpec {
            datasets: vec![config.dataset],
            algorithms: vec![config.algorithm],
            replicates: 1,
            base: config.clone(),
        }
    }

    /// Validates the grid and the base configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on an empty axis, duplicate axis
    /// entries (they would alias cells in the manifest), or an invalid
    /// base config.
    pub fn validate(&self) -> Result<()> {
        self.base.validate()?;
        if self.datasets.is_empty() {
            return Err(CoreError::InvalidConfig("campaign needs >= 1 dataset"));
        }
        if self.algorithms.is_empty() {
            return Err(CoreError::InvalidConfig("campaign needs >= 1 algorithm"));
        }
        if self.replicates == 0 {
            return Err(CoreError::InvalidConfig("campaign needs >= 1 replicate"));
        }
        if unique_count(&self.datasets) != self.datasets.len() {
            return Err(CoreError::InvalidConfig("duplicate dataset in campaign"));
        }
        if unique_count(&self.algorithms) != self.algorithms.len() {
            return Err(CoreError::InvalidConfig("duplicate algorithm in campaign"));
        }
        if unique_count(&self.base.seeds) != self.base.seeds.len() {
            return Err(CoreError::InvalidConfig("duplicate seed kind in campaign"));
        }
        Ok(())
    }

    /// Expands the grid into cells, in the campaign's canonical order
    /// (dataset, then algorithm, then replicate, then seed kind).
    pub fn cells(&self) -> Vec<CellId> {
        let mut out =
            Vec::with_capacity(self.datasets.len() * self.algorithms.len() * self.replicates);
        for &dataset in &self.datasets {
            for &algorithm in &self.algorithms {
                for replicate in 0..self.replicates {
                    for &seed in &self.base.seeds {
                        out.push(CellId {
                            dataset,
                            algorithm,
                            seed,
                            replicate,
                        });
                    }
                }
            }
        }
        out
    }

    /// A stable fingerprint of the spec (FNV-1a over its canonical JSON),
    /// written as the manifest header so a manifest can never be resumed
    /// against a different campaign.
    pub fn fingerprint(&self) -> String {
        let json = serde_json::to_string(self).unwrap_or_default();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in json.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

fn unique_count<T: PartialEq>(items: &[T]) -> usize {
    items
        .iter()
        .enumerate()
        .filter(|(i, item)| !items[..*i].contains(item))
        .count()
}

/// Coordinates of one campaign cell: a single evolved population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellId {
    /// Which dataset's system + trace the cell runs on.
    pub dataset: DatasetId,
    /// Which engine evolves the population.
    pub algorithm: Algorithm,
    /// The seeding heuristic of the population.
    pub seed: SeedKind,
    /// Replicate index (decorrelates the RNG stream).
    pub replicate: usize,
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}/{}/{}/r{}",
            self.dataset,
            self.algorithm,
            self.seed.label(),
            self.replicate
        )
    }
}

/// One manifest line: a cell's outcome. Exactly one of `run` (success)
/// and `error` (failed after all attempts) is set — a data-carrying enum
/// would say this in the type, but the vendored serde derive only handles
/// flat structs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Which cell this records.
    pub cell: CellId,
    /// The evolved population's snapshot fronts, on success.
    pub run: Option<PopulationRun>,
    /// The last attempt's panic/failure message, on failure.
    pub error: Option<String>,
    /// How many attempts were made.
    pub attempts: usize,
    /// Wall-clock seconds the cell took, all attempts included.
    pub duration_s: f64,
}

/// The manifest's first line, guarding resume against spec mismatches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ManifestHeader {
    /// [`CampaignSpec::fingerprint`] of the campaign that owns the file.
    fingerprint: String,
    /// Manifest format version.
    version: usize,
}

/// Current manifest format version. Bumped to 2 when [`CellRecord`] grew
/// `duration_s`: the vendored serde derive rejects missing fields, so a
/// v1 manifest must be refused up front rather than half-parsed.
const MANIFEST_VERSION: usize = 2;

/// Cooperative cancellation flag, cloneable across threads: call
/// [`CancelToken::cancel`] from anywhere (a ctrl-c handler, a watchdog)
/// and the campaign stops starting new cells.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// One per-(dataset, algorithm, replicate) result assembled from a
/// campaign's cells — the campaign analogue of [`Framework::run`]'s
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The dataset axis value.
    pub dataset: DatasetId,
    /// The algorithm axis value.
    pub algorithm: Algorithm,
    /// The replicate index.
    pub replicate: usize,
    /// One run per seed kind, in `base.seeds` order.
    pub report: AnalysisReport,
}

/// What a campaign invocation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Complete reports (every seed-kind cell succeeded), in canonical
    /// grid order. Grid points with failed or skipped cells are omitted.
    pub reports: Vec<CampaignReport>,
    /// Cells that exhausted their attempts, in canonical order.
    pub failed: Vec<CellRecord>,
    /// Cells not executed because of cancellation or the deadline.
    pub skipped: Vec<CellId>,
    /// Cells executed by *this* invocation.
    pub executed: usize,
    /// Cells replayed from the manifest instead of executed.
    pub replayed: usize,
}

impl CampaignOutcome {
    /// The report for one grid point, if complete.
    pub fn report(
        &self,
        dataset: DatasetId,
        algorithm: Algorithm,
        replicate: usize,
    ) -> Option<&AnalysisReport> {
        self.reports
            .iter()
            .find(|r| r.dataset == dataset && r.algorithm == algorithm && r.replicate == replicate)
            .map(|r| &r.report)
    }

    /// Whether every cell of the grid completed successfully.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty()
    }
}

/// Per-attempt fault hook used by tests to simulate failing cells:
/// returns `Some(message)` to fail the attempt.
type FaultHook = dyn Fn(&CellId, usize) -> Option<String> + Send + Sync;

/// The orchestrator. Construct with [`Campaign::new`], tune with the
/// builder-style methods, then [`Campaign::run`].
pub struct Campaign {
    spec: CampaignSpec,
    attempts: usize,
    deadline: Option<Duration>,
    cancel: CancelToken,
    fault: Option<Arc<FaultHook>>,
    observer: Arc<dyn CampaignObserver>,
}

impl Campaign {
    /// A campaign over `spec` with default resilience settings: 2
    /// attempts per cell, no deadline, a fresh cancel token, no
    /// telemetry.
    pub fn new(spec: CampaignSpec) -> Self {
        Campaign {
            spec,
            attempts: 2,
            deadline: None,
            cancel: CancelToken::new(),
            fault: None,
            observer: Arc::new(NullCampaignObserver),
        }
    }

    /// The spec under execution.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Sets the per-cell attempt budget (first try + retries; min 1).
    pub fn attempts(mut self, attempts: usize) -> Self {
        self.attempts = attempts.max(1);
        self
    }

    /// Sets a wall-clock budget measured from [`Campaign::run`]'s start;
    /// cells not yet started when it expires are skipped.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Uses an external cancel token (e.g. shared with a signal handler).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A clone of the campaign's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Attaches a [`CampaignObserver`] receiving cell lifecycle events
    /// and per-generation engine stats. When the observer's
    /// [`enabled`](CampaignObserver::enabled) is `false` (the default
    /// [`NullCampaignObserver`]) all event plumbing is skipped and the
    /// engines run unobserved, so telemetry is pay-for-what-you-use.
    pub fn with_observer(mut self, observer: Arc<dyn CampaignObserver>) -> Self {
        self.observer = observer;
        self
    }

    /// Injects a per-attempt fault: `hook(cell, attempt)` returning
    /// `Some(message)` makes that attempt fail. Test-only plumbing for
    /// exercising retry and failure recording.
    #[doc(hidden)]
    pub fn with_fault_injection(
        mut self,
        hook: impl Fn(&CellId, usize) -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        self.fault = Some(Arc::new(hook));
        self
    }

    /// Runs the campaign, checkpointing to `manifest` when given. An
    /// existing manifest is replayed first (resume); its successfully
    /// recorded cells are not re-executed.
    ///
    /// # Errors
    ///
    /// Spec validation, framework construction, manifest I/O, or a
    /// manifest written by a different spec.
    pub fn run(&self, manifest: Option<&Path>) -> Result<CampaignOutcome> {
        self.spec.validate()?;
        let cells = self.spec.cells();
        let fingerprint = self.spec.fingerprint();

        // Replay, then open for append (creating + stamping the header on
        // a fresh file).
        let mut known: HashMap<CellId, CellRecord> = HashMap::new();
        let sink = match manifest {
            Some(path) => {
                if path.exists() {
                    for record in read_manifest(path, &fingerprint)? {
                        known.insert(record.cell, record);
                    }
                }
                Some(open_manifest(path, &fingerprint)?)
            }
            None => None,
        };
        // Failed records get a fresh chance on resume; only successes are
        // replayed.
        known.retain(|_, r| r.run.is_some());
        let replayed = cells.iter().filter(|c| known.contains_key(c)).count();

        // One framework per dataset, built once and shared by its cells
        // (the system and trace depend only on the dataset and the base
        // master seed, never on algorithm or replicate).
        let mut frameworks: HashMap<DatasetId, Framework> = HashMap::new();
        for &dataset in &self.spec.datasets {
            let mut config = self.spec.base.clone();
            config.dataset = dataset;
            frameworks.insert(dataset, Framework::new(&config)?);
        }
        let streams: HashMap<SeedKind, u64> = self
            .spec
            .base
            .seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u64))
            .collect();

        let started = Instant::now();
        let missing: Vec<CellId> = cells
            .iter()
            .copied()
            .filter(|c| !known.contains_key(c))
            .collect();
        tracing::info!(
            "campaign {fingerprint}: {} cells ({} replayed, {} to run)",
            cells.len(),
            replayed,
            missing.len(),
        );
        let observing = self.observer.enabled();
        if observing {
            self.observer.on_campaign_start(cells.len(), replayed);
            for cell in cells.iter().filter(|c| known.contains_key(c)) {
                self.observer.on_cell_replayed(cell);
            }
        }
        let results: Vec<Option<CellRecord>> = missing
            .par_iter()
            .map(|&cell| {
                let expired = self
                    .deadline
                    .is_some_and(|budget| started.elapsed() >= budget);
                if self.cancel.is_cancelled() || expired {
                    if observing {
                        self.observer.on_cell_skipped(&cell);
                    }
                    return None;
                }
                let record =
                    self.execute_cell(&frameworks[&cell.dataset], cell, streams[&cell.seed]);
                if let Some(sink) = &sink {
                    if let Err(e) = sink.append(&record) {
                        // A lost checkpoint only costs re-execution on the
                        // next resume; the computed record is still used.
                        tracing::warn!("manifest append failed for cell {cell}: {e}");
                    }
                }
                Some(record)
            })
            .collect();

        let executed = results.iter().flatten().count();
        let skipped: Vec<CellId> = missing
            .iter()
            .zip(&results)
            .filter(|(_, r)| r.is_none())
            .map(|(&c, _)| c)
            .collect();
        for record in results.into_iter().flatten() {
            known.insert(record.cell, record);
        }
        if observing {
            self.observer.on_campaign_end();
        }

        Ok(self.assemble(&cells, known, skipped, executed, replayed))
    }

    /// Runs one cell with the attempt budget, catching panics. Fires
    /// observer lifecycle events when observation is enabled; the engine
    /// itself is observed (per-generation stats routed to
    /// [`CampaignObserver::on_generation`]) only then — the observation
    /// contract guarantees the evolved population is identical either
    /// way.
    fn execute_cell(&self, framework: &Framework, cell: CellId, stream: u64) -> CellRecord {
        let observing = self.observer.enabled();
        let cell_started = Instant::now();
        if observing {
            self.observer.on_cell_start(&cell);
        }
        let mut last_error = String::new();
        for attempt in 1..=self.attempts {
            if attempt > 1 && observing {
                self.observer.on_cell_retry(&cell, attempt);
            }
            if let Some(hook) = &self.fault {
                if let Some(message) = hook(&cell, attempt) {
                    tracing::warn!("cell {cell} attempt {attempt} failed (injected): {message}");
                    if observing {
                        self.observer.on_cell_panic(&cell, attempt, &message);
                    }
                    last_error = message;
                    continue;
                }
            }
            let fw = framework.variant(
                Framework::replicate_seed(self.spec.base.rng_seed, cell.replicate as u64),
                cell.algorithm,
            );
            let run = catch_unwind(AssertUnwindSafe(|| {
                if observing {
                    let mut bridge = CellStatsBridge {
                        cell,
                        observer: self.observer.as_ref(),
                    };
                    fw.run_population_observed(cell.seed, stream, &mut bridge)
                } else {
                    fw.run_population(cell.seed, stream)
                }
            }));
            match run {
                Ok(run) => {
                    if observing {
                        self.observer
                            .on_cell_finish(&cell, attempt, cell_started.elapsed());
                    }
                    return CellRecord {
                        cell,
                        run: Some(run),
                        error: None,
                        attempts: attempt,
                        duration_s: cell_started.elapsed().as_secs_f64(),
                    };
                }
                Err(payload) => {
                    last_error = panic_message(payload);
                    tracing::warn!("cell {cell} attempt {attempt} panicked: {last_error}");
                    if observing {
                        self.observer.on_cell_panic(&cell, attempt, &last_error);
                    }
                }
            }
        }
        if observing {
            self.observer
                .on_cell_failed(&cell, self.attempts, &last_error);
        }
        CellRecord {
            cell,
            run: None,
            error: Some(last_error),
            attempts: self.attempts,
            duration_s: cell_started.elapsed().as_secs_f64(),
        }
    }

    /// Groups cell records into per-grid-point reports, in canonical
    /// order — the step that makes resumed and uninterrupted campaigns
    /// indistinguishable.
    fn assemble(
        &self,
        cells: &[CellId],
        known: HashMap<CellId, CellRecord>,
        skipped: Vec<CellId>,
        executed: usize,
        replayed: usize,
    ) -> CampaignOutcome {
        let mut reports = Vec::new();
        for &dataset in &self.spec.datasets {
            for &algorithm in &self.spec.algorithms {
                for replicate in 0..self.spec.replicates {
                    let runs: Vec<PopulationRun> = self
                        .spec
                        .base
                        .seeds
                        .iter()
                        .filter_map(|&seed| {
                            let cell = CellId {
                                dataset,
                                algorithm,
                                seed,
                                replicate,
                            };
                            known.get(&cell).and_then(|r| r.run.clone())
                        })
                        .collect();
                    if runs.len() == self.spec.base.seeds.len() {
                        reports.push(CampaignReport {
                            dataset,
                            algorithm,
                            replicate,
                            report: AnalysisReport {
                                runs,
                                snapshots: self.spec.base.snapshots.clone(),
                            },
                        });
                    }
                }
            }
        }
        let failed: Vec<CellRecord> = cells
            .iter()
            .filter_map(|c| known.get(c).filter(|r| r.run.is_none()).cloned())
            .collect();
        CampaignOutcome {
            reports,
            failed,
            skipped,
            executed,
            replayed,
        }
    }
}

/// Adapts the campaign observer to the engine's per-generation
/// [`Observer`](hetsched_moea::observe::Observer) hook for one cell, so
/// every observed generation anywhere in the grid rolls up to
/// [`CampaignObserver::on_generation`].
struct CellStatsBridge<'a> {
    cell: CellId,
    observer: &'a dyn CampaignObserver,
}

impl hetsched_moea::observe::Observer<Allocation> for CellStatsBridge<'_> {
    fn on_generation(&mut self, stats: &GenerationStats, _population: &[Individual<Allocation>]) {
        self.observer.on_generation(&self.cell, stats);
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked (non-string payload)".to_string()
    }
}

/// The append-side manifest: line-buffered behind a mutex, flushed per
/// record so a kill loses at most the line being written.
struct ManifestSink {
    writer: Mutex<BufWriter<File>>,
}

impl ManifestSink {
    fn append(&self, record: &CellRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut writer = self.writer.lock().expect("manifest mutex poisoned");
        writeln!(writer, "{line}")?;
        writer.flush()
    }
}

/// Opens `path` for appending, writing the fingerprint header if the file
/// is new or empty.
fn open_manifest(path: &Path, fingerprint: &str) -> Result<ManifestSink> {
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| CoreError::Io(format!("open manifest {}: {e}", path.display())))?;
    let fresh = file
        .metadata()
        .map(|m| m.len() == 0)
        .map_err(|e| CoreError::Io(format!("stat manifest {}: {e}", path.display())))?;
    let mut writer = BufWriter::new(file);
    if fresh {
        let header = ManifestHeader {
            fingerprint: fingerprint.to_string(),
            version: MANIFEST_VERSION,
        };
        writeln!(
            writer,
            "{}",
            serde_json::to_string(&header).expect("header serialises")
        )
        .and_then(|()| writer.flush())
        .map_err(|e| CoreError::Io(format!("write manifest header: {e}")))?;
    }
    Ok(ManifestSink {
        writer: Mutex::new(writer),
    })
}

/// Replays a manifest: checks the header fingerprint, then parses cell
/// records. A torn final line (the process was killed mid-write) is
/// tolerated; a torn or alien *header* is not.
fn read_manifest(path: &Path, fingerprint: &str) -> Result<Vec<CellRecord>> {
    match load_manifest(path)? {
        None => Ok(Vec::new()), // empty file: fresh manifest
        Some((owner, records)) => {
            if owner != fingerprint {
                return Err(CoreError::Manifest(format!(
                    "manifest belongs to campaign {owner} but this campaign is {fingerprint}; \
                     refusing to mix cells"
                )));
            }
            Ok(records)
        }
    }
}

/// Reads a campaign manifest back without knowing its spec: returns the
/// owning campaign's fingerprint and the cell records, or `None` for an
/// empty file. A torn final line (the process was killed mid-write) is
/// dropped; post-hoc inspection tooling (`hetsched report`) uses this
/// directly, and resume layers a fingerprint check on top.
///
/// # Errors
///
/// I/O failures, a corrupt or torn header, an unsupported manifest
/// version, or records after a torn line (they can't be trusted to
/// belong where they claim).
pub fn load_manifest(path: &Path) -> Result<Option<(String, Vec<CellRecord>)>> {
    let file = File::open(path)
        .map_err(|e| CoreError::Io(format!("open manifest {}: {e}", path.display())))?;
    let mut lines = BufReader::new(file).lines();
    let header_line = match lines.next() {
        None => return Ok(None),
        Some(line) => line.map_err(|e| CoreError::Io(format!("read manifest: {e}")))?,
    };
    let header: ManifestHeader = serde_json::from_str(&header_line)
        .map_err(|e| CoreError::Manifest(format!("corrupt manifest header: {e}")))?;
    if header.version != MANIFEST_VERSION {
        return Err(CoreError::Manifest(format!(
            "manifest version {} unsupported (expected {MANIFEST_VERSION})",
            header.version
        )));
    }
    let mut records = Vec::new();
    let mut torn = false;
    for line in lines {
        let line = line.map_err(|e| CoreError::Io(format!("read manifest: {e}")))?;
        if torn {
            // Records after a torn line can't be trusted to belong where
            // they claim (the torn line may have swallowed a newline).
            return Err(CoreError::Manifest(
                "manifest has records after a torn line".to_string(),
            ));
        }
        match serde_json::from_str::<CellRecord>(&line) {
            Ok(record) => records.push(record),
            Err(_) => torn = true, // killed mid-write: drop the tail record
        }
    }
    Ok(Some((header.fingerprint, records)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        let mut base = ExperimentConfig::dataset1();
        base.tasks = 25;
        base.population = 10;
        base.snapshots = vec![2, 4];
        base.seeds = vec![SeedKind::MinEnergy, SeedKind::Random];
        CampaignSpec {
            base,
            datasets: vec![DatasetId::One],
            algorithms: vec![Algorithm::Nsga2, Algorithm::Spea2],
            replicates: 2,
        }
    }

    fn temp_manifest(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "hetsched-campaign-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn cells_cover_the_grid_in_canonical_order() {
        let spec = tiny_spec();
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(
            cells[0],
            CellId {
                dataset: DatasetId::One,
                algorithm: Algorithm::Nsga2,
                seed: SeedKind::MinEnergy,
                replicate: 0,
            }
        );
        // Dataset-major, then algorithm: the second half is SPEA2.
        assert!(cells[4..].iter().all(|c| c.algorithm == Algorithm::Spea2));
    }

    #[test]
    fn spec_validation_rejects_degenerate_grids() {
        let mut spec = tiny_spec();
        spec.datasets.clear();
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.replicates = 0;
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.algorithms = vec![Algorithm::Nsga2, Algorithm::Nsga2];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let spec = tiny_spec();
        assert_eq!(spec.fingerprint(), spec.fingerprint());
        let mut other = tiny_spec();
        other.base.rng_seed ^= 1;
        assert_ne!(spec.fingerprint(), other.fingerprint());
    }

    #[test]
    fn single_dataset_campaign_reproduces_framework_run() {
        let spec = CampaignSpec::single(&tiny_spec().base);
        let outcome = Campaign::new(spec.clone()).run(None).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.reports.len(), 1);
        let direct = Framework::new(&spec.base).unwrap().run();
        assert_eq!(outcome.reports[0].report, direct);
    }

    #[test]
    fn campaign_resumes_from_manifest_bit_identically() {
        let spec = tiny_spec();
        let uninterrupted = Campaign::new(spec.clone()).run(None).unwrap();
        assert!(uninterrupted.is_complete());

        // Write a full manifest, then simulate a kill after three cells by
        // truncating it at a record boundary (deterministic regardless of
        // host core count, unlike racing the cancel token).
        let path = temp_manifest("resume");
        let _ = std::fs::remove_file(&path);
        Campaign::new(spec.clone()).run(Some(&path)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: String = text.lines().take(1 + 3).fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
        std::fs::write(&path, kept).unwrap();

        // Second invocation replays the manifest and finishes the rest.
        let resumed = Campaign::new(spec).run(Some(&path)).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(resumed.is_complete());
        assert_eq!(resumed.replayed, 3);
        assert_eq!(
            resumed.executed + resumed.replayed,
            uninterrupted.executed,
            "resume re-executed replayed cells"
        );
        assert_eq!(resumed.reports, uninterrupted.reports);
        // Byte-identical, not just PartialEq-identical.
        for (a, b) in resumed.reports.iter().zip(&uninterrupted.reports) {
            assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap()
            );
        }
    }

    #[test]
    fn failing_cell_is_retried_then_recorded_without_sinking_the_campaign() {
        let spec = tiny_spec();
        let doomed = CellId {
            dataset: DatasetId::One,
            algorithm: Algorithm::Spea2,
            seed: SeedKind::Random,
            replicate: 1,
        };
        let flaky = CellId {
            algorithm: Algorithm::Nsga2,
            ..doomed
        };
        let outcome = Campaign::new(spec)
            .attempts(2)
            .with_fault_injection(move |cell, attempt| {
                if *cell == doomed {
                    Some("injected permanent fault".to_string())
                } else if *cell == flaky && attempt == 1 {
                    Some("injected transient fault".to_string())
                } else {
                    None
                }
            })
            .run(None)
            .unwrap();
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].cell, doomed);
        assert_eq!(outcome.failed[0].attempts, 2);
        assert_eq!(
            outcome.failed[0].error.as_deref(),
            Some("injected permanent fault")
        );
        // The transient cell recovered on attempt 2...
        assert!(outcome.skipped.is_empty());
        // ...so only the grid point containing the doomed cell is missing.
        assert_eq!(outcome.reports.len(), 3);
        assert!(outcome
            .report(doomed.dataset, doomed.algorithm, doomed.replicate)
            .is_none());
    }

    #[test]
    fn manifest_from_a_different_spec_is_rejected() {
        let path = temp_manifest("mismatch");
        let _ = std::fs::remove_file(&path);
        let spec = tiny_spec();
        Campaign::new(spec.clone()).run(Some(&path)).unwrap();
        let mut other = spec;
        other.base.rng_seed ^= 0xBEEF;
        let err = Campaign::new(other).run(Some(&path)).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(
            matches!(err, CoreError::Manifest(_)),
            "expected manifest mismatch, got {err:?}"
        );
    }

    #[test]
    fn torn_final_line_is_dropped_and_reexecuted() {
        let path = temp_manifest("torn");
        let _ = std::fs::remove_file(&path);
        let spec = tiny_spec();
        let full = Campaign::new(spec.clone()).run(Some(&path)).unwrap();
        assert!(full.is_complete());

        // Simulate a kill mid-write: truncate the file inside its last
        // record.
        let text = std::fs::read_to_string(&path).unwrap();
        let truncated = &text[..text.len() - 17];
        assert!(!truncated.ends_with('\n'));
        std::fs::write(&path, truncated).unwrap();

        let resumed = Campaign::new(spec).run(Some(&path)).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(resumed.is_complete());
        assert_eq!(resumed.executed, 1, "exactly the torn cell re-runs");
        assert_eq!(resumed.reports, full.reports);
    }

    #[test]
    fn observer_sees_full_cell_lifecycle_and_results_are_unchanged() {
        use crate::telemetry::{Heartbeat, MetricsRegistry, TelemetryObserver};

        let spec = tiny_spec();
        let bare = Campaign::new(spec.clone()).run(None).unwrap();

        let flaky = CellId {
            dataset: DatasetId::One,
            algorithm: Algorithm::Nsga2,
            seed: SeedKind::Random,
            replicate: 1,
        };
        let registry = Arc::new(MetricsRegistry::new());
        let observer = Arc::new(TelemetryObserver::new(Arc::clone(&registry)));
        let observed = Campaign::new(spec)
            .attempts(2)
            .with_fault_injection(move |cell, attempt| {
                (*cell == flaky && attempt == 1).then(|| "injected".to_string())
            })
            .with_observer(observer)
            .run(None)
            .unwrap();

        // Observation must not perturb the evolved populations.
        assert_eq!(observed.reports, bare.reports);

        let s = registry.snapshot();
        assert_eq!(s.cells_total, 8);
        assert_eq!(s.cells_started, 8);
        assert_eq!(s.cells_finished, 8);
        assert_eq!(s.cells_retried, 1);
        assert_eq!(s.cells_panicked, 1);
        assert_eq!(s.cells_failed, 0);
        assert!(s.generations > 0, "engine stats reached the registry");
        assert!(s.evaluations > 0);
        assert!(s.phase_evaluation_s > 0.0);
        assert_eq!(s.cell_duration_count, 8);
        assert!(s.ewma_cell_s > 0.0);
        // And the manifest-facing record carries the duration too.
        let _ = Heartbeat::to_writer(Vec::new(), Duration::ZERO); // exercised elsewhere
    }

    #[test]
    fn cell_records_carry_positive_durations() {
        let spec = CampaignSpec::single(&tiny_spec().base);
        let path = temp_manifest("duration");
        let _ = std::fs::remove_file(&path);
        Campaign::new(spec).run(Some(&path)).unwrap();
        let (_, records) = load_manifest(&path).unwrap().expect("non-empty manifest");
        let _ = std::fs::remove_file(&path);
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.duration_s > 0.0));
    }

    #[test]
    fn cancelled_campaign_skips_every_remaining_cell() {
        let campaign = Campaign::new(tiny_spec());
        campaign.cancel_token().cancel();
        let outcome = campaign.run(None).unwrap();
        assert_eq!(outcome.executed, 0);
        assert_eq!(outcome.skipped.len(), 8);
        assert!(outcome.reports.is_empty());
        assert!(!outcome.is_complete());
    }

    #[test]
    fn expired_deadline_skips_every_cell() {
        let outcome = Campaign::new(tiny_spec())
            .deadline(Duration::ZERO)
            .run(None)
            .unwrap();
        assert_eq!(outcome.executed, 0);
        assert_eq!(outcome.skipped.len(), 8);
        assert!(outcome.reports.is_empty());
    }
}
