//! The [`Framework`]: builds a data set + trace and runs one MOEA
//! population per seed configuration, collecting fronts at the configured
//! snapshot iterations.
//!
//! The engine is selected by `ExperimentConfig::algorithm` and dispatched
//! through the [`hetsched_moea::Engine`] trait, so the same framework runs
//! NSGA-II (the paper's engine), MOEA/D, or SPEA2 — or any external
//! engine via [`Framework::run_population_with_engine`].

use crate::config::{DatasetId, ExperimentConfig};
use crate::journal::{JournalObserver, RunJournal};
use crate::report::{AnalysisReport, PopulationRun};
use crate::{CoreError, Result};
use hetsched_alloc::AllocationProblem;
use hetsched_analysis::ParetoFront;
use hetsched_data::{real_system, HcSystem};
use hetsched_heuristics::SeedKind;
use hetsched_moea::observe::{NullObserver, Observer};
use hetsched_moea::{Engine, EngineConfig, Individual};
use hetsched_sim::Allocation;
use hetsched_workload::{Trace, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// A bound experiment: system + trace + configuration.
pub struct Framework {
    system: HcSystem,
    trace: Trace,
    config: ExperimentConfig,
}

impl Framework {
    /// Builds the experiment for the configured data set (the `dataset`
    /// field selects real vs synthetic system construction).
    ///
    /// # Errors
    ///
    /// Configuration validation plus data/trace generation failures.
    pub fn new(config: &ExperimentConfig) -> Result<Self> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.rng_seed);
        let system = match config.dataset {
            DatasetId::One => real_system(),
            DatasetId::Two | DatasetId::Three => {
                hetsched_synth::builder::dataset2_system(&mut rng)?
            }
        };
        let trace = TraceGenerator::new(config.tasks, config.duration, system.task_type_count())
            .generate(&mut rng)?;
        Ok(Framework {
            system,
            trace,
            config: config.clone(),
        })
    }

    /// Convenience constructor pinning the config's dataset to
    /// [`DatasetId::One`].
    ///
    /// # Errors
    ///
    /// See [`Framework::new`].
    pub fn dataset1(config: &ExperimentConfig) -> Result<Self> {
        let mut config = config.clone();
        config.dataset = DatasetId::One;
        Framework::new(&config)
    }

    /// As [`Framework::dataset1`] for data set 2.
    ///
    /// # Errors
    ///
    /// See [`Framework::new`].
    pub fn dataset2(config: &ExperimentConfig) -> Result<Self> {
        let mut config = config.clone();
        config.dataset = DatasetId::Two;
        Framework::new(&config)
    }

    /// As [`Framework::dataset1`] for data set 3.
    ///
    /// # Errors
    ///
    /// See [`Framework::new`].
    pub fn dataset3(config: &ExperimentConfig) -> Result<Self> {
        let mut config = config.clone();
        config.dataset = DatasetId::Three;
        Framework::new(&config)
    }

    /// Wraps an externally built system and trace — the "take traces from
    /// any given system" entry point of the paper's conclusion.
    ///
    /// # Errors
    ///
    /// Configuration validation only; `tasks`/`duration` in the config are
    /// overridden by the trace's actual values.
    pub fn custom(system: HcSystem, trace: Trace, config: &ExperimentConfig) -> Result<Self> {
        let mut config = config.clone();
        config.tasks = trace.len();
        config.duration = trace.duration();
        config.validate()?;
        Ok(Framework {
            system,
            trace,
            config,
        })
    }

    /// The system under analysis.
    pub fn system(&self) -> &HcSystem {
        &self.system
    }

    /// The trace under analysis.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The engine this framework dispatches to, assembled from the
    /// configuration (algorithm, population, mutation rate, generation
    /// budget) plus the experiment's hypervolume reference point.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig::builder()
            .algorithm(self.config.algorithm)
            .population(self.config.population)
            .mutation_rate(self.config.mutation_rate)
            .generations(self.config.generations())
            .parallel(self.config.parallel)
            .hv_reference(self.hv_reference())
            .build()
            .expect("a validated ExperimentConfig yields a valid engine config")
    }

    /// A copy of this framework sharing the same system and trace but
    /// running under a different master RNG seed and/or algorithm —
    /// replicates and algorithm sweeps vary the engine streams without
    /// re-synthesising the data set.
    pub fn variant(&self, rng_seed: u64, algorithm: hetsched_moea::Algorithm) -> Framework {
        let mut config = self.config.clone();
        config.rng_seed = rng_seed;
        config.algorithm = algorithm;
        Framework {
            system: self.system.clone(),
            trace: self.trace.clone(),
            config,
        }
    }

    /// Runs one NSGA-II population per configured seed kind (in parallel
    /// across populations) and collects the per-snapshot Pareto fronts.
    pub fn run(&self) -> AnalysisReport {
        self.run_with_journal(None)
    }

    /// As [`Framework::run`], additionally appending every population's
    /// per-generation [`crate::journal::JournalRecord`] to `journal` when
    /// one is given. Populations still run in parallel; the journal
    /// serialises appends internally.
    pub fn run_with_journal(&self, journal: Option<&RunJournal>) -> AnalysisReport {
        let runs: Vec<PopulationRun> = self
            .config
            .seeds
            .par_iter()
            .enumerate()
            .map(|(i, &seed)| match journal {
                Some(journal) => {
                    let mut observer = JournalObserver::new(journal, seed, i as u64);
                    self.run_population_observed(seed, i as u64, &mut observer)
                }
                None => self.run_population(seed, i as u64),
            })
            .collect();
        if let Some(journal) = journal {
            if let Err(e) = journal.flush() {
                tracing::warn!("journal flush failed: {e}");
            }
        }
        AnalysisReport {
            runs,
            snapshots: self.config.snapshots.clone(),
        }
    }

    /// Runs the whole experiment `replicates` times with decorrelated RNG
    /// streams and summarises each seed configuration's final fronts as an
    /// [`hetsched_analysis::AttainmentSummary`] — the robust, across-run
    /// view of the trade-off curve (one stochastic run can get lucky; the
    /// median attainment cannot).
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when `replicates == 0` — zero
    /// replicates would yield empty attainment summaries, which used to
    /// surface as a panic deep inside the summary constructor.
    pub fn run_replicated(
        &self,
        replicates: usize,
    ) -> Result<Vec<(SeedKind, hetsched_analysis::AttainmentSummary)>> {
        if replicates == 0 {
            return Err(CoreError::InvalidConfig("replicates must be >= 1"));
        }
        let reports: Vec<AnalysisReport> = (0..replicates as u64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&r| {
                // Reuse this framework's system and trace; only the engine
                // streams differ between replicates.
                self.variant(
                    Self::replicate_seed(self.config.rng_seed, r),
                    self.config.algorithm,
                )
                .run()
            })
            .collect();
        self.config
            .seeds
            .iter()
            .map(|&seed| {
                let fronts = reports
                    .iter()
                    .filter_map(|rep| rep.run(seed).map(|r| r.final_front().clone()))
                    .collect();
                let summary = hetsched_analysis::AttainmentSummary::new(fronts)
                    .ok_or(CoreError::InvalidConfig("replicates must be >= 1"))?;
                Ok((seed, summary))
            })
            .collect()
    }

    /// The decorrelated master seed of replicate `r` — shared with the
    /// campaign runner so a one-dataset campaign reproduces
    /// [`Framework::run_replicated`]'s populations bit-for-bit.
    pub fn replicate_seed(rng_seed: u64, replicate: u64) -> u64 {
        rng_seed.wrapping_add(replicate.wrapping_mul(0xA5A5_1234))
    }

    /// Runs a single seeded population.
    pub fn run_population(&self, seed: SeedKind, stream: u64) -> PopulationRun {
        self.run_population_observed(seed, stream, &mut NullObserver)
    }

    /// As [`Framework::run_population`], delivering per-generation metrics
    /// to `observer` (see [`hetsched_moea::observe`]). Dispatches to the
    /// engine selected by the configuration's `algorithm`.
    pub fn run_population_observed<O: Observer<Allocation>>(
        &self,
        seed: SeedKind,
        stream: u64,
        observer: &mut O,
    ) -> PopulationRun {
        self.run_population_with_engine(&self.engine_config(), seed, stream, observer)
    }

    /// Runs one seeded population under an arbitrary [`Engine`] — the open
    /// extension point: external engines only need to implement the trait
    /// for the allocation problem.
    pub fn run_population_with_engine<E, O>(
        &self,
        engine: &E,
        seed: SeedKind,
        stream: u64,
        observer: &mut O,
    ) -> PopulationRun
    where
        E: for<'p> Engine<AllocationProblem<'p>>,
        O: Observer<Allocation>,
    {
        let problem = AllocationProblem::new(&self.system, &self.trace);
        let seeds: Vec<Allocation> = seed.seeds(&self.system, &self.trace);
        let mut fronts: Vec<(usize, ParetoFront)> = Vec::new();
        // One deterministic RNG stream per population (stable across runs
        // and independent of rayon scheduling).
        let engine_seed =
            self.config.rng_seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream + 1));
        tracing::info!(
            "population {} (stream {stream}, {}): {} generations over {} tasks",
            seed.label(),
            Engine::<AllocationProblem<'_>>::caps(engine).algorithm,
            self.config.generations(),
            self.trace.len(),
        );
        let final_pop = engine.evolve(
            &problem,
            seeds,
            engine_seed,
            &self.config.snapshots[..self.config.snapshots.len() - 1],
            &mut |generation, population| {
                fronts.push((generation, front_of(population)));
            },
            observer,
        );
        fronts.push((self.config.generations(), front_of(&final_pop)));
        PopulationRun { seed, fronts }
    }

    /// The fixed hypervolume reference point journalled metrics are scored
    /// against: the worst corner of the objective space — zero utility
    /// (objective 0 is `-utility`, so 0.0) and every task on its most
    /// expensive machine has an upper bound in `max_utility × machines`;
    /// we use the simpler provable box `[ε, Σ max-energy]` padded slightly
    /// so boundary points still contribute area.
    fn hv_reference(&self) -> [f64; 2] {
        let max_energy: f64 = self
            .trace
            .tasks()
            .iter()
            .map(|t| {
                self.system
                    .feasible_machines(t.task_type)
                    .iter()
                    .map(|&m| self.system.energy(t.task_type, m))
                    .fold(0.0, f64::max)
            })
            .sum();
        // Objective 0 is -utility: all points lie at or below 0.0.
        [1e-9, max_energy * 1.000_001]
    }
}

fn front_of(population: &[Individual<Allocation>]) -> ParetoFront {
    ParetoFront::from_objectives(population.iter().map(|i| &i.objectives))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(dataset: DatasetId) -> ExperimentConfig {
        let mut cfg = match dataset {
            DatasetId::One => ExperimentConfig::dataset1(),
            DatasetId::Two => ExperimentConfig::dataset2(),
            DatasetId::Three => ExperimentConfig::dataset3(),
        };
        cfg.tasks = 30;
        cfg.population = 12;
        cfg.snapshots = vec![2, 6];
        cfg
    }

    #[test]
    fn dataset1_builds_real_system() {
        let fw = Framework::new(&tiny(DatasetId::One)).unwrap();
        assert_eq!(fw.system().machine_count(), 9);
        assert_eq!(fw.trace().len(), 30);
    }

    #[test]
    fn dataset2_builds_synthetic_system() {
        let fw = Framework::new(&tiny(DatasetId::Two)).unwrap();
        assert_eq!(fw.system().machine_count(), 30);
        assert_eq!(fw.system().task_type_count(), 30);
    }

    #[test]
    fn run_produces_one_population_per_seed() {
        let fw = Framework::new(&tiny(DatasetId::One)).unwrap();
        let report = fw.run();
        assert_eq!(report.runs.len(), 5);
        for run in &report.runs {
            assert_eq!(run.fronts.len(), 2, "{:?}", run.seed);
            assert_eq!(run.fronts[0].0, 2);
            assert_eq!(run.fronts[1].0, 6);
            for (_, front) in &run.fronts {
                assert!(!front.is_empty());
            }
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = tiny(DatasetId::One);
        let a = Framework::new(&cfg).unwrap().run();
        let b = Framework::new(&cfg).unwrap().run();
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.seed, rb.seed);
            for ((ia, fa), (ib, fb)) in ra.fronts.iter().zip(&rb.fronts) {
                assert_eq!(ia, ib);
                assert_eq!(fa, fb);
            }
        }
    }

    #[test]
    fn different_rng_seeds_differ() {
        let cfg = tiny(DatasetId::One);
        let mut cfg2 = cfg.clone();
        cfg2.rng_seed = 999;
        let a = Framework::new(&cfg).unwrap().run();
        let b = Framework::new(&cfg2).unwrap().run();
        // The random population's final front will almost surely differ.
        let fa = &a.runs.last().unwrap().fronts.last().unwrap().1;
        let fb = &b.runs.last().unwrap().fronts.last().unwrap().1;
        assert_ne!(fa, fb);
    }

    #[test]
    fn custom_framework_overrides_trace_parameters() {
        let system = real_system();
        let trace = TraceGenerator::new(12, 300.0, system.task_type_count())
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let mut cfg = tiny(DatasetId::One);
        cfg.tasks = 9999; // will be overridden
        let fw = Framework::custom(system, trace, &cfg).unwrap();
        assert_eq!(fw.config().tasks, 12);
        assert_eq!(fw.config().duration, 300.0);
    }

    #[test]
    fn replicated_runs_summarise_per_seed() {
        let mut cfg = tiny(DatasetId::One);
        cfg.seeds = vec![SeedKind::MinEnergy, SeedKind::Random];
        let fw = Framework::new(&cfg).unwrap();
        let summaries = fw.run_replicated(3).unwrap();
        assert_eq!(summaries.len(), 2);
        for (seed, summary) in &summaries {
            assert_eq!(summary.replicates(), 3, "{seed:?}");
            let curve = summary.median_curve(8);
            assert_eq!(curve.len(), 8);
        }
        // The min-energy summary attains the energy bound in all runs.
        let bound = hetsched_sim::Evaluator::new(fw.system(), fw.trace()).min_possible_energy();
        let (_, me) = &summaries[0];
        assert!(me.attained_by(0.0, bound * 1.0001, 3));
    }

    #[test]
    fn journaled_run_writes_one_record_per_generation_per_population() {
        let cfg = tiny(DatasetId::One);
        let fw = Framework::new(&cfg).unwrap();
        let path = std::env::temp_dir().join(format!(
            "hetsched-journal-test-{}.jsonl",
            std::process::id()
        ));
        let journal = RunJournal::create(&path).unwrap();
        let report = fw.run_with_journal(Some(&journal));
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), report.runs.len() * cfg.generations());
        for line in &lines {
            let value: serde_json::Value = serde_json::from_str(line).unwrap();
            let rendered = serde_json::to_string(&value).unwrap();
            assert!(rendered.contains("\"generation\""), "{rendered}");
            assert!(rendered.contains("\"hypervolume\""), "{rendered}");
        }
        // Journalling must not perturb the experiment itself.
        let plain = fw.run();
        for (a, b) in report.runs.iter().zip(&plain.runs) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.fronts, b.fronts);
        }
    }

    #[test]
    fn zero_replicates_is_an_error_not_a_panic() {
        let fw = Framework::new(&tiny(DatasetId::One)).unwrap();
        assert_eq!(
            fw.run_replicated(0).unwrap_err(),
            CoreError::InvalidConfig("replicates must be >= 1")
        );
    }

    #[test]
    fn every_algorithm_runs_through_the_framework() {
        for algorithm in hetsched_moea::Algorithm::ALL {
            let mut cfg = tiny(DatasetId::One);
            cfg.algorithm = algorithm;
            cfg.seeds = vec![SeedKind::MinEnergy, SeedKind::Random];
            let fw = Framework::new(&cfg).unwrap();
            let report = fw.run();
            assert_eq!(report.runs.len(), 2, "{algorithm}");
            for run in &report.runs {
                assert_eq!(run.fronts.len(), 2, "{algorithm}/{:?}", run.seed);
                for (_, front) in &run.fronts {
                    assert!(!front.is_empty(), "{algorithm}/{:?}", run.seed);
                }
            }
            // Same config, same report — determinism holds per engine.
            let again = Framework::new(&cfg).unwrap().run();
            assert_eq!(report.runs, again.runs, "{algorithm}");
        }
    }

    #[test]
    fn min_energy_population_starts_at_energy_bound() {
        // The min-energy-seeded population's first-snapshot front must
        // include the provably minimal energy value.
        let mut cfg = tiny(DatasetId::One);
        cfg.seeds = vec![SeedKind::MinEnergy];
        cfg.snapshots = vec![1, 2];
        let fw = Framework::new(&cfg).unwrap();
        let report = fw.run();
        let bound = hetsched_sim::Evaluator::new(fw.system(), fw.trace()).min_possible_energy();
        let first_front = &report.runs[0].fronts[0].1;
        let min_e = first_front.min_energy().unwrap().energy;
        assert!(
            (min_e - bound).abs() < 1e-6,
            "min energy {min_e} vs bound {bound}"
        );
    }
}
