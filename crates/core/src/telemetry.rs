//! Campaign telemetry: a cheap, shareable metrics registry plus the
//! observer that feeds it from a running [`Campaign`].
//!
//! Three layers, each usable on its own:
//!
//! * [`MetricsRegistry`] — lock-free counters, gauges, and a fixed-bucket
//!   histogram of cell durations. Every mutation is a relaxed atomic, so
//!   the registry can be shared across the campaign's rayon workers and
//!   read at any time by an exporter. Two export forms: a Prometheus-style
//!   text snapshot ([`MetricsRegistry::prometheus`]) and a structured
//!   [`MetricsSnapshot`] (serialisable, also the heartbeat's source).
//! * [`Heartbeat`] — a JSONL progress feed suitable for `tail -f`: one
//!   [`HeartbeatLine`] per interval with elapsed time, cells done/total,
//!   the EWMA cell duration, and an ETA. Opened in append mode so a
//!   killed-and-resumed campaign keeps writing to the same file and
//!   `cells_done` stays monotone across the restart.
//! * [`CampaignObserver`] — the campaign-level analogue of the engine's
//!   [`Observer`](hetsched_moea::observe::Observer) hook: per-cell
//!   lifecycle events plus the per-generation engine stats of every
//!   observed cell. The default [`NullCampaignObserver`] reports
//!   `enabled() == false` and the campaign then skips all event plumbing
//!   (and leaves the engines unobserved), so an untelemetered campaign
//!   pays one branch per event site. [`TelemetryObserver`] is the standard
//!   implementation: registry + optional heartbeat + a human progress line
//!   through `tracing`.
//!
//! [`Campaign`]: crate::campaign::Campaign

use crate::campaign::CellId;
use crate::chaos_hooks;
use crate::durable::{lock_unpoisoned, SyncOnFlush};
use hetsched_moea::observe::GenerationStats;
use serde::{Deserialize, Serialize};
use std::fs::OpenOptions;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Upper bucket boundaries (seconds) of the cell-duration histogram; an
/// implicit `+Inf` bucket follows the last entry. Roughly logarithmic from
/// a millisecond (test-sized cells) to ten minutes (paper-scale cells).
pub const CELL_DURATION_BUCKETS_S: [f64; 14] = [
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
];

/// EWMA smoothing factor for the cell-duration estimate the heartbeat's
/// ETA is derived from. 0.3 tracks drift across a heterogeneous grid
/// (datasets of different sizes) without whiplashing on one outlier.
const EWMA_ALPHA: f64 = 0.3;

/// A fixed-bucket histogram with atomic counters — the minimal shape
/// Prometheus' histogram text format needs.
#[derive(Debug)]
pub struct DurationHistogram {
    /// Per-bucket observation counts (`CELL_DURATION_BUCKETS_S` plus the
    /// trailing `+Inf` bucket), non-cumulative.
    buckets: [AtomicU64; CELL_DURATION_BUCKETS_S.len() + 1],
    /// Sum of observed values, in nanoseconds.
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl DurationHistogram {
    /// Records one observation (seconds).
    pub fn observe(&self, seconds: f64) {
        let idx = CELL_DURATION_BUCKETS_S
            .iter()
            .position(|&bound| seconds <= bound)
            .unwrap_or(CELL_DURATION_BUCKETS_S.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Atomically-updated campaign metrics, safe to share (`Arc`) between the
/// campaign's workers, a heartbeat ticker thread, and exporters.
///
/// Counters are monotone over the registry's lifetime; `cells_total` and
/// `cells_replayed` are set once at campaign start. A registry is
/// per-invocation state — resume a campaign with a *fresh* registry and
/// the replayed cells are accounted through `cells_replayed`, keeping
/// `cells_done` monotone across the restart.
#[derive(Debug)]
pub struct MetricsRegistry {
    started: Instant,
    cells_total: AtomicU64,
    cells_replayed: AtomicU64,
    cells_started: AtomicU64,
    cells_finished: AtomicU64,
    cells_retried: AtomicU64,
    cells_panicked: AtomicU64,
    cells_timed_out: AtomicU64,
    cells_poisoned: AtomicU64,
    cells_skipped: AtomicU64,
    generations: AtomicU64,
    evaluations: AtomicU64,
    leases_acquired: AtomicU64,
    leases_renewed: AtomicU64,
    leases_expired: AtomicU64,
    leases_stolen: AtomicU64,
    leases_fenced: AtomicU64,
    /// Configured worker-thread count executing cells (0 = not reported;
    /// the heartbeat ETA then falls back to the host's parallelism).
    workers: AtomicU64,
    phase_mating_ns: AtomicU64,
    phase_evaluation_ns: AtomicU64,
    phase_sorting_ns: AtomicU64,
    /// EWMA of cell wall-clock, stored as `f64::to_bits`.
    ewma_cell_bits: AtomicU64,
    /// Distribution of per-cell wall-clock.
    pub cell_duration: DurationHistogram,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            started: Instant::now(),
            cells_total: AtomicU64::new(0),
            cells_replayed: AtomicU64::new(0),
            cells_started: AtomicU64::new(0),
            cells_finished: AtomicU64::new(0),
            cells_retried: AtomicU64::new(0),
            cells_panicked: AtomicU64::new(0),
            cells_timed_out: AtomicU64::new(0),
            cells_poisoned: AtomicU64::new(0),
            cells_skipped: AtomicU64::new(0),
            generations: AtomicU64::new(0),
            evaluations: AtomicU64::new(0),
            leases_acquired: AtomicU64::new(0),
            leases_renewed: AtomicU64::new(0),
            leases_expired: AtomicU64::new(0),
            leases_stolen: AtomicU64::new(0),
            leases_fenced: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            phase_mating_ns: AtomicU64::new(0),
            phase_evaluation_ns: AtomicU64::new(0),
            phase_sorting_ns: AtomicU64::new(0),
            ewma_cell_bits: AtomicU64::new(0.0f64.to_bits()),
            cell_duration: DurationHistogram::default(),
        }
    }
}

fn add_secs(cell: &AtomicU64, seconds: f64) {
    cell.fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
}

fn load_secs(cell: &AtomicU64) -> f64 {
    cell.load(Ordering::Relaxed) as f64 / 1e9
}

impl MetricsRegistry {
    /// A fresh registry; `started` is now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the campaign's grid size and how many cells the manifest
    /// already covers (resume). Called once, at campaign start.
    pub fn set_grid(&self, total: usize, replayed: usize) {
        self.cells_total.store(total as u64, Ordering::Relaxed);
        self.cells_replayed
            .store(replayed as u64, Ordering::Relaxed);
    }

    /// Records how many worker threads actually execute cells, so the
    /// heartbeat's ETA divides by the configured pool rather than the
    /// host's full parallelism (which overstates throughput for serve
    /// jobs sharing a `--workers` pool). Called once at campaign start.
    pub fn set_workers(&self, workers: usize) {
        self.workers.store(workers as u64, Ordering::Relaxed);
    }

    /// As [`set_workers`](MetricsRegistry::set_workers), but only when no
    /// count has been reported yet — an explicitly configured pool share
    /// (serve's `--workers` split) wins over the campaign's own
    /// observation of the global pool.
    pub fn set_workers_if_unset(&self, workers: usize) {
        let _ =
            self.workers
                .compare_exchange(0, workers as u64, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// A cell began executing.
    pub fn cell_started(&self) {
        self.cells_started.fetch_add(1, Ordering::Relaxed);
    }

    /// A cell finished successfully after `duration` of wall-clock.
    pub fn cell_finished(&self, duration: Duration) {
        self.cells_finished.fetch_add(1, Ordering::Relaxed);
        let seconds = duration.as_secs_f64();
        self.cell_duration.observe(seconds);
        // CAS loop: EWMA is a read-modify-write of an f64.
        let mut current = self.ewma_cell_bits.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(current);
            let new = if old == 0.0 {
                seconds
            } else {
                EWMA_ALPHA * seconds + (1.0 - EWMA_ALPHA) * old
            };
            match self.ewma_cell_bits.compare_exchange_weak(
                current,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// A failed attempt is being retried.
    pub fn cell_retried(&self) {
        self.cells_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// An attempt panicked (or was failed by fault injection).
    pub fn cell_panicked(&self) {
        self.cells_panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// A cell's attempt exceeded the watchdog timeout (terminal; counts
    /// toward the `cells_failed` rollup).
    pub fn cell_timed_out(&self) {
        self.cells_timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// A cell exhausted its attempt budget and was quarantined (terminal;
    /// counts toward the `cells_failed` rollup).
    pub fn cell_poisoned(&self) {
        self.cells_poisoned.fetch_add(1, Ordering::Relaxed);
    }

    /// A cell was skipped (cancellation or deadline).
    pub fn cell_skipped(&self) {
        self.cells_skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker acquired a cell lease; `stolen` marks a takeover from an
    /// expired holder.
    pub fn lease_acquired(&self, stolen: bool) {
        self.leases_acquired.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.leases_stolen.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A worker's renewal thread extended a lease.
    pub fn lease_renewed(&self) {
        self.leases_renewed.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker self-fenced an overdue lease.
    pub fn lease_expired(&self) {
        self.leases_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker's append was rejected because its lease was superseded.
    pub fn lease_fenced(&self) {
        self.leases_fenced.fetch_add(1, Ordering::Relaxed);
    }

    /// One engine generation completed somewhere in the campaign.
    pub fn generation(&self, stats: &GenerationStats) {
        self.generations.fetch_add(1, Ordering::Relaxed);
        self.evaluations
            .fetch_add(stats.evaluations as u64, Ordering::Relaxed);
        add_secs(&self.phase_mating_ns, stats.timings.mating_s);
        add_secs(&self.phase_evaluation_ns, stats.timings.evaluation_s);
        add_secs(&self.phase_sorting_ns, stats.timings.sorting_s);
    }

    /// Cells accounted for: replayed from the manifest plus finished by
    /// this invocation. Monotone within a run and across a resume.
    pub fn cells_done(&self) -> u64 {
        self.cells_replayed.load(Ordering::Relaxed) + self.cells_finished.load(Ordering::Relaxed)
    }

    /// A coherent-enough point-in-time copy of every metric (individual
    /// loads are relaxed; exact cross-counter consistency is not needed
    /// for progress reporting).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            elapsed_s: self.started.elapsed().as_secs_f64(),
            cells_total: self.cells_total.load(Ordering::Relaxed),
            cells_replayed: self.cells_replayed.load(Ordering::Relaxed),
            cells_started: self.cells_started.load(Ordering::Relaxed),
            cells_finished: self.cells_finished.load(Ordering::Relaxed),
            cells_retried: self.cells_retried.load(Ordering::Relaxed),
            cells_panicked: self.cells_panicked.load(Ordering::Relaxed),
            cells_timed_out: self.cells_timed_out.load(Ordering::Relaxed),
            cells_poisoned: self.cells_poisoned.load(Ordering::Relaxed),
            cells_failed: self.cells_timed_out.load(Ordering::Relaxed)
                + self.cells_poisoned.load(Ordering::Relaxed),
            cells_skipped: self.cells_skipped.load(Ordering::Relaxed),
            generations: self.generations.load(Ordering::Relaxed),
            evaluations: self.evaluations.load(Ordering::Relaxed),
            leases_acquired: self.leases_acquired.load(Ordering::Relaxed),
            leases_renewed: self.leases_renewed.load(Ordering::Relaxed),
            leases_expired: self.leases_expired.load(Ordering::Relaxed),
            leases_stolen: self.leases_stolen.load(Ordering::Relaxed),
            leases_fenced: self.leases_fenced.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            sim_evaluations: sim_evaluations_total(),
            faults_injected: chaos_faults_injected_total(),
            phase_mating_s: load_secs(&self.phase_mating_ns),
            phase_evaluation_s: load_secs(&self.phase_evaluation_ns),
            phase_sorting_s: load_secs(&self.phase_sorting_ns),
            ewma_cell_s: f64::from_bits(self.ewma_cell_bits.load(Ordering::Relaxed)),
            cell_duration_sum_s: load_secs(&self.cell_duration.sum_ns),
            cell_duration_count: self.cell_duration.count.load(Ordering::Relaxed),
            cell_duration_buckets: self.cell_duration.bucket_counts(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format —
    /// the on-demand snapshot `--telemetry-out` writes.
    pub fn prometheus(&self) -> String {
        self.snapshot().prometheus()
    }
}
impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    /// The registry's [`MetricsRegistry::prometheus`] delegates here, and
    /// services that aggregate several registries ([`MetricsSnapshot::merge`])
    /// render the combined snapshot the same way.
    pub fn prometheus(&self) -> String {
        let s = self;
        let mut out = String::new();
        let mut metric = |name: &str, kind: &str, value: String| {
            out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
        };
        metric(
            "hetsched_campaign_uptime_seconds",
            "gauge",
            fmt_f64(s.elapsed_s),
        );
        metric(
            "hetsched_campaign_cells",
            "gauge",
            s.cells_total.to_string(),
        );
        metric(
            "hetsched_campaign_cells_done",
            "gauge",
            (s.cells_replayed + s.cells_finished).to_string(),
        );
        metric(
            "hetsched_campaign_cells_replayed_total",
            "counter",
            s.cells_replayed.to_string(),
        );
        metric(
            "hetsched_campaign_cells_started_total",
            "counter",
            s.cells_started.to_string(),
        );
        metric(
            "hetsched_campaign_cells_finished_total",
            "counter",
            s.cells_finished.to_string(),
        );
        metric(
            "hetsched_campaign_cells_retried_total",
            "counter",
            s.cells_retried.to_string(),
        );
        metric(
            "hetsched_campaign_cells_panicked_total",
            "counter",
            s.cells_panicked.to_string(),
        );
        metric(
            "hetsched_campaign_cells_timed_out_total",
            "counter",
            s.cells_timed_out.to_string(),
        );
        metric(
            "hetsched_campaign_cells_poisoned_total",
            "counter",
            s.cells_poisoned.to_string(),
        );
        metric(
            "hetsched_campaign_cells_failed_total",
            "counter",
            s.cells_failed.to_string(),
        );
        metric(
            "hetsched_chaos_faults_injected_total",
            "counter",
            s.faults_injected.to_string(),
        );
        metric(
            "hetsched_campaign_cells_skipped_total",
            "counter",
            s.cells_skipped.to_string(),
        );
        metric(
            "hetsched_engine_generations_total",
            "counter",
            s.generations.to_string(),
        );
        metric(
            "hetsched_engine_evaluations_total",
            "counter",
            s.evaluations.to_string(),
        );
        metric(
            "hetsched_sim_evaluations_total",
            "counter",
            s.sim_evaluations.to_string(),
        );
        metric(
            "hetsched_campaign_leases_acquired_total",
            "counter",
            s.leases_acquired.to_string(),
        );
        metric(
            "hetsched_campaign_leases_renewed_total",
            "counter",
            s.leases_renewed.to_string(),
        );
        metric(
            "hetsched_campaign_leases_expired_total",
            "counter",
            s.leases_expired.to_string(),
        );
        metric(
            "hetsched_campaign_leases_stolen_total",
            "counter",
            s.leases_stolen.to_string(),
        );
        metric(
            "hetsched_campaign_leases_fenced_total",
            "counter",
            s.leases_fenced.to_string(),
        );
        metric("hetsched_campaign_workers", "gauge", s.workers.to_string());
        out.push_str("# TYPE hetsched_engine_phase_seconds_total counter\n");
        for (phase, value) in [
            ("mating", s.phase_mating_s),
            ("evaluation", s.phase_evaluation_s),
            ("sorting", s.phase_sorting_s),
        ] {
            out.push_str(&format!(
                "hetsched_engine_phase_seconds_total{{phase=\"{phase}\"}} {}\n",
                fmt_f64(value)
            ));
        }
        out.push_str("# TYPE hetsched_campaign_cell_duration_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, count) in s.cell_duration_buckets.iter().enumerate() {
            cumulative += count;
            let le = CELL_DURATION_BUCKETS_S
                .get(i)
                .map(|b| fmt_f64(*b))
                .unwrap_or_else(|| "+Inf".to_string());
            out.push_str(&format!(
                "hetsched_campaign_cell_duration_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "hetsched_campaign_cell_duration_seconds_sum {}\n",
            fmt_f64(s.cell_duration_sum_s)
        ));
        out.push_str(&format!(
            "hetsched_campaign_cell_duration_seconds_count {}\n",
            s.cell_duration_count
        ));
        out
    }

    /// Folds `other` into this snapshot, for services aggregating several
    /// per-campaign registries into one exposition: counters, phase times,
    /// and histogram buckets add; `elapsed_s` takes the maximum (oldest
    /// registry); the EWMA becomes a duration-count-weighted mean.
    /// `sim_evaluations` and `faults_injected` are process-wide totals
    /// every registry reports identically, so they take the maximum
    /// rather than double-counting.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let self_w = self.cell_duration_count as f64;
        let other_w = other.cell_duration_count as f64;
        if self_w + other_w > 0.0 {
            self.ewma_cell_s =
                (self.ewma_cell_s * self_w + other.ewma_cell_s * other_w) / (self_w + other_w);
        }
        self.elapsed_s = self.elapsed_s.max(other.elapsed_s);
        self.cells_total += other.cells_total;
        self.cells_replayed += other.cells_replayed;
        self.cells_started += other.cells_started;
        self.cells_finished += other.cells_finished;
        self.cells_retried += other.cells_retried;
        self.cells_panicked += other.cells_panicked;
        self.cells_timed_out += other.cells_timed_out;
        self.cells_poisoned += other.cells_poisoned;
        self.cells_failed += other.cells_failed;
        self.cells_skipped += other.cells_skipped;
        self.generations += other.generations;
        self.evaluations += other.evaluations;
        self.leases_acquired += other.leases_acquired;
        self.leases_renewed += other.leases_renewed;
        self.leases_expired += other.leases_expired;
        self.leases_stolen += other.leases_stolen;
        self.leases_fenced += other.leases_fenced;
        // Campaigns in one process share the worker pool, so the merged
        // view keeps the widest reported pool instead of summing.
        self.workers = self.workers.max(other.workers);
        self.sim_evaluations = self.sim_evaluations.max(other.sim_evaluations);
        self.faults_injected = self.faults_injected.max(other.faults_injected);
        self.phase_mating_s += other.phase_mating_s;
        self.phase_evaluation_s += other.phase_evaluation_s;
        self.phase_sorting_s += other.phase_sorting_s;
        self.cell_duration_sum_s += other.cell_duration_sum_s;
        self.cell_duration_count += other.cell_duration_count;
        if self.cell_duration_buckets.len() < other.cell_duration_buckets.len() {
            self.cell_duration_buckets
                .resize(other.cell_duration_buckets.len(), 0);
        }
        for (mine, theirs) in self
            .cell_duration_buckets
            .iter_mut()
            .zip(&other.cell_duration_buckets)
        {
            *mine += theirs;
        }
    }

    /// Merges an iterator of snapshots into one ([`MetricsSnapshot::merge`]
    /// folded over an all-zero start); `None` when the iterator is empty.
    pub fn aggregate<'a>(snapshots: impl IntoIterator<Item = &'a MetricsSnapshot>) -> Option<Self> {
        let mut iter = snapshots.into_iter();
        let mut acc = iter.next()?.clone();
        for s in iter {
            acc.merge(s);
        }
        Some(acc)
    }
}

/// Formats an f64 the way Prometheus text format expects (always with a
/// decimal representation, never scientific for the magnitudes we emit).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// The total `Evaluator::evaluate` calls this process has performed, when
/// the workspace is built with the `eval-counters` feature (routed from
/// `hetsched_sim`); 0 otherwise.
fn sim_evaluations_total() -> u64 {
    #[cfg(feature = "eval-counters")]
    {
        hetsched_sim::eval_counters::total()
    }
    #[cfg(not(feature = "eval-counters"))]
    {
        0
    }
}

/// The total chaos faults this process has injected, when built with the
/// `chaos` feature; 0 otherwise. Monotone across arm/disarm cycles, so
/// the telemetry layer accounts for every injected fault even after its
/// plan is gone.
fn chaos_faults_injected_total() -> u64 {
    #[cfg(feature = "chaos")]
    {
        hetsched_chaos::injected_total()
    }
    #[cfg(not(feature = "chaos"))]
    {
        0
    }
}

/// A point-in-time copy of the registry, serialisable for exporters and
/// tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Seconds since the registry was created.
    pub elapsed_s: f64,
    /// Grid size of the campaign.
    pub cells_total: u64,
    /// Cells satisfied from the manifest at start (resume).
    pub cells_replayed: u64,
    /// Cells that began executing in this invocation.
    pub cells_started: u64,
    /// Cells that finished successfully in this invocation.
    pub cells_finished: u64,
    /// Failed attempts that were retried.
    pub cells_retried: u64,
    /// Attempts that panicked (or were failed by fault injection).
    pub cells_panicked: u64,
    /// Cells whose attempt exceeded the watchdog timeout (terminal).
    pub cells_timed_out: u64,
    /// Cells quarantined after exhausting their attempt budget.
    pub cells_poisoned: u64,
    /// Terminal failures: `cells_timed_out + cells_poisoned`.
    pub cells_failed: u64,
    /// Cells skipped by cancellation or the deadline.
    pub cells_skipped: u64,
    /// Engine generations completed across all cells.
    pub generations: u64,
    /// Fitness evaluations reported by engine generation stats.
    pub evaluations: u64,
    /// Cell leases acquired by workers (distributed mode).
    pub leases_acquired: u64,
    /// Lease renewals appended by worker heartbeat threads.
    pub leases_renewed: u64,
    /// Leases self-fenced by their holder after an overdue renewal.
    pub leases_expired: u64,
    /// Leases taken over from expired holders.
    pub leases_stolen: u64,
    /// Worker appends rejected because the lease was superseded.
    pub leases_fenced: u64,
    /// Configured worker threads executing cells (0 = not reported).
    pub workers: u64,
    /// Process-wide simulator evaluation count (`eval-counters` builds
    /// only; 0 otherwise).
    pub sim_evaluations: u64,
    /// Process-wide injected chaos fault count (`chaos` builds only; 0
    /// otherwise).
    pub faults_injected: u64,
    /// Wall-clock spent in mating across all observed generations.
    pub phase_mating_s: f64,
    /// Wall-clock spent in evaluation across all observed generations.
    pub phase_evaluation_s: f64,
    /// Wall-clock spent in sorting/selection across all observed
    /// generations.
    pub phase_sorting_s: f64,
    /// EWMA of cell wall-clock (0 until the first cell finishes).
    pub ewma_cell_s: f64,
    /// Sum of observed cell durations.
    pub cell_duration_sum_s: f64,
    /// Number of observed cell durations.
    pub cell_duration_count: u64,
    /// Non-cumulative histogram bucket counts
    /// ([`CELL_DURATION_BUCKETS_S`] plus a trailing `+Inf`).
    pub cell_duration_buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// Cells accounted for (replayed + finished) — the heartbeat's
    /// monotone progress figure.
    pub fn cells_done(&self) -> u64 {
        self.cells_replayed + self.cells_finished
    }
}

/// One heartbeat line: the tail-able progress record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatLine {
    /// Seconds since this invocation's registry was created.
    pub elapsed_s: f64,
    /// Cells accounted for: replayed from the manifest plus finished.
    pub cells_done: u64,
    /// Grid size.
    pub cells_total: u64,
    /// Cells that exhausted their attempt budget this invocation.
    pub cells_failed: u64,
    /// Failed attempts that were retried this invocation.
    pub cells_retried: u64,
    /// EWMA of cell wall-clock seconds (0 until a cell finishes).
    pub ewma_cell_s: f64,
    /// Estimated seconds to completion (EWMA × remaining ÷ workers);
    /// absent until the first cell finishes.
    pub eta_s: Option<f64>,
}

impl HeartbeatLine {
    /// Derives the line from a snapshot.
    pub fn from_snapshot(s: &MetricsSnapshot) -> Self {
        let done = s.cells_done();
        let settled = done + s.cells_failed + s.cells_skipped;
        let remaining = s.cells_total.saturating_sub(settled);
        // Prefer the registry's configured pool size — a serve job sharing
        // a `--workers` pool must not assume the whole host; the host's
        // parallelism is only the fallback for registries that never
        // reported one.
        let workers = if s.workers > 0 {
            s.workers as f64
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1) as f64
        };
        let eta_s =
            (s.ewma_cell_s > 0.0).then(|| s.ewma_cell_s * remaining as f64 / workers.max(1.0));
        HeartbeatLine {
            elapsed_s: s.elapsed_s,
            cells_done: done,
            cells_total: s.cells_total,
            cells_failed: s.cells_failed,
            cells_retried: s.cells_retried,
            ewma_cell_s: s.ewma_cell_s,
            eta_s,
        }
    }
}

/// A rate-limited JSONL progress sink. Appends (never truncates) so that
/// a resumed campaign continues the same file, and flushes every line so
/// `tail -f` and a kill lose nothing.
pub struct Heartbeat {
    sink: Mutex<Box<dyn Write + Send>>,
    every: Duration,
    /// Microseconds (since the owning registry's start) of the last emit;
    /// `u64::MAX` = never.
    last_emit_us: AtomicU64,
}

impl Heartbeat {
    /// Opens `path` for appending (creating it if needed).
    ///
    /// # Errors
    ///
    /// File open failures.
    pub fn create(path: impl AsRef<Path>, every: Duration) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Heartbeat::to_writer(BufWriter::new(file), every))
    }

    /// Like [`Heartbeat::create`], but every emitted line is additionally
    /// fsynced (`sync_data`) — the CLI uses this so the heartbeat file is
    /// a durable checkpoint of campaign progress, not just a kernel
    /// buffer.
    ///
    /// # Errors
    ///
    /// File open failures.
    pub fn create_durable(path: impl AsRef<Path>, every: Duration) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Heartbeat::to_writer(
            BufWriter::new(SyncOnFlush(file)),
            every,
        ))
    }

    /// Wraps any writer — for tests and in-memory capture.
    pub fn to_writer(writer: impl Write + Send + 'static, every: Duration) -> Self {
        Heartbeat {
            sink: Mutex::new(Box::new(writer)),
            every,
            last_emit_us: AtomicU64::new(u64::MAX),
        }
    }

    /// The configured emission interval.
    pub fn every(&self) -> Duration {
        self.every
    }

    /// Emits a line if at least the configured interval has passed since
    /// the last one (or none was ever written).
    pub fn maybe_emit(&self, registry: &MetricsRegistry) {
        let now_us = registry.started.elapsed().as_micros() as u64;
        let last = self.last_emit_us.load(Ordering::Relaxed);
        let due = last == u64::MAX || now_us.saturating_sub(last) >= self.every.as_micros() as u64;
        if !due {
            return;
        }
        // One writer wins the slot; losers skip rather than double-emit.
        if self
            .last_emit_us
            .compare_exchange(last, now_us, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.emit(registry);
        }
    }

    /// Emits a line unconditionally (campaign start and end do this so
    /// even short runs leave a record).
    pub fn emit(&self, registry: &MetricsRegistry) {
        self.last_emit_us.store(
            registry.started.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
        let line = HeartbeatLine::from_snapshot(&registry.snapshot());
        let rendered = match serde_json::to_string(&line) {
            Ok(rendered) => rendered,
            Err(e) => {
                tracing::warn!("heartbeat serialisation failed: {e}");
                return;
            }
        };
        // Poison-recovering lock + in-lock fault point: a heartbeat IO
        // failure (injected or real) is logged and swallowed — progress
        // reporting must never take the campaign down.
        let mut sink = lock_unpoisoned(&self.sink);
        let wrote = chaos_hooks::raise_io("heartbeat.tick", &line.cells_done)
            .and_then(|()| writeln!(sink, "{rendered}"))
            .and_then(|()| sink.flush());
        if let Err(e) = wrote {
            tracing::warn!("heartbeat write failed: {e}");
        }
    }
}

/// Receives campaign lifecycle events. All methods default to no-ops, so
/// implementations override only what they consume; `&self` because events
/// arrive concurrently from the campaign's workers.
///
/// Mirrors the engine [`Observer`](hetsched_moea::observe::Observer)
/// contract: when [`enabled`](CampaignObserver::enabled) is `false` the
/// campaign skips event delivery *and* runs its engines unobserved, so
/// the null observer costs one branch per event site.
pub trait CampaignObserver: Send + Sync {
    /// Whether the campaign should deliver events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// The grid has been expanded and the manifest replayed: `total`
    /// cells, of which `replayed` are already satisfied.
    fn on_campaign_start(&self, total: usize, replayed: usize) {
        let _ = (total, replayed);
    }

    /// How many worker threads will execute cells. Reported by the
    /// campaign right after `on_campaign_start`, from the actual pool it
    /// runs on — the number the heartbeat's ETA should divide by.
    fn on_workers(&self, workers: usize) {
        let _ = workers;
    }

    /// `cell` was satisfied from the manifest instead of executed
    /// (resume-skip).
    fn on_cell_replayed(&self, cell: &CellId) {
        let _ = cell;
    }

    /// `cell` began executing.
    fn on_cell_start(&self, cell: &CellId) {
        let _ = cell;
    }

    /// `cell` finished successfully after `attempts` attempts and
    /// `duration` of wall-clock (all attempts included).
    fn on_cell_finish(&self, cell: &CellId, attempts: usize, duration: Duration) {
        let _ = (cell, attempts, duration);
    }

    /// An attempt at `cell` panicked (or was failed by fault injection).
    fn on_cell_panic(&self, cell: &CellId, attempt: usize, error: &str) {
        let _ = (cell, attempt, error);
    }

    /// A failed attempt at `cell` is about to be retried.
    fn on_cell_retry(&self, cell: &CellId, next_attempt: usize) {
        let _ = (cell, next_attempt);
    }

    /// An attempt at `cell` exceeded the campaign's cell timeout; the
    /// cell was recorded as timed out (terminal).
    fn on_cell_timed_out(&self, cell: &CellId, attempt: usize, timeout: Duration) {
        let _ = (cell, attempt, timeout);
    }

    /// `cell` exhausted its attempt budget and was quarantined.
    fn on_cell_failed(&self, cell: &CellId, attempts: usize, error: &str) {
        let _ = (cell, attempts, error);
    }

    /// `cell` was not executed (cancellation or deadline).
    fn on_cell_skipped(&self, cell: &CellId) {
        let _ = cell;
    }

    /// One engine generation of `cell` completed — the campaign-level
    /// rollup of the engine's per-generation stats.
    fn on_generation(&self, cell: &CellId, stats: &GenerationStats) {
        let _ = (cell, stats);
    }

    /// A worker acquired a lease on `cell`; `stolen` marks a takeover
    /// from an expired holder. Distributed mode only.
    fn on_lease_acquired(&self, cell: &CellId, worker: &str, stolen: bool) {
        let _ = (cell, worker, stolen);
    }

    /// A worker's renewal thread extended its lease on `cell`.
    fn on_lease_renewed(&self, cell: &CellId, worker: &str) {
        let _ = (cell, worker);
    }

    /// A worker self-fenced its overdue lease on `cell`.
    fn on_lease_expired(&self, cell: &CellId, worker: &str) {
        let _ = (cell, worker);
    }

    /// A worker discarded a computed result because its lease on `cell`
    /// had been superseded.
    fn on_lease_fenced(&self, cell: &CellId, worker: &str) {
        let _ = (cell, worker);
    }

    /// The campaign invocation finished (successfully or not).
    fn on_campaign_end(&self) {}
}

/// The do-nothing campaign observer: `enabled()` is `false`, so a
/// campaign run with it skips all telemetry plumbing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCampaignObserver;

impl CampaignObserver for NullCampaignObserver {
    fn enabled(&self) -> bool {
        false
    }
}

/// The standard telemetry pipeline: every event updates the
/// [`MetricsRegistry`]; cell completions additionally update the
/// heartbeat (when configured) and log a human progress line at `info`
/// level through the existing tracing sink.
pub struct TelemetryObserver {
    registry: Arc<MetricsRegistry>,
    heartbeat: Option<Heartbeat>,
}

impl TelemetryObserver {
    /// An observer feeding `registry`, with no heartbeat.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        TelemetryObserver {
            registry,
            heartbeat: None,
        }
    }

    /// Attaches a heartbeat sink.
    pub fn with_heartbeat(mut self, heartbeat: Heartbeat) -> Self {
        self.heartbeat = Some(heartbeat);
        self
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Emits a heartbeat line if one is due — called from cell events and
    /// the ticker thread.
    pub fn maybe_heartbeat(&self) {
        if let Some(hb) = &self.heartbeat {
            hb.maybe_emit(&self.registry);
        }
    }

    fn progress_line(&self) {
        let s = self.registry.snapshot();
        let line = HeartbeatLine::from_snapshot(&s);
        match line.eta_s {
            Some(eta) => tracing::info!(
                "campaign: {}/{} cells done ({} failed, {} retried), eta ~{eta:.1}s",
                line.cells_done,
                line.cells_total,
                line.cells_failed,
                line.cells_retried,
            ),
            None => tracing::info!(
                "campaign: {}/{} cells done ({} failed, {} retried)",
                line.cells_done,
                line.cells_total,
                line.cells_failed,
                line.cells_retried,
            ),
        }
    }
}

impl CampaignObserver for TelemetryObserver {
    fn on_campaign_start(&self, total: usize, replayed: usize) {
        self.registry.set_grid(total, replayed);
        if let Some(hb) = &self.heartbeat {
            hb.emit(&self.registry);
        }
    }

    fn on_workers(&self, workers: usize) {
        // `if_unset`: a daemon that already split its pool across jobs
        // knows the real share better than the campaign does.
        self.registry.set_workers_if_unset(workers);
    }

    fn on_cell_start(&self, _cell: &CellId) {
        self.registry.cell_started();
    }

    fn on_cell_finish(&self, _cell: &CellId, _attempts: usize, duration: Duration) {
        self.registry.cell_finished(duration);
        self.progress_line();
        self.maybe_heartbeat();
    }

    fn on_cell_panic(&self, _cell: &CellId, _attempt: usize, _error: &str) {
        self.registry.cell_panicked();
    }

    fn on_cell_retry(&self, _cell: &CellId, _next_attempt: usize) {
        self.registry.cell_retried();
    }

    fn on_cell_timed_out(&self, _cell: &CellId, _attempt: usize, _timeout: Duration) {
        self.registry.cell_timed_out();
        self.progress_line();
        self.maybe_heartbeat();
    }

    fn on_cell_failed(&self, _cell: &CellId, _attempts: usize, _error: &str) {
        self.registry.cell_poisoned();
        self.progress_line();
        self.maybe_heartbeat();
    }

    fn on_cell_skipped(&self, _cell: &CellId) {
        self.registry.cell_skipped();
    }

    fn on_cell_replayed(&self, _cell: &CellId) {}

    fn on_generation(&self, _cell: &CellId, stats: &GenerationStats) {
        self.registry.generation(stats);
    }

    fn on_lease_acquired(&self, _cell: &CellId, _worker: &str, stolen: bool) {
        self.registry.lease_acquired(stolen);
    }

    fn on_lease_renewed(&self, _cell: &CellId, _worker: &str) {
        self.registry.lease_renewed();
    }

    fn on_lease_expired(&self, _cell: &CellId, _worker: &str) {
        self.registry.lease_expired();
    }

    fn on_lease_fenced(&self, _cell: &CellId, _worker: &str) {
        self.registry.lease_fenced();
    }

    fn on_campaign_end(&self) {
        if let Some(hb) = &self.heartbeat {
            hb.emit(&self.registry);
        }
    }
}

/// A background thread that emits due heartbeat lines while cells run —
/// without it, a single long cell would silence the heartbeat for its
/// whole duration. Stopped (and joined) on drop.
pub struct HeartbeatTicker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatTicker {
    /// Spawns the ticker. It polls `observer` at a fraction of the
    /// heartbeat interval; the heartbeat's own rate limit decides when a
    /// line is actually written.
    pub fn spawn(observer: Arc<TelemetryObserver>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let every = observer
            .heartbeat
            .as_ref()
            .map(Heartbeat::every)
            .unwrap_or(Duration::from_secs(5));
        let poll = (every / 4).clamp(Duration::from_millis(20), Duration::from_millis(500));
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(poll);
                observer.maybe_heartbeat();
            }
        });
        HeartbeatTicker {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for HeartbeatTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_moea::observe::PhaseTimings;

    /// A shared in-memory writer for asserting heartbeat output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn stats(evaluations: usize) -> GenerationStats {
        GenerationStats {
            generation: 1,
            front_sizes: vec![4],
            ideal: [-1.0, 2.0],
            hypervolume: Some(3.0),
            crowding_spread: 0.1,
            evaluations,
            timings: PhaseTimings {
                mating_s: 0.5,
                evaluation_s: 1.0,
                sorting_s: 0.25,
            },
        }
    }

    #[test]
    fn registry_accumulates_events() {
        let reg = MetricsRegistry::new();
        reg.set_grid(10, 3);
        reg.cell_started();
        reg.cell_finished(Duration::from_millis(40));
        reg.cell_panicked();
        reg.cell_retried();
        reg.cell_timed_out();
        reg.cell_poisoned();
        reg.cell_skipped();
        reg.generation(&stats(16));
        reg.generation(&stats(16));
        let s = reg.snapshot();
        assert_eq!(s.cells_total, 10);
        assert_eq!(s.cells_replayed, 3);
        assert_eq!(s.cells_started, 1);
        assert_eq!(s.cells_finished, 1);
        assert_eq!(s.cells_panicked, 1);
        assert_eq!(s.cells_retried, 1);
        assert_eq!(s.cells_timed_out, 1);
        assert_eq!(s.cells_poisoned, 1);
        assert_eq!(s.cells_failed, 2, "failed rolls up timeouts + poisons");
        assert_eq!(s.cells_skipped, 1);
        assert_eq!(s.cells_done(), 4);
        assert_eq!(s.generations, 2);
        assert_eq!(s.evaluations, 32);
        assert!((s.phase_mating_s - 1.0).abs() < 1e-6);
        assert!((s.phase_evaluation_s - 2.0).abs() < 1e-6);
        assert!((s.phase_sorting_s - 0.5).abs() < 1e-6);
        assert!((s.ewma_cell_s - 0.04).abs() < 1e-6, "{}", s.ewma_cell_s);
    }

    #[test]
    fn ewma_tracks_recent_durations() {
        let reg = MetricsRegistry::new();
        reg.cell_finished(Duration::from_secs(1));
        assert!((reg.snapshot().ewma_cell_s - 1.0).abs() < 1e-9);
        reg.cell_finished(Duration::from_secs(2));
        // 0.3·2 + 0.7·1 = 1.3.
        assert!((reg.snapshot().ewma_cell_s - 1.3).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        let hist = DurationHistogram::default();
        hist.observe(0.0005); // first bucket (≤ 0.001)
        hist.observe(0.06); // ≤ 0.1
        hist.observe(1e9); // +Inf
        let counts = hist.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[4], 1); // bounds: 0.001 0.005 0.01 0.05 0.1
        assert_eq!(*counts.last().unwrap(), 1);
        assert_eq!(hist.count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn prometheus_snapshot_has_counters_and_cumulative_histogram() {
        let reg = MetricsRegistry::new();
        reg.set_grid(4, 1);
        reg.cell_finished(Duration::from_millis(2));
        reg.cell_finished(Duration::from_millis(700));
        let text = reg.prometheus();
        assert!(text.contains("# TYPE hetsched_campaign_cells_finished_total counter"));
        assert!(text.contains("hetsched_campaign_cells_finished_total 2"));
        assert!(text.contains("hetsched_campaign_cells_done 3"));
        assert!(text.contains("hetsched_engine_phase_seconds_total{phase=\"mating\"}"));
        // Histogram is cumulative and ends with +Inf == count.
        let inf_line = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("+Inf bucket");
        assert!(inf_line.ends_with(" 2"), "{inf_line}");
        assert!(text.contains("hetsched_campaign_cell_duration_seconds_count 2"));
        // Every metric line parses as `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
    }

    #[test]
    fn merge_adds_counters_and_keeps_process_wide_totals() {
        let a = MetricsRegistry::new();
        a.set_grid(4, 1);
        a.cell_started();
        a.cell_finished(Duration::from_millis(10));
        let b = MetricsRegistry::new();
        b.set_grid(2, 0);
        b.cell_started();
        b.cell_started();
        b.cell_finished(Duration::from_millis(700));
        b.cell_retried();

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.cells_total, 6);
        assert_eq!(merged.cells_replayed, 1);
        assert_eq!(merged.cells_started, 3);
        assert_eq!(merged.cells_finished, 2);
        assert_eq!(merged.cells_retried, 1);
        assert_eq!(merged.cell_duration_count, 2);
        // Process-wide totals (sim evaluations, chaos faults) must not
        // double: both registries report the same process counter.
        assert_eq!(merged.sim_evaluations, a.snapshot().sim_evaluations);
        // Histogram buckets add and the rendered exposition still sums.
        let text = merged.prometheus();
        assert!(text.contains("hetsched_campaign_cell_duration_seconds_count 2"));
        assert!(text.contains("hetsched_campaign_cells 6"));

        // Aggregating the same pair gives the same snapshot (modulo the
        // monotone elapsed clock, which we zero for comparison).
        let snaps = [a.snapshot(), b.snapshot()];
        let mut agg = MetricsSnapshot::aggregate(&snaps).unwrap();
        agg.elapsed_s = 0.0;
        merged.elapsed_s = 0.0;
        // The two a.snapshot() calls differ only in elapsed_s; counters agree.
        assert_eq!(agg.cells_total, merged.cells_total);
        assert_eq!(agg.cell_duration_buckets, merged.cell_duration_buckets);
        assert!(MetricsSnapshot::aggregate([]).is_none());
    }

    #[test]
    fn aggregate_of_an_empty_iterator_is_none() {
        assert!(MetricsSnapshot::aggregate([]).is_none());
        assert!(MetricsSnapshot::aggregate(Vec::<&MetricsSnapshot>::new()).is_none());
        // A single snapshot aggregates to itself.
        let reg = MetricsRegistry::new();
        reg.set_grid(3, 1);
        let s = reg.snapshot();
        let agg = MetricsSnapshot::aggregate([&s]).unwrap();
        assert_eq!(agg, s);
    }

    #[test]
    fn merging_zero_total_grids_stays_all_zero() {
        // Two registries that never saw a grid or a cell: every counter
        // stays zero, the EWMA is untouched (no division by a zero
        // weight), and the heartbeat derived from the merge has no ETA.
        let mut merged = MetricsRegistry::new().snapshot();
        merged.merge(&MetricsRegistry::new().snapshot());
        assert_eq!(merged.cells_total, 0);
        assert_eq!(merged.cells_done(), 0);
        assert_eq!(merged.cell_duration_count, 0);
        assert_eq!(merged.ewma_cell_s, 0.0);
        assert!(merged.ewma_cell_s.is_finite());
        let line = HeartbeatLine::from_snapshot(&merged);
        assert_eq!(line.eta_s, None);
    }

    #[test]
    fn merge_tolerates_mismatched_histogram_bucket_counts() {
        // An older snapshot (fewer buckets, e.g. deserialised from a
        // previous schema) must merge without truncating the newer one's
        // tail, in either merge direction.
        let reg = MetricsRegistry::new();
        reg.cell_finished(Duration::from_millis(10));
        let full = reg.snapshot();
        let mut short = full.clone();
        short.cell_duration_buckets.truncate(2);

        let mut a = full.clone();
        a.merge(&short);
        assert_eq!(
            a.cell_duration_buckets.len(),
            full.cell_duration_buckets.len()
        );
        let merged_total: u64 = a.cell_duration_buckets.iter().sum();
        let full_total: u64 = full.cell_duration_buckets.iter().sum();
        let short_total: u64 = short.cell_duration_buckets.iter().sum();
        assert_eq!(merged_total, full_total + short_total);

        // Short-then-full: the accumulator grows to the longer shape.
        let mut b = short.clone();
        b.merge(&full);
        assert_eq!(
            b.cell_duration_buckets.len(),
            full.cell_duration_buckets.len()
        );
        assert_eq!(b.cell_duration_buckets.iter().sum::<u64>(), merged_total);
    }

    #[test]
    fn ewma_merge_ignores_the_empty_side() {
        // One populated snapshot + one that never finished a cell: the
        // merged EWMA must equal the populated side exactly (weight 0
        // contributes nothing), regardless of merge order.
        let reg = MetricsRegistry::new();
        reg.cell_finished(Duration::from_secs(2));
        let populated = reg.snapshot();
        let empty = MetricsRegistry::new().snapshot();

        let mut a = populated.clone();
        a.merge(&empty);
        assert_eq!(a.ewma_cell_s, populated.ewma_cell_s);

        let mut b = empty.clone();
        b.merge(&populated);
        assert_eq!(b.ewma_cell_s, populated.ewma_cell_s);

        // Both populated: duration-count-weighted mean.
        let other = MetricsRegistry::new();
        other.cell_finished(Duration::from_secs(4));
        let mut c = populated.clone();
        c.merge(&other.snapshot());
        assert!((c.ewma_cell_s - 3.0).abs() < 1e-9, "{}", c.ewma_cell_s);
    }

    #[test]
    fn heartbeat_eta_divides_by_the_configured_worker_count() {
        // 10 cells remaining at an EWMA of 2 s/cell: with 2 configured
        // workers the ETA is 10 s — not 20/host_cores, whatever the host.
        let reg = MetricsRegistry::new();
        reg.set_grid(11, 0);
        reg.set_workers(2);
        reg.cell_finished(Duration::from_secs(2));
        let line = HeartbeatLine::from_snapshot(&reg.snapshot());
        let eta = line.eta_s.expect("one finished cell seeds the EWMA");
        assert!((eta - 10.0).abs() < 1e-9, "{eta}");
    }

    #[test]
    fn workers_merge_takes_the_widest_pool() {
        let a = MetricsRegistry::new();
        a.set_workers(4);
        let b = MetricsRegistry::new();
        b.set_workers(2);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.workers, 4);
        // if_unset respects an explicit value but fills a missing one.
        b.set_workers_if_unset(8);
        assert_eq!(b.snapshot().workers, 2);
        let c = MetricsRegistry::new();
        c.set_workers_if_unset(8);
        assert_eq!(c.snapshot().workers, 8);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new();
        reg.set_grid(2, 0);
        reg.cell_finished(Duration::from_millis(10));
        let s = reg.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn heartbeat_rate_limits_and_reports_progress() {
        let buf = SharedBuf::default();
        let reg = MetricsRegistry::new();
        reg.set_grid(8, 2);
        let hb = Heartbeat::to_writer(buf.clone(), Duration::from_secs(3600));
        hb.maybe_emit(&reg); // first is always due
        reg.cell_finished(Duration::from_millis(5));
        hb.maybe_emit(&reg); // within the interval: suppressed
        hb.emit(&reg); // forced
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<HeartbeatLine> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].cells_done, 2);
        assert_eq!(lines[1].cells_done, 3);
        assert_eq!(lines[1].cells_total, 8);
        assert!(lines[0].eta_s.is_none());
        assert!(lines[1].eta_s.unwrap() > 0.0);
        // Monotone progress.
        assert!(lines[1].cells_done >= lines[0].cells_done);
        assert!(lines[1].elapsed_s >= lines[0].elapsed_s);
    }

    #[test]
    fn telemetry_observer_feeds_registry_and_heartbeat() {
        let buf = SharedBuf::default();
        let reg = Arc::new(MetricsRegistry::new());
        let obs = TelemetryObserver::new(Arc::clone(&reg))
            .with_heartbeat(Heartbeat::to_writer(buf.clone(), Duration::ZERO));
        let cell = sample_cell();
        obs.on_campaign_start(4, 1);
        obs.on_cell_start(&cell);
        obs.on_generation(&cell, &stats(8));
        obs.on_cell_panic(&cell, 1, "boom");
        obs.on_cell_retry(&cell, 2);
        obs.on_cell_finish(&cell, 2, Duration::from_millis(12));
        obs.on_cell_timed_out(&cell, 1, Duration::from_millis(5));
        obs.on_cell_failed(&cell, 2, "poisoned");
        obs.on_campaign_end();
        let s = reg.snapshot();
        assert_eq!(s.cells_started, 1);
        assert_eq!(s.cells_finished, 1);
        assert_eq!(s.cells_panicked, 1);
        assert_eq!(s.cells_retried, 1);
        assert_eq!(s.cells_timed_out, 1);
        assert_eq!(s.cells_poisoned, 1);
        assert_eq!(s.cells_failed, 2);
        assert_eq!(s.evaluations, 8);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<HeartbeatLine> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        // start + finish + timeout + failure + end, interval 0 so nothing
        // suppressed.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines.last().unwrap().cells_done, 2);
        assert_eq!(lines.last().unwrap().cells_failed, 2);
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullCampaignObserver.enabled());
        // Default trait methods are no-ops: just exercise them.
        NullCampaignObserver.on_campaign_start(1, 0);
        NullCampaignObserver.on_cell_skipped(&sample_cell());
        NullCampaignObserver.on_campaign_end();
    }

    #[test]
    fn ticker_emits_without_cell_events() {
        let buf = SharedBuf::default();
        let reg = Arc::new(MetricsRegistry::new());
        reg.set_grid(2, 0);
        let obs = Arc::new(
            TelemetryObserver::new(reg)
                .with_heartbeat(Heartbeat::to_writer(buf.clone(), Duration::from_millis(30))),
        );
        {
            let _ticker = HeartbeatTicker::spawn(Arc::clone(&obs));
            std::thread::sleep(Duration::from_millis(200));
        } // drop joins the thread
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(
            text.lines().count() >= 2,
            "ticker should have emitted: {text:?}"
        );
    }

    fn sample_cell() -> CellId {
        CellId {
            dataset: crate::config::DatasetId::One,
            algorithm: hetsched_moea::Algorithm::Nsga2,
            seed: hetsched_heuristics::SeedKind::Random,
            replicate: 0,
        }
    }
}
