//! Span persistence and timeline analysis: the file half of the tracing
//! subsystem.
//!
//! The vendored `tracing` shim delivers completed spans to one
//! process-global [`tracing::SpanSink`]. This module provides the sinks
//! and everything downstream of them:
//!
//! * [`SpanRecord`] — the serialisable mirror of a completed span, one
//!   JSON line per span;
//! * [`TraceWriter`] — an append-mode JSONL sink with the journal's
//!   torn-tail discipline ([`read_trace`] drops a torn final line, and
//!   rejects corruption anywhere earlier);
//! * [`TraceMux`] — the process-global sink for multi-tenant processes
//!   (the serve daemon): routes each span by trace id to a registered
//!   per-job writer, with an optional default writer for everything else;
//! * [`chrome_trace`] — export to Chrome trace-event JSON, loadable in
//!   Perfetto / `chrome://tracing`;
//! * [`TraceAnalysis`] — the post-hoc summary behind `hetsched trace`:
//!   per-phase self-time breakdown, slowest cells, the critical path
//!   through the dominant trace, and wall-clock vs summed cell time.
//!
//! Everything here observes only wall clocks and span metadata; nothing
//! touches the engine RNG streams, so traced and untraced runs stay
//! bit-identical.

use crate::durable::lock_unpoisoned;
use crate::{CoreError, Result};
use serde::{Deserialize, Deserializer, Number, Serialize, Serializer, Value};
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use tracing::{ClosedSpan, FieldValue, Level, SpanSink};

/// One completed span, as persisted to a trace JSONL file. The owned
/// mirror of [`tracing::ClosedSpan`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace (root-span lineage) id shared by one causal tree — one
    /// campaign run or one serve job.
    pub trace_id: u64,
    /// This span's process-unique id.
    pub span_id: u64,
    /// The parent span's id; absent for roots.
    pub parent_id: Option<u64>,
    /// Span name (`"campaign"`, `"cell"`, `"generation"`, ...).
    pub name: String,
    /// Emitting module path.
    pub target: String,
    /// Severity label (`"INFO"`, ...).
    pub level: String,
    /// Start in nanoseconds since the sink's installation epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Per-process thread number.
    pub thread: u64,
    /// Structured fields, in attachment order.
    pub fields: Vec<(String, Value)>,
}

fn field_to_value(value: &FieldValue) -> Value {
    match value {
        FieldValue::Str(s) => Value::Str(s.clone()),
        FieldValue::U64(v) => Value::Num(Number::U(*v)),
        FieldValue::I64(v) => Value::Num(Number::I(*v)),
        FieldValue::F64(v) => Value::Num(Number::F(*v)),
        FieldValue::Bool(v) => Value::Bool(*v),
    }
}

impl SpanRecord {
    /// Converts a just-closed span into its persistent form.
    pub fn from_closed(span: &ClosedSpan) -> Self {
        SpanRecord {
            trace_id: span.trace_id,
            span_id: span.span_id,
            parent_id: span.parent_id,
            name: span.name.to_string(),
            target: span.target.to_string(),
            level: span.level.to_string(),
            start_ns: span.start_ns,
            duration_ns: span.duration_ns,
            thread: span.thread,
            fields: span
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), field_to_value(v)))
                .collect(),
        }
    }

    /// The value of a named field, as a display string.
    pub fn field(&self, key: &str) -> Option<String> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| match v {
                Value::Str(s) => s.clone(),
                Value::Num(Number::U(n)) => n.to_string(),
                Value::Num(Number::I(n)) => n.to_string(),
                Value::Num(Number::F(n)) => n.to_string(),
                Value::Bool(b) => b.to_string(),
                other => format!("{other:?}"),
            })
    }

    /// Duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.duration_ns as f64 / 1e9
    }

    /// A short human label assembled from the span's fields: the cell
    /// coordinate for `cell` spans, otherwise `key=value` pairs.
    pub fn label(&self) -> String {
        let coordinate: Vec<String> = ["dataset", "algorithm", "seed", "replicate"]
            .iter()
            .filter_map(|key| self.field(key))
            .collect();
        if coordinate.len() == 4 {
            return format!(
                "{}/{}/{}/r{}",
                coordinate[0], coordinate[1], coordinate[2], coordinate[3]
            );
        }
        self.fields
            .iter()
            .map(|(k, _)| format!("{k}={}", self.field(k).unwrap_or_default()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

// `parent_id` is genuinely optional on the wire (roots have none), so the
// serde impls are hand-written — the vendored derive would make a missing
// field a hard error and would serialise `None` as an explicit `null`.
impl Serialize for SpanRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        let mut entries = vec![
            ("trace_id".to_string(), serde::to_value(&self.trace_id)),
            ("span_id".to_string(), serde::to_value(&self.span_id)),
        ];
        if let Some(parent) = self.parent_id {
            entries.push(("parent_id".to_string(), serde::to_value(&parent)));
        }
        entries.push(("name".to_string(), serde::to_value(&self.name)));
        entries.push(("target".to_string(), serde::to_value(&self.target)));
        entries.push(("level".to_string(), serde::to_value(&self.level)));
        entries.push(("start_ns".to_string(), serde::to_value(&self.start_ns)));
        entries.push((
            "duration_ns".to_string(),
            serde::to_value(&self.duration_ns),
        ));
        entries.push(("thread".to_string(), serde::to_value(&self.thread)));
        entries.push(("fields".to_string(), Value::Object(self.fields.clone())));
        serializer.serialize_value(Value::Object(entries))
    }
}

impl<'de> Deserialize<'de> for SpanRecord {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        use serde::__private::{from_field, into_object, take_field};
        let mut entries = into_object::<D::Error>(deserializer.take_value()?, "SpanRecord")?;
        let parent_id: Option<u64> = if entries.iter().any(|(k, _)| k == "parent_id") {
            Some(from_field(&mut entries, "parent_id")?)
        } else {
            None
        };
        let fields = match take_field::<D::Error>(&mut entries, "fields")? {
            Value::Object(pairs) => pairs,
            other => {
                return Err(serde::de::Error::custom(format!(
                    "expected object for span fields, found {}",
                    other.kind()
                )))
            }
        };
        Ok(SpanRecord {
            trace_id: from_field(&mut entries, "trace_id")?,
            span_id: from_field(&mut entries, "span_id")?,
            parent_id,
            name: from_field(&mut entries, "name")?,
            target: from_field(&mut entries, "target")?,
            level: from_field(&mut entries, "level")?,
            start_ns: from_field(&mut entries, "start_ns")?,
            duration_ns: from_field(&mut entries, "duration_ns")?,
            thread: from_field(&mut entries, "thread")?,
            fields,
        })
    }
}

/// An append-mode JSONL sink for completed spans: one [`SpanRecord`] per
/// line, flushed per append so a killed process loses at most the line
/// being written — the journal's torn-tail discipline.
///
/// Write errors are reported once via `tracing::warn!` and further
/// appends are suppressed, so a full disk cannot abort the traced run.
pub struct TraceWriter {
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl TraceWriter {
    /// Opens (appending, creating) a trace file.
    ///
    /// # Errors
    ///
    /// File creation failures.
    pub fn create(path: impl AsRef<Path>) -> Result<TraceWriter> {
        let path = path.as_ref();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| CoreError::Io(format!("open trace {}: {e}", path.display())))?;
        Ok(TraceWriter::to_writer(BufWriter::new(file)))
    }

    /// Wraps any writer — handy for tests and in-memory capture.
    pub fn to_writer(writer: impl Write + Send + 'static) -> TraceWriter {
        TraceWriter {
            sink: Mutex::new(Some(Box::new(writer))),
        }
    }

    /// Appends one span as a JSON line and flushes it. After the first
    /// failure the writer disables itself (appends become no-ops).
    pub fn append(&self, record: &SpanRecord) {
        let line = serde_json::to_string(record).unwrap_or_default();
        let mut sink = lock_unpoisoned(&self.sink);
        let Some(writer) = sink.as_mut() else {
            return;
        };
        let outcome = writeln!(writer, "{line}").and_then(|()| writer.flush());
        if let Err(e) = outcome {
            tracing::warn!("trace write failed: {e}; disabling trace output");
            *sink = None;
        }
    }

    /// Flushes the underlying writer.
    pub fn flush_writer(&self) {
        if let Some(writer) = lock_unpoisoned(&self.sink).as_mut() {
            let _ = writer.flush();
        }
    }
}

impl SpanSink for TraceWriter {
    fn on_span(&self, span: ClosedSpan) {
        self.append(&SpanRecord::from_closed(&span));
    }

    fn flush(&self) {
        self.flush_writer();
    }
}

/// Reads a trace file back. A torn final line (the process was killed
/// mid-write) is dropped, matching the append-side discipline; any
/// earlier unparseable line is an error, since the file is then corrupt
/// rather than merely truncated.
///
/// # Errors
///
/// I/O failures, or a malformed line that is not the last.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<SpanRecord>> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| CoreError::Io(format!("read trace {}: {e}", path.display())))?;
    let mut records = Vec::new();
    let mut torn = false;
    for line in BufReader::new(file).lines() {
        let line =
            line.map_err(|e| CoreError::Io(format!("read trace {}: {e}", path.display())))?;
        if torn {
            return Err(CoreError::Io(format!(
                "trace {} has spans after a torn line",
                path.display()
            )));
        }
        match serde_json::from_str::<SpanRecord>(&line) {
            Ok(record) => records.push(record),
            Err(_) => torn = true,
        }
    }
    Ok(records)
}

/// The process-global span sink for multi-tenant processes: spans are
/// routed by trace id to a registered per-job [`TraceWriter`]; spans of
/// unregistered traces go to the default writer, if any.
///
/// Installed once per process via [`install_tracing`]; the serve daemon
/// registers one route per running job so `GET /v1/jobs/{id}/trace` can
/// serve each job's own timeline.
#[derive(Default)]
pub struct TraceMux {
    default: RwLock<Option<Arc<TraceWriter>>>,
    routes: RwLock<Vec<(u64, Arc<TraceWriter>)>>,
}

impl TraceMux {
    /// Sets (or clears) the default writer for unrouted spans.
    pub fn set_default(&self, writer: Option<Arc<TraceWriter>>) {
        *lock_unpoisoned_rw_write(&self.default) = writer;
    }

    /// Routes `trace_id`'s spans to `writer` until deregistered.
    pub fn register(&self, trace_id: u64, writer: Arc<TraceWriter>) {
        if trace_id == 0 {
            return;
        }
        let mut routes = lock_unpoisoned_rw_write(&self.routes);
        routes.retain(|(id, _)| *id != trace_id);
        routes.push((trace_id, writer));
    }

    /// Removes the route for `trace_id`, returning its writer (which the
    /// caller should flush).
    pub fn deregister(&self, trace_id: u64) -> Option<Arc<TraceWriter>> {
        let mut routes = lock_unpoisoned_rw_write(&self.routes);
        let at = routes.iter().position(|(id, _)| *id == trace_id)?;
        Some(routes.swap_remove(at).1)
    }
}

fn lock_unpoisoned_rw_write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_unpoisoned_rw_read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct MuxSink(&'static TraceMux);

impl SpanSink for MuxSink {
    fn on_span(&self, span: ClosedSpan) {
        let routed = {
            let routes = lock_unpoisoned_rw_read(&self.0.routes);
            routes
                .iter()
                .find(|(id, _)| *id == span.trace_id)
                .map(|(_, w)| Arc::clone(w))
        };
        match routed {
            Some(writer) => writer.on_span(span),
            None => {
                let default = lock_unpoisoned_rw_read(&self.0.default);
                if let Some(writer) = default.as_ref() {
                    writer.on_span(span);
                }
            }
        }
    }

    fn flush(&self) {
        for (_, writer) in lock_unpoisoned_rw_read(&self.0.routes).iter() {
            writer.flush_writer();
        }
        if let Some(writer) = lock_unpoisoned_rw_read(&self.0.default).as_ref() {
            writer.flush_writer();
        }
    }
}

static GLOBAL_MUX: OnceLock<&'static TraceMux> = OnceLock::new();

/// Installs the process-global [`TraceMux`] as the span sink, recording
/// spans down to `max_level`, with `default` receiving unrouted spans.
/// Idempotent across callers that agree a mux should exist: a second call
/// returns the existing mux (updating its default writer only when one is
/// given).
///
/// # Errors
///
/// A non-mux span sink was already installed.
pub fn install_tracing(
    max_level: Level,
    default: Option<Arc<TraceWriter>>,
) -> Result<&'static TraceMux> {
    if let Some(mux) = GLOBAL_MUX.get() {
        if let Some(writer) = default {
            mux.set_default(Some(writer));
        }
        return Ok(mux);
    }
    let mux: &'static TraceMux = Box::leak(Box::new(TraceMux::default()));
    mux.set_default(default);
    tracing::set_span_sink(max_level, Box::new(MuxSink(mux)))
        .map_err(|_| CoreError::InvalidConfig("a span sink is already installed"))?;
    let _ = GLOBAL_MUX.set(mux);
    Ok(mux)
}

/// The installed mux, if [`install_tracing`] has run in this process.
pub fn installed_mux() -> Option<&'static TraceMux> {
    GLOBAL_MUX.get().copied()
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.
// ---------------------------------------------------------------------------

/// Converts span records to Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` object form), loadable in Perfetto or
/// `chrome://tracing`. Every span becomes one complete (`"ph":"X"`)
/// event on its thread's lane, with the span's fields and lineage ids
/// under `args`.
pub fn chrome_trace(records: &[SpanRecord]) -> Value {
    let events: Vec<Value> = records
        .iter()
        .map(|r| {
            let mut args = vec![
                ("trace_id".to_string(), Value::Num(Number::U(r.trace_id))),
                ("span_id".to_string(), Value::Num(Number::U(r.span_id))),
            ];
            if let Some(parent) = r.parent_id {
                args.push(("parent_id".to_string(), Value::Num(Number::U(parent))));
            }
            args.push(("level".to_string(), Value::Str(r.level.clone())));
            args.extend(r.fields.iter().cloned());
            Value::Object(vec![
                ("name".to_string(), Value::Str(r.name.clone())),
                ("cat".to_string(), Value::Str(r.target.clone())),
                ("ph".to_string(), Value::Str("X".to_string())),
                (
                    "ts".to_string(),
                    Value::Num(Number::F(r.start_ns as f64 / 1_000.0)),
                ),
                (
                    "dur".to_string(),
                    Value::Num(Number::F(r.duration_ns as f64 / 1_000.0)),
                ),
                ("pid".to_string(), Value::Num(Number::U(1))),
                ("tid".to_string(), Value::Num(Number::U(r.thread))),
                ("args".to_string(), Value::Object(args)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ("traceEvents".to_string(), Value::Array(events)),
    ])
}

/// Parses a Chrome trace-event JSON object back into the span shape —
/// the schema round-trip direction ([`chrome_trace`] is the forward
/// direction). Only the fields [`chrome_trace`] emits are recovered.
///
/// # Errors
///
/// A value that is not a trace-event object of complete events.
pub fn spans_from_chrome(value: &Value) -> Result<Vec<SpanRecord>> {
    let events =
        value
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or(CoreError::InvalidConfig(
                "chrome trace has no traceEvents array",
            ))?;
    events
        .iter()
        .map(|event| {
            let get_u64 = |key: &str| {
                event
                    .get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| CoreError::Io(format!("chrome event missing numeric `{key}`")))
            };
            let get_str = |key: &str| {
                event
                    .get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| CoreError::Io(format!("chrome event missing `{key}`")))
            };
            if event.get("ph").and_then(Value::as_str) != Some("X") {
                return Err(CoreError::Io(
                    "chrome event is not a complete (ph=X) event".to_string(),
                ));
            }
            let args = event
                .get("args")
                .and_then(Value::as_object)
                .ok_or_else(|| CoreError::Io("chrome event missing args".to_string()))?;
            let arg_u64 = |key: &str| {
                args.iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_u64())
            };
            let ts = event
                .get("ts")
                .and_then(Value::as_f64)
                .ok_or_else(|| CoreError::Io("chrome event missing ts".to_string()))?;
            let dur = event
                .get("dur")
                .and_then(Value::as_f64)
                .ok_or_else(|| CoreError::Io("chrome event missing dur".to_string()))?;
            Ok(SpanRecord {
                trace_id: arg_u64("trace_id").unwrap_or(0),
                span_id: arg_u64("span_id").unwrap_or(0),
                parent_id: arg_u64("parent_id"),
                name: get_str("name")?,
                target: get_str("cat")?,
                level: args
                    .iter()
                    .find(|(k, _)| k == "level")
                    .and_then(|(_, v)| v.as_str())
                    .unwrap_or("INFO")
                    .to_string(),
                start_ns: (ts * 1_000.0).round() as u64,
                duration_ns: (dur * 1_000.0).round() as u64,
                thread: get_u64("tid")?,
                fields: args
                    .iter()
                    .filter(|(k, _)| {
                        !matches!(k.as_str(), "trace_id" | "span_id" | "parent_id" | "level")
                    })
                    .cloned()
                    .collect(),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Post-hoc timeline analysis (`hetsched trace`).
// ---------------------------------------------------------------------------

/// Aggregate timing of one span name across a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// The span name (`"cell"`, `"evaluation"`, ...).
    pub name: String,
    /// How many spans closed under this name.
    pub count: usize,
    /// Total wall-clock across those spans, seconds.
    pub total_s: f64,
    /// Self time: total minus time attributed to child spans, seconds.
    pub self_s: f64,
}

/// One hop of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathRow {
    /// Nesting depth from the root (0 = root).
    pub depth: usize,
    /// The span's name.
    pub name: String,
    /// The span's field label.
    pub label: String,
    /// The span's duration, seconds.
    pub duration_s: f64,
}

/// One of the slowest cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRow {
    /// The cell coordinate label.
    pub label: String,
    /// The cell span's duration, seconds.
    pub duration_s: f64,
}

/// The `hetsched trace` summary of a span file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Total spans analysed.
    pub spans: usize,
    /// Distinct trace ids seen.
    pub traces: usize,
    /// Per-name self-time breakdown, widest self time first.
    pub phases: Vec<PhaseRow>,
    /// Slowest `cell` spans, slowest first.
    pub slowest_cells: Vec<CellRow>,
    /// Critical path through the dominant (longest-root) trace: from the
    /// root, each hop descends into the longest child.
    pub critical_path: Vec<PathRow>,
    /// The dominant trace's root-span wall clock, seconds.
    pub wall_s: f64,
    /// Sum of all `cell` span durations, seconds.
    pub cell_total_s: f64,
    /// Distinct threads that closed at least one span.
    pub threads: usize,
}

impl TraceAnalysis {
    /// Analyses span records, keeping the `top_n` slowest cells.
    pub fn from_records(records: &[SpanRecord], top_n: usize) -> TraceAnalysis {
        // Children-duration sums keyed by parent span id, for self time.
        let mut child_time: Vec<(u64, u64)> = Vec::new(); // (parent span_id, Σ child ns)
        for r in records {
            if let Some(parent) = r.parent_id {
                match child_time.iter_mut().find(|(id, _)| *id == parent) {
                    Some((_, total)) => *total += r.duration_ns,
                    None => child_time.push((parent, r.duration_ns)),
                }
            }
        }
        let children_ns = |span_id: u64| {
            child_time
                .iter()
                .find(|(id, _)| *id == span_id)
                .map_or(0, |(_, total)| *total)
        };

        let mut phases: Vec<PhaseRow> = Vec::new();
        for r in records {
            let self_ns = r.duration_ns.saturating_sub(children_ns(r.span_id));
            match phases.iter_mut().find(|p| p.name == r.name) {
                Some(row) => {
                    row.count += 1;
                    row.total_s += r.duration_s();
                    row.self_s += self_ns as f64 / 1e9;
                }
                None => phases.push(PhaseRow {
                    name: r.name.clone(),
                    count: 1,
                    total_s: r.duration_s(),
                    self_s: self_ns as f64 / 1e9,
                }),
            }
        }
        phases.sort_by(|a, b| b.self_s.total_cmp(&a.self_s).then(a.name.cmp(&b.name)));

        let mut cells: Vec<&SpanRecord> = records.iter().filter(|r| r.name == "cell").collect();
        let cell_total_s = cells.iter().map(|r| r.duration_s()).sum();
        cells.sort_by(|a, b| {
            b.duration_ns
                .cmp(&a.duration_ns)
                .then(a.span_id.cmp(&b.span_id))
        });
        let slowest_cells = cells
            .iter()
            .take(top_n)
            .map(|r| CellRow {
                label: r.label(),
                duration_s: r.duration_s(),
            })
            .collect();

        // Dominant trace: the longest root span (ties broken by id for
        // determinism).
        let root = records
            .iter()
            .filter(|r| r.parent_id.is_none())
            .max_by(|a, b| {
                a.duration_ns
                    .cmp(&b.duration_ns)
                    .then(b.span_id.cmp(&a.span_id))
            });
        let mut critical_path = Vec::new();
        let wall_s = root.map_or(0.0, SpanRecord::duration_s);
        let mut cursor = root;
        let mut depth = 0usize;
        while let Some(span) = cursor {
            critical_path.push(PathRow {
                depth,
                name: span.name.clone(),
                label: span.label(),
                duration_s: span.duration_s(),
            });
            cursor = records
                .iter()
                .filter(|r| r.parent_id == Some(span.span_id))
                .max_by(|a, b| {
                    a.duration_ns
                        .cmp(&b.duration_ns)
                        .then(b.span_id.cmp(&a.span_id))
                });
            depth += 1;
        }

        let mut trace_ids: Vec<u64> = records.iter().map(|r| r.trace_id).collect();
        trace_ids.sort_unstable();
        trace_ids.dedup();
        let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
        threads.sort_unstable();
        threads.dedup();

        TraceAnalysis {
            spans: records.len(),
            traces: trace_ids.len(),
            phases,
            slowest_cells,
            critical_path,
            wall_s,
            cell_total_s,
            threads: threads.len(),
        }
    }

    /// Renders the analysis for the terminal.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} span(s) across {} trace(s), {} thread(s)\n",
            self.spans, self.traces, self.threads
        );
        let width = self
            .phases
            .iter()
            .map(|p| p.name.len())
            .max()
            .unwrap_or(0)
            .max("phase".len());
        let _ = writeln!(
            out,
            "{:width$}  {:>7}  {:>12}  {:>12}  {:>6}",
            "phase", "count", "total (s)", "self (s)", "self%"
        );
        let all_self: f64 = self.phases.iter().map(|p| p.self_s).sum();
        for phase in &self.phases {
            let share = if all_self > 0.0 {
                100.0 * phase.self_s / all_self
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:width$}  {:>7}  {:>12.6}  {:>12.6}  {:>5.1}%",
                phase.name, phase.count, phase.total_s, phase.self_s, share
            );
        }
        if !self.slowest_cells.is_empty() {
            let _ = writeln!(out, "\nslowest cells:");
            for (i, cell) in self.slowest_cells.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{:>3}. {:>10.6}s  {}",
                    i + 1,
                    cell.duration_s,
                    cell.label
                );
            }
        }
        if !self.critical_path.is_empty() {
            let _ = writeln!(out, "\ncritical path (longest child at each hop):");
            for row in &self.critical_path {
                let label = if row.label.is_empty() {
                    String::new()
                } else {
                    format!("  [{}]", row.label)
                };
                let _ = writeln!(
                    out,
                    "{:indent$}{} {:.6}s{label}",
                    "",
                    row.name,
                    row.duration_s,
                    indent = row.depth * 2
                );
            }
        }
        if self.wall_s > 0.0 && self.cell_total_s > 0.0 {
            let _ = writeln!(
                out,
                "\nwall-clock {:.6}s, cell time {:.6}s — parallel speedup {:.2}x",
                self.wall_s,
                self.cell_total_s,
                self.cell_total_s / self.wall_s
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace_id: u64,
        span_id: u64,
        parent_id: Option<u64>,
        name: &str,
        start_ns: u64,
        duration_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_id,
            name: name.to_string(),
            target: "test".to_string(),
            level: "INFO".to_string(),
            start_ns,
            duration_ns,
            thread: 1,
            fields: Vec::new(),
        }
    }

    fn cell(span_id: u64, parent: u64, replicate: u64, duration_ns: u64) -> SpanRecord {
        let mut record = span(1, span_id, Some(parent), "cell", 0, duration_ns);
        record.fields = vec![
            ("dataset".to_string(), Value::Str("One".to_string())),
            ("algorithm".to_string(), Value::Str("nsga2".to_string())),
            ("seed".to_string(), Value::Str("random".to_string())),
            ("replicate".to_string(), Value::Num(Number::U(replicate))),
        ];
        record
    }

    #[test]
    fn span_record_roundtrips_with_and_without_parent() {
        let root = span(1, 2, None, "campaign", 10, 500);
        let mut child = span(1, 3, Some(2), "cell", 20, 100);
        child.fields = vec![
            ("replicate".to_string(), Value::Num(Number::U(3))),
            ("flag".to_string(), Value::Bool(true)),
        ];
        for record in [&root, &child] {
            let line = serde_json::to_string(record).unwrap();
            let back: SpanRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, record);
        }
        let line = serde_json::to_string(&root).unwrap();
        assert!(!line.contains("parent_id"), "{line}");
    }

    #[test]
    fn trace_writer_appends_and_reads_back() {
        let path =
            std::env::temp_dir().join(format!("hetsched-trace-rt-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let writer = TraceWriter::create(&path).unwrap();
        let records = vec![span(1, 2, None, "a", 0, 10), span(1, 3, Some(2), "b", 1, 5)];
        for r in &records {
            writer.append(r);
        }
        drop(writer);
        let read = read_trace(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(read, records);
    }

    #[test]
    fn torn_final_line_is_dropped_and_mid_corruption_rejected() {
        let path =
            std::env::temp_dir().join(format!("hetsched-trace-torn-{}.jsonl", std::process::id()));
        let a = serde_json::to_string(&span(1, 2, None, "a", 0, 10)).unwrap();
        std::fs::write(&path, format!("{a}\n{{\"torn")).unwrap();
        let read = read_trace(&path).unwrap();
        assert_eq!(read.len(), 1);
        std::fs::write(&path, format!("{{\"torn\n{a}\n")).unwrap();
        assert!(read_trace(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chrome_export_roundtrips_the_span_shape() {
        let mut records = vec![span(7, 8, None, "campaign", 1_000, 9_000)];
        records.push(cell(9, 8, 2, 4_000));
        let chrome = chrome_trace(&records);
        let text = serde_json::to_string(&chrome).unwrap();
        assert!(text.contains("\"traceEvents\""), "{text}");
        assert!(text.contains("\"ph\":\"X\""), "{text}");
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let back = spans_from_chrome(&parsed).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn analysis_self_time_critical_path_and_cells() {
        // campaign(10s) -> cell r0 (6s) -> generation (4s)
        //              \-> cell r1 (3s)
        let records = vec![
            span(1, 1, None, "campaign", 0, 10_000_000_000),
            cell(2, 1, 0, 6_000_000_000),
            cell(3, 1, 1, 3_000_000_000),
            span(1, 4, Some(2), "generation", 0, 4_000_000_000),
        ];
        let analysis = TraceAnalysis::from_records(&records, 1);
        assert_eq!(analysis.spans, 4);
        assert_eq!(analysis.traces, 1);
        let campaign = analysis
            .phases
            .iter()
            .find(|p| p.name == "campaign")
            .unwrap();
        assert!((campaign.self_s - 1.0).abs() < 1e-9, "{campaign:?}");
        let cells = analysis.phases.iter().find(|p| p.name == "cell").unwrap();
        assert_eq!(cells.count, 2);
        assert!((cells.total_s - 9.0).abs() < 1e-9);
        assert!((cells.self_s - 5.0).abs() < 1e-9);
        assert_eq!(analysis.slowest_cells.len(), 1);
        assert_eq!(analysis.slowest_cells[0].label, "One/nsga2/random/r0");
        let path: Vec<&str> = analysis
            .critical_path
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(path, ["campaign", "cell", "generation"]);
        assert!((analysis.wall_s - 10.0).abs() < 1e-9);
        assert!((analysis.cell_total_s - 9.0).abs() < 1e-9);
        let rendered = analysis.render();
        assert!(rendered.contains("critical path"), "{rendered}");
        assert!(rendered.contains("One/nsga2/random/r0"), "{rendered}");
        assert!(rendered.contains("parallel speedup 0.90x"), "{rendered}");
    }

    #[test]
    fn mux_routes_by_trace_id_with_default_fallback() {
        let mux = TraceMux::default();
        let routed_path = std::env::temp_dir().join(format!(
            "hetsched-trace-mux-routed-{}.jsonl",
            std::process::id()
        ));
        let default_path = std::env::temp_dir().join(format!(
            "hetsched-trace-mux-default-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&routed_path);
        let _ = std::fs::remove_file(&default_path);
        mux.set_default(Some(Arc::new(TraceWriter::create(&default_path).unwrap())));
        mux.register(7, Arc::new(TraceWriter::create(&routed_path).unwrap()));
        // Route through the sink interface the shim would use.
        let sink = MuxSink(Box::leak(Box::new(mux)));
        let closed = |trace_id| ClosedSpan {
            trace_id,
            span_id: trace_id * 10,
            parent_id: None,
            name: "x",
            target: "t",
            level: Level::INFO,
            start_ns: 0,
            duration_ns: 1,
            thread: 1,
            fields: Vec::new(),
        };
        sink.on_span(closed(7));
        sink.on_span(closed(9));
        sink.flush();
        let routed = read_trace(&routed_path).unwrap();
        let default = read_trace(&default_path).unwrap();
        let _ = std::fs::remove_file(&routed_path);
        let _ = std::fs::remove_file(&default_path);
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].trace_id, 7);
        assert_eq!(default.len(), 1);
        assert_eq!(default[0].trace_id, 9);
        assert!(sink.0.deregister(7).is_some());
        assert!(sink.0.deregister(7).is_none());
    }
}
