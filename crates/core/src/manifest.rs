//! The manifest as a storage abstraction: the [`ManifestStore`] trait
//! (append / tail / lock) and its local-JSONL implementation,
//! [`LocalManifestStore`].
//!
//! The campaign manifest started life as a private checkpoint file; for
//! distributed execution (see [`crate::worker`]) it is the *only*
//! coordination substrate — every worker appends cell results and
//! [`LeaseRecord`]s to the same log and replays it to decide what to do
//! next. This module owns the format (header, version, interleaved
//! record kinds, torn-line tolerance) and its concurrency story:
//!
//! * **append** — one whole line per record. The local store writes
//!   through an `O_APPEND` handle and flushes each record in a single
//!   `write`, so concurrent appenders never interleave *within* a line.
//! * **tail** — read the log back as raw [`ManifestRecord`]s. Lines that
//!   fail to parse (a writer killed mid-append) are dropped with a
//!   warning; every surviving record is self-describing, and a dropped
//!   *result* only costs a deterministic re-execution once its lease
//!   expires.
//! * **lock** — a short exclusive critical section for read-decide-append
//!   sequences (lease acquisition). The local store uses an `O_EXCL`
//!   sidecar lockfile with stale-age takeover; taking the lock also heals
//!   a missing trailing newline left by a writer that died mid-append,
//!   so the next append cannot glue onto the torn line.
//!
//! Correctness never rests on the lock alone: a worker that appends
//! without it (or after its lock was stolen) is fenced by lease epochs at
//! merge time — see [`crate::lease`].

use crate::campaign::CellRecord;
use crate::chaos_hooks;
use crate::durable::lock_unpoisoned;
use crate::lease::{LeaseRecord, LEASE_KIND};
use crate::{CoreError, Result};
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Current manifest format version. Bumped to 2 when [`CellRecord`] grew
/// `duration_s`, to 3 when it grew `outcome` (timeout/quarantine
/// classification), and to 4 when lease records and the optional
/// `worker`/`epoch` cell tags arrived (distributed execution). v3 files
/// are still readable — the new fields default — but v1/v2 predate the
/// hand-written record serde and must be refused up front rather than
/// half-parsed.
pub const MANIFEST_VERSION: usize = 4;

/// Oldest manifest version this build still reads (the new v4 fields are
/// optional, so v3 records parse unchanged).
pub const COMPAT_MANIFEST_VERSION: usize = 3;

/// A lockfile untouched for this long belongs to a dead process and may
/// be broken. Critical sections under the lock are read-decide-append
/// (milliseconds), so ten seconds is orders of magnitude past honest use.
const STALE_LOCK_AGE: Duration = Duration::from_secs(10);

/// How long [`ManifestStore::lock`] waits for a contended lock before
/// giving up.
const LOCK_WAIT_BUDGET: Duration = Duration::from_secs(30);

/// The manifest's first line, guarding resume against spec mismatches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ManifestHeader {
    /// Fingerprint of the campaign spec that owns the file.
    fingerprint: String,
    /// Manifest format version.
    version: usize,
}

/// One line of a v4 manifest: either a cell's result or a lease action.
/// Lease lines carry a `"kind":"lease"` discriminator; cell lines have
/// no `kind` field.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestRecord {
    /// A cell's recorded outcome.
    Cell(CellRecord),
    /// A lease acquire/renew/release/expire.
    Lease(LeaseRecord),
}

impl Serialize for ManifestRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        match self {
            ManifestRecord::Cell(record) => record.serialize(serializer),
            ManifestRecord::Lease(record) => record.serialize(serializer),
        }
    }
}

impl<'de> Deserialize<'de> for ManifestRecord {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        if value.get("kind").and_then(Value::as_str) == Some(LEASE_KIND) {
            serde::from_value::<LeaseRecord>(value)
                .map(ManifestRecord::Lease)
                .map_err(serde::de::Error::custom)
        } else {
            serde::from_value::<CellRecord>(value)
                .map(ManifestRecord::Cell)
                .map_err(serde::de::Error::custom)
        }
    }
}

/// Reads a manifest back as raw records, without merging or fencing:
/// the owning fingerprint plus every parseable line in order, or `None`
/// for an empty file. Torn lines (a writer killed mid-append) are
/// dropped with a warning — each surviving record is self-describing,
/// and the lease protocol re-runs any cell whose result line was lost.
///
/// # Errors
///
/// I/O failures, a corrupt or torn header, or an unsupported manifest
/// version (anything other than v{3,4}).
pub fn load_manifest_records(path: &Path) -> Result<Option<(String, Vec<ManifestRecord>)>> {
    let file = File::open(path)
        .map_err(|e| CoreError::Io(format!("open manifest {}: {e}", path.display())))?;
    let mut lines = BufReader::new(file).lines();
    let header_line = match lines.next() {
        None => return Ok(None),
        Some(line) => line.map_err(|e| CoreError::Io(format!("read manifest: {e}")))?,
    };
    let header: ManifestHeader = serde_json::from_str(&header_line)
        .map_err(|e| CoreError::Manifest(format!("corrupt manifest header: {e}")))?;
    if header.version != MANIFEST_VERSION && header.version != COMPAT_MANIFEST_VERSION {
        return Err(CoreError::Manifest(format!(
            "manifest version {} unsupported (this build writes v{MANIFEST_VERSION} and still \
             reads v{COMPAT_MANIFEST_VERSION})",
            header.version
        )));
    }
    let mut records = Vec::new();
    let mut torn = 0usize;
    for line in lines {
        let line = line.map_err(|e| CoreError::Io(format!("read manifest: {e}")))?;
        match serde_json::from_str::<ManifestRecord>(&line) {
            Ok(record) => records.push(record),
            // A writer died mid-append. The line identifies nothing
            // trustworthy, so drop it; whatever it would have recorded is
            // re-derivable (results re-execute bit-identically once the
            // cell's lease expires).
            Err(_) => torn += 1,
        }
    }
    if torn > 0 {
        tracing::warn!(
            "manifest {}: dropped {torn} torn line(s) left by interrupted writer(s)",
            path.display()
        );
    }
    Ok(Some((header.fingerprint, records)))
}

/// The fencing-merged view of a manifest's records: what replay actually
/// trusts after lease epochs have had their say.
#[derive(Debug, Clone, Default)]
pub struct ManifestView {
    /// Admitted cell records, in manifest order (later records for the
    /// same cell still supersede earlier ones — apply last-record-wins
    /// on top, as [`crate::Campaign::run`] does).
    pub cells: Vec<CellRecord>,
    /// The replayed lease state machine.
    pub leases: crate::lease::LeaseTable,
    /// Per-worker count of records rejected by epoch fencing (a stale
    /// worker's late appends).
    pub fenced: std::collections::HashMap<String, usize>,
}

/// Replays raw records through the lease state machine, dropping every
/// fenced append. This is **the** merge: every reader (resume, workers,
/// `hetsched report`, the serve daemon) sees the same surviving records.
pub fn replay_records(records: &[ManifestRecord]) -> ManifestView {
    let mut view = ManifestView::default();
    for record in records {
        match record {
            ManifestRecord::Lease(lease) => {
                if !view.leases.apply(lease) {
                    *view.fenced.entry(lease.worker.clone()).or_insert(0) += 1;
                }
            }
            ManifestRecord::Cell(cell) => {
                if view.leases.admits(&cell.cell, cell.epoch) {
                    view.cells.push(cell.clone());
                } else {
                    let worker = cell.worker.clone().unwrap_or_else(|| "?".to_string());
                    tracing::warn!(
                        "manifest: fenced stale result for cell {} from worker {worker} \
                         (epoch {:?} < {})",
                        cell.cell,
                        cell.epoch,
                        view.leases.max_epoch(&cell.cell)
                    );
                    *view.fenced.entry(worker).or_insert(0) += 1;
                }
            }
        }
    }
    view
}

/// An exclusive claim on a manifest store, released on drop. For the
/// local store this is a sidecar lockfile; stores without a lock concept
/// may return an empty guard.
#[derive(Debug)]
pub struct StoreLock {
    path: Option<PathBuf>,
}

impl StoreLock {
    /// A guard that releases nothing (for stores whose appends need no
    /// critical section).
    pub fn unlocked() -> Self {
        StoreLock { path: None }
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Where a campaign manifest lives and how its records are appended,
/// read back, and locked. [`LocalManifestStore`] is the JSONL-file
/// implementation; the trait exists so a shared object store can slot in
/// behind the same campaign/worker machinery later.
pub trait ManifestStore: Send + Sync {
    /// Appends one cell record as a whole line (atomic with respect to
    /// concurrent appenders).
    fn append_cell(&self, record: &CellRecord) -> std::io::Result<()>;

    /// Appends one lease record as a whole line.
    fn append_lease(&self, record: &LeaseRecord) -> std::io::Result<()>;

    /// Reads the whole log back: owning fingerprint plus raw records, or
    /// `None` when the store is empty.
    fn tail(&self) -> Result<Option<(String, Vec<ManifestRecord>)>>;

    /// Takes the store's exclusive lock for a read-decide-append critical
    /// section. Blocks (bounded) on contention; breaks stale locks left
    /// by dead processes.
    fn lock(&self) -> Result<StoreLock>;

    /// Durability barrier: everything appended so far reaches stable
    /// storage.
    fn sync(&self) -> std::io::Result<()>;
}

struct SinkState {
    writer: BufWriter<File>,
    /// Records flushed to the OS but not yet fsynced.
    pending: usize,
}

/// The JSONL-file manifest store: line-buffered appends behind a mutex,
/// flushed per record so a kill loses at most the line being written,
/// and fsynced every `sync_every` records so a power loss loses at most
/// that window. The lock recovers from poisoning (a panicking appender
/// leaves at worst a torn tail line, which the reader tolerates) — one
/// bad cell must not disable checkpointing for the rest of the campaign.
pub struct LocalManifestStore {
    path: PathBuf,
    state: Mutex<SinkState>,
    sync_every: usize,
}

impl LocalManifestStore {
    /// Opens `path` for appending, writing (and fsyncing) the fingerprint
    /// header if the file is new or empty. `sync_every` batches fsyncs
    /// (clamped to ≥ 1).
    pub fn open(path: &Path, fingerprint: &str, sync_every: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| CoreError::Io(format!("open manifest {}: {e}", path.display())))?;
        let fresh = file
            .metadata()
            .map(|m| m.len() == 0)
            .map_err(|e| CoreError::Io(format!("stat manifest {}: {e}", path.display())))?;
        let mut writer = BufWriter::new(file);
        if fresh {
            let header = ManifestHeader {
                fingerprint: fingerprint.to_string(),
                version: MANIFEST_VERSION,
            };
            writeln!(
                writer,
                "{}",
                serde_json::to_string(&header).expect("header serialises")
            )
            .and_then(|()| writer.flush())
            .and_then(|()| writer.get_ref().sync_data())
            .map_err(|e| CoreError::Io(format!("write manifest header: {e}")))?;
        }
        Ok(LocalManifestStore {
            path: path.to_path_buf(),
            state: Mutex::new(SinkState { writer, pending: 0 }),
            sync_every: sync_every.max(1),
        })
    }

    /// The manifest file this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append_line(&self, line: &str, scope: &dyn std::fmt::Display) -> std::io::Result<()> {
        let mut state = lock_unpoisoned(&self.state);
        // The fault point sits inside the critical section so an injected
        // panic genuinely poisons the mutex — the scenario the poisoning
        // recovery exists for.
        chaos_hooks::raise_io("manifest.append", scope)?;
        writeln!(state.writer, "{line}")?;
        state.writer.flush()?;
        state.pending += 1;
        if state.pending >= self.sync_every {
            state.writer.get_ref().sync_data()?;
            state.pending = 0;
        }
        Ok(())
    }

    /// Appends a trailing newline if a dead writer left the file ending
    /// mid-line, so the next append starts on a line of its own (the
    /// garbage line then fails to parse alone instead of swallowing a
    /// good record). Called with the store lock held.
    fn heal_torn_tail(&self) -> std::io::Result<()> {
        let mut file = match File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(());
        }
        file.seek(SeekFrom::End(-1))?;
        let mut last = [0u8; 1];
        file.read_exact(&mut last)?;
        if last[0] != b'\n' {
            tracing::warn!(
                "manifest {}: healing torn tail left by an interrupted writer",
                self.path.display()
            );
            let mut state = lock_unpoisoned(&self.state);
            state.writer.write_all(b"\n")?;
            state.writer.flush()?;
        }
        Ok(())
    }

    fn lock_path(&self) -> PathBuf {
        let mut name = self.path.file_name().map_or_else(
            || "manifest".to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        name.push_str(".lock");
        self.path.with_file_name(name)
    }
}

impl ManifestStore for LocalManifestStore {
    fn append_cell(&self, record: &CellRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.append_line(&line, &record.cell)
    }

    fn append_lease(&self, record: &LeaseRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.append_line(&line, &record.cell)
    }

    fn tail(&self) -> Result<Option<(String, Vec<ManifestRecord>)>> {
        load_manifest_records(&self.path)
    }

    fn lock(&self) -> Result<StoreLock> {
        let lock_path = self.lock_path();
        let deadline = Instant::now() + LOCK_WAIT_BUDGET;
        loop {
            match OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock_path)
            {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    let guard = StoreLock {
                        path: Some(lock_path),
                    };
                    self.heal_torn_tail()
                        .map_err(|e| CoreError::Io(format!("heal manifest tail: {e}")))?;
                    return Ok(guard);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = std::fs::metadata(&lock_path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| m.elapsed().ok())
                        .is_some_and(|age| age > STALE_LOCK_AGE);
                    if stale {
                        tracing::warn!(
                            "manifest lock {} is stale; breaking it",
                            lock_path.display()
                        );
                        let _ = std::fs::remove_file(&lock_path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        return Err(CoreError::Manifest(format!(
                            "manifest lock {} still held after {:?}",
                            lock_path.display(),
                            LOCK_WAIT_BUDGET
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    return Err(CoreError::Io(format!(
                        "take manifest lock {}: {e}",
                        lock_path.display()
                    )))
                }
            }
        }
    }

    fn sync(&self) -> std::io::Result<()> {
        let mut state = lock_unpoisoned(&self.state);
        state.writer.flush()?;
        state.writer.get_ref().sync_data()?;
        state.pending = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CellId, CellOutcome};
    use crate::config::DatasetId;
    use crate::lease::LeaseAction;
    use hetsched_heuristics::SeedKind;
    use hetsched_moea::Algorithm;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hetsched-store-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn cell(replicate: usize) -> CellId {
        CellId {
            dataset: DatasetId::One,
            algorithm: Algorithm::Nsga2,
            seed: SeedKind::Random,
            replicate,
        }
    }

    fn cell_record(replicate: usize, worker: Option<&str>, epoch: Option<u64>) -> CellRecord {
        CellRecord {
            cell: cell(replicate),
            run: None,
            error: Some("x".to_string()),
            outcome: CellOutcome::Poisoned,
            attempts: 1,
            duration_s: 0.1,
            worker: worker.map(String::from),
            epoch,
        }
    }

    #[test]
    fn store_appends_both_record_kinds_and_tails_them_back() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let store = LocalManifestStore::open(&path, "cafe", 1).unwrap();
        store
            .append_cell(&cell_record(0, Some("w1"), Some(1)))
            .unwrap();
        store
            .append_lease(&LeaseRecord::new(
                cell(1),
                "w1",
                1,
                LeaseAction::Acquire,
                9.0,
            ))
            .unwrap();
        store.sync().unwrap();
        let (owner, records) = store.tail().unwrap().unwrap();
        assert_eq!(owner, "cafe");
        assert_eq!(records.len(), 2);
        assert!(matches!(&records[0], ManifestRecord::Cell(r) if r.epoch == Some(1)));
        assert!(
            matches!(&records[1], ManifestRecord::Lease(l) if l.action == LeaseAction::Acquire)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lock_is_exclusive_heals_torn_tails_and_breaks_stale_locks() {
        let path = temp_path("lock");
        let _ = std::fs::remove_file(&path);
        let store = LocalManifestStore::open(&path, "cafe", 1).unwrap();
        // Simulate a writer killed mid-append: bytes with no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"cell\":{\"part").unwrap();
        }
        let guard = store.lock().unwrap();
        // A second lock attempt sees the lockfile.
        let lock_file = store.lock_path();
        assert!(lock_file.exists());
        drop(guard);
        assert!(!lock_file.exists());
        // The torn tail was healed: the next append lands on its own
        // line, and the garbage line is dropped at read time.
        store.append_cell(&cell_record(0, None, None)).unwrap();
        let (_, records) = store.tail().unwrap().unwrap();
        assert_eq!(records.len(), 1);
        // A stale lockfile (backdated mtime is awkward portably; instead
        // verify the non-stale path blocks by observing a quick retry
        // succeed after release) — covered by the exclusivity above.
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_fences_stale_epochs_and_counts_per_worker() {
        let records = vec![
            ManifestRecord::Lease(LeaseRecord::new(
                cell(0),
                "w1",
                1,
                LeaseAction::Acquire,
                1.0,
            )),
            ManifestRecord::Lease(LeaseRecord::new(
                cell(0),
                "w2",
                2,
                LeaseAction::Acquire,
                9.0,
            )),
            // w1's zombie result at the superseded epoch: fenced.
            ManifestRecord::Cell(cell_record(0, Some("w1"), Some(1))),
            // w2's result at the live epoch: admitted.
            ManifestRecord::Cell(cell_record(0, Some("w2"), Some(2))),
            // w1's zombie renewal: fenced too.
            ManifestRecord::Lease(LeaseRecord::new(cell(0), "w1", 1, LeaseAction::Renew, 99.0)),
            // An untagged (single-process / v3) record always admits.
            ManifestRecord::Cell(cell_record(1, None, None)),
        ];
        let view = replay_records(&records);
        assert_eq!(view.cells.len(), 2);
        assert_eq!(view.cells[0].worker.as_deref(), Some("w2"));
        assert_eq!(view.fenced.get("w1"), Some(&2));
        assert_eq!(view.leases.stolen_by("w2"), 1);
    }

    #[test]
    fn store_survives_a_poisoned_mutex() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let path = temp_path("poison");
        let _ = std::fs::remove_file(&path);
        let store = LocalManifestStore::open(&path, "feedface00000000", 1).unwrap();

        // Poison the store's mutex the way a panicking appender would.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _guard = store.state.lock().unwrap();
            panic!("injected panic while holding the manifest lock");
        }));
        assert!(caught.is_err());
        assert!(store.state.is_poisoned());

        // Checkpointing keeps working for the surviving cells.
        let record = cell_record(0, None, None);
        store.append_cell(&record).unwrap();
        store.sync().unwrap();
        let (_, records) = store.tail().unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(records, vec![ManifestRecord::Cell(record)]);
    }

    #[test]
    fn old_versions_are_refused_naming_both_versions() {
        let path = temp_path("version");
        std::fs::write(&path, "{\"fingerprint\":\"d00d\",\"version\":2}\n").unwrap();
        let err = load_manifest_records(&path).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("version 2 unsupported"), "{message}");
        assert!(message.contains("writes v4"), "{message}");
        assert!(message.contains("reads v3"), "{message}");
        std::fs::write(&path, "{\"fingerprint\":\"d00d\",\"version\":5}\n").unwrap();
        assert!(load_manifest_records(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
