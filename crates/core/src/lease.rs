//! Cell leases: the coordination records that let many worker processes
//! share one campaign manifest (see README § Distributed campaigns).
//!
//! A lease is a claim on one campaign cell by one worker, written into
//! the manifest as a [`LeaseRecord`] interleaved with the cell records.
//! Replaying the manifest through a [`LeaseTable`] reconstructs, for
//! every cell, who holds it, until when, and at which **fencing epoch**
//! — a per-cell counter that increases by one on every acquisition.
//!
//! # Fencing
//!
//! The epoch is the whole safety story. A worker that acquires a cell at
//! epoch *e* tags everything it later writes for that cell with *e*. If
//! the worker stalls past its lease deadline, a peer takes the cell over
//! at epoch *e + 1* — and from that moment any record still carrying *e*
//! (a renewal from the stalled heartbeat thread, or worse, the stale
//! worker's late result append) is **fenced**: rejected during replay by
//! epoch comparison. A "dead" worker that wakes up cannot clobber the
//! takeover's result, no matter how late its writes land, because
//! rejection happens at *merge* time, not at append time — the append
//! itself needs no coordination.
//!
//! # Clock skew
//!
//! Deadlines are wall-clock seconds (workers on different hosts share no
//! monotonic clock), so expiry checks allow a configurable **skew
//! slack**: a lease only counts as expired once `now` exceeds
//! `deadline + slack`. A worker renewing on time with a slightly slow
//! clock is therefore never stolen from; a genuinely dead worker is
//! taken over one slack interval late, which only costs latency.
//!
//! Every query that involves "now" takes the timestamp explicitly, so
//! the state machine is fully deterministic under test.

use crate::campaign::CellId;
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};
use std::collections::HashMap;

/// Default clock-skew slack added to lease deadlines before a lease
/// counts as expired (seconds).
pub const DEFAULT_SKEW_SLACK_S: f64 = 0.5;

/// The discriminator value that marks a manifest line as a lease record
/// (cell records have no `kind` field).
pub(crate) const LEASE_KIND: &str = "lease";

/// What a lease record does to its cell's lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseAction {
    /// A worker claims the cell at a fresh epoch.
    Acquire,
    /// The holder extends its deadline (same epoch).
    Renew,
    /// The holder is done with the cell (result appended, or abandoned
    /// cleanly).
    Release,
    /// The holder observed its own lease expire (a renewal landed too
    /// late) and self-fenced instead of appending a possibly-clobbering
    /// result.
    Expire,
}

impl LeaseAction {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            LeaseAction::Acquire => "acquire",
            LeaseAction::Renew => "renew",
            LeaseAction::Release => "release",
            LeaseAction::Expire => "expire",
        }
    }
}

/// One lease line in a v4 manifest. Serialised with a leading
/// `"kind":"lease"` discriminator so replay can tell lease lines from
/// cell lines (which carry no `kind` field).
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseRecord {
    /// The claimed cell.
    pub cell: CellId,
    /// The claiming worker's id.
    pub worker: String,
    /// Fencing epoch of the claim (monotonically increasing per cell).
    pub epoch: u64,
    /// What this record does to the lease.
    pub action: LeaseAction,
    /// Wall-clock deadline (seconds since the Unix epoch) after which
    /// the lease may be taken over — see [`DEFAULT_SKEW_SLACK_S`].
    pub deadline_s: f64,
}

impl LeaseRecord {
    /// A record of `action` by `worker` on `cell` at `epoch`.
    pub fn new(
        cell: CellId,
        worker: impl Into<String>,
        epoch: u64,
        action: LeaseAction,
        deadline_s: f64,
    ) -> Self {
        LeaseRecord {
            cell,
            worker: worker.into(),
            epoch,
            action,
            deadline_s,
        }
    }
}

impl Serialize for LeaseRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let entries = vec![
            ("kind".to_string(), serde::to_value(&LEASE_KIND)),
            ("cell".to_string(), serde::to_value(&self.cell)),
            ("worker".to_string(), serde::to_value(&self.worker)),
            ("epoch".to_string(), serde::to_value(&self.epoch)),
            ("action".to_string(), serde::to_value(&self.action)),
            ("deadline_s".to_string(), serde::to_value(&self.deadline_s)),
        ];
        serializer.serialize_value(Value::Object(entries))
    }
}

impl<'de> Deserialize<'de> for LeaseRecord {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::__private::{from_field, into_object};
        let mut entries = into_object::<D::Error>(deserializer.take_value()?, "LeaseRecord")?;
        let kind: String = from_field(&mut entries, "kind")?;
        if kind != LEASE_KIND {
            return Err(serde::de::Error::custom(format!(
                "expected kind `{LEASE_KIND}`, found `{kind}`"
            )));
        }
        Ok(LeaseRecord {
            cell: from_field(&mut entries, "cell")?,
            worker: from_field(&mut entries, "worker")?,
            epoch: from_field(&mut entries, "epoch")?,
            action: from_field(&mut entries, "action")?,
            deadline_s: from_field(&mut entries, "deadline_s")?,
        })
    }
}

/// The live lease of one cell, as reconstructed by replay.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseState {
    /// The most recent legitimate claimant.
    pub worker: String,
    /// The cell's current (maximum ever seen) fencing epoch.
    pub epoch: u64,
    /// The last applied action at that epoch.
    pub action: LeaseAction,
    /// The last applied deadline.
    pub deadline_s: f64,
}

impl LeaseState {
    /// Whether the lease is currently held (not released or expired by
    /// its own holder). Deadline expiry is a separate, time-dependent
    /// question — see [`LeaseTable::is_held`].
    pub fn is_claimed(&self) -> bool {
        matches!(self.action, LeaseAction::Acquire | LeaseAction::Renew)
    }
}

/// The lease state machine: replays [`LeaseRecord`]s in manifest order
/// and answers who holds what, which epochs are fenced, and which
/// takeovers counted as steals.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    states: HashMap<CellId, LeaseState>,
    /// Per-worker count of acquisitions that superseded an unreleased
    /// lease of a *different* worker (lease steals / takeovers).
    stolen: HashMap<String, usize>,
    slack_s: f64,
}

impl Default for LeaseTable {
    fn default() -> Self {
        LeaseTable {
            states: HashMap::new(),
            stolen: HashMap::new(),
            slack_s: DEFAULT_SKEW_SLACK_S,
        }
    }
}

impl LeaseTable {
    /// An empty table with the default skew slack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the clock-skew slack (seconds; clamped to ≥ 0).
    pub fn with_slack(mut self, slack_s: f64) -> Self {
        self.slack_s = slack_s.max(0.0);
        self
    }

    /// The configured skew slack in seconds.
    pub fn slack_s(&self) -> f64 {
        self.slack_s
    }

    /// Applies one record in manifest order. Returns `false` when the
    /// record is **fenced** — it carries an epoch below the cell's
    /// current one, or claims someone else's live epoch — and therefore
    /// changes nothing.
    pub fn apply(&mut self, record: &LeaseRecord) -> bool {
        match self.states.get_mut(&record.cell) {
            None => {
                self.states.insert(
                    record.cell,
                    LeaseState {
                        worker: record.worker.clone(),
                        epoch: record.epoch,
                        action: record.action,
                        deadline_s: record.deadline_s,
                    },
                );
                true
            }
            Some(state) => {
                let applies = record.epoch > state.epoch
                    || (record.epoch == state.epoch && record.worker == state.worker);
                if !applies {
                    return false;
                }
                if record.epoch > state.epoch && state.is_claimed() && record.worker != state.worker
                {
                    // Superseding an unreleased lease of another worker:
                    // a takeover, credited to the new claimant.
                    *self.stolen.entry(record.worker.clone()).or_insert(0) += 1;
                }
                state.worker.clone_from(&record.worker);
                state.epoch = record.epoch;
                state.action = record.action;
                state.deadline_s = record.deadline_s;
                true
            }
        }
    }

    /// The cell's current fencing epoch (0 when no lease was ever
    /// recorded — real epochs start at 1).
    pub fn max_epoch(&self, cell: &CellId) -> u64 {
        self.states.get(cell).map_or(0, |s| s.epoch)
    }

    /// The epoch a fresh acquisition of `cell` must use.
    pub fn next_epoch(&self, cell: &CellId) -> u64 {
        self.max_epoch(cell) + 1
    }

    /// The cell's lease state, claimed or not.
    pub fn state(&self, cell: &CellId) -> Option<&LeaseState> {
        self.states.get(cell)
    }

    /// The current claimant, if the lease was neither released nor
    /// self-expired (deadline expiry is checked separately).
    pub fn holder(&self, cell: &CellId) -> Option<&LeaseState> {
        self.states.get(cell).filter(|s| s.is_claimed())
    }

    /// Whether the cell is held by a live lease at wall-clock `now_s`:
    /// claimed, and within `deadline + slack`.
    pub fn is_held(&self, cell: &CellId, now_s: f64) -> bool {
        self.holder(cell)
            .is_some_and(|s| now_s < s.deadline_s + self.slack_s)
    }

    /// The claimant whose lease has expired at `now_s` without a release
    /// — the takeover case. `None` when the cell is unleased, live, or
    /// cleanly released.
    pub fn expired_holder(&self, cell: &CellId, now_s: f64) -> Option<&LeaseState> {
        self.holder(cell)
            .filter(|s| now_s >= s.deadline_s + self.slack_s)
    }

    /// Merge-time fencing for *cell* records: a result tagged with an
    /// epoch applies only if that epoch is still the cell's newest; an
    /// untagged result (single-process campaigns, v3 manifests) always
    /// applies.
    pub fn admits(&self, cell: &CellId, epoch: Option<u64>) -> bool {
        epoch.is_none_or(|e| e >= self.max_epoch(cell))
    }

    /// How many takeovers `worker` performed.
    pub fn stolen_by(&self, worker: &str) -> usize {
        self.stolen.get(worker).copied().unwrap_or(0)
    }

    /// Per-worker takeover counts, unordered.
    pub fn steals(&self) -> &HashMap<String, usize> {
        &self.stolen
    }

    /// Every worker that ever appears in the table, unordered.
    pub fn workers(&self) -> impl Iterator<Item = &str> {
        self.states.values().map(|s| s.worker.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetId;
    use hetsched_heuristics::SeedKind;
    use hetsched_moea::Algorithm;
    use proptest::prelude::*;

    fn cell(replicate: usize) -> CellId {
        CellId {
            dataset: DatasetId::One,
            algorithm: Algorithm::Nsga2,
            seed: SeedKind::Random,
            replicate,
        }
    }

    fn rec(worker: &str, epoch: u64, action: LeaseAction, deadline_s: f64) -> LeaseRecord {
        LeaseRecord::new(cell(0), worker, epoch, action, deadline_s)
    }

    #[test]
    fn lease_record_roundtrips_with_kind_discriminator() {
        let record = rec("w1", 3, LeaseAction::Renew, 12.5);
        let json = serde_json::to_string(&record).unwrap();
        assert!(json.starts_with("{\"kind\":\"lease\""), "{json}");
        let back: LeaseRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
        // A cell record (no `kind`) must not parse as a lease.
        assert!(serde_json::from_str::<LeaseRecord>("{\"cell\":1}").is_err());
        assert!(serde_json::from_str::<LeaseRecord>("{\"kind\":\"other\"}").is_err());
    }

    #[test]
    fn acquire_renew_release_lifecycle() {
        let mut table = LeaseTable::new();
        assert_eq!(table.next_epoch(&cell(0)), 1);
        assert!(table.apply(&rec("w1", 1, LeaseAction::Acquire, 10.0)));
        assert!(table.is_held(&cell(0), 5.0));
        assert!(table.apply(&rec("w1", 1, LeaseAction::Renew, 20.0)));
        assert!(table.is_held(&cell(0), 15.0));
        assert!(table.apply(&rec("w1", 1, LeaseAction::Release, 15.0)));
        assert!(!table.is_held(&cell(0), 15.0));
        assert!(table.holder(&cell(0)).is_none());
        assert_eq!(table.next_epoch(&cell(0)), 2);
    }

    #[test]
    fn stale_epoch_records_are_fenced() {
        let mut table = LeaseTable::new();
        assert!(table.apply(&rec("w1", 1, LeaseAction::Acquire, 10.0)));
        assert!(table.apply(&rec("w2", 2, LeaseAction::Acquire, 30.0)));
        // The zombie's late renewal and release at epoch 1 bounce off.
        assert!(!table.apply(&rec("w1", 1, LeaseAction::Renew, 40.0)));
        assert!(!table.apply(&rec("w1", 1, LeaseAction::Release, 40.0)));
        assert_eq!(table.holder(&cell(0)).unwrap().worker, "w2");
        // And its result would be fenced at merge time.
        assert!(!table.admits(&cell(0), Some(1)));
        assert!(table.admits(&cell(0), Some(2)));
        assert!(table.admits(&cell(0), None));
    }

    #[test]
    fn same_epoch_different_worker_is_fenced() {
        let mut table = LeaseTable::new();
        assert!(table.apply(&rec("w1", 1, LeaseAction::Acquire, 10.0)));
        assert!(!table.apply(&rec("w2", 1, LeaseAction::Release, 10.0)));
        assert_eq!(table.holder(&cell(0)).unwrap().worker, "w1");
    }

    #[test]
    fn takeover_of_unreleased_lease_counts_as_steal() {
        let mut table = LeaseTable::new();
        table.apply(&rec("w1", 1, LeaseAction::Acquire, 10.0));
        assert!(table
            .expired_holder(&cell(0), 10.0 + table.slack_s())
            .is_some());
        table.apply(&rec("w2", 2, LeaseAction::Acquire, 30.0));
        assert_eq!(table.stolen_by("w2"), 1);
        assert_eq!(table.stolen_by("w1"), 0);
        // Acquiring after a clean release is not a steal.
        table.apply(&rec("w2", 2, LeaseAction::Release, 30.0));
        table.apply(&rec("w1", 3, LeaseAction::Acquire, 50.0));
        assert_eq!(table.stolen_by("w1"), 0);
    }

    #[test]
    fn expiry_respects_clock_skew_slack() {
        let mut table = LeaseTable::new().with_slack(2.0);
        table.apply(&rec("w1", 1, LeaseAction::Acquire, 10.0));
        assert!(table.is_held(&cell(0), 11.9));
        assert!(table.expired_holder(&cell(0), 11.9).is_none());
        assert!(!table.is_held(&cell(0), 12.0));
        assert_eq!(table.expired_holder(&cell(0), 12.0).unwrap().worker, "w1");
    }

    #[test]
    fn self_expire_clears_the_claim_without_a_new_epoch() {
        let mut table = LeaseTable::new();
        table.apply(&rec("w1", 1, LeaseAction::Acquire, 10.0));
        assert!(table.apply(&rec("w1", 1, LeaseAction::Expire, 10.0)));
        assert!(table.holder(&cell(0)).is_none());
        assert_eq!(table.next_epoch(&cell(0)), 2);
        // The self-fenced worker's own result at its old epoch still
        // admits (nobody superseded it) — results are deterministic, so
        // that is safe; a takeover bumps the epoch and fences it.
        assert!(table.admits(&cell(0), Some(1)));
    }

    #[test]
    fn cells_are_independent() {
        let mut table = LeaseTable::new();
        table.apply(&LeaseRecord::new(
            cell(0),
            "w1",
            1,
            LeaseAction::Acquire,
            10.0,
        ));
        table.apply(&LeaseRecord::new(
            cell(1),
            "w2",
            1,
            LeaseAction::Acquire,
            10.0,
        ));
        assert_eq!(table.holder(&cell(0)).unwrap().worker, "w1");
        assert_eq!(table.holder(&cell(1)).unwrap().worker, "w2");
        assert_eq!(table.next_epoch(&cell(0)), 2);
    }

    /// Random interleavings for the property tests: a stream of records
    /// over a handful of workers, epochs, and actions.
    fn arb_records() -> impl Strategy<Value = Vec<LeaseRecord>> {
        prop::collection::vec(
            (0usize..3, 1u64..6, 0usize..4, 0.0f64..100.0).prop_map(
                |(worker, epoch, action, deadline_s)| {
                    let action = match action {
                        0 => LeaseAction::Acquire,
                        1 => LeaseAction::Renew,
                        2 => LeaseAction::Release,
                        _ => LeaseAction::Expire,
                    };
                    LeaseRecord::new(cell(0), format!("w{worker}"), epoch, action, deadline_s)
                },
            ),
            0..40,
        )
    }

    proptest! {
        /// Fencing-epoch monotonicity: whatever the record stream, the
        /// cell's epoch never decreases, and every applied record's
        /// epoch is the new maximum.
        #[test]
        fn epoch_is_monotone(records in arb_records()) {
            let mut table = LeaseTable::new();
            let mut last = 0u64;
            for record in &records {
                let applied = table.apply(record);
                let epoch = table.max_epoch(&cell(0));
                prop_assert!(epoch >= last, "epoch went backwards: {last} -> {epoch}");
                if applied {
                    prop_assert_eq!(epoch, record.epoch.max(last));
                }
                last = epoch;
            }
        }

        /// Double-acquire exclusion: after any stream, at most one
        /// worker holds the cell, and a second acquire at the same
        /// epoch by a different worker never displaces the holder.
        #[test]
        fn at_most_one_holder(records in arb_records()) {
            let mut table = LeaseTable::new();
            for record in &records {
                let before = table.holder(&cell(0)).cloned();
                let applied = table.apply(record);
                if let Some(before) = before {
                    if record.worker != before.worker && record.epoch <= before.epoch {
                        prop_assert!(!applied, "same/lower-epoch claim displaced the holder");
                        prop_assert_eq!(
                            &table.holder(&cell(0)).unwrap().worker,
                            &before.worker
                        );
                    }
                }
                // Exactly zero or one lease state exists per cell by
                // construction; the "holder" is unique.
                prop_assert!(table.holder(&cell(0)).is_none() || table.states.len() == 1);
            }
        }

        /// Release-after-expiry no-op: once a newer epoch exists, the
        /// old holder's release (or any action) changes nothing.
        #[test]
        fn release_after_takeover_is_a_noop(deadline in 0.0f64..50.0, late in 0.0f64..50.0) {
            let mut table = LeaseTable::new();
            table.apply(&rec("w1", 1, LeaseAction::Acquire, deadline));
            table.apply(&rec("w2", 2, LeaseAction::Acquire, deadline + 30.0));
            let state = table.state(&cell(0)).cloned().unwrap();
            for action in [LeaseAction::Release, LeaseAction::Renew, LeaseAction::Expire] {
                prop_assert!(!table.apply(&rec("w1", 1, action, deadline + late)));
                prop_assert_eq!(table.state(&cell(0)).unwrap(), &state);
            }
        }

        /// Expiry under skew slack: a lease is held strictly before
        /// `deadline + slack` and expired at or after it, for any slack.
        #[test]
        fn expiry_boundary_matches_slack(
            deadline in 0.0f64..100.0,
            slack in 0.0f64..10.0,
            delta in 0.001f64..10.0,
        ) {
            let mut table = LeaseTable::new().with_slack(slack);
            table.apply(&rec("w1", 1, LeaseAction::Acquire, deadline));
            prop_assert!(table.is_held(&cell(0), deadline + slack - delta));
            prop_assert!(!table.is_held(&cell(0), deadline + slack + delta));
            prop_assert!(table.expired_holder(&cell(0), deadline + slack + delta).is_some());
        }
    }
}
