//! Engine-backed streaming: a rolling-horizon scheduler whose per-tick
//! re-optimizer is a full MOEA run, **warm-started** from the previous
//! horizon's Pareto front, plus a durable [`StreamRunner`] that persists
//! a per-stream manifest so an interrupted stream resumes bit-identically.
//!
//! The layering mirrors the offline path: `hetsched-sim` owns the
//! [`HorizonScheduler`] mechanics (freeze rule, budget repair, commit);
//! this module supplies the [`Reoptimize`] implementation that dispatches
//! to any [`Engine`] (NSGA-II / MOEA/D / SPEA2) and the selection of the
//! committed point (knee under an unconstrained budget, best utility
//! within the budget otherwise).
//!
//! # Determinism and RNG-stream isolation
//!
//! Tick 0 replays [`Framework::run_population_observed`] exactly: same
//! seed chromosomes, same hypervolume reference, and the same engine seed
//! `rng_seed ^ GOLDEN · (stream + 1)` — so a stream whose first horizon
//! covers the whole trace commits the *bit-identical* population an
//! offline run produces (see `tests/online_streaming.rs`). Later ticks
//! fold the tick index into the engine seed with an independent odd
//! multiplier, giving every horizon its own decorrelated RNG stream while
//! never perturbing tick 0's.

use crate::journal::{JournalObserver, RunJournal};
use crate::{Error, Result};
use hetsched_alloc::AllocationProblem;
use hetsched_analysis::{knee_point, ParetoFront};
use hetsched_data::HcSystem;
use hetsched_heuristics::{max_utility, min_min_completion_time, SeedKind};
use hetsched_moea::observe::{NullObserver, Observer};
use hetsched_moea::{pareto_front, prepare_warm_seeds, Engine, EngineConfig, Individual};
use hetsched_sim::{
    Allocation, HorizonConfig, HorizonContext, HorizonRecord, HorizonScheduler, OnlinePolicy,
    PolicyReoptimizer, Reoptimize, SimError,
};
use hetsched_workload::{ArrivalStream, Task, Trace};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Engine seed mixing constants. `GOLDEN` matches the framework's
/// population-stream decorrelation; `TICK_MIX` is an independent odd
/// multiplier folding the tick index in, so horizon `k > 0` gets its own
/// stream without touching tick 0's (which must replay the offline run).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
const TICK_MIX: u64 = 0xD1B5_4A32_D192_ED03;

/// How a [`StreamRunner`] re-optimizes each horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerSpec {
    /// A full MOEA per tick, warm-started from the previous front.
    Engine(EngineStreamSpec),
    /// A non-evolutionary per-arrival placement rule (the Gupta et al.
    /// natural online rule via [`OnlinePolicy::GuptaGreedy`]).
    Policy(OnlinePolicy),
}

/// Parameters of the engine-backed streaming re-optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStreamSpec {
    /// Engine family + population/generation budget. The hypervolume
    /// reference is overridden per tick from the working trace.
    pub engine: EngineConfig,
    /// Seed-chromosome configuration (cold-start populations and the
    /// heuristic component of warm-start pools).
    pub seed_kind: SeedKind,
    /// Master RNG seed (the framework's `rng_seed`).
    pub rng_seed: u64,
    /// Population stream index (the framework's per-seed stream).
    pub stream: u64,
    /// Warm-start each tick from the previous front (`false` re-seeds
    /// every horizon from scratch — the ablation/bench baseline).
    pub warm_start: bool,
}

/// A full streaming configuration: horizon mechanics + re-optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Horizon length and stream-wide energy budget.
    pub horizon: HorizonConfig,
    /// The per-tick re-optimizer.
    pub optimizer: OptimizerSpec,
}

/// The per-tick MOEA re-optimizer. Implements [`Reoptimize`] by evolving
/// a population over the tick's working trace and returning the genome of
/// the committed-candidate point (knee or budget-constrained best
/// utility). Carries the final front's genomes to the next tick as
/// warm-start seeds, projected through the scheduler's carry map:
/// carried tasks keep machine and relative order, new arrivals take their
/// machines from a min-min repair and queue after all carried work.
pub struct EngineReoptimizer {
    spec: EngineStreamSpec,
    /// Final-front genomes of the previous tick, committed point first —
    /// expressed over the previous tick's working trace.
    front: Vec<Allocation>,
    last_front: Option<ParetoFront>,
    last_population: Vec<Individual<Allocation>>,
    journal: Option<RunJournal>,
}

impl EngineReoptimizer {
    /// A reoptimizer with no carried front yet (tick 0 seeds cold).
    pub fn new(spec: EngineStreamSpec) -> Self {
        EngineReoptimizer {
            spec,
            front: Vec::new(),
            last_front: None,
            last_population: Vec::new(),
            journal: None,
        }
    }

    /// Attaches a journal: every tick appends one record per generation,
    /// exactly as [`crate::Framework::run_with_journal`] does for the
    /// matching population.
    pub fn with_journal(mut self, journal: RunJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The nondominated front of the last tick's final population.
    pub fn last_front(&self) -> Option<&ParetoFront> {
        self.last_front.as_ref()
    }

    /// The last tick's final population (empty before the first tick).
    pub fn last_population(&self) -> &[Individual<Allocation>] {
        &self.last_population
    }

    /// The engine seed of tick `tick` — tick 0 matches the framework's
    /// population stream bit-for-bit.
    fn engine_seed(&self, tick: usize) -> u64 {
        let base = self.spec.rng_seed ^ GOLDEN.wrapping_mul(self.spec.stream + 1);
        if tick == 0 {
            base
        } else {
            base ^ TICK_MIX.wrapping_mul(tick as u64)
        }
    }

    /// Builds the seed pool for one tick.
    fn seeds(&self, ctx: &HorizonContext<'_>) -> Vec<Allocation> {
        let cold = self.spec.seed_kind.seeds(ctx.system, ctx.trace);
        if ctx.tick == 0 || !self.spec.warm_start || self.front.is_empty() {
            return cold;
        }
        let repair = min_min_completion_time(ctx.system, ctx.trace);
        let mut pool: Vec<Allocation> = self
            .front
            .iter()
            .map(|g| project(g, &repair, ctx.carried))
            .collect();
        pool.push(repair);
        pool.push(max_utility(ctx.system, ctx.trace));
        pool.extend(cold);
        prepare_warm_seeds(pool, self.spec.engine.population())
    }
}

impl Reoptimize for EngineReoptimizer {
    fn reoptimize(&mut self, ctx: &HorizonContext<'_>) -> Allocation {
        let problem = AllocationProblem::new(ctx.system, ctx.trace);
        let engine = self
            .spec
            .engine
            .with_hv_reference(Some(hv_reference(ctx.system, ctx.trace)));
        let seeds = self.seeds(ctx);
        let engine_seed = self.engine_seed(ctx.tick);
        let mut null = NullObserver;
        let mut journal_obs;
        let observer: &mut dyn Observer<Allocation> = match &self.journal {
            Some(journal) => {
                journal_obs = JournalObserver::new(journal, self.spec.seed_kind, self.spec.stream);
                &mut journal_obs
            }
            None => &mut null,
        };
        let final_pop = engine.evolve(&problem, seeds, engine_seed, &[], &mut |_, _| {}, observer);
        let front = pareto_front(&final_pop);
        let selected = select_committed(&front, ctx.energy_budget);
        self.last_front = Some(ParetoFront::from_objectives(
            front.iter().map(|i| &i.objectives),
        ));
        self.front.clear();
        self.front.push(front[selected].genome.clone());
        for (i, ind) in front.iter().enumerate() {
            if i != selected {
                self.front.push(ind.genome.clone());
            }
        }
        let plan = front[selected].genome.clone();
        self.last_population = final_pop;
        plan
    }
}

/// Projects a previous-tick genome onto the current working trace:
/// carried tasks keep their machine and order key; new arrivals take the
/// repair allocation's machine and queue after every carried task in
/// arrival order.
fn project(prev: &Allocation, repair: &Allocation, carried: &[Option<u32>]) -> Allocation {
    let base = prev.order.iter().copied().max().map_or(0, |m| m + 1);
    let mut machine = Vec::with_capacity(carried.len());
    let mut order = Vec::with_capacity(carried.len());
    let mut fresh = 0u32;
    for (i, c) in carried.iter().enumerate() {
        match c {
            Some(j) => {
                machine.push(prev.machine[*j as usize]);
                order.push(prev.order[*j as usize]);
            }
            None => {
                machine.push(repair.machine[i]);
                order.push(base + fresh);
                fresh += 1;
            }
        }
    }
    Allocation { machine, order }
}

/// Picks the committed-candidate index within a nondominated set: under a
/// finite budget, the best-utility point whose energy fits (falling back
/// to the cheapest point when nothing fits); unconstrained, the knee
/// (falling back to max utility for degenerate fronts). Deterministic:
/// ties resolve to the earliest index.
fn select_committed(front: &[Individual<Allocation>], budget: f64) -> usize {
    debug_assert!(!front.is_empty(), "engines never return empty populations");
    let utility = |i: &Individual<Allocation>| -i.objectives[0];
    let energy = |i: &Individual<Allocation>| i.objectives[1];
    if budget.is_finite() {
        let mut best: Option<usize> = None;
        for (i, ind) in front.iter().enumerate() {
            if energy(ind) > budget {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    utility(ind) > utility(&front[b])
                        || (utility(ind) == utility(&front[b]) && energy(ind) < energy(&front[b]))
                }
            };
            if better {
                best = Some(i);
            }
        }
        if let Some(b) = best {
            return b;
        }
        // Nothing fits: commit the cheapest candidate and let the
        // scheduler's budget repair reject tasks until it does.
        return argbest(front, |a, b| energy(a) < energy(b));
    }
    let pf = ParetoFront::from_objectives(front.iter().map(|i| &i.objectives));
    if let Some((_, knee)) = knee_point(&pf) {
        if let Some(i) = front
            .iter()
            .position(|ind| utility(ind) == knee.utility && energy(ind) == knee.energy)
        {
            return i;
        }
    }
    argbest(front, |a, b| utility(a) > utility(b))
}

fn argbest(
    front: &[Individual<Allocation>],
    better: impl Fn(&Individual<Allocation>, &Individual<Allocation>) -> bool,
) -> usize {
    let mut best = 0;
    for i in 1..front.len() {
        if better(&front[i], &front[best]) {
            best = i;
        }
    }
    best
}

/// The framework's hypervolume reference box, recomputed over a working
/// trace — same fold order as `Framework::hv_reference`, so tick 0 of a
/// whole-trace stream scores generations bit-identically.
fn hv_reference(system: &HcSystem, trace: &Trace) -> [f64; 2] {
    let max_energy: f64 = trace
        .tasks()
        .iter()
        .map(|t| {
            system
                .feasible_machines(t.task_type)
                .iter()
                .map(|&m| system.energy(t.task_type, m))
                .fold(0.0, f64::max)
        })
        .sum();
    [1e-9, max_energy * 1.000_001]
}

/// The closed sum of streaming re-optimizers a [`StreamRunner`] drives.
pub enum StreamReoptimizer {
    /// Warm-started MOEA (see [`EngineReoptimizer`]; boxed — it carries
    /// the warm-start pool and journal, dwarfing the policy variant).
    Engine(Box<EngineReoptimizer>),
    /// Per-arrival placement policy (see [`PolicyReoptimizer`]).
    Policy(PolicyReoptimizer),
}

impl Reoptimize for StreamReoptimizer {
    fn reoptimize(&mut self, ctx: &HorizonContext<'_>) -> Allocation {
        match self {
            StreamReoptimizer::Engine(e) => e.reoptimize(ctx),
            StreamReoptimizer::Policy(p) => p.reoptimize(ctx),
        }
    }
}

/// The first line of a stream manifest: identifies the schema and pins
/// the configuration, so a restarted daemon refuses to resume a stream
/// under different parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamHeader {
    /// Wire schema tag (`hetsched.stream-manifest.v1`).
    pub schema: String,
    /// Horizon length + energy budget.
    pub horizon: HorizonConfig,
    /// Re-optimizer fingerprint, e.g. `engine:nsga2` or `policy:gupta`.
    pub optimizer: String,
    /// Engine population (0 for policy streams).
    pub population: usize,
    /// Engine generation budget per tick (0 for policy streams).
    pub generations: usize,
    /// Seed-chromosome label (the policy label for policy streams).
    pub seed: String,
    /// Master RNG seed (0 for policy streams).
    pub rng_seed: u64,
    /// Population stream index (0 for policy streams).
    pub stream: u64,
    /// Whether ticks warm-start from the previous front.
    pub warm_start: bool,
}

/// Manifest schema tag.
pub const STREAM_MANIFEST_SCHEMA: &str = "hetsched.stream-manifest.v1";

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FeedLine {
    kind: String,
    until: f64,
    tasks: Vec<Task>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CommitLine {
    kind: String,
    record: HorizonRecord,
}

enum ManifestLine {
    Header(Box<StreamHeader>),
    Feed(FeedLine),
    Commit(CommitLine),
}

fn parse_line(line: &str) -> std::result::Result<ManifestLine, String> {
    if let Ok(h) = serde_json::from_str::<StreamHeader>(line) {
        if h.schema == STREAM_MANIFEST_SCHEMA {
            return Ok(ManifestLine::Header(Box::new(h)));
        }
        return Err(format!("unknown stream manifest schema {:?}", h.schema));
    }
    if let Ok(f) = serde_json::from_str::<FeedLine>(line) {
        if f.kind == "feed" {
            return Ok(ManifestLine::Feed(f));
        }
    }
    if let Ok(c) = serde_json::from_str::<CommitLine>(line) {
        if c.kind == "commit" {
            return Ok(ManifestLine::Commit(c));
        }
    }
    Err("unparseable stream manifest line".to_string())
}

struct ManifestFile {
    path: PathBuf,
    file: File,
}

impl ManifestFile {
    fn append(&mut self, line: &str) -> Result<()> {
        writeln!(self.file, "{line}")
            .and_then(|()| self.file.flush())
            .map_err(|e| Error::Io(format!("stream manifest {}: {e}", self.path.display())))
    }
}

/// Drives one stream end to end: feeds arrivals into a
/// [`HorizonScheduler`], ticks the configured re-optimizer, and — when a
/// manifest path is attached — persists every feed and commit as one
/// JSONL line so [`StreamRunner::resume`] replays an interrupted stream
/// to a byte-identical committed schedule (manifest replay re-runs the
/// deterministic ticks; a torn trailing line from a mid-write crash is
/// discarded).
pub struct StreamRunner {
    system: HcSystem,
    config: StreamConfig,
    scheduler: HorizonScheduler,
    reopt: StreamReoptimizer,
    manifest: Option<ManifestFile>,
    fed_until: f64,
}

impl StreamRunner {
    /// An in-memory stream (no manifest).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an invalid horizon configuration.
    pub fn new(system: HcSystem, config: StreamConfig) -> Result<Self> {
        let scheduler = HorizonScheduler::new(config.horizon).map_err(sim_err)?;
        let reopt = match config.optimizer {
            OptimizerSpec::Engine(spec) => {
                StreamReoptimizer::Engine(Box::new(EngineReoptimizer::new(spec)))
            }
            OptimizerSpec::Policy(policy) => {
                StreamReoptimizer::Policy(PolicyReoptimizer::new(policy))
            }
        };
        Ok(StreamRunner {
            system,
            config,
            scheduler,
            reopt,
            manifest: None,
            fed_until: 0.0,
        })
    }

    /// A durable stream: creates `path` (with a header line) when absent,
    /// otherwise **resumes** — the manifest's feeds are re-fed and its
    /// commits re-ticked, which by determinism reproduces the interrupted
    /// stream's state bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`Error::Manifest`] when the manifest's header disagrees with
    /// `config` or a replayed tick diverges from its recorded commit;
    /// [`Error::Io`] on filesystem failures.
    pub fn resume(system: HcSystem, config: StreamConfig, path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let mut runner = StreamRunner::new(system, config)?;
        let expected = runner.header();
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                return Err(Error::Io(format!(
                    "stream manifest {}: {e}",
                    path.display()
                )))
            }
        };
        let lines: Vec<&str> = existing.lines().filter(|l| !l.trim().is_empty()).collect();
        let fresh = lines.is_empty();
        for (idx, line) in lines.iter().enumerate() {
            let torn_ok = idx + 1 == lines.len();
            match parse_line(line) {
                Ok(ManifestLine::Header(h)) if idx == 0 => {
                    if *h != expected {
                        return Err(Error::Manifest(format!(
                            "stream manifest {} was written under a different configuration",
                            path.display()
                        )));
                    }
                }
                Ok(ManifestLine::Header(_)) => {
                    return Err(Error::Manifest("unexpected second stream header".into()))
                }
                Ok(_) if idx == 0 => {
                    return Err(Error::Manifest(
                        "stream manifest is missing its header".into(),
                    ))
                }
                Ok(ManifestLine::Feed(f)) => {
                    runner.scheduler.feed(f.tasks).map_err(sim_err)?;
                    runner.fed_until = runner.fed_until.max(f.until);
                }
                Ok(ManifestLine::Commit(c)) => {
                    let record = runner.tick_in_memory()?;
                    if record != c.record {
                        return Err(Error::Manifest(
                            "replayed tick diverged from the recorded commit".into(),
                        ));
                    }
                }
                Err(_) if torn_ok => break,
                Err(e) => return Err(Error::Manifest(e)),
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::Io(format!("stream manifest {}: {e}", path.display())))?;
        runner.manifest = Some(ManifestFile {
            path: path.to_path_buf(),
            file,
        });
        if fresh {
            let line = serde_json::to_string(&expected)
                .map_err(|e| Error::Io(format!("stream header: {e}")))?;
            runner
                .manifest
                .as_mut()
                .expect("just attached")
                .append(&line)?;
        }
        Ok(runner)
    }

    /// Attaches a journal to an engine-backed stream (ignored for policy
    /// streams, which draw no random numbers and log no generations).
    pub fn with_journal(mut self, journal: RunJournal) -> Self {
        if let StreamReoptimizer::Engine(e) = self.reopt {
            self.reopt = StreamReoptimizer::Engine(Box::new(e.with_journal(journal)));
        }
        self
    }

    /// This stream's manifest header.
    pub fn header(&self) -> StreamHeader {
        let (optimizer, population, generations, seed, rng_seed, stream, warm_start) =
            match self.config.optimizer {
                OptimizerSpec::Engine(s) => (
                    format!("engine:{}", s.engine.algorithm().label()),
                    s.engine.population(),
                    s.engine.generations(),
                    s.seed_kind.label().to_string(),
                    s.rng_seed,
                    s.stream,
                    s.warm_start,
                ),
                OptimizerSpec::Policy(p) => (
                    format!("policy:{}", p.label()),
                    0,
                    0,
                    p.label().to_string(),
                    0,
                    0,
                    false,
                ),
            };
        StreamHeader {
            schema: STREAM_MANIFEST_SCHEMA.to_string(),
            horizon: self.config.horizon,
            optimizer,
            population,
            generations,
            seed,
            rng_seed,
            stream,
            warm_start,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The system under load.
    pub fn system(&self) -> &HcSystem {
        &self.system
    }

    /// The underlying scheduler (timeline, records, frozen set, …).
    pub fn scheduler(&self) -> &HorizonScheduler {
        &self.scheduler
    }

    /// The exclusive end of the arrival window fed so far.
    pub fn fed_until(&self) -> f64 {
        self.fed_until
    }

    /// The last tick's Pareto front (engine streams only).
    pub fn last_front(&self) -> Option<&ParetoFront> {
        match &self.reopt {
            StreamReoptimizer::Engine(e) => e.last_front(),
            StreamReoptimizer::Policy(_) => None,
        }
    }

    /// The last tick's final population (engine streams only; empty
    /// before the first tick).
    pub fn last_population(&self) -> &[Individual<Allocation>] {
        match &self.reopt {
            StreamReoptimizer::Engine(e) => e.last_population(),
            StreamReoptimizer::Policy(_) => &[],
        }
    }

    /// Feeds arrivals covering the window up to `until` (exclusive) and
    /// records them in the manifest. Arrivals must be non-decreasing
    /// across calls (enforced by the scheduler).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for out-of-order arrivals; [`Error::Io`]
    /// on manifest failures (the in-memory feed has already happened —
    /// at-most-once durability, never double-commit).
    pub fn feed(&mut self, until: f64, tasks: Vec<Task>) -> Result<usize> {
        let line = match &self.manifest {
            Some(_) => Some(
                serde_json::to_string(&FeedLine {
                    kind: "feed".to_string(),
                    until,
                    tasks: tasks.clone(),
                })
                .map_err(|e| Error::Io(format!("stream feed line: {e}")))?,
            ),
            None => None,
        };
        let n = self.scheduler.feed(tasks).map_err(sim_err)?;
        self.fed_until = self.fed_until.max(until);
        if let (Some(m), Some(line)) = (self.manifest.as_mut(), line) {
            m.append(&line)?;
        }
        Ok(n)
    }

    /// Runs one horizon tick and records the commit in the manifest.
    ///
    /// # Errors
    ///
    /// Scheduler failures (frozen-task drift, invalid plans) surface as
    /// internal errors; manifest I/O as [`Error::Io`].
    pub fn tick(&mut self) -> Result<HorizonRecord> {
        let record = self.tick_in_memory()?;
        if let Some(m) = self.manifest.as_mut() {
            let line = serde_json::to_string(&CommitLine {
                kind: "commit".to_string(),
                record: record.clone(),
            })
            .map_err(|e| Error::Io(format!("stream commit line: {e}")))?;
            m.append(&line)?;
        }
        Ok(record)
    }

    fn tick_in_memory(&mut self) -> Result<HorizonRecord> {
        self.scheduler
            .tick(&self.system, &mut self.reopt)
            .map_err(sim_err)
    }

    /// Drives the stream to wall time `until`: per horizon, pulls the
    /// next arrival window from `arrivals` (seeking it to this stream's
    /// fed frontier first, so a resumed stream never double-feeds) and
    /// ticks. Returns the records of the ticks run.
    ///
    /// # Errors
    ///
    /// Arrival generation, scheduler, and manifest failures.
    pub fn drive(
        &mut self,
        arrivals: &mut ArrivalStream,
        until: f64,
    ) -> Result<Vec<HorizonRecord>> {
        arrivals.seek(self.fed_until);
        let mut records = Vec::new();
        while self.scheduler.now() < until {
            let next = (self.scheduler.ticks() + 1) as f64 * self.config.horizon.horizon;
            if self.fed_until < next {
                let tasks = arrivals.until(next).map_err(Error::Workload)?;
                self.feed(next, tasks)?;
            }
            records.push(self.tick()?);
        }
        Ok(records)
    }
}

fn sim_err(e: SimError) -> Error {
    match e {
        SimError::InvalidHorizon(what) => Error::InvalidConfig(what),
        other => Error::Io(format!("stream scheduler: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_moea::Algorithm;
    use hetsched_workload::{ArrivalSpec, TufPolicy};

    fn small_engine() -> EngineConfig {
        EngineConfig::builder()
            .algorithm(Algorithm::Nsga2)
            .population(12)
            .mutation_rate(0.08)
            .generations(6)
            .parallel(false)
            .build()
            .unwrap()
    }

    fn spec(warm_start: bool) -> EngineStreamSpec {
        EngineStreamSpec {
            engine: small_engine(),
            seed_kind: SeedKind::MinMinCompletionTime,
            rng_seed: 42,
            stream: 0,
            warm_start,
        }
    }

    fn stream_config(horizon: f64, budget: f64, warm_start: bool) -> StreamConfig {
        StreamConfig {
            horizon: HorizonConfig {
                horizon,
                energy_budget: budget,
            },
            optimizer: OptimizerSpec::Engine(spec(warm_start)),
        }
    }

    fn arrivals() -> ArrivalStream {
        ArrivalStream::new(
            ArrivalSpec::poisson(1.5).unwrap(),
            7,
            real_system().task_type_count(),
            TufPolicy::essc_default(),
        )
    }

    #[test]
    fn engine_stream_commits_and_is_deterministic() {
        let run = || {
            let mut r =
                StreamRunner::new(real_system(), stream_config(20.0, f64::INFINITY, true)).unwrap();
            r.drive(&mut arrivals(), 60.0).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 3);
        assert_eq!(a, b, "streaming must be a pure function of its inputs");
        assert!(a.last().unwrap().tasks > 0);
    }

    #[test]
    fn warm_and_cold_streams_commit_valid_schedules() {
        for warm in [true, false] {
            let mut r =
                StreamRunner::new(real_system(), stream_config(25.0, f64::INFINITY, warm)).unwrap();
            let records = r.drive(&mut arrivals(), 50.0).unwrap();
            assert_eq!(records.len(), 2, "warm={warm}");
            assert!(r.last_front().is_some());
            for w in r.scheduler().timeline().windows(2) {
                assert!(w[0].task < w[1].task);
            }
        }
    }

    #[test]
    fn budgeted_stream_respects_budget_every_tick() {
        let mut free =
            StreamRunner::new(real_system(), stream_config(20.0, f64::INFINITY, true)).unwrap();
        free.drive(&mut arrivals(), 60.0).unwrap();
        let budget = free.scheduler().records().last().unwrap().energy * 0.6;
        let mut capped =
            StreamRunner::new(real_system(), stream_config(20.0, budget, true)).unwrap();
        let records = capped.drive(&mut arrivals(), 60.0).unwrap();
        for r in &records {
            assert!(r.energy <= budget, "tick {} over budget", r.tick);
        }
    }

    #[test]
    fn policy_stream_runs_without_rng() {
        let config = StreamConfig {
            horizon: HorizonConfig {
                horizon: 15.0,
                energy_budget: f64::INFINITY,
            },
            optimizer: OptimizerSpec::Policy(OnlinePolicy::GuptaGreedy),
        };
        let mut r = StreamRunner::new(real_system(), config).unwrap();
        let records = r.drive(&mut arrivals(), 45.0).unwrap();
        assert_eq!(records.len(), 3);
        assert!(r.last_front().is_none());
    }

    #[test]
    fn manifest_resume_replays_to_identical_state() {
        let dir = std::env::temp_dir().join(format!("hetsched-stream-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");
        let _ = std::fs::remove_file(&path);
        let config = stream_config(20.0, f64::INFINITY, true);

        // Uninterrupted reference.
        let mut whole = StreamRunner::new(real_system(), config).unwrap();
        whole.drive(&mut arrivals(), 80.0).unwrap();

        // Durable run killed after two of four ticks.
        {
            let mut first = StreamRunner::resume(real_system(), config, &path).unwrap();
            first.drive(&mut arrivals(), 40.0).unwrap();
        }
        let mut resumed = StreamRunner::resume(real_system(), config, &path).unwrap();
        assert_eq!(resumed.scheduler().ticks(), 2);
        resumed.drive(&mut arrivals(), 80.0).unwrap();

        assert_eq!(
            serde_json::to_string(whole.scheduler().timeline()).unwrap(),
            serde_json::to_string(resumed.scheduler().timeline()).unwrap(),
            "resume must re-commit a byte-identical schedule"
        );
        assert_eq!(whole.scheduler().records(), resumed.scheduler().records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manifest_rejects_mismatched_config() {
        let dir =
            std::env::temp_dir().join(format!("hetsched-stream-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let _ = std::fs::remove_file(&path);
        let config = stream_config(20.0, f64::INFINITY, true);
        {
            let _ = StreamRunner::resume(real_system(), config, &path).unwrap();
        }
        let other = stream_config(30.0, f64::INFINITY, true);
        let err = match StreamRunner::resume(real_system(), other, &path) {
            Err(e) => e,
            Ok(_) => panic!("mismatched config must not resume"),
        };
        assert_eq!(err.class(), crate::ErrorClass::Internal);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_manifest_tail_is_discarded() {
        let dir = std::env::temp_dir().join(format!("hetsched-stream-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let _ = std::fs::remove_file(&path);
        let config = stream_config(20.0, f64::INFINITY, true);
        {
            let mut r = StreamRunner::resume(real_system(), config, &path).unwrap();
            r.drive(&mut arrivals(), 20.0).unwrap();
        }
        // Simulate a crash mid-append.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"kind\":\"commit\",\"rec").unwrap();
        }
        let resumed = StreamRunner::resume(real_system(), config, &path).unwrap();
        assert_eq!(resumed.scheduler().ticks(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn select_committed_prefers_budget_fit_then_knee() {
        let ind = |u: f64, e: f64| Individual {
            genome: Allocation {
                machine: Vec::new(),
                order: Vec::new(),
            },
            objectives: [-u, e],
        };
        let front = vec![ind(1.0, 1.0), ind(2.0, 5.0), ind(3.0, 50.0)];
        // Budgeted: best utility that fits.
        assert_eq!(select_committed(&front, 6.0), 1);
        // Nothing fits: cheapest.
        assert_eq!(select_committed(&front, 0.5), 0);
        // Unconstrained: the knee (big utility gain, small energy step).
        assert_eq!(select_committed(&front, f64::INFINITY), 1);
    }
}
