//! Durability and poison-recovery primitives shared by the checkpointing
//! sinks (manifest, heartbeat, telemetry snapshot, report emission).
//!
//! The campaign's crash-safety story rests on two guarantees these
//! helpers provide:
//!
//! * **Atomic whole-file replacement** ([`durable_write`]): a reader (or
//!   a resumed campaign) never observes a half-written report, metrics
//!   snapshot, or heartbeat-adjacent output — it sees either the old
//!   bytes or the new bytes, fsynced before the rename makes them
//!   visible.
//! * **Panic containment** ([`lock_unpoisoned`]): one panicking cell
//!   thread must not disable checkpointing for the rest of the campaign,
//!   so sink mutexes recover the guard from a poisoned lock instead of
//!   propagating the panic. The protected state is a buffered writer
//!   whose worst torn state is a partial trailing line — exactly the
//!   torn-tail case the manifest reader already tolerates.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Mutex, MutexGuard};

/// Writes `contents` to `path` atomically and durably: the bytes go to a
/// sibling temp file, are fsynced, and then renamed over `path` (the
/// parent directory is fsynced best-effort so the rename itself survives
/// a crash). Readers never see a partial file.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming the temp
/// file; on error the temp file is removed best-effort and `path` is
/// untouched.
pub fn durable_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("no file name in {}", path.display())))?;
    let tmp = path.with_file_name(format!(
        "{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(contents.as_ref())?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Make the rename durable; some filesystems don't support opening a
    // directory for sync, so failure here is not fatal.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Locks `mutex`, recovering the guard if a previous holder panicked.
/// Use only where the protected state stays coherent across an unwind
/// mid-critical-section (append-style sinks qualify; multi-step state
/// machines do not).
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A [`File`] wrapper whose `flush` also pushes the bytes to disk
/// (`sync_data`), so rate-limited append sinks like the heartbeat make
/// each emitted line durable, not merely kernel-buffered.
pub struct SyncOnFlush(pub File);

impl Write for SyncOnFlush {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()?;
        self.0.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hetsched-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_write_replaces_contents_atomically() {
        let dir = temp_dir("replace");
        let path = dir.join("out.txt");
        durable_write(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        durable_write(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(leftovers.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_write_to_missing_directory_errors_cleanly() {
        let dir = temp_dir("missing");
        let path = dir.join("nope").join("out.txt");
        assert!(durable_write(&path, "x").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_unpoisoned_recovers_after_a_panicking_holder() {
        let mutex = Mutex::new(7usize);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().unwrap();
            panic!("poison it");
        }));
        assert!(caught.is_err());
        assert!(mutex.is_poisoned());
        *lock_unpoisoned(&mutex) += 1;
        assert_eq!(*lock_unpoisoned(&mutex), 8);
    }

    #[test]
    fn sync_on_flush_writes_through() {
        let dir = temp_dir("sync");
        let path = dir.join("hb.jsonl");
        let mut sink = SyncOnFlush(File::create(&path).unwrap());
        sink.write_all(b"line\n").unwrap();
        sink.flush().unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "line\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
