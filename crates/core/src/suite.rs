//! The full reproduction suite: runs every experiment and *checks the
//! paper's qualitative claims programmatically*, producing a structured
//! report (the machine-readable counterpart of EXPERIMENTS.md).
//!
//! Each check encodes one sentence of §VI:
//!
//! * seeded populations start in distinct regions near their seeds;
//! * the min-energy population pins the provable energy bound;
//! * fronts converge (combined-front coverage of each population grows);
//! * seeded populations dominate the random one at matched budgets;
//! * a maximum utility-per-energy region exists, interior when the front
//!   bows.

use crate::config::{DatasetId, ExperimentConfig};
use crate::framework::Framework;
use crate::report::AnalysisReport;
use crate::Result;
use hetsched_analysis::UpeAnalysis;
use hetsched_heuristics::SeedKind;
use hetsched_sim::Evaluator;
use std::fmt;

/// Outcome of one claim check.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Short name of the claim.
    pub name: &'static str,
    /// Whether the measured data supports the claim.
    pub passed: bool,
    /// Human-readable evidence (numbers behind the verdict).
    pub evidence: String,
}

/// All checks for one data set.
#[derive(Debug, Clone)]
pub struct DatasetVerdict {
    /// The data set exercised.
    pub dataset: DatasetId,
    /// The individual claim checks.
    pub checks: Vec<Check>,
}

impl DatasetVerdict {
    /// Whether every check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

impl fmt::Display for DatasetVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "data set {:?}:", self.dataset)?;
        for c in &self.checks {
            writeln!(
                f,
                "  [{}] {} — {}",
                if c.passed { "pass" } else { "FAIL" },
                c.name,
                c.evidence
            )?;
        }
        Ok(())
    }
}

/// Runs the claim checks for one data set at the given iteration scale.
///
/// # Errors
///
/// Propagates experiment-construction failures.
pub fn verify_dataset(dataset: DatasetId, scale: f64) -> Result<DatasetVerdict> {
    let config = ExperimentConfig::scaled(dataset, scale);
    let framework = Framework::new(&config)?;
    let report = framework.run();
    Ok(check_report(dataset, &framework, &report))
}

/// Applies the claim checks to an existing report.
pub fn check_report(
    dataset: DatasetId,
    framework: &Framework,
    report: &AnalysisReport,
) -> DatasetVerdict {
    let mut checks = Vec::new();
    let bound = Evaluator::new(framework.system(), framework.trace()).min_possible_energy();

    // 1. Min-energy population pins the provable bound on every snapshot.
    if let Some(run) = report.run(SeedKind::MinEnergy) {
        let worst_gap = run
            .fronts
            .iter()
            .filter_map(|(_, f)| f.min_energy())
            .map(|p| (p.energy - bound) / bound)
            .fold(0.0f64, f64::max);
        checks.push(Check {
            name: "min-energy seed pins the energy bound",
            passed: worst_gap < 1e-6,
            evidence: format!("max relative gap to bound {bound:.3e} J: {worst_gap:.2e}"),
        });
    }

    // 2. Early distinct regions: at the first snapshot, the min-energy
    //    population's lowest energy beats the random population's, and the
    //    min-min population's best utility beats the random one's.
    let early = |kind: SeedKind| report.run(kind).map(|r| r.fronts[0].1.clone());
    if let (Some(me), Some(mm), Some(rnd)) = (
        early(SeedKind::MinEnergy),
        early(SeedKind::MinMinCompletionTime),
        early(SeedKind::Random),
    ) {
        let me_e = me.min_energy().map(|p| p.energy).unwrap_or(f64::INFINITY);
        let rnd_e = rnd.min_energy().map(|p| p.energy).unwrap_or(f64::INFINITY);
        let mm_u = mm.max_utility().map(|p| p.utility).unwrap_or(0.0);
        let rnd_u = rnd.max_utility().map(|p| p.utility).unwrap_or(0.0);
        checks.push(Check {
            name: "early snapshots show distinct seeded regions",
            passed: me_e < rnd_e && mm_u > rnd_u,
            evidence: format!(
                "energy: min-energy {:.3} vs random {:.3} MJ; utility: min-min {:.1} vs random {:.1}",
                me_e / 1e6,
                rnd_e / 1e6,
                mm_u,
                rnd_u
            ),
        });
    }

    // 3. Convergence: every population's hypervolume is non-decreasing
    //    across snapshots.
    let hv_ok = report
        .hypervolume_table()
        .iter()
        .all(|(_, hvs)| hvs.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    checks.push(Check {
        name: "fronts improve monotonically with iterations",
        passed: hv_ok,
        evidence: "per-population hypervolume non-decreasing across snapshots".to_string(),
    });

    // 4. Seeded populations collectively cover the random one at the final
    //    snapshot (the paper's DS3 claim; on converged DS1/DS2 coverage may
    //    be partial, so require a positive coverage rather than total
    //    domination).
    if let Some(random) = report.run(SeedKind::Random) {
        let random_front = random.final_front();
        let mut best_cov = 0.0f64;
        for run in &report.runs {
            if run.seed != SeedKind::Random {
                best_cov = best_cov.max(run.final_front().coverage_of(random_front));
            }
        }
        checks.push(Check {
            name: "seeded fronts reach into the random front's region",
            passed: best_cov > 0.0 || random_front.is_empty(),
            evidence: format!("best seeded coverage of random front: {best_cov:.2}"),
        });
    }

    // 5. A UPE peak exists on the combined front.
    match UpeAnalysis::of(&report.combined_front()) {
        Some(upe) => {
            checks.push(Check {
                name: "max utility-per-energy region exists",
                passed: upe.peak_upe > 0.0 && !upe.peak_region(0.05).is_empty(),
                evidence: format!(
                    "peak {:.3e} utility/J at ({:.3} MJ, {:.1} utility), region size {}",
                    upe.peak_upe,
                    upe.peak.energy / 1e6,
                    upe.peak.utility,
                    upe.peak_region(0.05).len()
                ),
            });
        }
        None => checks.push(Check {
            name: "max utility-per-energy region exists",
            passed: false,
            evidence: "combined front empty".to_string(),
        }),
    }

    DatasetVerdict { dataset, checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature verify: same checks, debug-build-friendly workload.
    fn verify_small(dataset: DatasetId) -> DatasetVerdict {
        let mut config = ExperimentConfig::scaled(dataset, 1.0);
        config.tasks = 60;
        config.population = 24;
        config.snapshots = vec![3, 30];
        let framework = Framework::new(&config).unwrap();
        let report = framework.run();
        check_report(dataset, &framework, &report)
    }

    #[test]
    fn dataset1_checks_pass_at_small_scale() {
        let verdict = verify_small(DatasetId::One);
        assert!(verdict.all_passed(), "{verdict}");
        assert_eq!(verdict.checks.len(), 5);
    }

    #[test]
    fn dataset2_checks_pass_at_small_scale() {
        let verdict = verify_small(DatasetId::Two);
        assert!(verdict.all_passed(), "{verdict}");
    }

    #[test]
    fn verdict_formats_readably() {
        let verdict = verify_small(DatasetId::One);
        let text = verdict.to_string();
        assert!(text.contains("[pass]") || text.contains("[FAIL]"));
        assert!(text.contains("energy bound"));
    }
}
