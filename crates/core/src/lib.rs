#![warn(missing_docs)]

//! The analysis framework of the paper: wire a data set, a trace, the
//! seeding heuristics, and NSGA-II together; run one population per seed
//! configuration; and analyse the resulting Pareto fronts.
//!
//! ```
//! use hetsched_core::{DatasetId, ExperimentConfig, Framework};
//!
//! // A miniature data set 1 run (250-task version shrunk for doc tests).
//! let config = ExperimentConfig::builder(DatasetId::One)
//!     .tasks(40)
//!     .population(16)
//!     .snapshots(vec![5, 10])
//!     .build()?;
//! let framework = Framework::dataset1(&config).unwrap();
//! let report = framework.run();
//! assert_eq!(report.runs.len(), 5); // four seeds + the random population
//! let front = report.combined_front();
//! assert!(!front.is_empty());
//! # Ok::<(), hetsched_core::Error>(())
//! ```

pub mod campaign;
pub mod config;
pub mod durable;
pub mod figures;
pub mod framework;
pub mod inspect;
pub mod journal;
pub mod lease;
pub mod manifest;
pub mod report;
pub mod streaming;
pub mod suite;
pub mod telemetry;
pub mod trace;
pub mod worker;

/// Deterministic fault injection (the `chaos` feature re-exports
/// [`hetsched_chaos`] here so consumers address one crate). See
/// README § Fault tolerance for the plan syntax and the fault points
/// compiled into this crate.
#[cfg(feature = "chaos")]
pub mod chaos {
    pub use hetsched_chaos::*;
}

/// Internal forwarding layer for fault points: with the `chaos` feature
/// off these are empty inline functions the optimiser erases, so the
/// production build carries zero fault-injection cost.
pub(crate) mod chaos_hooks {
    #[cfg(feature = "chaos")]
    pub fn raise(point: &str, scope: &dyn std::fmt::Display) {
        hetsched_chaos::raise(point, scope);
    }

    #[cfg(feature = "chaos")]
    pub fn raise_io(point: &str, scope: &dyn std::fmt::Display) -> std::io::Result<()> {
        hetsched_chaos::raise_io(point, scope)
    }

    #[cfg(not(feature = "chaos"))]
    #[inline(always)]
    pub fn raise(_point: &str, _scope: &dyn std::fmt::Display) {}

    #[cfg(not(feature = "chaos"))]
    #[inline(always)]
    pub fn raise_io(_point: &str, _scope: &dyn std::fmt::Display) -> std::io::Result<()> {
        Ok(())
    }
}

pub use campaign::{
    load_manifest, Campaign, CampaignOutcome, CampaignReport, CampaignSpec, CampaignSpecBuilder,
    CancelToken, CellId, CellOutcome, CellRecord,
};
pub use config::{DatasetId, ExperimentConfig, ExperimentConfigBuilder};
pub use durable::durable_write;
pub use framework::Framework;
pub use inspect::{inspect_path, summarise_manifest, Inspection, ManifestSummary, WorkerSummary};
// The engine API the framework is parameterised over, re-exported so
// downstream crates (notably the CLI) need not depend on the MOEA crate
// directly to select an algorithm.
pub use hetsched_analysis::ParetoFront;
pub use hetsched_data::HcSystem;
pub use hetsched_heuristics::SeedKind;
pub use hetsched_moea::{Algorithm, Engine, EngineCaps, EngineConfig, EngineConfigBuilder};
// The streaming surface the serve daemon builds on: horizon mechanics
// and records from the simulator, the arrival process and task shape
// from the workload crate.
pub use hetsched_sim::{HorizonConfig, HorizonRecord, OnlinePolicy, TaskRecord};
pub use hetsched_workload::{ArrivalSpec, ArrivalStream, Task, TufPolicy};
pub use journal::{JournalObserver, JournalRecord, RunJournal};
pub use lease::{LeaseAction, LeaseRecord, LeaseState, LeaseTable, DEFAULT_SKEW_SLACK_S};
pub use manifest::{
    load_manifest_records, replay_records, LocalManifestStore, ManifestRecord, ManifestStore,
    ManifestView, StoreLock, COMPAT_MANIFEST_VERSION, MANIFEST_VERSION,
};
pub use report::{AnalysisReport, PopulationRun};
pub use streaming::{
    EngineReoptimizer, EngineStreamSpec, OptimizerSpec, StreamConfig, StreamHeader, StreamRunner,
    STREAM_MANIFEST_SCHEMA,
};
pub use suite::{check_report, verify_dataset, Check, DatasetVerdict};
pub use telemetry::{
    CampaignObserver, Heartbeat, HeartbeatLine, HeartbeatTicker, MetricsRegistry, MetricsSnapshot,
    NullCampaignObserver, TelemetryObserver,
};
pub use trace::{
    chrome_trace, install_tracing, installed_mux, read_trace, SpanRecord, TraceAnalysis, TraceMux,
    TraceWriter,
};
pub use worker::{Worker, WorkerOutcome};

use hetsched_synth::SynthError;
use hetsched_workload::WorkloadError;
use std::fmt;

/// The shared error type every consumer of the framework wraps: the CLI
/// maps it to exit codes, the serve crate maps it to HTTP statuses, and
/// both do so through [`Error::class`] rather than matching variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Synthetic data generation failed.
    Synth(SynthError),
    /// Trace generation failed.
    Workload(WorkloadError),
    /// The experiment configuration is inconsistent.
    InvalidConfig(&'static str),
    /// A named resource (e.g. a job id) does not exist.
    NotFound(String),
    /// A campaign manifest could not be read or belongs to another
    /// campaign.
    Manifest(String),
    /// An I/O failure (message form keeps the error `Clone`able).
    Io(String),
}

/// Backwards-compatible name — the error began life as `CoreError` and
/// downstream code still constructs variants through this alias.
pub type CoreError = Error;

/// The coarse failure family of an [`Error`], for protocol mappings that
/// must not depend on the variant set (HTTP statuses, exit codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The caller's input was rejected (HTTP 400).
    InvalidInput,
    /// The named resource does not exist (HTTP 404).
    NotFound,
    /// The framework itself failed (HTTP 500).
    Internal,
}

impl Error {
    /// Classifies the error for protocol mappings: configuration and
    /// input-shaped failures are [`ErrorClass::InvalidInput`], missing
    /// resources are [`ErrorClass::NotFound`], everything else (state
    /// corruption, I/O) is [`ErrorClass::Internal`].
    pub fn class(&self) -> ErrorClass {
        match self {
            Error::Synth(_) | Error::Workload(_) | Error::InvalidConfig(_) => {
                ErrorClass::InvalidInput
            }
            Error::NotFound(_) => ErrorClass::NotFound,
            Error::Manifest(_) | Error::Io(_) => ErrorClass::Internal,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Synth(e) => write!(f, "synthetic data error: {e}"),
            Error::Workload(e) => write!(f, "workload error: {e}"),
            Error::InvalidConfig(what) => write!(f, "invalid config: {what}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Manifest(what) => write!(f, "campaign manifest: {what}"),
            Error::Io(what) => write!(f, "i/o error: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Synth(e) => Some(e),
            Error::Workload(e) => Some(e),
            Error::InvalidConfig(_) | Error::NotFound(_) | Error::Manifest(_) | Error::Io(_) => {
                None
            }
        }
    }
}

impl From<SynthError> for Error {
    fn from(e: SynthError) -> Self {
        Error::Synth(e)
    }
}

impl From<WorkloadError> for Error {
    fn from(e: WorkloadError) -> Self {
        Error::Workload(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn classes_cover_protocol_mappings() {
        assert_eq!(
            Error::InvalidConfig("tasks must be > 0").class(),
            ErrorClass::InvalidInput
        );
        assert_eq!(
            Error::NotFound("job 42".into()).class(),
            ErrorClass::NotFound
        );
        assert_eq!(Error::Manifest("torn".into()).class(), ErrorClass::Internal);
        assert_eq!(Error::Io("disk".into()).class(), ErrorClass::Internal);
    }

    #[test]
    fn core_error_alias_still_constructs_variants() {
        // Downstream code spells the type `CoreError`; variant paths must
        // keep resolving through the alias.
        let e: CoreError = CoreError::InvalidConfig("population must be >= 2");
        assert_eq!(e.class(), ErrorClass::InvalidInput);
        assert_eq!(e.to_string(), "invalid config: population must be >= 2");
    }
}
