#![warn(missing_docs)]

//! The analysis framework of the paper: wire a data set, a trace, the
//! seeding heuristics, and NSGA-II together; run one population per seed
//! configuration; and analyse the resulting Pareto fronts.
//!
//! ```
//! use hetsched_core::{ExperimentConfig, Framework};
//!
//! // A miniature data set 1 run (250-task version shrunk for doc tests).
//! let config = ExperimentConfig {
//!     tasks: 40,
//!     population: 16,
//!     snapshots: vec![5, 10],
//!     ..ExperimentConfig::dataset1()
//! };
//! let framework = Framework::dataset1(&config).unwrap();
//! let report = framework.run();
//! assert_eq!(report.runs.len(), 5); // four seeds + the random population
//! let front = report.combined_front();
//! assert!(!front.is_empty());
//! ```

pub mod campaign;
pub mod config;
pub mod durable;
pub mod figures;
pub mod framework;
pub mod inspect;
pub mod journal;
pub mod report;
pub mod suite;
pub mod telemetry;

/// Deterministic fault injection (the `chaos` feature re-exports
/// [`hetsched_chaos`] here so consumers address one crate). See
/// README § Fault tolerance for the plan syntax and the fault points
/// compiled into this crate.
#[cfg(feature = "chaos")]
pub mod chaos {
    pub use hetsched_chaos::*;
}

/// Internal forwarding layer for fault points: with the `chaos` feature
/// off these are empty inline functions the optimiser erases, so the
/// production build carries zero fault-injection cost.
pub(crate) mod chaos_hooks {
    #[cfg(feature = "chaos")]
    pub fn raise(point: &str, scope: &dyn std::fmt::Display) {
        hetsched_chaos::raise(point, scope);
    }

    #[cfg(feature = "chaos")]
    pub fn raise_io(point: &str, scope: &dyn std::fmt::Display) -> std::io::Result<()> {
        hetsched_chaos::raise_io(point, scope)
    }

    #[cfg(not(feature = "chaos"))]
    #[inline(always)]
    pub fn raise(_point: &str, _scope: &dyn std::fmt::Display) {}

    #[cfg(not(feature = "chaos"))]
    #[inline(always)]
    pub fn raise_io(_point: &str, _scope: &dyn std::fmt::Display) -> std::io::Result<()> {
        Ok(())
    }
}

pub use campaign::{
    load_manifest, Campaign, CampaignOutcome, CampaignReport, CampaignSpec, CancelToken, CellId,
    CellOutcome, CellRecord,
};
pub use config::{DatasetId, ExperimentConfig};
pub use durable::durable_write;
pub use framework::Framework;
pub use inspect::{inspect_path, Inspection};
// The engine API the framework is parameterised over, re-exported so
// downstream crates (notably the CLI) need not depend on the MOEA crate
// directly to select an algorithm.
pub use hetsched_moea::{Algorithm, Engine, EngineCaps, EngineConfig, EngineConfigBuilder};
pub use journal::{JournalObserver, JournalRecord, RunJournal};
pub use report::{AnalysisReport, PopulationRun};
pub use suite::{check_report, verify_dataset, Check, DatasetVerdict};
pub use telemetry::{
    CampaignObserver, Heartbeat, HeartbeatLine, HeartbeatTicker, MetricsRegistry, MetricsSnapshot,
    NullCampaignObserver, TelemetryObserver,
};

use hetsched_synth::SynthError;
use hetsched_workload::WorkloadError;
use std::fmt;

/// Errors produced when assembling or running experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Synthetic data generation failed.
    Synth(SynthError),
    /// Trace generation failed.
    Workload(WorkloadError),
    /// The experiment configuration is inconsistent.
    InvalidConfig(&'static str),
    /// A campaign manifest could not be read or belongs to another
    /// campaign.
    Manifest(String),
    /// An I/O failure (message form keeps the error `Clone`able).
    Io(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Synth(e) => write!(f, "synthetic data error: {e}"),
            CoreError::Workload(e) => write!(f, "workload error: {e}"),
            CoreError::InvalidConfig(what) => write!(f, "invalid config: {what}"),
            CoreError::Manifest(what) => write!(f, "campaign manifest: {what}"),
            CoreError::Io(what) => write!(f, "i/o error: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Synth(e) => Some(e),
            CoreError::Workload(e) => Some(e),
            CoreError::InvalidConfig(_) | CoreError::Manifest(_) | CoreError::Io(_) => None,
        }
    }
}

impl From<SynthError> for CoreError {
    fn from(e: SynthError) -> Self {
        CoreError::Synth(e)
    }
}

impl From<WorkloadError> for CoreError {
    fn from(e: WorkloadError) -> Self {
        CoreError::Workload(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
