//! Run journal: serialises an experiment's per-generation trajectory to
//! JSON Lines — one [`JournalRecord`] per generation per population.
//!
//! The journal is shared across the populations a [`Framework`] run
//! executes in parallel, so appends go through a mutex; each record is
//! written as a single line, keeping concurrent writers from interleaving
//! within a record.
//!
//! [`Framework`]: crate::Framework

use crate::chaos_hooks;
use crate::durable::lock_unpoisoned;
use hetsched_heuristics::SeedKind;
use hetsched_moea::observe::{GenerationStats, Observer};
use hetsched_moea::Individual;
use hetsched_sim::Allocation;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// One journal line: which population produced the generation, plus the
/// engine's metrics record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Seeding-heuristic label of the population (e.g. `"Min Energy"`).
    pub population: String,
    /// The population's RNG stream index within the experiment.
    pub stream: u64,
    /// The engine's per-generation metrics.
    pub stats: GenerationStats,
}

/// A JSONL sink for [`JournalRecord`]s, safe to share across the
/// framework's parallel population runs.
pub struct RunJournal {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl RunJournal {
    /// Opens (truncating) a journal file, buffered.
    ///
    /// # Errors
    ///
    /// File creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(RunJournal::to_writer(BufWriter::new(file)))
    }

    /// Wraps any writer — handy for tests and in-memory capture.
    pub fn to_writer(writer: impl Write + Send + 'static) -> Self {
        RunJournal {
            sink: Mutex::new(Box::new(writer)),
        }
    }

    /// Appends one record as a JSON line and flushes it, so a killed run
    /// loses at most the line being written — the same torn-tail
    /// discipline as the campaign manifest.
    ///
    /// # Errors
    ///
    /// Serialisation or write failures.
    pub fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Poison-recovering lock: a panicking writer leaves at worst a
        // torn tail line, which the reader tolerates — the journal keeps
        // accepting records from the surviving populations.
        let mut sink = lock_unpoisoned(&self.sink);
        chaos_hooks::raise_io("journal.write", &record.stream)?;
        writeln!(sink, "{line}")?;
        sink.flush()
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn flush(&self) -> io::Result<()> {
        lock_unpoisoned(&self.sink).flush()
    }

    /// Reads a journal file back. A torn final line (the process was
    /// killed mid-write) is dropped, matching the append-side discipline;
    /// any *earlier* unparseable line is an error, since the file is
    /// then corrupt rather than merely truncated.
    ///
    /// # Errors
    ///
    /// I/O failures, or a malformed line that is not the last.
    pub fn read(path: impl AsRef<Path>) -> io::Result<Vec<JournalRecord>> {
        let file = File::open(path)?;
        let mut records = Vec::new();
        let mut torn = false;
        for line in BufReader::new(file).lines() {
            let line = line?;
            if torn {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "journal has records after a torn line",
                ));
            }
            match serde_json::from_str::<JournalRecord>(&line) {
                Ok(record) => records.push(record),
                Err(_) => torn = true,
            }
        }
        Ok(records)
    }
}

impl Drop for RunJournal {
    fn drop(&mut self) {
        // A best-effort final flush; append already flushes per line, so
        // this only matters for writers that buffer internally.
        if let Err(e) = lock_unpoisoned(&self.sink).flush() {
            tracing::warn!("journal flush on drop failed: {e}");
        }
    }
}

/// Bridges one population's engine observer to a shared [`RunJournal`].
/// Write errors are reported once via `tracing::warn!` and further appends
/// are suppressed, so a full disk cannot abort a long experiment.
pub struct JournalObserver<'a> {
    journal: &'a RunJournal,
    population: &'static str,
    stream: u64,
    failed: bool,
}

impl<'a> JournalObserver<'a> {
    /// Creates the observer for one population run.
    pub fn new(journal: &'a RunJournal, seed: SeedKind, stream: u64) -> Self {
        JournalObserver {
            journal,
            population: seed.label(),
            stream,
            failed: false,
        }
    }
}

impl Observer<Allocation> for JournalObserver<'_> {
    fn on_generation(&mut self, stats: &GenerationStats, _population: &[Individual<Allocation>]) {
        if self.failed {
            return;
        }
        let record = JournalRecord {
            population: self.population.to_string(),
            stream: self.stream,
            stats: stats.clone(),
        };
        if let Err(e) = self.journal.append(&record) {
            tracing::warn!(
                "journal write failed for population {} (stream {}): {e}; disabling journal",
                self.population,
                self.stream,
            );
            self.failed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_moea::observe::PhaseTimings;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer whose buffer outlives the journal, for asserting output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn record(generation: usize) -> JournalRecord {
        JournalRecord {
            population: "Random".to_string(),
            stream: 4,
            stats: GenerationStats {
                generation,
                front_sizes: vec![3, 1],
                ideal: [-10.0, 2.5],
                hypervolume: Some(12.0),
                crowding_spread: 0.5,
                evaluations: 16,
                timings: PhaseTimings {
                    mating_s: 0.01,
                    evaluation_s: 0.02,
                    sorting_s: 0.003,
                },
            },
        }
    }

    #[test]
    fn writes_one_line_per_record() {
        let buf = SharedBuf::default();
        let journal = RunJournal::to_writer(buf.clone());
        for generation in 1..=3 {
            journal.append(&record(generation)).unwrap();
        }
        journal.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let value: serde_json::Value = serde_json::from_str(line).unwrap();
            let rendered = serde_json::to_string(&value).unwrap();
            assert!(rendered.contains("\"population\":\"Random\""), "{rendered}");
            assert!(
                rendered.contains(&format!("\"generation\":{}", i + 1)),
                "{rendered}"
            );
        }
    }

    #[test]
    fn records_roundtrip_through_write_and_read() {
        let path = std::env::temp_dir().join(format!(
            "hetsched-journal-roundtrip-{}.jsonl",
            std::process::id()
        ));
        let written: Vec<JournalRecord> = (1..=4).map(record).collect();
        {
            let journal = RunJournal::create(&path).unwrap();
            for r in &written {
                journal.append(r).unwrap();
            }
        } // drop flushes
        let read = RunJournal::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(read, written);
    }

    #[test]
    fn torn_final_line_is_dropped_on_read() {
        let path = std::env::temp_dir().join(format!(
            "hetsched-journal-torn-{}.jsonl",
            std::process::id()
        ));
        {
            let journal = RunJournal::create(&path).unwrap();
            journal.append(&record(1)).unwrap();
            journal.append(&record(2)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();
        let read = RunJournal::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(read, vec![record(1)]);
    }

    /// A writer that fails every operation, for the error path.
    struct BrokenWriter;

    impl Write for BrokenWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::other("disk full"))
        }
    }

    #[test]
    fn append_surfaces_write_errors_and_drop_does_not_panic() {
        let journal = RunJournal::to_writer(BrokenWriter);
        let err = journal.append(&record(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(journal.flush().is_err());
        drop(journal); // Drop swallows the flush failure (warns via tracing)
    }

    #[test]
    fn concurrent_appends_do_not_interleave() {
        let buf = SharedBuf::default();
        let journal = Arc::new(RunJournal::to_writer(buf.clone()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let journal = Arc::clone(&journal);
                scope.spawn(move || {
                    for generation in 1..=50 {
                        journal.append(&record(generation)).unwrap();
                    }
                });
            }
        });
        journal.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 200);
        for line in lines {
            serde_json::from_str::<serde_json::Value>(line)
                .unwrap_or_else(|e| panic!("corrupt journal line {line:?}: {e}"));
        }
    }
}
