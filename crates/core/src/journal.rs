//! Run journal: serialises an experiment's per-generation trajectory to
//! JSON Lines — one [`JournalRecord`] per generation per population.
//!
//! The journal is shared across the populations a [`Framework`] run
//! executes in parallel, so appends go through a mutex; each record is
//! written as a single line, keeping concurrent writers from interleaving
//! within a record.
//!
//! [`Framework`]: crate::Framework

use hetsched_heuristics::SeedKind;
use hetsched_moea::observe::{GenerationStats, Observer};
use hetsched_moea::Individual;
use hetsched_sim::Allocation;
use serde::Serialize;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// One journal line: which population produced the generation, plus the
/// engine's metrics record.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JournalRecord {
    /// Seeding-heuristic label of the population (e.g. `"Min Energy"`).
    pub population: String,
    /// The population's RNG stream index within the experiment.
    pub stream: u64,
    /// The engine's per-generation metrics.
    pub stats: GenerationStats,
}

/// A JSONL sink for [`JournalRecord`]s, safe to share across the
/// framework's parallel population runs.
pub struct RunJournal {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl RunJournal {
    /// Opens (truncating) a journal file, buffered.
    ///
    /// # Errors
    ///
    /// File creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(RunJournal::to_writer(BufWriter::new(file)))
    }

    /// Wraps any writer — handy for tests and in-memory capture.
    pub fn to_writer(writer: impl Write + Send + 'static) -> Self {
        RunJournal {
            sink: Mutex::new(Box::new(writer)),
        }
    }

    /// Appends one record as a JSON line.
    ///
    /// # Errors
    ///
    /// Serialisation or write failures.
    pub fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut sink = self.sink.lock().expect("journal mutex poisoned");
        writeln!(sink, "{line}")
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn flush(&self) -> io::Result<()> {
        self.sink.lock().expect("journal mutex poisoned").flush()
    }
}

/// Bridges one population's engine observer to a shared [`RunJournal`].
/// Write errors are reported once via `tracing::warn!` and further appends
/// are suppressed, so a full disk cannot abort a long experiment.
pub struct JournalObserver<'a> {
    journal: &'a RunJournal,
    population: &'static str,
    stream: u64,
    failed: bool,
}

impl<'a> JournalObserver<'a> {
    /// Creates the observer for one population run.
    pub fn new(journal: &'a RunJournal, seed: SeedKind, stream: u64) -> Self {
        JournalObserver {
            journal,
            population: seed.label(),
            stream,
            failed: false,
        }
    }
}

impl Observer<Allocation> for JournalObserver<'_> {
    fn on_generation(&mut self, stats: &GenerationStats, _population: &[Individual<Allocation>]) {
        if self.failed {
            return;
        }
        let record = JournalRecord {
            population: self.population.to_string(),
            stream: self.stream,
            stats: stats.clone(),
        };
        if let Err(e) = self.journal.append(&record) {
            tracing::warn!(
                "journal write failed for population {} (stream {}): {e}; disabling journal",
                self.population,
                self.stream,
            );
            self.failed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_moea::observe::PhaseTimings;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer whose buffer outlives the journal, for asserting output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn record(generation: usize) -> JournalRecord {
        JournalRecord {
            population: "Random".to_string(),
            stream: 4,
            stats: GenerationStats {
                generation,
                front_sizes: vec![3, 1],
                ideal: [-10.0, 2.5],
                hypervolume: Some(12.0),
                crowding_spread: 0.5,
                evaluations: 16,
                timings: PhaseTimings {
                    mating_s: 0.01,
                    evaluation_s: 0.02,
                    sorting_s: 0.003,
                },
            },
        }
    }

    #[test]
    fn writes_one_line_per_record() {
        let buf = SharedBuf::default();
        let journal = RunJournal::to_writer(buf.clone());
        for generation in 1..=3 {
            journal.append(&record(generation)).unwrap();
        }
        journal.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let value: serde_json::Value = serde_json::from_str(line).unwrap();
            let rendered = serde_json::to_string(&value).unwrap();
            assert!(rendered.contains("\"population\":\"Random\""), "{rendered}");
            assert!(
                rendered.contains(&format!("\"generation\":{}", i + 1)),
                "{rendered}"
            );
        }
    }

    #[test]
    fn concurrent_appends_do_not_interleave() {
        let buf = SharedBuf::default();
        let journal = Arc::new(RunJournal::to_writer(buf.clone()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let journal = Arc::clone(&journal);
                scope.spawn(move || {
                    for generation in 1..=50 {
                        journal.append(&record(generation)).unwrap();
                    }
                });
            }
        });
        journal.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 200);
        for line in lines {
            serde_json::from_str::<serde_json::Value>(line)
                .unwrap_or_else(|e| panic!("corrupt journal line {line:?}: {e}"));
        }
    }
}
