//! Extended encoding implementing both of the paper's future-work items:
//! per-task P-state selection (DVFS) and dropping of negligible-utility
//! tasks. The genome is a [`DvfsAllocation`]; operators extend the base
//! problem's range-swap crossover and machine/order mutation with P-state
//! and drop-flag perturbations.

use crate::problem::AllocationProblem;
use hetsched_data::HcSystem;
use hetsched_moea::{Objectives, Problem};
use hetsched_sim::{Allocation, DvfsAllocation, DvfsTable};
use hetsched_workload::Trace;
use rand::{Rng, RngCore};

/// The DVFS + task-dropping variant of the allocation problem.
pub struct DvfsAllocationProblem<'a> {
    base: AllocationProblem<'a>,
    table: DvfsTable,
    system: &'a HcSystem,
    trace: &'a Trace,
}

/// Evaluation context: the extended evaluation path allocates its own
/// buffers per call (it is not the figure-reproduction hot path), so the
/// context only carries the clones it needs.
pub struct DvfsEvaluator<'a> {
    system: &'a HcSystem,
    trace: &'a Trace,
    table: DvfsTable,
}

impl<'a> DvfsAllocationProblem<'a> {
    /// Binds the extended problem.
    pub fn new(system: &'a HcSystem, trace: &'a Trace, table: DvfsTable) -> Self {
        DvfsAllocationProblem {
            base: AllocationProblem::new(system, trace),
            table,
            system,
            trace,
        }
    }

    /// The P-state table in use.
    pub fn table(&self) -> &DvfsTable {
        &self.table
    }

    /// Converts engine objectives back to (utility, energy).
    #[inline]
    pub fn to_utility_energy(objectives: Objectives) -> (f64, f64) {
        (-objectives[0], objectives[1])
    }
}

impl<'a> Problem for DvfsAllocationProblem<'a> {
    type Genome = DvfsAllocation;
    type Evaluator = DvfsEvaluator<'a>;
    type Move = ();

    fn evaluator(&self) -> DvfsEvaluator<'a> {
        DvfsEvaluator {
            system: self.system,
            trace: self.trace,
            table: self.table.clone(),
        }
    }

    fn evaluate(&self, ev: &mut DvfsEvaluator<'a>, genome: &DvfsAllocation) -> Objectives {
        let outcome = genome
            .evaluate(ev.system, ev.trace, &ev.table)
            .expect("operators only construct valid extended allocations");
        [-outcome.utility, outcome.energy]
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> DvfsAllocation {
        let base: Allocation = self.base.random_genome(rng);
        let n = base.len();
        let pstate = (0..n)
            .map(|_| rng.gen_range(0..self.table.len()) as u8)
            .collect();
        // Start with nothing dropped: dropping is an *optimisation* the GA
        // may discover, not a random prior.
        DvfsAllocation {
            base,
            pstate,
            dropped: vec![false; n],
        }
    }

    fn crossover(
        &self,
        rng: &mut dyn RngCore,
        a: &DvfsAllocation,
        b: &DvfsAllocation,
    ) -> (DvfsAllocation, DvfsAllocation) {
        let n = a.base.len();
        let (mut c, mut d) = (a.clone(), b.clone());
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        c.base.machine[lo..=hi].swap_with_slice(&mut d.base.machine[lo..=hi]);
        c.base.order[lo..=hi].swap_with_slice(&mut d.base.order[lo..=hi]);
        c.pstate[lo..=hi].swap_with_slice(&mut d.pstate[lo..=hi]);
        c.dropped[lo..=hi].swap_with_slice(&mut d.dropped[lo..=hi]);
        (c, d)
    }

    fn mutate(&self, rng: &mut dyn RngCore, genome: &mut DvfsAllocation) {
        match rng.gen_range(0..3u8) {
            // Base mutation: machine re-map + order swap.
            0 => self.base.mutate(rng, &mut genome.base),
            // P-state perturbation on one gene.
            1 => {
                let g = rng.gen_range(0..genome.pstate.len());
                genome.pstate[g] = rng.gen_range(0..self.table.len()) as u8;
            }
            // Toggle the drop flag of one gene.
            _ => {
                let g = rng.gen_range(0..genome.dropped.len());
                genome.dropped[g] = !genome.dropped[g];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_moea::{Nsga2, Nsga2Config};
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(44))
            .unwrap();
        (sys, trace)
    }

    #[test]
    fn random_genomes_evaluate_cleanly() {
        let (sys, trace) = setup(20);
        let problem = DvfsAllocationProblem::new(&sys, &trace, DvfsTable::cubic_default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut ev = problem.evaluator();
        for _ in 0..10 {
            let g = problem.random_genome(&mut rng);
            let objs = problem.evaluate(&mut ev, &g);
            assert!(objs[0] <= 0.0, "negated utility must be <= 0");
            assert!(objs[1] > 0.0);
        }
    }

    #[test]
    fn operators_keep_genomes_valid() {
        let (sys, trace) = setup(15);
        let problem = DvfsAllocationProblem::new(&sys, &trace, DvfsTable::cubic_default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = problem.random_genome(&mut rng);
        let b = problem.random_genome(&mut rng);
        for _ in 0..100 {
            let (c, d) = problem.crossover(&mut rng, &a, &b);
            assert!(c.evaluate(&sys, &trace, problem.table()).is_ok());
            assert!(d.evaluate(&sys, &trace, problem.table()).is_ok());
            problem.mutate(&mut rng, &mut a);
            assert!(a.evaluate(&sys, &trace, problem.table()).is_ok());
        }
    }

    #[test]
    fn dvfs_front_reaches_below_plain_minimum_energy() {
        // With P-states the GA can spend less energy than *any* plain
        // allocation (energy scales with f² < 1), which is the point of the
        // extension: the front extends further left.
        let (sys, trace) = setup(25);
        let problem = DvfsAllocationProblem::new(&sys, &trace, DvfsTable::cubic_default());
        let cfg = Nsga2Config {
            population: 30,
            mutation_rate: 0.8,
            generations: 80,
            parallel: false,
            ..Default::default()
        };
        let pop = Nsga2::new(&problem, cfg).run(vec![], 5);
        let plain_bound = hetsched_sim::Evaluator::new(&sys, &trace).min_possible_energy();
        let min_energy = pop
            .iter()
            .filter(|i| -i.objectives[0] > 0.0) // ignore drop-everything corner
            .map(|i| i.objectives[1])
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_energy < plain_bound,
            "DVFS front min energy {min_energy} should undercut plain bound {plain_bound}"
        );
    }
}
