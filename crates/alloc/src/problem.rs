//! [`AllocationProblem`]: the paper's chromosome/operator definitions bound
//! to the [`hetsched_moea::Problem`] interface.

use hetsched_data::{HcSystem, MachineId};
use hetsched_moea::{BatchRequest, Objectives, Problem, Variation};
use hetsched_sim::{Allocation, BatchEvaluator, BatchJob, TaskMove};
use hetsched_workload::Trace;
use rand::{Rng, RngCore};

/// The exact base→child diff as a [`TaskMove`] list: one move per gene
/// where the two allocations disagree, carrying the child's (absolute)
/// machine and order values. Empty iff the allocations are identical.
fn diff_moves(base: &Allocation, child: &Allocation) -> Vec<TaskMove> {
    let mut moves = Vec::new();
    for i in 0..child.len() {
        if base.machine[i] != child.machine[i] || base.order[i] != child.order[i] {
            moves.push(TaskMove {
                task: i as u32,
                machine: child.machine[i],
                order: child.order[i],
            });
        }
    }
    moves
}

/// The bi-objective utility/energy scheduling problem over one system and
/// trace.
pub struct AllocationProblem<'a> {
    system: &'a HcSystem,
    trace: &'a Trace,
    /// `feasible[i]` = machines able to run task *i*'s type (precomputed so
    /// mutation never proposes an infeasible machine).
    feasible: Vec<&'a [MachineId]>,
}

impl<'a> AllocationProblem<'a> {
    /// Binds the problem to a system and trace.
    pub fn new(system: &'a HcSystem, trace: &'a Trace) -> Self {
        let feasible = trace
            .tasks()
            .iter()
            .map(|t| system.feasible_machines(t.task_type))
            .collect();
        AllocationProblem {
            system,
            trace,
            feasible,
        }
    }

    /// The bound system.
    pub fn system(&self) -> &'a HcSystem {
        self.system
    }

    /// The bound trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Number of genes per chromosome.
    pub fn genome_len(&self) -> usize {
        self.trace.len()
    }

    /// Converts an engine objective vector back to (utility, energy).
    #[inline]
    pub fn to_utility_energy(objectives: Objectives) -> (f64, f64) {
        (-objectives[0], objectives[1])
    }
}

impl<'a> Problem for AllocationProblem<'a> {
    type Genome = Allocation;
    /// Population-aware: engines hand whole offspring generations to
    /// [`Problem::evaluate_batch`], and the [`BatchEvaluator`] keeps a pool
    /// of persistent workers (warm delta-schedule caches) across
    /// generations. Single-shot calls run on its primary worker, which is a
    /// plain [`Evaluator`].
    type Evaluator = BatchEvaluator<'a>;
    type Move = TaskMove;

    fn evaluator(&self) -> BatchEvaluator<'a> {
        BatchEvaluator::new(self.system, self.trace)
    }

    fn evaluate(&self, ev: &mut BatchEvaluator<'a>, genome: &Allocation) -> Objectives {
        let outcome = ev.primary().evaluate(genome);
        [-outcome.utility, outcome.energy]
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Allocation {
        let n = self.trace.len();
        let machine = self
            .feasible
            .iter()
            .map(|ms| ms[rng.gen_range(0..ms.len())])
            .collect();
        // Random permutation of 0..n as the global scheduling order
        // (Fisher-Yates so every ordering is equally likely).
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        Allocation { machine, order }
    }

    fn crossover(
        &self,
        rng: &mut dyn RngCore,
        a: &Allocation,
        b: &Allocation,
    ) -> (Allocation, Allocation) {
        let n = self.trace.len();
        let (mut c, mut d) = (a.clone(), b.clone());
        // Two gene indices chosen uniformly at random; swap the whole range
        // between them. Because gene i always encodes task i, positional
        // swapping keeps both children feasible by construction.
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        c.machine[lo..=hi].swap_with_slice(&mut d.machine[lo..=hi]);
        c.order[lo..=hi].swap_with_slice(&mut d.order[lo..=hi]);
        (c, d)
    }

    fn mutate(&self, rng: &mut dyn RngCore, genome: &mut Allocation) {
        let n = self.trace.len();
        // Re-map one random gene to a random machine that task can run on.
        let g = rng.gen_range(0..n);
        let options = self.feasible[g];
        genome.machine[g] = options[rng.gen_range(0..options.len())];
        // Swap the global scheduling order of two random genes.
        let other = rng.gen_range(0..n);
        genome.order.swap(g, other);
    }

    fn crossover_tracked(
        &self,
        rng: &mut dyn RngCore,
        a: &Allocation,
        b: &Allocation,
    ) -> (
        (Allocation, Variation<TaskMove>),
        (Allocation, Variation<TaskMove>),
    ) {
        // Identical RNG draws to `crossover` (it is called directly), then
        // each child is diffed against its base parent. Genes outside the
        // swapped range are untouched, and genes inside it where the
        // parents agree produce no move — so two identical parents yield
        // empty move lists and the engines skip both evaluations.
        let (c, d) = self.crossover(rng, a, b);
        let vc = Variation::Moves(diff_moves(a, &c));
        let vd = Variation::Moves(diff_moves(b, &d));
        ((c, vc), (d, vd))
    }

    fn mutate_tracked(
        &self,
        rng: &mut dyn RngCore,
        genome: &mut Allocation,
        variation: &mut Variation<TaskMove>,
    ) {
        // Same three draws as `mutate`, with the edits appended to the
        // child's move list (absolute post-mutation values, so re-moving a
        // task the crossover already moved stays correct).
        let n = self.trace.len();
        let g = rng.gen_range(0..n);
        let options = self.feasible[g];
        genome.machine[g] = options[rng.gen_range(0..options.len())];
        let other = rng.gen_range(0..n);
        genome.order.swap(g, other);
        if let Variation::Moves(moves) = variation {
            moves.push(TaskMove {
                task: g as u32,
                machine: genome.machine[g],
                order: genome.order[g],
            });
            if other != g {
                moves.push(TaskMove {
                    task: other as u32,
                    machine: genome.machine[other],
                    order: genome.order[other],
                });
            }
        }
    }

    /// Incremental evaluation through the simulator's schedule cache; with
    /// the `delta-eval` feature disabled this method is not compiled and
    /// the trait default (full re-evaluation) applies — the bisection
    /// switch for any suspected divergence.
    #[cfg(feature = "delta-eval")]
    fn evaluate_moves(
        &self,
        ev: &mut BatchEvaluator<'a>,
        base: &Allocation,
        child: &Allocation,
        moves: &[TaskMove],
    ) -> Objectives {
        let outcome = ev.primary().evaluate_delta(base, child, moves);
        [-outcome.utility, outcome.energy]
    }

    /// Whole-population evaluation in one simulator call: requests map to
    /// [`BatchJob`]s (certified no-ops become [`BatchJob::Skip`] and never
    /// reach a worker), and the [`BatchEvaluator`] owns the parallelism
    /// split. Per job the simulator executes exactly the float operations
    /// of the corresponding single-shot call, so batched results are
    /// bit-identical to the per-item path.
    fn evaluate_batch(
        &self,
        ev: &mut BatchEvaluator<'a>,
        parallel: bool,
        batch: &[BatchRequest<'_, Allocation, TaskMove>],
    ) -> Vec<Objectives> {
        let jobs: Vec<BatchJob<'_>> = batch
            .iter()
            .map(|request| match request {
                BatchRequest::Full(genome) => BatchJob::Full(genome),
                BatchRequest::Moves { moves, .. } if moves.is_empty() => BatchJob::Skip,
                #[cfg(feature = "delta-eval")]
                BatchRequest::Moves {
                    base, child, moves, ..
                } => BatchJob::Delta { base, child, moves },
                #[cfg(not(feature = "delta-eval"))]
                BatchRequest::Moves { child, .. } => BatchJob::Full(child),
            })
            .collect();
        let outcomes = ev.evaluate_jobs(&jobs, parallel);
        batch
            .iter()
            .zip(outcomes)
            .map(|(request, outcome)| match outcome {
                Some(o) => [-o.utility, o.energy],
                None => match request {
                    BatchRequest::Moves {
                        base_objectives, ..
                    } => *base_objectives,
                    BatchRequest::Full(_) => unreachable!("full jobs always evaluate"),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_moea::{Nsga2, Nsga2Config};
    use hetsched_sim::Evaluator;
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (HcSystem, Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(30))
            .unwrap();
        (sys, trace)
    }

    #[test]
    fn random_genomes_are_feasible_permuted() {
        let (sys, trace) = setup(40);
        let problem = AllocationProblem::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let g = problem.random_genome(&mut rng);
            assert!(g.validate(&sys, &trace).is_ok());
            let mut order = g.order.clone();
            order.sort_unstable();
            assert_eq!(
                order,
                (0..40u32).collect::<Vec<_>>(),
                "order is a permutation"
            );
        }
    }

    #[test]
    fn crossover_preserves_feasibility_and_swaps_ranges() {
        let (sys, trace) = setup(30);
        let problem = AllocationProblem::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(2);
        let a = problem.random_genome(&mut rng);
        let b = problem.random_genome(&mut rng);
        for _ in 0..50 {
            let (c, d) = problem.crossover(&mut rng, &a, &b);
            assert!(c.validate(&sys, &trace).is_ok());
            assert!(d.validate(&sys, &trace).is_ok());
            // Each position of c comes from a or b (same index).
            for i in 0..30 {
                assert!(c.machine[i] == a.machine[i] || c.machine[i] == b.machine[i]);
                assert!(d.machine[i] == a.machine[i] || d.machine[i] == b.machine[i]);
                // The two children complement each other positionally.
                let from_a = c.machine[i] == a.machine[i] && c.order[i] == a.order[i];
                if from_a {
                    assert!(d.machine[i] == b.machine[i] && d.order[i] == b.order[i]);
                }
            }
        }
    }

    #[test]
    fn mutation_keeps_feasibility() {
        let (sys, trace) = setup(25);
        let problem = AllocationProblem::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = problem.random_genome(&mut rng);
        for _ in 0..200 {
            problem.mutate(&mut rng, &mut g);
            assert!(g.validate(&sys, &trace).is_ok());
        }
        // Order keys remain a permutation (mutation only swaps keys).
        let mut order = g.order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..25u32).collect::<Vec<_>>());
    }

    #[test]
    fn objectives_are_negated_utility_and_energy() {
        let (sys, trace) = setup(15);
        let problem = AllocationProblem::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(4);
        let g = problem.random_genome(&mut rng);
        let mut ev = problem.evaluator();
        let objs = problem.evaluate(&mut ev, &g);
        let outcome = Evaluator::new(&sys, &trace).evaluate(&g);
        assert_eq!(objs[0], -outcome.utility);
        assert_eq!(objs[1], outcome.energy);
        let (u, e) = AllocationProblem::to_utility_energy(objs);
        assert_eq!(u, outcome.utility);
        assert_eq!(e, outcome.energy);
    }

    #[test]
    fn nsga2_improves_scheduling_front() {
        // End-to-end: a short NSGA-II run on 60 tasks must push the front
        // beyond the random initial population.
        let (sys, trace) = setup(60);
        let problem = AllocationProblem::new(&sys, &trace);
        let cfg = Nsga2Config {
            population: 40,
            mutation_rate: 0.6,
            generations: 60,
            parallel: false,
            ..Default::default()
        };
        let runner = Nsga2::new(&problem, cfg);
        let mut initial_best_energy = f64::INFINITY;
        let mut initial_best_utility = f64::NEG_INFINITY;
        let pop = runner.run_with_snapshots(vec![], 8, &[1], |_, p| {
            for ind in p {
                initial_best_energy = initial_best_energy.min(ind.objectives[1]);
                initial_best_utility = initial_best_utility.max(-ind.objectives[0]);
            }
        });
        let final_best_energy = pop
            .iter()
            .map(|i| i.objectives[1])
            .fold(f64::INFINITY, f64::min);
        let final_best_utility = pop
            .iter()
            .map(|i| -i.objectives[0])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            final_best_energy < initial_best_energy,
            "energy end {final_best_energy} vs start {initial_best_energy}"
        );
        assert!(
            final_best_utility >= initial_best_utility,
            "utility end {final_best_utility} vs start {initial_best_utility}"
        );
        // Sanity: the front respects the theoretical energy lower bound.
        let bound = Evaluator::new(&sys, &trace).min_possible_energy();
        assert!(final_best_energy >= bound - 1e-9);
    }
}
