#![warn(missing_docs)]

//! The genetic encoding of the bi-objective resource-allocation problem
//! (§IV-D): genes, chromosomes, crossover, and mutation.
//!
//! * A **gene** represents one task: the machine it runs on and its global
//!   scheduling order (the arrival time lives in the trace; gene *i* of
//!   every chromosome is the *i*-th task in arrival order).
//! * A **chromosome** is a complete resource allocation —
//!   [`hetsched_sim::Allocation`] is reused directly as the genome type.
//! * **Crossover** picks two gene indices uniformly at random and swaps the
//!   whole range between two parents (machines *and* order keys).
//! * **Mutation** re-maps one random gene to a random *feasible* machine
//!   and swaps the order keys of two random genes.
//!
//! Objectives handed to the engine are `[-utility, energy]`, both
//! minimised.

pub mod dvfs_problem;
pub mod makespan;
pub mod problem;
pub mod refine;

pub use dvfs_problem::DvfsAllocationProblem;
pub use makespan::{MakespanProblem, TaskBag};
pub use problem::AllocationProblem;
pub use refine::{pareto_local_search, Refined};
