//! The predecessor problem the paper's NSGA-II adaptation grew out of
//! (Friese et al., INFOCOMP 2012, reference \[3\]): a **bag-of-tasks**
//! bi-objective optimisation minimising *makespan* and *energy*. The paper
//! explicitly contrasts its utility-based formulation with this one ("they
//! model an environment where the workload is a bag of tasks, not a trace
//! from a dynamic system"), so having both lets the benches compare the two
//! formulations on identical systems.
//!
//! A bag of tasks has no arrival times (everything is available at t = 0)
//! and no TUFs; the genome is the same machine-assignment/order encoding.

use hetsched_data::{HcSystem, MachineId, TaskTypeId};
use hetsched_moea::{Objectives, Problem};
use rand::{Rng, RngCore};

/// A bag-of-tasks instance: `counts[τ]` tasks of each task type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskBag {
    /// One entry per task: its task type.
    pub tasks: Vec<TaskTypeId>,
}

impl TaskBag {
    /// A bag with `count` tasks of every task type of `system`.
    pub fn uniform(system: &HcSystem, count: usize) -> Self {
        let mut tasks = Vec::with_capacity(system.task_type_count() * count);
        for t in 0..system.task_type_count() {
            tasks.extend(std::iter::repeat_n(TaskTypeId(t as u16), count));
        }
        TaskBag { tasks }
    }

    /// A bag sampled uniformly over the task types.
    pub fn random<R: Rng + ?Sized>(system: &HcSystem, size: usize, rng: &mut R) -> Self {
        let tasks = (0..size)
            .map(|_| TaskTypeId(rng.gen_range(0..system.task_type_count()) as u16))
            .collect();
        TaskBag { tasks }
    }

    /// Number of tasks in the bag.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// A bag-of-tasks assignment: machine per task (order inside a machine is
/// irrelevant for makespan — completion of the machine is the sum of its
/// tasks' execution times).
pub type BagAssignment = Vec<MachineId>;

/// The makespan/energy bi-objective problem of reference \[3\].
pub struct MakespanProblem<'a> {
    system: &'a HcSystem,
    bag: &'a TaskBag,
    feasible: Vec<&'a [MachineId]>,
}

/// Per-thread scratch for makespan evaluation.
pub struct MakespanEvaluator {
    machine_load: Vec<f64>,
}

impl<'a> MakespanProblem<'a> {
    /// Binds the problem.
    pub fn new(system: &'a HcSystem, bag: &'a TaskBag) -> Self {
        let feasible = bag
            .tasks
            .iter()
            .map(|&t| system.feasible_machines(t))
            .collect();
        MakespanProblem {
            system,
            bag,
            feasible,
        }
    }

    /// The bag being scheduled.
    pub fn bag(&self) -> &TaskBag {
        self.bag
    }

    /// Computes `(makespan, energy)` for an assignment.
    pub fn outcome(&self, ev: &mut MakespanEvaluator, assignment: &BagAssignment) -> (f64, f64) {
        ev.machine_load.clear();
        ev.machine_load.resize(self.system.machine_count(), 0.0);
        let mut energy = 0.0;
        for (&t, &m) in self.bag.tasks.iter().zip(assignment) {
            ev.machine_load[m.index()] += self.system.exec_time(t, m);
            energy += self.system.energy(t, m);
        }
        let makespan = ev.machine_load.iter().cloned().fold(0.0f64, f64::max);
        (makespan, energy)
    }
}

impl<'a> Problem for MakespanProblem<'a> {
    type Genome = BagAssignment;
    type Evaluator = MakespanEvaluator;
    type Move = ();

    fn evaluator(&self) -> MakespanEvaluator {
        MakespanEvaluator {
            machine_load: Vec::new(),
        }
    }

    fn evaluate(&self, ev: &mut MakespanEvaluator, genome: &BagAssignment) -> Objectives {
        let (makespan, energy) = self.outcome(ev, genome);
        [makespan, energy]
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> BagAssignment {
        self.feasible
            .iter()
            .map(|ms| ms[rng.gen_range(0..ms.len())])
            .collect()
    }

    fn crossover(
        &self,
        rng: &mut dyn RngCore,
        a: &BagAssignment,
        b: &BagAssignment,
    ) -> (BagAssignment, BagAssignment) {
        let n = a.len();
        let (mut c, mut d) = (a.clone(), b.clone());
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        c[lo..=hi].swap_with_slice(&mut d[lo..=hi]);
        (c, d)
    }

    fn mutate(&self, rng: &mut dyn RngCore, genome: &mut BagAssignment) {
        let g = rng.gen_range(0..genome.len());
        let options = self.feasible[g];
        genome[g] = options[rng.gen_range(0..options.len())];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_moea::{Nsga2, Nsga2Config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_bag_shape() {
        let sys = real_system();
        let bag = TaskBag::uniform(&sys, 4);
        assert_eq!(bag.len(), 20);
        assert!(!bag.is_empty());
    }

    #[test]
    fn outcome_matches_hand_computation() {
        let sys = real_system();
        let bag = TaskBag {
            tasks: vec![TaskTypeId(0), TaskTypeId(0), TaskTypeId(4)],
        };
        let problem = MakespanProblem::new(&sys, &bag);
        let mut ev = problem.evaluator();
        // Two C-Ray tasks on machine 0 (95 s each), one kernel build on
        // machine 6 (68 s): makespan = 190, energy = 2·95·128 + 68·233.
        let assignment = vec![MachineId(0), MachineId(0), MachineId(6)];
        let (makespan, energy) = problem.outcome(&mut ev, &assignment);
        assert!((makespan - 190.0).abs() < 1e-9);
        assert!((energy - (2.0 * 95.0 * 128.0 + 68.0 * 233.0)).abs() < 1e-9);
    }

    #[test]
    fn nsga2_finds_makespan_energy_tradeoff() {
        let sys = real_system();
        let mut rng = StdRng::seed_from_u64(17);
        let bag = TaskBag::random(&sys, 60, &mut rng);
        let problem = MakespanProblem::new(&sys, &bag);
        let cfg = Nsga2Config {
            population: 40,
            mutation_rate: 0.7,
            generations: 80,
            parallel: false,
            ..Default::default()
        };
        // Seed with the energy-greedy assignment (the paper's seeding idea
        // applied to the predecessor problem): the floor is then pinned.
        let energy_seed: BagAssignment = bag
            .tasks
            .iter()
            .map(|&t| {
                *sys.feasible_machines(t)
                    .iter()
                    .min_by(|&&a, &&b| sys.energy(t, a).total_cmp(&sys.energy(t, b)))
                    .unwrap()
            })
            .collect();
        let pop = Nsga2::new(&problem, cfg).run(vec![energy_seed], 23);
        let min_makespan = pop
            .iter()
            .map(|i| i.objectives[0])
            .fold(f64::INFINITY, f64::min);
        let min_energy = pop
            .iter()
            .map(|i| i.objectives[1])
            .fold(f64::INFINITY, f64::min);
        // The energy floor: every task on its cheapest machine.
        let floor: f64 = bag.tasks.iter().map(|&t| sys.min_energy_per_type(t)).sum();
        assert!(min_energy >= floor - 1e-9);
        assert!(
            (min_energy - floor) / floor < 1e-9,
            "elitism must keep the seeded floor"
        );
        // And a genuine trade-off: the fastest solution spends more energy
        // than the cheapest one.
        let fastest = pop
            .iter()
            .min_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]))
            .unwrap();
        assert!(fastest.objectives[1] > min_energy);
        assert!(min_makespan > 0.0);
    }

    #[test]
    fn operators_stay_feasible() {
        let sys = real_system();
        let mut rng = StdRng::seed_from_u64(5);
        let bag = TaskBag::random(&sys, 30, &mut rng);
        let problem = MakespanProblem::new(&sys, &bag);
        let mut g = problem.random_genome(&mut rng);
        let h = problem.random_genome(&mut rng);
        for _ in 0..100 {
            problem.mutate(&mut rng, &mut g);
            let (c, d) = problem.crossover(&mut rng, &g, &h);
            for genome in [&g, &c, &d] {
                for (&t, &m) in bag.tasks.iter().zip(genome.iter()) {
                    assert!(sys.is_feasible(t, m));
                }
            }
        }
    }
}
