//! Pareto local search — a memetic post-processing pass over GA solutions.
//!
//! NSGA-II's operators move genes at random; once a front has converged, a
//! cheap deterministic polish often still finds strict improvements: for
//! each task, try every feasible machine and keep a move if it *weakly
//! dominates* the current objectives (no worse in both, better in one).
//! Repeating until no move helps yields a locally Pareto-optimal
//! allocation. This is the classic GA+local-search hybrid the
//! metaheuristics literature recommends, offered here as an opt-in
//! refinement for front solutions a system administrator actually intends
//! to deploy.

use crate::problem::AllocationProblem;
use hetsched_moea::{Objectives, Problem};
use hetsched_sim::Allocation;

/// Result of one refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct Refined {
    /// The polished allocation.
    pub allocation: Allocation,
    /// Its objectives (`[-utility, energy]`).
    pub objectives: Objectives,
    /// Number of improving moves applied.
    pub moves: usize,
}

/// Weak dominance for minimisation: no worse in both, strictly better in
/// at least one.
#[inline]
fn improves(new: &Objectives, old: &Objectives) -> bool {
    new[0] <= old[0] && new[1] <= old[1] && (new[0] < old[0] || new[1] < old[1])
}

/// Polishes `alloc` by single-task machine reassignment until a local
/// Pareto optimum is reached or `max_passes` full sweeps complete.
pub fn pareto_local_search(
    problem: &AllocationProblem<'_>,
    alloc: &Allocation,
    max_passes: usize,
) -> Refined {
    let mut ev = problem.evaluator();
    let mut current = alloc.clone();
    let mut objectives = problem.evaluate(&mut ev, &current);
    let mut moves = 0usize;
    let trace = problem.trace();
    let system = problem.system();

    for _ in 0..max_passes {
        let mut improved_this_pass = false;
        for (i, task) in trace.tasks().iter().enumerate() {
            let original = current.machine[i];
            let mut best_machine = original;
            let mut best_obj = objectives;
            for &m in system.feasible_machines(task.task_type) {
                if m == original {
                    continue;
                }
                current.machine[i] = m;
                let candidate = problem.evaluate(&mut ev, &current);
                if improves(&candidate, &best_obj) {
                    best_obj = candidate;
                    best_machine = m;
                }
            }
            current.machine[i] = best_machine;
            if best_machine != original {
                objectives = best_obj;
                moves += 1;
                improved_this_pass = true;
            }
        }
        if !improved_this_pass {
            break;
        }
    }
    Refined {
        allocation: current,
        objectives,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_data::real_system;
    use hetsched_moea::{Nsga2, Nsga2Config};
    use hetsched_workload::TraceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (hetsched_data::HcSystem, hetsched_workload::Trace) {
        let sys = real_system();
        let trace = TraceGenerator::new(n, 900.0, sys.task_type_count())
            .generate(&mut StdRng::seed_from_u64(88))
            .unwrap();
        (sys, trace)
    }

    #[test]
    fn refinement_never_worsens_either_objective() {
        let (sys, trace) = setup(40);
        let problem = AllocationProblem::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let alloc = problem.random_genome(&mut rng);
            let mut ev = problem.evaluator();
            let before = problem.evaluate(&mut ev, &alloc);
            let refined = pareto_local_search(&problem, &alloc, 5);
            assert!(refined.objectives[0] <= before[0] + 1e-9);
            assert!(refined.objectives[1] <= before[1] + 1e-9);
            assert!(refined.allocation.validate(&sys, &trace).is_ok());
        }
    }

    #[test]
    fn random_allocations_are_strictly_improvable() {
        // A random assignment is nowhere near locally optimal: the polish
        // must find many improving moves.
        let (sys, trace) = setup(50);
        let problem = AllocationProblem::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(2);
        let alloc = problem.random_genome(&mut rng);
        let refined = pareto_local_search(&problem, &alloc, 10);
        assert!(
            refined.moves > 10,
            "only {} moves on a random allocation",
            refined.moves
        );
    }

    #[test]
    fn reaches_a_fixed_point() {
        // Refining the refined result must find nothing further.
        let (sys, trace) = setup(30);
        let problem = AllocationProblem::new(&sys, &trace);
        let mut rng = StdRng::seed_from_u64(3);
        let alloc = problem.random_genome(&mut rng);
        let first = pareto_local_search(&problem, &alloc, 20);
        let second = pareto_local_search(&problem, &first.allocation, 20);
        assert_eq!(second.moves, 0, "not a fixed point");
        assert_eq!(second.objectives, first.objectives);
    }

    #[test]
    fn ga_fronts_are_nearly_locally_optimal() {
        // After a converged GA run, local search should find relatively few
        // improving moves per solution — evidence the GA front is tight.
        let (sys, trace) = setup(30);
        let problem = AllocationProblem::new(&sys, &trace);
        let cfg = Nsga2Config {
            population: 24,
            mutation_rate: 0.7,
            generations: 120,
            parallel: false,
            ..Default::default()
        };
        let pop = Nsga2::new(&problem, cfg).run(vec![], 7);
        let mut rng = StdRng::seed_from_u64(4);
        let random = problem.random_genome(&mut rng);
        let random_moves = pareto_local_search(&problem, &random, 10).moves;
        let best = pop
            .iter()
            .min_by(|a, b| a.objectives[1].total_cmp(&b.objectives[1]))
            .unwrap();
        let ga_moves = pareto_local_search(&problem, &best.genome, 10).moves;
        assert!(
            ga_moves < random_moves,
            "GA solution ({ga_moves} moves) should be closer to local optimality than random ({random_moves})"
        );
    }
}
