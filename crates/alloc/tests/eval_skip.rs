//! Redundant-evaluation skip accounting (`eval-counters`).
//!
//! When crossover produces a child bit-identical to its base parent, the
//! tracked operators report an *empty* move list and the engines reuse the
//! parent's objectives instead of calling the evaluator at all. The
//! process-wide counter (`hetsched_sim::eval_counters`) counts only
//! evaluations that reach an `Evaluator` — full and delta alike — so the
//! skip shows up as a counter that does not move.
//!
//! This lives in its own integration-test binary (its own process) because
//! the counters are process-global: sharing a process with unrelated tests
//! would race the deltas asserted here.

#![cfg(feature = "eval-counters")]

use hetsched_alloc::AllocationProblem;
use hetsched_data::real_system;
use hetsched_moea::{Nsga2, Nsga2Config, Problem};
use hetsched_sim::eval_counters;
use hetsched_workload::TraceGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One test fn covering both runs: two `#[test]`s would run concurrently
/// in this process and race the global counter.
#[test]
fn identical_offspring_skip_evaluation() {
    let sys = real_system();
    let trace = TraceGenerator::new(16, 600.0, sys.task_type_count())
        .generate(&mut StdRng::seed_from_u64(3))
        .unwrap();
    let problem = AllocationProblem::new(&sys, &trace);
    let config = Nsga2Config {
        population: 8,
        mutation_rate: 0.0,
        generations: 10,
        parallel: false,
        hv_reference: None,
        ..Default::default()
    };
    let engine = Nsga2::new(&problem, config);
    let mut rng = StdRng::seed_from_u64(99);

    // Clone-seeded population, mutation off: every crossover child is a
    // bit-identical copy of its base parent, so only the 8 initial
    // evaluations ever reach the evaluator — 80 offspring evaluations are
    // skipped outright.
    let seed_genome = problem.random_genome(&mut rng);
    let before = eval_counters::total();
    engine.run(vec![seed_genome; 8], 7);
    let clone_run = eval_counters::total() - before;
    assert_eq!(
        clone_run, 8,
        "clone-seeded run must evaluate the initial population only"
    );

    // Contrast: a diverse random population. Most offspring genuinely
    // differ from their base parent and must be evaluated (8 initial +
    // up to 8 x 10 offspring; self-mating still produces a few skips).
    let seeds = (0..8).map(|_| problem.random_genome(&mut rng)).collect();
    let before = eval_counters::total();
    let hits_before = eval_counters::delta_hits();
    engine.run(seeds, 7);
    let diverse_run = eval_counters::total() - before;
    assert!(
        diverse_run > 4 * clone_run && diverse_run <= 88,
        "diverse run should evaluate most offspring (got {diverse_run}, clone run {clone_run})"
    );

    // With the fast path enabled, some of those evaluations are served
    // incrementally from pooled parent schedules.
    let delta_hits = eval_counters::delta_hits() - hits_before;
    if cfg!(feature = "delta-eval") {
        assert!(
            delta_hits > 0,
            "delta-eval runs should hit the schedule-cache pool"
        );
    } else {
        assert_eq!(delta_hits, 0, "no delta hits without the fast path");
    }
}
