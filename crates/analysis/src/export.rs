//! CSV / JSON export of fronts and figure data series, consumed by the CLI
//! (`hetsched figure N`) and the benchmark harness. The CSV column layout
//! matches the figures: one row per allocation with its population label
//! and snapshot iteration, so any plotting tool reproduces the subplots
//! directly.

use crate::front::ParetoFront;
use serde::{Deserialize, Serialize};

/// One plotted point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Total utility earned.
    pub utility: f64,
    /// Total energy consumed (joules).
    pub energy: f64,
}

/// One marker series of a figure: a population's front at one snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Population label (seed heuristic name).
    pub label: String,
    /// NSGA-II iteration count at the snapshot.
    pub iterations: usize,
    /// The front's points.
    pub points: Vec<SeriesPoint>,
}

impl FigureSeries {
    /// Wraps a front into a labelled series.
    pub fn from_front(label: impl Into<String>, iterations: usize, front: &ParetoFront) -> Self {
        FigureSeries {
            label: label.into(),
            iterations,
            points: front
                .points()
                .iter()
                .map(|p| SeriesPoint {
                    utility: p.utility,
                    energy: p.energy,
                })
                .collect(),
        }
    }
}

/// Renders series as CSV with header
/// `label,iterations,energy_megajoules,utility`.
/// Energy is reported in megajoules to match the figures' x-axes.
pub fn series_to_csv(series: &[FigureSeries]) -> String {
    let mut out = String::from("label,iterations,energy_megajoules,utility\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{:.6},{:.6}\n",
                s.label,
                s.iterations,
                p.energy / 1.0e6,
                p.utility
            ));
        }
    }
    out
}

/// Renders series as pretty JSON.
///
/// # Errors
///
/// Propagates `serde_json` failures (cannot occur for these plain types but
/// the signature stays honest).
pub fn series_to_json(series: &[FigureSeries]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(series)
}

/// Emits a gnuplot script that renders the series CSV (written by
/// [`series_to_csv`] to `csv_path`) in the paper's layout: one subplot per
/// snapshot iteration count, energy (MJ) on x, utility on y, one marker
/// style per population.
pub fn gnuplot_script(series: &[FigureSeries], csv_path: &str, title: &str) -> String {
    let mut iterations: Vec<usize> = series.iter().map(|s| s.iterations).collect();
    iterations.sort_unstable();
    iterations.dedup();
    let mut labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();

    let mut out = String::new();
    out.push_str("set datafile separator ','\n");
    out.push_str(&format!(
        "set term pngcairo size 1200,900\nset output '{title}.png'\n"
    ));
    let (rows, cols) = match iterations.len() {
        0 | 1 => (1, 1),
        2 => (1, 2),
        3 | 4 => (2, 2),
        n => (n.div_ceil(3), 3),
    };
    out.push_str(&format!(
        "set multiplot layout {rows},{cols} title '{title}'\n"
    ));
    for it in &iterations {
        out.push_str(&format!(
            "set title '{it} iterations'\nset xlabel 'energy (MJ)'\nset ylabel 'utility'\nplot \\\n"
        ));
        let plots: Vec<String> = labels
            .iter()
            .enumerate()
            .map(|(k, label)| {
                format!(
                    "  '{csv_path}' using ($3):((stringcolumn(1) eq '{label}' && $2 == {it}) ? $4 : NaN) \\\n    with points pt {} title '{label}'",
                    k + 4
                )
            })
            .collect();
        out.push_str(&plots.join(", \\\n"));
        out.push('\n');
    }
    out.push_str("unset multiplot\n");
    out
}

/// Parses the CSV produced by [`series_to_csv`] back into series (used by
/// tests and by downstream tooling that stores figure data on disk).
pub fn series_from_csv(csv: &str) -> Option<Vec<FigureSeries>> {
    let mut series: Vec<FigureSeries> = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let label = fields.next()?.to_string();
        let iterations: usize = fields.next()?.parse().ok()?;
        let energy_mj: f64 = fields.next()?.parse().ok()?;
        let utility: f64 = fields.next()?.parse().ok()?;
        let point = SeriesPoint {
            utility,
            energy: energy_mj * 1.0e6,
        };
        match series.last_mut() {
            Some(s) if s.label == label && s.iterations == iterations => s.points.push(point),
            _ => series.push(FigureSeries {
                label,
                iterations,
                points: vec![point],
            }),
        }
    }
    Some(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FigureSeries> {
        let front = ParetoFront::from_points([(10.0, 2.0e6), (20.0, 5.0e6)]);
        vec![
            FigureSeries::from_front("min-energy", 100, &front),
            FigureSeries::from_front("random", 100, &front),
        ]
    }

    #[test]
    fn csv_layout() {
        let csv = series_to_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "label,iterations,energy_megajoules,utility"
        );
        let first = lines.next().unwrap();
        assert!(
            first.starts_with("min-energy,100,2.000000,10.000000"),
            "{first}"
        );
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn csv_roundtrip() {
        let series = sample();
        let csv = series_to_csv(&series);
        let back = series_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].label, "min-energy");
        assert_eq!(back[0].points.len(), 2);
        assert!((back[0].points[1].energy - 5.0e6).abs() < 1.0);
        assert!((back[0].points[1].utility - 20.0).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrip() {
        let series = sample();
        let json = series_to_json(&series).unwrap();
        let back: Vec<FigureSeries> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, series);
    }

    #[test]
    fn gnuplot_script_structure() {
        let script = gnuplot_script(&sample(), "fig.csv", "fig3");
        assert!(script.contains("set multiplot layout 1,1 title 'fig3'"));
        assert!(script.contains("set output 'fig3.png'"));
        assert!(script.contains("'fig.csv'"));
        assert!(script.contains("min-energy"));
        assert!(script.contains("random"));
        assert!(script.contains("unset multiplot"));
        // One subplot per distinct iteration count (sample has only 100).
        assert_eq!(script.matches("set title '").count(), 1);
    }

    #[test]
    fn gnuplot_layout_scales_with_snapshots() {
        let front = ParetoFront::from_points([(1.0, 1.0)]);
        let series: Vec<FigureSeries> = [10usize, 100, 1000, 10000]
            .iter()
            .map(|&it| FigureSeries::from_front("random", it, &front))
            .collect();
        let script = gnuplot_script(&series, "f.csv", "fig");
        assert!(script.contains("layout 2,2"));
        assert_eq!(script.matches("set title '").count(), 4);
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(series_from_csv("label,iterations\nbroken").is_none());
    }

    #[test]
    fn empty_csv_gives_empty_series() {
        let s = series_from_csv("label,iterations,energy_megajoules,utility\n").unwrap();
        assert!(s.is_empty());
    }
}
