//! Empirical attainment summaries over *replicated* stochastic runs.
//!
//! A single NSGA-II run yields one front; rerunning with different RNG
//! seeds yields a band of fronts. The attainment curve at level `k/n`
//! answers: "what trade-off is attained by at least `k` of the `n` runs?" —
//! the standard way to report MOEA results beyond a single lucky run. The
//! median attainment (k = ⌈n/2⌉) is the robust analogue of the paper's
//! plotted fronts.

use crate::front::{FrontPoint, ParetoFront};

/// Attainment summary over a set of replicate fronts.
#[derive(Debug, Clone)]
pub struct AttainmentSummary {
    fronts: Vec<ParetoFront>,
}

impl AttainmentSummary {
    /// Collects replicate fronts (at least one).
    pub fn new(fronts: Vec<ParetoFront>) -> Option<Self> {
        (!fronts.is_empty()).then_some(AttainmentSummary { fronts })
    }

    /// Number of replicates.
    pub fn replicates(&self) -> usize {
        self.fronts.len()
    }

    /// Whether `(utility, energy)` is attained (weakly dominated) by at
    /// least `k` replicates.
    pub fn attained_by(&self, utility: f64, energy: f64, k: usize) -> bool {
        let goal = FrontPoint { utility, energy };
        let count = self
            .fronts
            .iter()
            .filter(|f| f.points().iter().any(|p| p.dominates(&goal) || *p == goal))
            .count();
        count >= k
    }

    /// The `k`-of-`n` attainment curve sampled at `grid` energy levels
    /// between the global min and max energy of all fronts: for each level,
    /// the highest utility attained by ≥ `k` replicates at ≤ that energy
    /// (`None` where fewer than `k` replicates reach that energy at all).
    pub fn attainment_curve(&self, k: usize, grid: usize) -> Vec<(f64, Option<f64>)> {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for f in &self.fronts {
            for p in f.points() {
                lo = lo.min(p.energy);
                hi = hi.max(p.energy);
            }
        }
        if !lo.is_finite() || !hi.is_finite() || grid == 0 {
            return Vec::new();
        }
        (0..grid)
            .map(|i| {
                let e = lo + (hi - lo) * i as f64 / (grid.max(2) - 1) as f64;
                // For each replicate, the best utility at energy <= e.
                let mut bests: Vec<f64> = self
                    .fronts
                    .iter()
                    .filter_map(|f| {
                        f.points()
                            .iter()
                            .take_while(|p| p.energy <= e + 1e-12)
                            .map(|p| p.utility)
                            .fold(None, |acc: Option<f64>, u| {
                                Some(acc.map_or(u, |a| a.max(u)))
                            })
                    })
                    .collect();
                if bests.len() < k {
                    return (e, None);
                }
                // k-th best across replicates (descending): the utility
                // attained by at least k runs.
                bests.sort_by(|a, b| b.total_cmp(a));
                (e, Some(bests[k - 1]))
            })
            .collect()
    }

    /// The median attainment curve (`k = ⌈n/2⌉`).
    pub fn median_curve(&self, grid: usize) -> Vec<(f64, Option<f64>)> {
        self.attainment_curve(self.fronts.len().div_ceil(2), grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front(points: &[(f64, f64)]) -> ParetoFront {
        ParetoFront::from_points(points.iter().copied())
    }

    fn three_replicates() -> AttainmentSummary {
        AttainmentSummary::new(vec![
            front(&[(2.0, 1.0), (6.0, 5.0)]),
            front(&[(3.0, 1.0), (7.0, 5.0)]),
            front(&[(1.0, 1.0), (5.0, 5.0)]),
        ])
        .unwrap()
    }

    #[test]
    fn requires_at_least_one_front() {
        assert!(AttainmentSummary::new(vec![]).is_none());
        assert!(AttainmentSummary::new(vec![front(&[(1.0, 1.0)])]).is_some());
    }

    #[test]
    fn attained_by_counts_replicates() {
        let s = three_replicates();
        // Utility 1 at energy 1 is attained by all three.
        assert!(s.attained_by(1.0, 1.0, 3));
        // Utility 3 at energy 1 only by the second replicate.
        assert!(s.attained_by(3.0, 1.0, 1));
        assert!(!s.attained_by(3.0, 1.0, 2));
        // Nothing attains utility 10.
        assert!(!s.attained_by(10.0, 5.0, 1));
    }

    #[test]
    fn median_curve_sits_between_best_and_worst() {
        let s = three_replicates();
        let best = s.attainment_curve(1, 5);
        let median = s.median_curve(5);
        let worst = s.attainment_curve(3, 5);
        for ((_, b), ((_, m), (_, w))) in best.iter().zip(median.iter().zip(&worst)) {
            match (b, m, w) {
                (Some(b), Some(m), Some(w)) => {
                    assert!(b >= m && m >= w, "ordering violated: {b} {m} {w}");
                }
                _ => {
                    // If the worst curve is undefined here, the others may
                    // be too; only ordering of defined values matters.
                }
            }
        }
    }

    #[test]
    fn curve_at_max_energy_reaches_each_replicates_peak() {
        let s = three_replicates();
        let any = s.attainment_curve(1, 3);
        let last = any.last().unwrap();
        assert_eq!(last.1, Some(7.0)); // best single replicate peak
        let all = s.attainment_curve(3, 3);
        assert_eq!(all.last().unwrap().1, Some(5.0)); // worst replicate peak
    }

    #[test]
    fn empty_grid_yields_empty_curve() {
        let s = three_replicates();
        assert!(s.attainment_curve(1, 0).is_empty());
    }
}
