#![warn(missing_docs)]

//! Pareto-front analysis: everything a system administrator reads off the
//! paper's figures.
//!
//! This crate deliberately works on plain `(utility, energy)` pairs rather
//! than engine types so it can analyse fronts from any source — NSGA-II
//! populations, baseline heuristics, or recorded CSV data.
//!
//! * [`front`] — nondominated extraction, merging, and the [`ParetoFront`]
//!   invariants (energy-ascending, utility-ascending).
//! * [`upe`] — the Fig. 5 analysis: utility-per-energy curves, the peak,
//!   and the "most efficient operating region" of a front.
//! * [`metrics`] — hypervolume, generational distance, and spread for
//!   comparing fronts quantitatively (used by the seeding-comparison
//!   benches).
//! * [`export`] — CSV/JSON serialisation of fronts and figure series.

pub mod attainment;
pub mod export;
pub mod front;
pub mod knee;
pub mod metrics;
pub mod upe;

pub use attainment::AttainmentSummary;
pub use export::{FigureSeries, SeriesPoint};
pub use front::{FrontPoint, ParetoFront};
pub use knee::knee_point;
pub use metrics::{epsilon_indicator, generational_distance, hypervolume, spread};
pub use upe::UpeAnalysis;
